// dcertctl — command-line companion for poking at a DCert deployment:
//
//   dcertctl measure                     print the pinned enclave identity
//   dcertctl keygen <seed>               derive an enclave-style key pair
//   dcertctl demo [blocks] [txs]         run the full pipeline, dump the tip cert
//   dcertctl mine-store <path> <blocks>  mine + certify a chain into a block store
//   dcertctl verify-store <path>         replay a stored chain, re-certify, verify
//   dcertctl inspect-cert <hex>          decode + envelope-check a certificate
#include <cstdio>
#include <cstring>
#include <string>

#include "chain/block_store.h"
#include "chain/node.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "sgxsim/attestation.h"
#include "workloads/workloads.h"

using namespace dcert;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcertctl <command> [args]\n"
               "  measure                      print enclave measurement + IAS key\n"
               "  keygen <seed>                derive a key pair from a seed\n"
               "  demo [blocks=5] [txs=10]     run mine->certify->validate\n"
               "  mine-store <path> <blocks>   mine a chain into a block store\n"
               "  verify-store <path>          replay + re-certify a stored chain\n"
               "  inspect-cert <hex>           decode and check a certificate\n");
  return 2;
}

struct Pipeline {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  core::CertificateIssuer ci;
  chain::FullNode miner_node;
  chain::Miner miner;
  workloads::AccountPool pool;
  workloads::WorkloadGenerator gen;

  Pipeline()
      : registry(workloads::MakeBlockbenchRegistry(2)),
        ci((config.difficulty_bits = 6, config), registry),
        miner_node(config, registry),
        miner(miner_node),
        pool(8, 7),
        gen(
            [] {
              workloads::WorkloadGenerator::Params p;
              p.kind = workloads::Workload::kSmallBank;
              p.instances_per_workload = 2;
              return p;
            }(),
            pool) {}

  Result<chain::Block> Mine(std::size_t txs) {
    auto block = miner.MineBlock(gen.NextBlockTxs(txs),
                                 1700000000 + miner_node.Height() * 15);
    if (block.ok()) {
      if (Status st = miner_node.SubmitBlock(block.value()); !st) {
        return Result<chain::Block>(st);
      }
    }
    return block;
  }
};

int CmdMeasure() {
  std::printf("enclave program:   %s v%s\n", core::kEnclaveProgramName,
              core::kEnclaveProgramVersion);
  std::printf("measurement:       %s\n",
              core::ExpectedEnclaveMeasurement().ToHex().c_str());
  std::printf("IAS public key:    %s\n",
              ToHex(sgxsim::AttestationService::IasPublicKey().Serialize()).c_str());
  return 0;
}

int CmdKeygen(const std::string& seed) {
  auto key = crypto::SecretKey::FromSeed(StrBytes(seed));
  std::printf("seed:       %s\n", seed.c_str());
  std::printf("public key: %s\n", ToHex(key.Public().Serialize()).c_str());
  std::printf("report data (pk binding): %s\n",
              core::KeyBindingReportData(key.Public()).ToHex().c_str());
  return 0;
}

int CmdDemo(int blocks, int txs) {
  Pipeline p;
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  for (int i = 0; i < blocks; ++i) {
    auto block = p.Mine(static_cast<std::size_t>(txs));
    if (!block.ok()) {
      std::fprintf(stderr, "mining failed: %s\n", block.message().c_str());
      return 1;
    }
    auto cert = p.ci.ProcessBlock(block.value());
    if (!cert.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", cert.message().c_str());
      return 1;
    }
    if (Status st = client.ValidateAndAccept(block.value().header, cert.value());
        !st) {
      std::fprintf(stderr, "client rejected: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("block %2d certified (%.2f ms total, %llu ecall)\n", i + 1,
                p.ci.LastTiming().TotalMs(true),
                static_cast<unsigned long long>(p.ci.LastTiming().ecalls));
  }
  std::printf("\nclient height %llu, storage %zu bytes\n",
              static_cast<unsigned long long>(client.Height()),
              client.StorageBytes());
  std::printf("tip certificate (hex):\n%s\n",
              ToHex(client.LatestCert().Serialize()).c_str());
  return 0;
}

int CmdMineStore(const std::string& path, int blocks) {
  auto store = chain::BlockStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.message().c_str());
    return 1;
  }
  if (store.value().Count() != 0) {
    std::fprintf(stderr, "store %s is not empty (%llu blocks)\n", path.c_str(),
                 static_cast<unsigned long long>(store.value().Count()));
    return 1;
  }
  Pipeline p;
  if (Status st = store.value().Append(p.miner_node.GetBlock(0)); !st) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  for (int i = 0; i < blocks; ++i) {
    auto block = p.Mine(10);
    if (!block.ok() || !p.ci.ProcessBlock(block.value()) ||
        !store.value().Append(block.value())) {
      std::fprintf(stderr, "failed at block %d\n", i + 1);
      return 1;
    }
  }
  std::printf("mined + certified %d blocks into %s (tip %s)\n", blocks,
              path.c_str(),
              p.miner_node.Tip().header.Hash().ToHex().substr(0, 16).c_str());
  return 0;
}

int CmdVerifyStore(const std::string& path) {
  auto store = chain::BlockStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.message().c_str());
    return 1;
  }
  if (store.value().RecoveredFromTornTail()) {
    std::printf("note: recovered from a torn tail\n");
  }
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);
  auto node = chain::ReplayFromStore(store.value(), config, registry);
  if (!node.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", node.message().c_str());
    return 1;
  }
  // Re-certify the replayed chain from scratch and validate the tip.
  core::CertificateIssuer ci(config, registry);
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  for (std::uint64_t h = 1; h < store.value().Count(); ++h) {
    auto block = store.value().Get(h);
    auto cert = ci.ProcessBlock(block.value());
    if (!cert.ok()) {
      std::fprintf(stderr, "re-certification failed at %llu: %s\n",
                   static_cast<unsigned long long>(h), cert.message().c_str());
      return 1;
    }
    if (!client.ValidateAndAccept(block.value().header, cert.value())) return 1;
  }
  std::printf("replayed %llu blocks, state root %s..., client validated tip %llu\n",
              static_cast<unsigned long long>(store.value().Count()),
              node.value().State().Root().ToHex().substr(0, 16).c_str(),
              static_cast<unsigned long long>(client.Height()));
  return 0;
}

int CmdInspectCert(const std::string& hex) {
  Bytes raw;
  try {
    raw = FromHex(hex);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad hex: %s\n", e.what());
    return 1;
  }
  auto cert = core::BlockCertificate::Deserialize(raw);
  if (!cert.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", cert.message().c_str());
    return 1;
  }
  const auto& c = cert.value();
  std::printf("pk_enc:        %s\n", ToHex(c.pk_enc.Serialize()).c_str());
  std::printf("measurement:   %s\n", c.report.quote.measurement.ToHex().c_str());
  std::printf("report data:   %s\n", c.report.quote.report_data.ToHex().c_str());
  std::printf("digest:        %s\n", c.digest.ToHex().c_str());
  Status envelope =
      core::VerifyCertificateEnvelope(c, core::ExpectedEnclaveMeasurement());
  std::printf("envelope:      %s\n",
              envelope ? "VALID (IAS report, measurement, key binding, signature)"
                       : envelope.message().c_str());
  return envelope ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "measure") return CmdMeasure();
  if (cmd == "keygen" && argc >= 3) return CmdKeygen(argv[2]);
  if (cmd == "demo") {
    int blocks = argc >= 3 ? std::atoi(argv[2]) : 5;
    int txs = argc >= 4 ? std::atoi(argv[3]) : 10;
    if (blocks <= 0 || txs <= 0) return Usage();
    return CmdDemo(blocks, txs);
  }
  if (cmd == "mine-store" && argc >= 4) {
    return CmdMineStore(argv[2], std::atoi(argv[3]));
  }
  if (cmd == "verify-store" && argc >= 3) return CmdVerifyStore(argv[2]);
  if (cmd == "inspect-cert" && argc >= 3) return CmdInspectCert(argv[2]);
  return Usage();
}
