// dcertctl — command-line companion for poking at a DCert deployment:
//
//   dcertctl measure                     print the pinned enclave identity
//   dcertctl keygen <seed>               derive an enclave-style key pair
//   dcertctl demo [blocks] [txs]         run the full pipeline, dump the tip cert
//   dcertctl mine-store <path> <blocks>  mine + certify a chain into a block store
//   dcertctl verify-store <path>         replay a stored chain, re-certify, verify
//   dcertctl fsck <block-log> [cert-log] verify/repair durable logs, cross-check
//   dcertctl recover <dir> [blocks]      open or crash-recover a durable CI,
//                                        then extend the chain
//   dcertctl checkpoint <dir> [blocks]   checkpointed durable CI: recover
//                                        through the newest checkpoint
//                                        (tail-only replay), extend, write
//                                        checkpoints on cadence, compact
//                                        logs, superlight-bootstrap demo
//   dcertctl inspect-cert <hex>          decode + envelope-check a certificate
//   dcertctl serve <port> [blocks] [txs] mine + certify a chain, serve it over TCP
//                                        (--shard i/N joins an N-shard fleet)
//   dcertctl query <host:port> ...       query a running server, verify replies
//   dcertctl fleet-query <eplist> ...    verified scatter-gather across a fleet
//   dcertctl stats <host:port>...        live metrics from one server, or a
//                                        merged fleet table from several
//   dcertctl fleet-health <host:port>... per-replica liveness table; inspect
//                                        and release misbehavior quarantines
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/block_store.h"
#include "chain/node.h"
#include "ckpt/checkpoint.h"
#include "ckpt/checkpointed_issuer.h"
#include "dcert/cert_store.h"
#include "dcert/durable_issuer.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "fleet/fleet_client.h"
#include "fleet/health.h"
#include "fleet/shard_map.h"
#include "obs/export.h"
#include "query/historical_index.h"
#include "sgxsim/attestation.h"
#include "svc/sp_client.h"
#include "svc/sp_server.h"
#include "svc/tcp_transport.h"
#include "workloads/workloads.h"

using namespace dcert;

namespace {

/// Strict decimal parse of a whole argument; rejects empty strings, signs,
/// trailing garbage, and overflow (std::atoi would silently accept "12abc"
/// and map garbage to 0).
std::optional<std::uint64_t> ParseU64(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  std::uint64_t v = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::optional<int> ParseInt(const char* s, int min, int max) {
  auto v = ParseU64(s);
  if (!v || *v > static_cast<std::uint64_t>(max)) return std::nullopt;
  const int n = static_cast<int>(*v);
  if (n < min) return std::nullopt;
  return n;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dcertctl <command> [args]\n"
               "  measure                      print enclave measurement + IAS key\n"
               "  keygen <seed>                derive a key pair from a seed\n"
               "  demo [blocks=5] [txs=10]     run mine->certify->validate\n"
               "  mine-store <path> <blocks>   mine a chain into a block store\n"
               "  verify-store <path>          replay + re-certify a stored chain\n"
               "  fsck <block-log> [cert-log]  verify/repair durable CI logs\n"
               "                               (truncates torn tails, re-checks\n"
               "                               CRCs, cross-checks certs vs blocks)\n"
               "  recover <dir> [blocks=5]     open or crash-recover the durable CI\n"
               "                               state in <dir>, then mine + certify\n"
               "                               <blocks> more\n"
               "  checkpoint <dir> [blocks=5] [--interval N=4]\n"
               "                               checkpointed durable CI in <dir>:\n"
               "                               recover through the newest valid\n"
               "                               checkpoint (replaying only the tail),\n"
               "                               mine + certify <blocks> more, sealing\n"
               "                               a checkpoint every N blocks and\n"
               "                               compacting pre-checkpoint log\n"
               "                               segments; ends with a superlight\n"
               "                               client bootstrap from the newest\n"
               "                               checkpoint\n"
               "  inspect-cert <hex>           decode and check a certificate\n"
               "  serve <port> [blocks=20] [txs=8] [--shard i/N] [--map-version V]\n"
               "        [--ckpt-dir D]\n"
               "                               mine + certify a chain, serve it over TCP\n"
               "                               (port 0 = ephemeral; Ctrl-D stops).\n"
               "                               --shard i/N serves only key-shard i of an\n"
               "                               N-shard fleet (map version V, default 1).\n"
               "                               --ckpt-dir warm-starts the server from\n"
               "                               the newest checkpoint in D and seals a\n"
               "                               fresh one there on shutdown\n"
               "  query <host:port> tip        fetch + validate the served tip\n"
               "  query <host:port> hist <account> <from> <to>\n"
               "                               verified historical window query\n"
               "  query <host:port> agg <account> <from> <to>\n"
               "                               verified count/sum aggregate query\n"
               "  fleet-query <eplist> hist|agg <account> <from> <to>\n"
               "              [--paranoid] [--map-version V]\n"
               "                               verified scatter-gather across a fleet.\n"
               "                               <eplist> is comma-separated shards, each\n"
               "                               '+'-separated replicas, shard order =\n"
               "                               shard id: h:p+h:p,h:p+h:p ...\n"
               "                               --paranoid cross-checks every subquery\n"
               "                               on a second replica\n"
               "  stats <host:port>... [--json|--prom]\n"
               "                               live metrics snapshot (latency\n"
               "                               percentiles, cache, shed/retry,\n"
               "                               pool, sgx); several endpoints merge\n"
               "                               into one fleet view (counters sum,\n"
               "                               gauges max, histograms merge);\n"
               "                               unreachable endpoints are reported\n"
               "                               inline and the rest still merge\n"
               "  fleet-health <host:port>... [--evidence FILE] [--release R]\n"
               "                               per-endpoint liveness table (tip\n"
               "                               height, uptime, inflight, shed\n"
               "                               rate, build) with version-skew\n"
               "                               detection. --evidence lists the\n"
               "                               misbehavior records a verifying\n"
               "                               client serialized to FILE;\n"
               "                               --release R drops replica R's\n"
               "                               records from FILE (operator\n"
               "                               quarantine release)\n");
  return 2;
}

/// Splits host:port with a strict port parse; nullopt on malformed targets.
std::optional<std::pair<std::string, std::uint16_t>> ParseTarget(
    const std::string& target) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  auto port = ParseInt(target.c_str() + colon + 1, 1, 65535);
  if (!port) return std::nullopt;
  return std::make_pair(target.substr(0, colon),
                        static_cast<std::uint16_t>(*port));
}

/// "i/N" — serve shard i of an N-shard fleet.
struct ShardSpec {
  std::uint32_t shard_id = 0;
  std::uint32_t total = 1;
};

std::optional<ShardSpec> ParseShardSpec(const std::string& s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    return std::nullopt;
  }
  const auto id = ParseU64(s.substr(0, slash).c_str());
  const auto total = ParseU64(s.substr(slash + 1).c_str());
  if (!id || !total || *total == 0 || *total > 4096 || *id >= *total) {
    return std::nullopt;
  }
  return ShardSpec{static_cast<std::uint32_t>(*id),
                   static_cast<std::uint32_t>(*total)};
}

/// "h:p+h:p,h:p" — comma-separated shards, '+'-separated replicas. Every
/// shard must list the same number of replicas; every endpoint must parse.
std::optional<std::vector<std::vector<std::string>>> ParseEndpointList(
    const std::string& s) {
  std::vector<std::vector<std::string>> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    const std::string shard = s.substr(start, comma - start);
    std::vector<std::string> replicas;
    std::size_t rs = 0;
    while (rs <= shard.size()) {
      std::size_t plus = shard.find('+', rs);
      if (plus == std::string::npos) plus = shard.size();
      const std::string ep = shard.substr(rs, plus - rs);
      if (!ParseTarget(ep)) return std::nullopt;
      replicas.push_back(ep);
      rs = plus + 1;
    }
    if (!out.empty() && replicas.size() != out.front().size()) {
      return std::nullopt;  // ragged replica counts
    }
    out.push_back(std::move(replicas));
    start = comma + 1;
  }
  return out;
}

/// Retry policy for interactive commands against a possibly flaky server:
/// bounded deadlines, a few jittered retries, redial on broken streams.
svc::RetryPolicy CliRetryPolicy() {
  svc::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.call_deadline = std::chrono::seconds(5);
  policy.initial_backoff = std::chrono::milliseconds(50);
  policy.max_backoff = std::chrono::milliseconds(800);
  policy.retry_budget = std::chrono::seconds(15);
  return policy;
}

struct Pipeline {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  core::CertificateIssuer ci;
  chain::FullNode miner_node;
  chain::Miner miner;
  workloads::AccountPool pool;
  workloads::WorkloadGenerator gen;

  Pipeline()
      : registry(workloads::MakeBlockbenchRegistry(2)),
        ci((config.difficulty_bits = 6, config), registry),
        miner_node(config, registry),
        miner(miner_node),
        pool(8, 7),
        gen(
            [] {
              workloads::WorkloadGenerator::Params p;
              p.kind = workloads::Workload::kSmallBank;
              p.instances_per_workload = 2;
              return p;
            }(),
            pool) {}

  Result<chain::Block> Mine(std::size_t txs) {
    auto block = miner.MineBlock(gen.NextBlockTxs(txs),
                                 1700000000 + miner_node.Height() * 15);
    if (block.ok()) {
      if (Status st = miner_node.SubmitBlock(block.value()); !st) {
        return Result<chain::Block>(st);
      }
    }
    return block;
  }
};

int CmdMeasure() {
  std::printf("enclave program:   %s v%s\n", core::kEnclaveProgramName,
              core::kEnclaveProgramVersion);
  std::printf("measurement:       %s\n",
              core::ExpectedEnclaveMeasurement().ToHex().c_str());
  std::printf("IAS public key:    %s\n",
              ToHex(sgxsim::AttestationService::IasPublicKey().Serialize()).c_str());
  return 0;
}

int CmdKeygen(const std::string& seed) {
  auto key = crypto::SecretKey::FromSeed(StrBytes(seed));
  std::printf("seed:       %s\n", seed.c_str());
  std::printf("public key: %s\n", ToHex(key.Public().Serialize()).c_str());
  std::printf("report data (pk binding): %s\n",
              core::KeyBindingReportData(key.Public()).ToHex().c_str());
  return 0;
}

int CmdDemo(int blocks, int txs) {
  Pipeline p;
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  for (int i = 0; i < blocks; ++i) {
    auto block = p.Mine(static_cast<std::size_t>(txs));
    if (!block.ok()) {
      std::fprintf(stderr, "mining failed: %s\n", block.message().c_str());
      return 1;
    }
    auto cert = p.ci.ProcessBlock(block.value());
    if (!cert.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", cert.message().c_str());
      return 1;
    }
    if (Status st = client.ValidateAndAccept(block.value().header, cert.value());
        !st) {
      std::fprintf(stderr, "client rejected: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("block %2d certified (%.2f ms total, %llu ecall)\n", i + 1,
                p.ci.LastTiming().TotalMs(true),
                static_cast<unsigned long long>(p.ci.LastTiming().ecalls));
  }
  std::printf("\nclient height %llu, storage %zu bytes\n",
              static_cast<unsigned long long>(client.Height()),
              client.StorageBytes());
  std::printf("tip certificate (hex):\n%s\n",
              ToHex(client.LatestCert().Serialize()).c_str());
  return 0;
}

int CmdMineStore(const std::string& path, int blocks) {
  auto store = chain::BlockStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.message().c_str());
    return 1;
  }
  if (store.value().Count() != 0) {
    std::fprintf(stderr, "store %s is not empty (%llu blocks)\n", path.c_str(),
                 static_cast<unsigned long long>(store.value().Count()));
    return 1;
  }
  Pipeline p;
  if (Status st = store.value().Append(p.miner_node.GetBlock(0)); !st) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  for (int i = 0; i < blocks; ++i) {
    auto block = p.Mine(10);
    if (!block.ok() || !p.ci.ProcessBlock(block.value()) ||
        !store.value().Append(block.value())) {
      std::fprintf(stderr, "failed at block %d\n", i + 1);
      return 1;
    }
  }
  std::printf("mined + certified %d blocks into %s (tip %s)\n", blocks,
              path.c_str(),
              p.miner_node.Tip().header.Hash().ToHex().substr(0, 16).c_str());
  return 0;
}

int CmdVerifyStore(const std::string& path) {
  auto store = chain::BlockStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.message().c_str());
    return 1;
  }
  if (store.value().RecoveredFromTornTail()) {
    std::printf("note: recovered from a torn tail\n");
  }
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);
  auto node = chain::ReplayFromStore(store.value(), config, registry);
  if (!node.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", node.message().c_str());
    return 1;
  }
  // Re-certify the replayed chain from scratch and validate the tip.
  core::CertificateIssuer ci(config, registry);
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  for (std::uint64_t h = 1; h < store.value().Count(); ++h) {
    auto block = store.value().Get(h);
    auto cert = ci.ProcessBlock(block.value());
    if (!cert.ok()) {
      std::fprintf(stderr, "re-certification failed at %llu: %s\n",
                   static_cast<unsigned long long>(h), cert.message().c_str());
      return 1;
    }
    if (!client.ValidateAndAccept(block.value().header, cert.value())) return 1;
  }
  std::printf("replayed %llu blocks, state root %s..., client validated tip %llu\n",
              static_cast<unsigned long long>(store.value().Count()),
              node.value().State().Root().ToHex().substr(0, 16).c_str(),
              static_cast<unsigned long long>(client.Height()));
  return 0;
}

int CmdFsck(const std::string& block_path, const std::string& cert_path) {
  // Opening a RecordLog IS the repair: torn/corrupt tails are truncated and
  // fsynced. Every surviving record is then re-read (which re-verifies its
  // CRC) and the two logs are cross-checked: cert i must sign block i+1 and
  // carry a valid envelope from the pinned enclave.
  auto blocks = chain::BlockStore::Open(block_path);
  if (!blocks.ok()) {
    std::fprintf(stderr, "%s\n", blocks.message().c_str());
    return 1;
  }
  std::printf("block log: %llu record(s)%s%s\n",
              static_cast<unsigned long long>(blocks.value().Count()),
              blocks.value().RecoveredFromTornTail()
                  ? " (REPAIRED: torn tail truncated)"
                  : "",
              blocks.value().SidecarRebuilt()
                  ? " (REPAIRED: segment sidecar index rebuilt)"
                  : "");
  if (blocks.value().BaseHeight() > 0) {
    std::printf("block log: heights below %llu compacted (checkpointed "
                "history)\n",
                static_cast<unsigned long long>(blocks.value().BaseHeight()));
  }
  for (std::uint64_t h = blocks.value().BaseHeight();
       h < blocks.value().Count(); ++h) {
    auto blk = blocks.value().Get(h);
    if (!blk.ok()) {
      std::fprintf(stderr, "block %llu unreadable: %s\n",
                   static_cast<unsigned long long>(h), blk.message().c_str());
      return 1;
    }
    if (blk.value().header.height != h) {
      std::fprintf(stderr, "block record %llu has height %llu\n",
                   static_cast<unsigned long long>(h),
                   static_cast<unsigned long long>(blk.value().header.height));
      return 1;
    }
  }
  if (cert_path.empty()) {
    std::printf("fsck OK\n");
    return 0;
  }

  auto certs = core::CertificateStore::Open(cert_path);
  if (!certs.ok()) {
    std::fprintf(stderr, "%s\n", certs.message().c_str());
    return 1;
  }
  std::printf("cert log:  %llu record(s)%s%s\n",
              static_cast<unsigned long long>(certs.value().Count()),
              certs.value().RecoveredFromTornTail()
                  ? " (REPAIRED: torn tail truncated)"
                  : "",
              certs.value().SidecarRebuilt()
                  ? " (REPAIRED: segment sidecar index rebuilt)"
                  : "");
  if (certs.value().BaseIndex() > 0) {
    std::printf("cert log:  records below %llu compacted (checkpointed "
                "history)\n",
                static_cast<unsigned long long>(certs.value().BaseIndex()));
  }
  const std::uint64_t expected =
      blocks.value().Count() == 0 ? 0 : blocks.value().Count() - 1;
  if (certs.value().Count() != expected) {
    std::printf("note: cert log has %llu record(s), block log implies %llu "
                "(reopen the durable issuer to reconcile)\n",
                static_cast<unsigned long long>(certs.value().Count()),
                static_cast<unsigned long long>(expected));
  }
  const std::uint64_t checkable =
      certs.value().Count() < expected ? certs.value().Count() : expected;
  // Cross-checking cert i needs block i+1: start above both compaction
  // floors (compaction keeps them aligned — block H and cert H-1 survive).
  std::uint64_t first = certs.value().BaseIndex();
  if (blocks.value().BaseHeight() > 0 &&
      blocks.value().BaseHeight() - 1 > first) {
    first = blocks.value().BaseHeight() - 1;
  }
  for (std::uint64_t i = first; i < checkable; ++i) {
    auto cert = certs.value().Get(i);
    if (!cert.ok()) {
      std::fprintf(stderr, "cert %llu unreadable: %s\n",
                   static_cast<unsigned long long>(i), cert.message().c_str());
      return 1;
    }
    auto blk = blocks.value().Get(i + 1);
    if (cert.value().digest != blk.value().header.Hash()) {
      std::fprintf(stderr, "cert %llu does not sign block %llu\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(i + 1));
      return 1;
    }
    if (Status st = core::VerifyCertificateEnvelope(
            cert.value(), core::ExpectedEnclaveMeasurement());
        !st) {
      std::fprintf(stderr, "cert %llu envelope invalid: %s\n",
                   static_cast<unsigned long long>(i), st.message().c_str());
      return 1;
    }
  }
  std::printf("fsck OK (%llu cert(s) cross-checked)\n",
              static_cast<unsigned long long>(
                  checkable > first ? checkable - first : 0));
  return 0;
}

int CmdRecover(const std::string& dir, int blocks) {
  // Open (or crash-recover) the durable CI state under `dir`, report what
  // recovery found, then extend the chain to show issuance resumed under the
  // same sealed key.
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);
  core::DurableIssuerOptions options;
  options.block_log_path = dir + "/blocks.log";
  options.cert_log_path = dir + "/certs.log";
  options.sealed_key_path = dir + "/key.sealed";
  auto durable = core::DurableCertificateIssuer::Open(config, registry, options);
  if (!durable.ok()) {
    std::fprintf(stderr, "open failed: %s\n", durable.message().c_str());
    return 1;
  }
  auto& ci = durable.value();
  const auto& rec = ci.Recovery();
  std::printf("%s: height %llu, pk %s...\n",
              rec.resumed ? "resumed" : "fresh start",
              static_cast<unsigned long long>(ci.Issuer().Node().Height()),
              ToHex(ci.Issuer().EnclaveKey().Serialize()).substr(0, 16).c_str());
  if (rec.block_log_torn) std::printf("  block log: torn tail truncated\n");
  if (rec.cert_log_torn) std::printf("  cert log: torn tail truncated\n");
  if (rec.certs_truncated > 0) {
    std::printf("  reconciled: %llu dangling cert(s) dropped\n",
                static_cast<unsigned long long>(rec.certs_truncated));
  }
  if (rec.blocks_recertified > 0) {
    std::printf("  reconciled: %llu gap block(s) re-certified\n",
                static_cast<unsigned long long>(rec.blocks_recertified));
  }
  if (rec.blocks_replayed > 0) {
    std::printf("  replayed %llu certified block(s)\n",
                static_cast<unsigned long long>(rec.blocks_replayed));
  }

  // Resume mining on top of the recovered chain.
  auto miner_node = chain::ReplayFromStore(ci.Blocks(), config, registry);
  if (!miner_node.ok()) {
    std::fprintf(stderr, "miner replay failed: %s\n",
                 miner_node.message().c_str());
    return 1;
  }
  chain::Miner miner(miner_node.value());
  workloads::AccountPool pool(8, 7);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kSmallBank;
  params.instances_per_workload = 2;
  workloads::WorkloadGenerator gen(params, pool);
  // The generator is deterministic from its seed: fast-forward it past the
  // transactions the stored chain already carries, or the resumed run would
  // re-emit them against a state they no longer apply to.
  for (std::uint64_t h = 1; h < ci.Blocks().Count(); ++h) {
    auto stored = ci.Blocks().Get(h);
    if (stored.ok()) (void)gen.NextBlockTxs(stored.value().txs.size());
  }
  for (int i = 0; i < blocks; ++i) {
    auto block =
        miner.MineBlock(gen.NextBlockTxs(10),
                        1700000000 + miner_node.value().Height() * 15);
    if (!block.ok() || !miner_node.value().SubmitBlock(block.value())) {
      std::fprintf(stderr, "mining failed at block %d\n", i + 1);
      return 1;
    }
    if (Status st = ci.CertifyBlock(block.value()); !st) {
      std::fprintf(stderr, "certification failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  std::printf("extended by %d block(s): height %llu, %llu block(s) / %llu "
              "cert(s) durable, tip %s...\n",
              blocks,
              static_cast<unsigned long long>(ci.Issuer().Node().Height()),
              static_cast<unsigned long long>(ci.Blocks().Count()),
              static_cast<unsigned long long>(ci.Certs().Count()),
              ci.Issuer().Node().Tip().header.Hash().ToHex().substr(0, 16).c_str());
  return 0;
}

int CmdCheckpoint(const std::string& dir, int blocks, std::uint64_t interval) {
  // Checkpointed durable CI: recovery goes through the newest valid
  // checkpoint (issuer snapshot install + tail-only replay), issuance seals
  // new checkpoints on cadence and compacts pre-checkpoint log segments, and
  // a superlight client bootstrap from the newest checkpoint closes the loop.
  constexpr std::size_t kTxPerBlock = 10;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "mkdir %s: %s\n", dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);
  core::DurableIssuerOptions options;
  options.block_log_path = dir + "/blocks.log";
  options.cert_log_path = dir + "/certs.log";
  options.sealed_key_path = dir + "/key.sealed";
  options.segment_records = 8;
  ckpt::CheckpointConfig ck_config;
  ck_config.dir = dir + "/ckpt";
  ck_config.interval = interval;
  auto opened =
      ckpt::CheckpointedIssuer::Open(config, registry, options, ck_config);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.message().c_str());
    return 1;
  }
  auto& ci = opened.value();
  const auto& rec = ci.Durable().Recovery();
  std::printf("%s: height %llu\n", rec.resumed ? "resumed" : "fresh start",
              static_cast<unsigned long long>(
                  ci.Durable().Issuer().Node().Height()));
  if (rec.bootstrap_height > 0) {
    std::printf("  bootstrapped from checkpoint at height %llu, replayed "
                "%llu tail block(s)\n",
                static_cast<unsigned long long>(rec.bootstrap_height),
                static_cast<unsigned long long>(rec.blocks_replayed +
                                                rec.blocks_recertified));
  } else if (rec.resumed) {
    std::printf("  no usable checkpoint: replayed %llu block(s) from "
                "genesis\n",
                static_cast<unsigned long long>(rec.blocks_replayed));
  }
  if (ci.Durable().Blocks().BaseHeight() > 0) {
    std::printf("  block log compacted below height %llu\n",
                static_cast<unsigned long long>(
                    ci.Durable().Blocks().BaseHeight()));
  }

  // Miner node from the issuer's in-memory snapshot — pre-checkpoint blocks
  // may be compacted away, so replay-from-store cannot build it.
  chain::FullNode miner_node(config, registry);
  const chain::FullNode& ci_node = ci.Durable().Issuer().Node();
  if (ci_node.Height() > 0) {
    if (Status st = miner_node.InstallSnapshot(ci_node.Tip(),
                                               ci_node.State().Snapshot());
        !st) {
      std::fprintf(stderr, "miner snapshot failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  chain::Miner miner(miner_node);
  workloads::AccountPool pool(8, 7);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kSmallBank;
  params.instances_per_workload = 2;
  workloads::WorkloadGenerator gen(params, pool);
  // This command always mines kTxPerBlock txs per block, so the
  // deterministic generator fast-forwards from the logical block count alone
  // — no need to read (possibly compacted) stored blocks.
  for (std::uint64_t h = 1; h < ci.Durable().Blocks().Count(); ++h) {
    (void)gen.NextBlockTxs(kTxPerBlock);
  }
  for (int i = 0; i < blocks; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(kTxPerBlock),
                                 1700000000 + miner_node.Height() * 15);
    if (!block.ok() || !miner_node.SubmitBlock(block.value())) {
      std::fprintf(stderr, "mining failed at block %d\n", i + 1);
      return 1;
    }
    if (Status st = ci.CertifyBlock(block.value()); !st) {
      std::fprintf(stderr, "certification failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  std::printf("extended by %d block(s): height %llu, last checkpoint at "
              "height %llu, block log base %llu\n",
              blocks,
              static_cast<unsigned long long>(
                  ci.Durable().Issuer().Node().Height()),
              static_cast<unsigned long long>(ci.LastCheckpointHeight()),
              static_cast<unsigned long long>(
                  ci.Durable().Blocks().BaseHeight()));
  std::printf("checkpoints on disk:");
  for (std::uint64_t h : ci.Store().Heights()) {
    std::printf(" %llu", static_cast<unsigned long long>(h));
  }
  std::printf("\n");

  // Superlight bootstrap: (checkpoint, cert) instead of genesis — constant
  // cost regardless of chain length.
  auto latest = ci.Store().LoadLatestValid(~std::uint64_t{0},
                                           core::ExpectedEnclaveMeasurement());
  if (!latest.ok()) {
    std::fprintf(stderr, "checkpoint load failed: %s\n",
                 latest.message().c_str());
    return 1;
  }
  if (latest.value().has_value()) {
    core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
    if (Status st = ckpt::BootstrapSuperlight(client, *latest.value()); !st) {
      std::fprintf(stderr, "superlight bootstrap failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("superlight bootstrap: accepted certified tip at height %llu "
                "from the checkpoint (client stores %zu bytes)\n",
                static_cast<unsigned long long>(client.Height()),
                client.StorageBytes());
  }
  return 0;
}

int CmdInspectCert(const std::string& hex) {
  Bytes raw;
  try {
    raw = FromHex(hex);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad hex: %s\n", e.what());
    return 1;
  }
  auto cert = core::BlockCertificate::Deserialize(raw);
  if (!cert.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", cert.message().c_str());
    return 1;
  }
  const auto& c = cert.value();
  std::printf("pk_enc:        %s\n", ToHex(c.pk_enc.Serialize()).c_str());
  std::printf("measurement:   %s\n", c.report.quote.measurement.ToHex().c_str());
  std::printf("report data:   %s\n", c.report.quote.report_data.ToHex().c_str());
  std::printf("digest:        %s\n", c.digest.ToHex().c_str());
  Status envelope =
      core::VerifyCertificateEnvelope(c, core::ExpectedEnclaveMeasurement());
  std::printf("envelope:      %s\n",
              envelope ? "VALID (IAS report, measurement, key binding, signature)"
                       : envelope.message().c_str());
  return envelope ? 0 : 1;
}

int CmdServe(int port, int blocks, int txs, const std::string& shard_spec,
             std::uint64_t map_version, const std::string& ckpt_dir) {
  // Mine + certify a fresh chain with an attached historical index, feed the
  // certified blocks to an SpServer, then serve it over real TCP until stdin
  // closes. `dcertctl query` is the matching client.
  //
  // With --shard i/N every process mines the SAME deterministic chain (fixed
  // seeds) and applies every block, but serves only key-shard i; start N of
  // these on distinct ports and point `dcertctl fleet-query` at them.
  //
  // With --ckpt-dir the server warm-starts from the newest valid SP
  // checkpoint in that directory (tip + index restored without replaying
  // announcements — the mined chain is deterministic, so a checkpoint from a
  // previous run of the same command matches), and seals a fresh checkpoint
  // there after the graceful drain. Works per shard: give each shard process
  // its own directory.
  svc::SpServerConfig server_config;
  if (!shard_spec.empty()) {
    const auto spec = ParseShardSpec(shard_spec);
    if (!spec) {
      std::fprintf(stderr, "--shard must be i/N with i < N, got %s\n",
                   shard_spec.c_str());
      return Usage();
    }
    fleet::ShardMapConfig map_config;
    map_config.version = map_version;
    map_config.key_shards = spec->total;
    auto map = fleet::ShardMap::Create(map_config);
    if (!map.ok()) {
      std::fprintf(stderr, "%s\n", map.message().c_str());
      return 1;
    }
    server_config.shard = map.value().AssignmentFor(spec->shard_id);
    server_config.shard_map = map.value().Serialize();
  }
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  core::CertificateIssuer ci(config, registry);
  auto hist = std::make_shared<query::HistoricalIndex>("historical");
  ci.AttachIndex(hist);
  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool pool(4, 77);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;
  params.kv_keys = 10;
  workloads::WorkloadGenerator gen(params, pool);

  svc::SpServer server(server_config);

  // Warm start: restore tip + index from the newest valid checkpoint, then
  // announce only the blocks above it. The chain below is still mined (the
  // miner/CI need the state), but the server skips re-validating it.
  std::optional<ckpt::CheckpointStore> ckpt_store;
  std::uint64_t warm_height = 0;
  if (!ckpt_dir.empty()) {
    auto store = ckpt::CheckpointStore::Open(ckpt_dir);
    if (!store.ok()) {
      std::fprintf(stderr, "checkpoint dir open failed: %s\n",
                   store.message().c_str());
      return 1;
    }
    ckpt_store.emplace(std::move(store.value()));
    auto latest = ckpt_store->LoadLatestValid(
        static_cast<std::uint64_t>(blocks), server_config.expected_measurement);
    if (!latest.ok()) {
      std::fprintf(stderr, "checkpoint load failed: %s\n",
                   latest.message().c_str());
      return 1;
    }
    if (latest.value().has_value()) {
      if (Status st = server.RehydrateFromCheckpoint(*latest.value()); !st) {
        std::fprintf(stderr, "checkpoint rehydrate failed: %s\n",
                     st.message().c_str());
        return 1;
      }
      warm_height = latest.value()->height;
      std::printf("warm start: serving state restored from checkpoint at "
                  "height %llu (announcements resume above it)\n",
                  static_cast<unsigned long long>(warm_height));
    }
  }

  for (int i = 0; i < blocks; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(static_cast<std::size_t>(txs)),
                                 1700000000 + miner_node.Height() * 15);
    if (!block.ok() || !miner_node.SubmitBlock(block.value())) {
      std::fprintf(stderr, "mining failed at block %d\n", i + 1);
      return 1;
    }
    auto icerts = ci.ProcessBlockHierarchical(block.value());
    if (!icerts.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", icerts.message().c_str());
      return 1;
    }
    if (block.value().header.height <= warm_height) continue;
    svc::AnnounceRequest ann;
    ann.block = block.value();
    ann.block_cert = *ci.LatestCert();
    ann.index_digest = hist->CurrentDigest();
    ann.index_cert = icerts.value()[0];
    if (Status st = server.Announce(ann); !st) {
      std::fprintf(stderr, "announce failed: %s\n", st.message().c_str());
      return 1;
    }
  }

  svc::TcpServerConfig tcp_config;
  tcp_config.port = static_cast<std::uint16_t>(port);
  svc::TcpServerTransport transport(tcp_config);
  if (Status st = server.Serve(transport); !st) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  std::printf("serving %d certified blocks on 127.0.0.1:%u (max %zu "
              "connections, dead peers reaped)\n",
              blocks, transport.Port(), tcp_config.max_connections);
  if (server_config.shard.Sharded()) {
    std::printf("shard %u/%u (map v%llu): serving account words [%llu, %llu]\n",
                server_config.shard.shard_id,
                server_config.shard.total_shards,
                static_cast<unsigned long long>(
                    server_config.shard.map_version),
                static_cast<unsigned long long>(server_config.shard.key_lo),
                static_cast<unsigned long long>(server_config.shard.key_hi));
  }
  std::printf("try: dcertctl query 127.0.0.1:%u tip   (Ctrl-D here stops)\n",
              transport.Port());
  std::fflush(stdout);
  while (std::getchar() != EOF) {
  }
  server.Shutdown();
  if (ckpt_store) {
    auto ck = server.ExportCheckpoint();
    if (!ck.ok()) {
      std::fprintf(stderr, "checkpoint export failed: %s\n",
                   ck.message().c_str());
    } else if (Status st = ckpt_store->Write(ck.value()); !st) {
      std::fprintf(stderr, "checkpoint write failed: %s\n",
                   st.message().c_str());
    } else {
      (void)ckpt_store->Prune(2);
      std::printf("checkpoint sealed at height %llu in %s\n",
                  static_cast<unsigned long long>(ck.value().height),
                  ckpt_store->Dir().c_str());
    }
  }
  std::printf("drained and stopped\n");
  return 0;
}

int CmdStats(const std::vector<std::string>& targets,
             const std::string& format) {
  for (const auto& target : targets) {
    if (!ParseTarget(target)) {
      std::fprintf(stderr, "target must be host:port, got %s\n",
                   target.c_str());
      return Usage();
    }
  }
  if (!format.empty() && format != "--json" && format != "--prom") {
    std::fprintf(stderr, "unknown stats flag %s\n", format.c_str());
    return Usage();
  }
  // One endpoint prints that server's snapshot; several merge into a fleet
  // view: counters sum (total work), gauges take the max (worst level),
  // histograms merge bucket-wise (fleet percentiles from the combined
  // distribution, not averaged quantiles). A down endpoint is exactly when
  // an operator reaches for this command, so an unreachable server is
  // reported inline and the reachable ones still merge; only an empty merge
  // (every endpoint down) is a hard failure.
  obs::MetricsSnapshot merged;
  std::size_t reached = 0;
  for (const auto& target : targets) {
    const auto [host, port] = *ParseTarget(target);
    svc::SpClient client(
        [host = host, port = port] {
          return svc::TcpClientTransport::Connect(host, port);
        },
        CliRetryPolicy());
    auto snap = client.FetchStats();
    if (!snap.ok()) {
      std::fprintf(stderr, "stats fetch from %s failed: %s\n", target.c_str(),
                   snap.message().c_str());
      continue;
    }
    merged.MergeFrom(snap.value());
    ++reached;
  }
  if (reached == 0) {
    std::fprintf(stderr, "stats: no endpoint reachable (%zu tried)\n",
                 targets.size());
    return 1;
  }
  std::string out;
  if (format == "--json") {
    out = obs::ToJson(merged);
    out += '\n';
  } else if (format == "--prom") {
    out = obs::ToPrometheusText(merged);
  } else {
    if (targets.size() > 1) {
      std::printf("fleet stats merged from %zu of %zu servers (counters "
                  "summed, gauges max, histograms merged)\n",
                  reached, targets.size());
    }
    out = obs::RenderTable(merged);
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

const char* OpName(std::uint8_t op) {
  switch (static_cast<svc::Op>(op)) {
    case svc::Op::kTipFetch: return "tip";
    case svc::Op::kHistorical: return "hist";
    case svc::Op::kAggregate: return "agg";
    case svc::Op::kAnnounce: return "announce";
    case svc::Op::kStats: return "stats";
    case svc::Op::kShardMap: return "shard-map";
    case svc::Op::kShardScoped: return "shard-scoped";
    case svc::Op::kHealth: return "health";
  }
  return "?";
}

int ListEvidence(const std::string& path) {
  auto records = fleet::LoadEvidenceFile(path);
  if (!records.ok()) {
    std::fprintf(stderr, "evidence file %s: %s\n", path.c_str(),
                 records.message().c_str());
    return 1;
  }
  std::printf("%zu misbehavior record(s) in %s\n", records.value().size(),
              path.c_str());
  for (const auto& e : records.value()) {
    std::printf(
        "  replica %u shard %u (map v%llu): op=%s account=%llu "
        "window=[%llu,%llu]\n"
        "    reply digest %s\n"
        "    verdict: %s\n",
        e.replica, e.shard_id, static_cast<unsigned long long>(e.map_version),
        OpName(e.op), static_cast<unsigned long long>(e.account),
        static_cast<unsigned long long>(e.from_height),
        static_cast<unsigned long long>(e.to_height),
        e.reply_digest.ToHex().c_str(), e.verdict.c_str());
  }
  return 0;
}

int ReleaseQuarantine(const std::string& path, std::uint32_t replica) {
  auto records = fleet::LoadEvidenceFile(path);
  if (!records.ok()) {
    std::fprintf(stderr, "evidence file %s: %s\n", path.c_str(),
                 records.message().c_str());
    return 1;
  }
  std::vector<fleet::MisbehaviorEvidence> kept;
  for (auto& e : records.value()) {
    if (e.replica != replica) kept.push_back(std::move(e));
  }
  const std::size_t dropped = records.value().size() - kept.size();
  if (Status st = fleet::WriteEvidenceFile(path, kept); !st) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  std::printf("released replica %u: dropped %zu record(s), %zu remain in %s\n",
              replica, dropped, kept.size(), path.c_str());
  std::printf("(clients that attach this evidence file will re-admit the "
              "replica on next start)\n");
  return 0;
}

int CmdFleetHealth(const std::vector<std::string>& targets,
                   const std::string& evidence_path,
                   std::optional<std::uint32_t> release) {
  // Quarantine release is a pure evidence-file edit — the quarantine lives
  // with the verifying clients, not the servers — so it works (and must be
  // validated) before any endpoint is dialed.
  if (release && evidence_path.empty()) {
    std::fprintf(stderr, "--release requires --evidence FILE\n");
    return Usage();
  }
  if (targets.empty() && evidence_path.empty()) return Usage();
  for (const auto& target : targets) {
    if (!ParseTarget(target)) {
      std::fprintf(stderr, "target must be host:port, got %s\n",
                   target.c_str());
      return Usage();
    }
  }
  if (release) return ReleaseQuarantine(evidence_path, *release);

  int rc = 0;
  if (!targets.empty()) {
    std::printf("%-22s %10s %10s %8s %9s  %s\n", "endpoint", "tip",
                "uptime_s", "inflight", "shed%", "build");
    std::size_t reached = 0;
    std::set<std::string> builds;
    for (const auto& target : targets) {
      const auto [host, port] = *ParseTarget(target);
      svc::SpClient client(
          [host = host, port = port] {
            return svc::TcpClientTransport::Connect(host, port);
          },
          CliRetryPolicy());
      auto health = client.FetchHealth();
      if (!health.ok()) {
        std::printf("%-22s UNREACHABLE: %s\n", target.c_str(),
                    health.message().c_str());
        continue;
      }
      const auto& h = health.value();
      const std::uint64_t total = h.served + h.shed;
      const double shed_pct =
          total == 0 ? 0.0 : 100.0 * static_cast<double>(h.shed) /
                                 static_cast<double>(total);
      std::printf("%-22s %10llu %10llu %8llu %8.2f%%  %s\n", target.c_str(),
                  static_cast<unsigned long long>(h.tip_height),
                  static_cast<unsigned long long>(h.uptime_ms / 1000),
                  static_cast<unsigned long long>(h.inflight), shed_pct,
                  h.build.c_str());
      builds.insert(h.build);
      ++reached;
    }
    if (builds.size() > 1) {
      std::printf("WARNING: version skew — %zu distinct builds across the "
                  "fleet\n",
                  builds.size());
    }
    if (reached == 0) {
      std::fprintf(stderr, "fleet-health: no endpoint reachable (%zu tried)\n",
                   targets.size());
      rc = 1;
    }
  }
  if (!evidence_path.empty()) {
    const int erc = ListEvidence(evidence_path);
    if (erc != 0) rc = erc;
  }
  return rc;
}

int CmdFleetQuery(int argc, char** argv) {
  std::vector<std::string> pos;
  bool paranoid = false;
  std::uint64_t map_version = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paranoid") {
      paranoid = true;
    } else if (arg == "--map-version" && i + 1 < argc) {
      const auto v = ParseU64(argv[++i]);
      if (!v || *v == 0) return Usage();
      map_version = *v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown fleet-query flag %s\n", arg.c_str());
      return Usage();
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.size() < 5) return Usage();
  const auto endpoints = ParseEndpointList(pos[0]);
  if (!endpoints) {
    std::fprintf(stderr,
                 "endpoint list must be h:p+h:p,... with equal replica "
                 "counts, got %s\n",
                 pos[0].c_str());
    return Usage();
  }
  const std::string what = pos[1];
  const auto account = ParseU64(pos[2].c_str());
  const auto from = ParseU64(pos[3].c_str());
  const auto to = ParseU64(pos[4].c_str());
  if ((what != "hist" && what != "agg") || !account || !from || !to) {
    return Usage();
  }

  fleet::ShardMapConfig map_config;
  map_config.version = map_version;
  map_config.key_shards = static_cast<std::uint32_t>(endpoints->size());
  map_config.replicas = static_cast<std::uint32_t>(endpoints->front().size());
  auto map = fleet::ShardMap::Create(map_config, *endpoints);
  if (!map.ok()) {
    std::fprintf(stderr, "%s\n", map.message().c_str());
    return 1;
  }
  if (paranoid && map_config.replicas < 2) {
    std::fprintf(stderr, "--paranoid needs at least 2 replicas per shard\n");
    return Usage();
  }

  fleet::FleetClientConfig client_config;
  client_config.retry = CliRetryPolicy();
  client_config.cross_check = paranoid;
  fleet::FleetClient client(
      map.value(),
      [endpoints = *endpoints](std::uint32_t shard,
                               std::uint32_t replica) -> svc::Connector {
        const auto target = *ParseTarget(endpoints[shard][replica]);
        return [target] {
          return svc::TcpClientTransport::Connect(target.first, target.second);
        };
      },
      client_config);

  if (what == "hist") {
    auto versions = client.Historical(*account, *from, *to);
    if (!versions.ok()) {
      std::fprintf(stderr, "fleet query failed: %s\n",
                   versions.message().c_str());
      return 1;
    }
    std::printf("account %llu, blocks [%llu, %llu]: %zu version(s), every "
                "shard reply VERIFIED%s\n",
                static_cast<unsigned long long>(*account),
                static_cast<unsigned long long>(*from),
                static_cast<unsigned long long>(*to),
                versions.value().size(),
                paranoid ? " + cross-checked" : "");
    for (const auto& v : versions.value()) {
      std::printf("  block %6llu  value %llu\n",
                  static_cast<unsigned long long>(v.block_height),
                  static_cast<unsigned long long>(v.value));
    }
  } else {
    auto agg = client.Aggregate(*account, *from, *to);
    if (!agg.ok()) {
      std::fprintf(stderr, "fleet query failed: %s\n", agg.message().c_str());
      return 1;
    }
    std::printf("account %llu, blocks [%llu, %llu]: count=%llu sum=%llu, "
                "every shard reply VERIFIED%s\n",
                static_cast<unsigned long long>(*account),
                static_cast<unsigned long long>(*from),
                static_cast<unsigned long long>(*to),
                static_cast<unsigned long long>(agg.value().count),
                static_cast<unsigned long long>(agg.value().sum),
                paranoid ? " + cross-checked" : "");
  }
  const auto stats = client.Stats();
  std::printf("fleet: %llu subquery(ies), %llu verified, %llu failover(s), "
              "%llu cross-check(s)\n",
              static_cast<unsigned long long>(stats.subqueries),
              static_cast<unsigned long long>(stats.verified),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.cross_checks));
  return 0;
}

int CmdQuery(const std::string& target, int argc, char** argv) {
  auto parsed = ParseTarget(target);
  if (!parsed) {
    std::fprintf(stderr, "target must be host:port, got %s\n", target.c_str());
    return Usage();
  }
  // Validate the subcommand and its numeric arguments before any network
  // I/O, so a typo exits with usage instead of burning the retry budget
  // against a server that would never be asked anything sensible.
  const std::string what = argc >= 4 ? argv[3] : "tip";
  std::uint64_t account = 0, from = 0, to = 0;
  if (what == "hist" || what == "agg") {
    if (argc < 7) return Usage();
    const auto account_arg = ParseU64(argv[4]);
    const auto from_arg = ParseU64(argv[5]);
    const auto to_arg = ParseU64(argv[6]);
    if (!account_arg || !from_arg || !to_arg) return Usage();
    account = *account_arg;
    from = *from_arg;
    to = *to_arg;
  } else if (what != "tip") {
    return Usage();
  }

  const auto [host, port] = *parsed;
  // A CLI talking to a possibly slow or flaky server: bounded per-call
  // deadlines, a few backoff retries, and automatic redial on broken
  // streams, so a wedged SP yields an error instead of a hung terminal.
  svc::SpClient client(
      [host = host, port = port] {
        return svc::TcpClientTransport::Connect(host, port);
      },
      CliRetryPolicy());

  // Every subcommand starts from a validated tip: certificate envelope,
  // header binding, and index certificate all check out or we stop.
  auto tip = client.FetchTip();
  if (!tip.ok()) {
    std::fprintf(stderr, "tip fetch failed: %s\n", tip.message().c_str());
    if (client.Stats().retries > 0) {
      std::fprintf(stderr, "(gave up after %llu retries, %llu reconnects)\n",
                   static_cast<unsigned long long>(client.Stats().retries),
                   static_cast<unsigned long long>(client.Stats().reconnects));
    }
    return 1;
  }
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  if (Status st = light.ValidateAndAccept(tip.value().header,
                                          tip.value().block_cert);
      !st) {
    std::fprintf(stderr, "tip certificate rejected: %s\n", st.message().c_str());
    return 1;
  }
  if (Status st =
          light.AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                tip.value().index_digest, "historical");
      !st) {
    std::fprintf(stderr, "index certificate rejected: %s\n",
                 st.message().c_str());
    return 1;
  }
  const Hash256 digest = *light.CertifiedIndexDigest("historical");

  if (what == "tip") {
    std::printf("tip height:    %llu\n",
                static_cast<unsigned long long>(tip.value().header.height));
    std::printf("header hash:   %s\n",
                tip.value().header.Hash().ToHex().c_str());
    std::printf("index digest:  %s\n", digest.ToHex().c_str());
    std::printf("certificates:  VALID (block + index, measurement pinned)\n");
    return 0;
  }
  if (what == "hist") {
    auto reply = client.Historical(account, from, to);
    if (!reply.ok()) {
      std::fprintf(stderr, "query failed: %s\n", reply.message().c_str());
      return 1;
    }
    auto versions = query::HistoricalIndex::VerifyQuery(
        digest, account, from, to, reply.value().proof);
    if (!versions.ok()) {
      std::fprintf(stderr, "PROOF REJECTED: %s\n", versions.message().c_str());
      return 1;
    }
    std::printf("account %llu, blocks [%llu, %llu]: %zu version(s), "
                "proof VERIFIED against certified digest\n",
                static_cast<unsigned long long>(account),
                static_cast<unsigned long long>(from),
                static_cast<unsigned long long>(to),
                versions.value().size());
    for (const auto& v : versions.value()) {
      std::printf("  block %6llu  value %llu\n",
                  static_cast<unsigned long long>(v.block_height),
                  static_cast<unsigned long long>(v.value));
    }
    return 0;
  }
  auto reply = client.Aggregate(account, from, to);
  if (!reply.ok()) {
    std::fprintf(stderr, "query failed: %s\n", reply.message().c_str());
    return 1;
  }
  auto agg = query::HistoricalIndex::VerifyAggregateQuery(
      digest, account, from, to, reply.value().proof);
  if (!agg.ok()) {
    std::fprintf(stderr, "PROOF REJECTED: %s\n", agg.message().c_str());
    return 1;
  }
  std::printf("account %llu, blocks [%llu, %llu]: count=%llu sum=%llu, "
              "proof VERIFIED against certified digest\n",
              static_cast<unsigned long long>(account),
              static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(to),
              static_cast<unsigned long long>(agg.value().count),
              static_cast<unsigned long long>(agg.value().sum));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "measure") return CmdMeasure();
  if (cmd == "keygen" && argc >= 3) return CmdKeygen(argv[2]);
  if (cmd == "demo") {
    const auto blocks = argc >= 3 ? ParseInt(argv[2], 1, 1 << 20)
                                  : std::optional<int>(5);
    const auto txs = argc >= 4 ? ParseInt(argv[3], 1, 1 << 20)
                               : std::optional<int>(10);
    if (!blocks || !txs) return Usage();
    return CmdDemo(*blocks, *txs);
  }
  if (cmd == "mine-store" && argc >= 4) {
    const auto blocks = ParseInt(argv[3], 1, 1 << 20);
    if (!blocks) return Usage();
    return CmdMineStore(argv[2], *blocks);
  }
  if (cmd == "verify-store" && argc >= 3) return CmdVerifyStore(argv[2]);
  if (cmd == "fsck" && argc >= 3) {
    return CmdFsck(argv[2], argc >= 4 ? argv[3] : "");
  }
  if (cmd == "recover" && argc >= 3) {
    const auto blocks = argc >= 4 ? ParseInt(argv[3], 0, 1 << 20)
                                  : std::optional<int>(5);
    if (!blocks) return Usage();
    return CmdRecover(argv[2], *blocks);
  }
  if (cmd == "checkpoint" && argc >= 3) {
    std::vector<const char*> pos;
    std::uint64_t interval = 4;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--interval" && i + 1 < argc) {
        const auto v = ParseU64(argv[++i]);
        if (!v || *v == 0) return Usage();
        interval = *v;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown checkpoint flag %s\n", arg.c_str());
        return Usage();
      } else {
        pos.push_back(argv[i]);
      }
    }
    if (pos.empty()) return Usage();
    const auto blocks =
        pos.size() >= 2 ? ParseInt(pos[1], 0, 1 << 20) : std::optional<int>(5);
    if (!blocks) return Usage();
    return CmdCheckpoint(pos[0], *blocks, interval);
  }
  if (cmd == "inspect-cert" && argc >= 3) return CmdInspectCert(argv[2]);
  if (cmd == "serve" && argc >= 3) {
    std::vector<const char*> pos;
    std::string shard_spec;
    std::string ckpt_dir;
    std::uint64_t map_version = 1;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shard" && i + 1 < argc) {
        shard_spec = argv[++i];
      } else if (arg == "--map-version" && i + 1 < argc) {
        const auto v = ParseU64(argv[++i]);
        if (!v || *v == 0) return Usage();
        map_version = *v;
      } else if (arg == "--ckpt-dir" && i + 1 < argc) {
        ckpt_dir = argv[++i];
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown serve flag %s\n", arg.c_str());
        return Usage();
      } else {
        pos.push_back(argv[i]);
      }
    }
    if (pos.empty()) return Usage();
    const auto port = ParseInt(pos[0], 0, 65535);
    const auto blocks =
        pos.size() >= 2 ? ParseInt(pos[1], 1, 1 << 20) : std::optional<int>(20);
    const auto txs =
        pos.size() >= 3 ? ParseInt(pos[2], 1, 1 << 20) : std::optional<int>(8);
    if (!port || !blocks || !txs) return Usage();
    return CmdServe(*port, *blocks, *txs, shard_spec, map_version, ckpt_dir);
  }
  if (cmd == "query" && argc >= 3) return CmdQuery(argv[2], argc, argv);
  if (cmd == "fleet-query") return CmdFleetQuery(argc, argv);
  if (cmd == "stats" && argc >= 3) {
    std::vector<std::string> targets;
    std::string format;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (!arg.empty() && arg[0] == '-') {
        if (!format.empty()) return Usage();
        format = arg;
      } else {
        targets.push_back(arg);
      }
    }
    if (targets.empty()) return Usage();
    return CmdStats(targets, format);
  }
  if (cmd == "fleet-health") {
    std::vector<std::string> targets;
    std::string evidence;
    std::optional<std::uint32_t> release;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--evidence" && i + 1 < argc) {
        evidence = argv[++i];
      } else if (arg == "--release" && i + 1 < argc) {
        const auto r = ParseU64(argv[++i]);
        if (!r || *r > 0xffffffffULL) return Usage();
        release = static_cast<std::uint32_t>(*r);
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown fleet-health flag %s\n", arg.c_str());
        return Usage();
      } else {
        targets.push_back(arg);
      }
    }
    return CmdFleetHealth(targets, evidence, release);
  }
  return Usage();
}
