#!/usr/bin/env bash
# CI entry point: a Release build running the full tier-1 suite, then a
# ThreadSanitizer build (DCERT_SANITIZE=thread) running the threaded tests
# that exercise the pipeline/thread-pool/SMT parallel paths and the serving
# subsystem, then an AddressSanitizer build (DCERT_SANITIZE=address) running
# the server/transport tests (socket and buffer handling).
#
# The Svc selection deliberately includes SvcFaultTest (the seeded
# fault-injection soak and busy-shedding retry tests) and SvcTcpTest
# (deadline, churn, and connection-cap tests): both sanitizers run the
# retry/reconnect and reader-lifecycle paths, where the races and
# use-after-close bugs would live.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/3] Release build + full test suite ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo "=== [2/3] TSan build + threaded tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target \
  thread_pool_test parallel_equivalence_test smt_test dcert_test svc_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelEquivalence|Smt|Svc'   # Svc matches SvcFaultTest/SvcTcpTest

echo "=== [3/3] ASan build + serving/transport tests ==="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target \
  svc_test net_test thread_pool_test
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  -R 'Svc|SimNet|ThreadPool'

echo "CI OK"
