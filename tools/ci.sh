#!/usr/bin/env bash
# CI entry point: a Release build running the full tier-1 suite, then a
# ThreadSanitizer build (DCERT_SANITIZE=thread) running the threaded tests
# that exercise the pipeline/thread-pool/SMT parallel paths.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/2] Release build + full test suite ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo "=== [2/2] TSan build + threaded tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target \
  thread_pool_test parallel_equivalence_test smt_test dcert_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelEquivalence|Smt'

echo "CI OK"
