#!/usr/bin/env bash
# CI entry point: a Release build running the full tier-1 suite, then a
# ThreadSanitizer build (DCERT_SANITIZE=thread) running the threaded tests
# that exercise the pipeline/thread-pool/SMT parallel paths, the serving
# subsystem, and the obs metrics hammering, then an AddressSanitizer build
# (DCERT_SANITIZE=address) running the server/transport/obs tests (socket
# and buffer handling), then two legs for the SIMD hashing dispatch: the
# TSan suite re-run under DCERT_FORCE_SCALAR_HASH=1 (the scalar fallback
# must be just as race-free as the hardware paths — and this is the only
# way the fallback gets sanitizer coverage on SHA-NI machines), and a
# UBSanitizer build (DCERT_SANITIZE=undefined) running the crypto/tree
# suites over the multi-buffer SHA-256 backends, the batch verifier, and
# the arena allocator (pointer/alignment/shift UB in kernel and pool code).
#
# The Svc selection deliberately includes SvcFaultTest (the seeded
# fault-injection soak and busy-shedding retry tests) and SvcTcpTest
# (deadline, churn, and connection-cap tests): both sanitizers run the
# retry/reconnect and reader-lifecycle paths, where the races and
# use-after-close bugs would live. The obs tests hammer the sharded
# counters/histograms from many threads — the TSan leg is what certifies
# the lock-free recording paths.
#
# Both sanitizer legs also run the crash-recovery suite (CrashRecovery +
# CrashSoak): the soak repeatedly tears the pipelined issuer down mid-span
# (thread cancel/join under an injected exception) and recovers, which is
# exactly where TSan finds teardown races and ASan finds use-after-frees in
# the store/issuer lifecycles. The seeded cycle count is bounded via
# DCERT_CRASH_SOAK_CYCLES so the sanitizer runs stay inside the per-test
# timeout (the Release leg runs the full default of 200 cycles).
#
# The checkpoint subsystem gets three angles of coverage: the ckpt_test
# suites and the checkpointed crash soak run under both TSan and ASan
# (bounded by DCERT_CRASH_SOAK_CYCLES like the original soak), and a
# Release-only bench_recovery --verify leg proves the O(delta) recovery
# claim end-to-end on a 10k-block chain — recovery must go through a
# checkpoint and replay at most one interval of tail, or CI fails.
#
# Seeded soaks (gtest names containing "Soak") carry the `soak` ctest label
# and run on their own Release leg (-L soak) so the fast suite stays fast:
# the composed chaos harness runs DCERT_CHAOS_SOAK_CYCLES cycles there
# (default 500, env-overridable), and both sanitizer legs rerun it bounded
# to 40 cycles (TSan's interceptors make the full count blow the timeout
# without covering any new interleavings).
#
# Every ctest invocation carries a per-test --timeout so a hung soak or a
# deadlocked reader fails the run instead of wedging CI.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TEST_TIMEOUT=300  # seconds per test; the slowest soak is ~10s on a dev box

echo "=== [1/5] Release build + full test suite ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" -LE soak

echo "=== [1a/5] Release chaos/crash soak leg (-L soak) ==="
# The seeded soaks run on their own leg so the fast suite above stays fast:
# the composed chaos harness (network + disk + crash planes against a live
# fleet, zero unverified replies accepted, convergence to all-breakers-
# closed) at DCERT_CHAOS_SOAK_CYCLES cycles (default 500, env-overridable),
# plus the crash-recovery soak at its full Release default.
DCERT_CHAOS_SOAK_CYCLES="${DCERT_CHAOS_SOAK_CYCLES:-500}" \
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" -L soak

echo "=== [1b/5] bench_serving --fleet 1x1 smoke (multi-process topology) ==="
# The smallest fleet: one re-exec'd shard-server child over TCP, plus the
# verified scatter-gather pass. Pins the fork/exec/PORT-handshake/shutdown
# machinery and the sharded request framing without benchmarking anything.
"${PREFIX}-release/bench/bench_serving" --fleet 1x1 \
  --requests 200 --rps 4000 --blocks 4 --txs 8 >/dev/null

echo "=== [1c/5] bench_recovery --verify (10k-chain tail-only replay) ==="
# Builds a 10k-block chain under checkpoint cadence and recovers it: exits
# nonzero unless recovery went through a checkpoint (ci.ckpt.loaded advanced,
# bootstrap height > 0) and replayed at most one interval of tail — i.e. the
# O(delta) recovery claim holds at a chain length where full replay would
# take ~25x longer. Also times the O(1) superlight bootstrap from the same
# checkpoint. Release-only: the chain build dominates and sanitizers would
# triple it without covering any new code (the soaks cover crash paths).
"${PREFIX}-release/bench/bench_recovery" --verify --blocks 10000

echo "=== [2/5] TSan build + threaded tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target \
  thread_pool_test parallel_equivalence_test smt_test dcert_test svc_test \
  fleet_test obs_test record_log_test crash_recovery_test ckpt_test chaos_test
DCERT_CRASH_SOAK_CYCLES=50 DCERT_CHAOS_SOAK_CYCLES=40 \
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'ThreadPool|ParallelEquivalence|Smt|Svc|Fleet|ShardMap|ShardServing|Counter|Gauge|Histogram|Registry|Snapshot|Trace|Enabled|RecordLog|CrashPoints|CrashRecovery|CrashSoak|SealedIssuer|Checkpoint|SuperlightBootstrap|Chaos'
  # Svc matches SvcFaultTest/SvcTcpTest/SvcStatsTest; the obs suites cover
  # the concurrent counter/histogram/trace hammering. Fleet|ShardMap|
  # ShardServing run the router fan-out, scatter-gather fan-out threads, and
  # the pooled-connection paths — the fleet's concurrency lives there.
  # CrashSoak includes the checkpointed seeded soak (crash sites inside
  # rotation, compaction rename, and checkpoint seal); Checkpoint matches
  # the ckpt format/store/issuer/SP-export suites, incl. the pipelined
  # span-boundary cadence that TSan watches for teardown races.

echo "=== [3/5] ASan build + serving/transport tests ==="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target \
  svc_test net_test thread_pool_test fleet_test obs_test record_log_test \
  crash_recovery_test ckpt_test chaos_test
DCERT_CRASH_SOAK_CYCLES=50 DCERT_CHAOS_SOAK_CYCLES=40 \
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'Svc|SimNet|ThreadPool|Fleet|ShardMap|ShardServing|Counter|Gauge|Histogram|Registry|Snapshot|Trace|Enabled|Export|Overhead|RecordLog|CrashPoints|CrashRecovery|CrashSoak|SealedIssuer|Checkpoint|SuperlightBootstrap|Chaos'
  # The checkpoint legs under ASan pin the mmap'd sealed-segment reads and
  # the serialize/deserialize buffer handling in the .dcp codec; the soak's
  # torn-seal site leaves half-written tmp files for Open() to clean up.

echo "=== [4/5] TSan + forced-scalar hashing (dispatch fallback path) ==="
# Same TSan build, but every digest takes the portable scalar road. The
# threaded SMT/pipeline tests then certify that the batch-hash sharding and
# the thread_local scratch in the fallback are race-free; the Sha256 suite
# (incl. the dispatch tests) runs to pin the resolved backends.
DCERT_FORCE_SCALAR_HASH=1 DCERT_CRASH_SOAK_CYCLES=50 \
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'ThreadPool|ParallelEquivalence|Smt|Sha256|Svc'

echo "=== [5/5] UBSan build + SIMD/crypto/tree tests ==="
cmake -B "${PREFIX}-ubsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=undefined
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target \
  sha256_test signature_test secp256k1_test smt_test merkle_tree_test \
  mbtree_test common_test dcert_test
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'Sha256|HmacSha256|Signature|VerifyBatch|Secp256k1|Curve|Smt|Merkle|Mb|Arena|Dcert'
  # Sha256BatchTest exercises every supported multi-buffer backend (AVX2
  # lane loads, SHA-NI interleaves); VerifyBatchTest covers the combined
  # verification equation; ArenaTest covers the placement-new pool.

echo "CI OK"
