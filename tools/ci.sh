#!/usr/bin/env bash
# CI entry point: a Release build running the full tier-1 suite, then a
# ThreadSanitizer build (DCERT_SANITIZE=thread) running the threaded tests
# that exercise the pipeline/thread-pool/SMT parallel paths, the serving
# subsystem, and the obs metrics hammering, then an AddressSanitizer build
# (DCERT_SANITIZE=address) running the server/transport/obs tests (socket
# and buffer handling).
#
# The Svc selection deliberately includes SvcFaultTest (the seeded
# fault-injection soak and busy-shedding retry tests) and SvcTcpTest
# (deadline, churn, and connection-cap tests): both sanitizers run the
# retry/reconnect and reader-lifecycle paths, where the races and
# use-after-close bugs would live. The obs tests hammer the sharded
# counters/histograms from many threads — the TSan leg is what certifies
# the lock-free recording paths.
#
# Both sanitizer legs also run the crash-recovery suite (CrashRecovery +
# CrashSoak): the soak repeatedly tears the pipelined issuer down mid-span
# (thread cancel/join under an injected exception) and recovers, which is
# exactly where TSan finds teardown races and ASan finds use-after-frees in
# the store/issuer lifecycles. The seeded cycle count is bounded via
# DCERT_CRASH_SOAK_CYCLES so the sanitizer runs stay inside the per-test
# timeout (the Release leg runs the full default of 200 cycles).
#
# Every ctest invocation carries a per-test --timeout so a hung soak or a
# deadlocked reader fails the run instead of wedging CI.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TEST_TIMEOUT=300  # seconds per test; the slowest soak is ~10s on a dev box

echo "=== [1/3] Release build + full test suite ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}"

echo "=== [2/3] TSan build + threaded tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target \
  thread_pool_test parallel_equivalence_test smt_test dcert_test svc_test \
  obs_test record_log_test crash_recovery_test
DCERT_CRASH_SOAK_CYCLES=50 \
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'ThreadPool|ParallelEquivalence|Smt|Svc|Counter|Gauge|Histogram|Registry|Trace|Enabled|RecordLog|CrashPoints|CrashRecovery|CrashSoak|SealedIssuer'
  # Svc matches SvcFaultTest/SvcTcpTest/SvcStatsTest; the obs suites cover
  # the concurrent counter/histogram/trace hammering.

echo "=== [3/3] ASan build + serving/transport tests ==="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDCERT_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target \
  svc_test net_test thread_pool_test obs_test record_log_test crash_recovery_test
DCERT_CRASH_SOAK_CYCLES=50 \
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  --timeout "${TEST_TIMEOUT}" \
  -R 'Svc|SimNet|ThreadPool|Counter|Gauge|Histogram|Registry|Trace|Enabled|Export|Overhead|RecordLog|CrashPoints|CrashRecovery|CrashSoak|SealedIssuer'

echo "CI OK"
