// On-demand verifiable analytics — the "versatile" in the paper's title:
//
//  1. a chain runs for a while with NO query indexes at all;
//  2. an analytics need appears, so the CI activates a historical index
//     mid-chain: every stored block is replayed through the enclave
//     (certified backfill), producing an index certificate at the tip;
//  3. the client then runs verifiable *aggregate* queries (COUNT/SUM over a
//     window, O(log n) proofs from the aggregate-annotated MB-tree) and
//     verifiable *current-state* reads — all anchored to enclave
//     certificates, all from an untrusted provider.
#include <cstdio>

#include "chain/node.h"
#include "common/rng.h"
#include "common/timing.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "query/historical_index.h"
#include "query/state_query.h"
#include "workloads/workloads.h"

using namespace dcert;

int main() {
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  core::CertificateIssuer ci(config, registry);
  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool pool(8, 17);
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());

  std::uint64_t kv = workloads::ContractId(workloads::Workload::kKvStore, 0);
  Rng rng(5);

  // --- Phase 1: the chain runs with no indexes -----------------------------
  const int kBlocks = 40;
  std::printf("phase 1: %d blocks of KV updates, no indexes attached\n", kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    std::vector<chain::Transaction> txs;
    for (int i = 0; i < 4; ++i) {
      txs.push_back(pool.MakeTx(rng.NextBelow(pool.size()), kv,
                                {0, rng.NextBelow(10), rng.NextRange(1, 500)}));
    }
    auto block = miner.MineBlock(std::move(txs), 1000 + b);
    if (!block.ok() || !miner_node.SubmitBlock(block.value())) return 1;
    auto cert = ci.ProcessBlock(block.value());
    if (!cert.ok()) return 1;
    if (!client.ValidateAndAccept(block.value().header, cert.value())) return 1;
  }

  // --- Phase 2: activate the historical index on demand --------------------
  std::printf("phase 2: activating a historical index at height %llu...\n",
              static_cast<unsigned long long>(miner_node.Height()));
  auto index = std::make_shared<query::HistoricalIndex>();
  Stopwatch watch;
  auto tip_cert = ci.AttachIndexWithBackfill(index);
  if (!tip_cert.ok()) {
    std::fprintf(stderr, "backfill failed: %s\n", tip_cert.message().c_str());
    return 1;
  }
  std::printf("  certified backfill of %d blocks in %.1f ms (%llu ecalls)\n",
              kBlocks, watch.ElapsedMs(),
              static_cast<unsigned long long>(ci.LastTiming().ecalls));
  if (!client.AcceptIndexCert(client.LatestHeader(), tip_cert.value(),
                              index->CurrentDigest(), index->Id())) {
    return 1;
  }

  // --- Phase 3: verifiable analytics ---------------------------------------
  Hash256 digest = *client.CertifiedIndexDigest(index->Id());
  std::printf("\nphase 3: verifiable analytics against the certified digest\n");
  for (std::uint64_t account : {1u, 4u, 7u}) {
    auto agg_proof = index->AggregateQuery(account, 10, 30);
    auto agg = query::HistoricalIndex::VerifyAggregateQuery(digest, account, 10,
                                                            30, agg_proof);
    if (!agg.ok()) {
      std::fprintf(stderr, "aggregate failed: %s\n", agg.message().c_str());
      return 1;
    }
    std::printf(
        "  account %llu, blocks [10,30]: %llu writes, total value %llu "
        "(aggregate proof %zu bytes)\n",
        static_cast<unsigned long long>(account),
        static_cast<unsigned long long>(agg.value().count),
        static_cast<unsigned long long>(agg.value().sum),
        agg_proof.ByteSize());
  }

  // Verifiable current-state read against the certified latest header.
  chain::StateKey slot = chain::SlotKey(kv, 7);
  query::StateQueryProof state_proof = query::ProveState(ci.Node().State(), slot);
  auto value = query::VerifyState(client.LatestHeader().state_root, slot,
                                  state_proof);
  if (!value.ok()) return 1;
  std::printf("  current value of KV key 7: %llu (state proof %zu bytes)\n",
              static_cast<unsigned long long>(value.value()),
              state_proof.ByteSize());

  // A lying provider is still caught after activation.
  auto forged = index->AggregateQuery(1, 10, 30);
  Hash256 bad_digest = digest;
  bad_digest[2] ^= 1;
  bool rejected = !query::HistoricalIndex::VerifyAggregateQuery(bad_digest, 1, 10,
                                                                30, forged)
                       .ok();
  std::printf("\nforged digest rejected: %s\n", rejected ? "yes" : "NO (BUG!)");
  return rejected ? 0 : 1;
}
