// Quickstart: spin up a DCert deployment end to end.
//
//  1. install the Blockbench contracts and start a miner + an SGX-enabled
//     Certificate Issuer (CI);
//  2. mine SmallBank blocks; the CI certifies each one;
//  3. a superlight client validates the whole chain from just the latest
//     header + certificate — constant storage, constant time.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "chain/node.h"
#include "common/timing.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

using namespace dcert;

int main() {
  // --- Network setup -------------------------------------------------------
  chain::ChainConfig config;
  config.difficulty_bits = 8;  // simulated PoW difficulty
  auto registry = workloads::MakeBlockbenchRegistry(/*instances_per_workload=*/4);

  core::CertificateIssuer ci(config, registry);
  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);

  workloads::AccountPool accounts(/*count=*/16, /*seed=*/2024);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kSmallBank;
  params.instances_per_workload = 4;
  workloads::WorkloadGenerator gen(params, accounts);

  std::printf("DCert quickstart\n");
  std::printf("  enclave measurement: %s\n",
              core::ExpectedEnclaveMeasurement().ToHex().substr(0, 16).c_str());

  // --- Mine and certify ----------------------------------------------------
  const int kBlocks = 10;
  const std::size_t kTxsPerBlock = 20;
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());

  for (int i = 0; i < kBlocks; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(kTxsPerBlock),
                                 1700000000 + static_cast<std::uint64_t>(i) * 15);
    if (!block.ok()) {
      std::fprintf(stderr, "mining failed: %s\n", block.message().c_str());
      return 1;
    }
    if (Status st = miner_node.SubmitBlock(block.value()); !st) {
      std::fprintf(stderr, "submit failed: %s\n", st.message().c_str());
      return 1;
    }

    // The CI validates the block, re-executes it inside the enclave against
    // Merkle-proof-backed state, and signs the certificate.
    auto cert = ci.ProcessBlock(block.value());
    if (!cert.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", cert.message().c_str());
      return 1;
    }

    // The superlight client validates the chain with ONLY this pair.
    Stopwatch watch;
    Status accepted = client.ValidateAndAccept(block.value().header, cert.value());
    double validate_ms = watch.ElapsedMs();
    if (!accepted) {
      std::fprintf(stderr, "client rejected block %d: %s\n", i,
                   accepted.message().c_str());
      return 1;
    }
    const core::CertTiming& t = ci.LastTiming();
    std::printf(
        "  block %2llu | %2zu txs | cert: outside %6.2f ms + enclave %6.2f ms "
        "(modeled %6.2f) | client validate %5.2f ms\n",
        static_cast<unsigned long long>(block.value().header.height),
        block.value().txs.size(), t.OutsideMs(),
        static_cast<double>(t.enclave_wall_ns) / 1e6,
        static_cast<double>(t.enclave_modeled_ns) / 1e6, validate_ms);
  }

  // --- The punchline -------------------------------------------------------
  std::printf("\nchain height:              %llu\n",
              static_cast<unsigned long long>(client.Height()));
  std::printf("full node storage:         %zu bytes\n", miner_node.StorageBytes());
  std::printf("traditional light client:  %zu bytes (all headers)\n",
              (static_cast<std::size_t>(kBlocks) + 1) * chain::HeaderByteSize());
  std::printf("superlight client:         %zu bytes (latest header + certificate)\n",
              client.StorageBytes());
  std::printf("attestation verifications: %llu (cached after the first)\n",
              static_cast<unsigned long long>(client.ReportVerifications()));
  return 0;
}
