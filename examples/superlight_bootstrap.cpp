// Bootstrapping comparison (the intuition behind the paper's Fig. 7):
// a freshly joining traditional light client must download and validate
// every header, while a DCert superlight client fetches one header + one
// certificate. This example grows a header chain and reports both clients'
// storage and (re)validation cost as the chain grows.
#include <cstdio>

#include "chain/node.h"
#include "common/timing.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

using namespace dcert;

int main() {
  chain::ChainConfig config;
  config.difficulty_bits = 4;  // cheap mining: this example is about headers
  auto registry = workloads::MakeBlockbenchRegistry(1);

  core::CertificateIssuer ci(config, registry);
  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool accounts(4, 5);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kDoNothing;
  params.instances_per_workload = 1;
  workloads::WorkloadGenerator gen(params, accounts);

  chain::LightClient light(miner_node.GetBlock(0).header);
  core::SuperlightClient superlight(core::ExpectedEnclaveMeasurement());

  std::printf("%10s | %14s %14s | %14s %14s\n", "height", "light bytes",
              "light ms", "superlt bytes", "superlt ms");

  const int kCheckpoints[] = {100, 200, 400, 800, 1600};
  int mined = 0;
  chain::Block latest;
  core::BlockCertificate latest_cert;
  for (int checkpoint : kCheckpoints) {
    while (mined < checkpoint) {
      auto block = miner.MineBlock(gen.NextBlockTxs(1), 1000 + mined);
      if (!block.ok() || !miner_node.SubmitBlock(block.value())) return 1;
      auto cert = ci.ProcessBlock(block.value());
      if (!cert.ok()) {
        std::fprintf(stderr, "cert failed: %s\n", cert.message().c_str());
        return 1;
      }
      if (!light.SyncHeader(block.value().header).ok()) return 1;
      latest = block.value();
      latest_cert = cert.value();
      ++mined;
    }

    // Traditional light client: full header-chain re-validation (bootstrap).
    Stopwatch light_watch;
    if (!light.ValidateAll().ok()) return 1;
    double light_ms = light_watch.ElapsedMs();

    // Superlight client: validate the latest header + certificate only.
    core::SuperlightClient fresh(core::ExpectedEnclaveMeasurement());
    Stopwatch super_watch;
    if (!fresh.ValidateAndAccept(latest.header, latest_cert).ok()) return 1;
    double super_ms = super_watch.ElapsedMs();

    std::printf("%10d | %14zu %14.2f | %14zu %14.3f\n", checkpoint,
                light.StorageBytes(), light_ms, fresh.StorageBytes(), super_ms);
    (void)superlight;
  }

  std::printf(
      "\nThe light client's cost grows linearly with the chain; the\n"
      "superlight client's storage and validation stay constant.\n");
  return 0;
}
