// Conjunctive keyword search over transactions (Fig. 5 case study, right
// side — the paper's "[Stock AND Bank]" query).
//
// Transactions are tagged with keywords ("c<contract>" and "op<operation>");
// an SP maintains an authenticated inverted index whose digest the CI
// certifies on demand (the versatility claim: this index was attached
// without touching the chain or the other indexes). A superlight client
// runs conjunctive queries and verifies both soundness and completeness.
#include <cstdio>

#include "chain/node.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "query/keyword_index.h"
#include "workloads/workloads.h"

using namespace dcert;

int main() {
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);

  core::CertificateIssuer ci(config, registry);
  auto keyword_index = std::make_shared<query::KeywordIndex>();
  ci.AttachIndex(keyword_index);

  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool accounts(8, 99);

  // Mix two workloads so conjunctive queries are selective.
  workloads::WorkloadGenerator::Params kv_params;
  kv_params.kind = workloads::Workload::kKvStore;
  kv_params.instances_per_workload = 2;
  workloads::WorkloadGenerator kv_gen(kv_params, accounts);
  workloads::WorkloadGenerator::Params sb_params;
  sb_params.kind = workloads::Workload::kSmallBank;
  sb_params.instances_per_workload = 2;
  workloads::WorkloadGenerator sb_gen(sb_params, accounts);

  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());

  const int kBlocks = 20;
  for (int i = 0; i < kBlocks; ++i) {
    std::vector<chain::Transaction> txs = kv_gen.NextBlockTxs(6);
    for (auto& tx : sb_gen.NextBlockTxs(6)) txs.push_back(std::move(tx));
    auto block = miner.MineBlock(std::move(txs), 1000 + i);
    if (!block.ok() || !miner_node.SubmitBlock(block.value())) return 1;
    auto certs = ci.ProcessBlockHierarchical(block.value());
    if (!certs.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", certs.message().c_str());
      return 1;
    }
    if (!client.ValidateAndAccept(block.value().header, *ci.LatestCert()) ||
        !client.AcceptIndexCert(block.value().header, certs.value()[0],
                                keyword_index->CurrentDigest(),
                                keyword_index->Id())) {
      return 1;
    }
  }
  Hash256 certified = *client.CertifiedIndexDigest(keyword_index->Id());
  std::printf("indexed %d blocks; certified inverted-index digest %s...\n\n",
              kBlocks, certified.ToHex().substr(0, 16).c_str());

  // --- Conjunctive queries (the [Stock AND Bank] analogue) ----------------
  struct QuerySpec {
    const char* description;
    std::vector<std::string> keywords;
  };
  const QuerySpec queries[] = {
      {"KVStore puts           (c3000 AND op0)", {"c3000", "op0"}},
      {"SmallBank payments     (c4000 AND op3)", {"c4000", "op3"}},
      {"cross-contract op 0    (c3000 AND c3001)", {"c3000", "c3001"}},
  };
  for (const QuerySpec& q : queries) {
    auto proof = keyword_index->Query(q.keywords);
    auto result = query::KeywordIndex::VerifyQuery(certified, q.keywords, proof);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n", result.message().c_str());
      return 1;
    }
    std::printf("%s -> %3zu transactions  (proof %zu bytes)\n", q.description,
                result.value().size(), proof.ByteSize());
    for (std::size_t i = 0; i < result.value().size() && i < 3; ++i) {
      std::printf("    e.g. block %llu, tx %u\n",
                  static_cast<unsigned long long>(result.value()[i].block),
                  result.value()[i].tx_index);
    }
  }

  // --- A lying SP is caught ------------------------------------------------
  std::printf("\nmalicious SP simulations:\n");
  auto proof = keyword_index->Query({"c3000", "op0"});
  auto hidden = proof;
  if (!hidden.postings["c3000"].empty()) {
    hidden.postings["c3000"].erase(hidden.postings["c3000"].begin());
    auto r = query::KeywordIndex::VerifyQuery(certified, {"c3000", "op0"}, hidden);
    std::printf("  hidden result:     %s\n", r.ok() ? "ACCEPTED (BUG!)" : "rejected");
  }
  auto injected = proof;
  injected.postings["op0"].push_back({9999, 0});
  auto r2 = query::KeywordIndex::VerifyQuery(certified, {"c3000", "op0"}, injected);
  std::printf("  injected result:   %s\n", r2.ok() ? "ACCEPTED (BUG!)" : "rejected");
  return 0;
}
