// The full DCert certification workflow (paper Fig. 2) over a simulated
// network: a miner proposes SmallBank blocks every (virtual) 15 seconds; a
// plain full node and an SGX-enabled Certificate Issuer validate them; the
// CI broadcasts certificates; two superlight clients follow the chain from
// certificates alone. Messages are serialized and arrive with randomized
// latency, so blocks and certificates can be reordered in flight.
#include <cstdio>

#include "net/actors.h"

using namespace dcert;

int main() {
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);

  net::SimNetwork network(/*seed=*/2022, /*min_latency_us=*/10'000,
                          /*max_latency_us=*/900'000);

  workloads::WorkloadGenerator::Params gen_params;
  gen_params.kind = workloads::Workload::kSmallBank;
  gen_params.instances_per_workload = 2;

  net::MinerActor miner("miner-0", config, registry, gen_params,
                        /*accounts=*/16, /*txs_per_block=*/15,
                        /*block_interval_us=*/15'000'000);
  net::FullNodeActor full_node("fullnode-0", config, registry);
  net::CiActor ci("ci-0", config, registry);
  net::SuperlightActor alice("client-alice");
  net::SuperlightActor bob("client-bob");

  network.AddActor(&miner);
  network.AddActor(&full_node);
  network.AddActor(&ci);
  network.AddActor(&alice);
  network.AddActor(&bob);

  // Ten minutes of virtual time ≈ 40 blocks at a 15 s interval.
  const net::SimTime end = network.Run(/*until=*/600'000'000);

  std::printf("simulated %.0f s of network time\n", static_cast<double>(end) / 1e6);
  std::printf("miner proposed:        %llu blocks\n",
              static_cast<unsigned long long>(miner.BlocksProposed()));
  std::printf("full node height:      %llu (rejected %llu)\n",
              static_cast<unsigned long long>(full_node.Node().Height()),
              static_cast<unsigned long long>(full_node.RejectedBlocks()));
  std::printf("CI certificates:       %llu\n",
              static_cast<unsigned long long>(ci.CertsIssued()));
  std::printf("alice height:          %llu (accepted %llu, stale %llu, invalid %llu)\n",
              static_cast<unsigned long long>(alice.Client().Height()),
              static_cast<unsigned long long>(alice.Accepted()),
              static_cast<unsigned long long>(alice.RejectedStale()),
              static_cast<unsigned long long>(alice.RejectedInvalid()));
  std::printf("bob height:            %llu, storage %zu bytes\n",
              static_cast<unsigned long long>(bob.Client().Height()),
              bob.Client().StorageBytes());
  const net::NetStats& stats = network.Stats();
  std::printf("network: %llu messages, %.1f KB total\n",
              static_cast<unsigned long long>(stats.messages_delivered),
              static_cast<double>(stats.bytes_delivered) / 1024.0);
  for (const auto& [topic, count] : stats.messages_by_topic) {
    std::printf("  topic %-6s : %llu\n", topic.c_str(),
                static_cast<unsigned long long>(count));
  }

  // Sanity: the clients follow the chain despite reordering and never accept
  // anything invalid.
  const bool healthy = alice.RejectedInvalid() == 0 && bob.RejectedInvalid() == 0 &&
                       alice.Client().Height() > 0 &&
                       alice.Client().Height() <= ci.Issuer().Node().Height();
  std::printf("\n%s\n", healthy ? "workflow healthy: clients tracked the chain "
                                  "from certificates alone"
                                : "WORKFLOW UNHEALTHY");
  return healthy ? 0 : 1;
}
