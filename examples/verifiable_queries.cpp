// Verifiable historical queries (the paper's Fig. 5 case study, left side).
//
// A Query Service Provider maintains DCert's two-level authenticated index
// (Merkle Patricia Trie over accounts -> per-account Merkle B-tree of
// versions). The CI certifies the index digest with hierarchical
// certificates; a superlight client then asks "what were the values of
// account A during blocks [x, y]?" and verifies the answer offline.
//
// Includes a malicious-SP demonstration: tampered and truncated results are
// rejected by the client-side verifier.
#include <cstdio>

#include "chain/node.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "query/historical_index.h"
#include "workloads/workloads.h"

using namespace dcert;

int main() {
  chain::ChainConfig config;
  config.difficulty_bits = 6;
  auto registry = workloads::MakeBlockbenchRegistry(2);

  core::CertificateIssuer ci(config, registry);
  auto sp_index = std::make_shared<query::HistoricalIndex>();
  ci.AttachIndex(sp_index);

  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool accounts(8, 7);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 2;
  params.kv_keys = 20;  // 20 accounts, frequently updated
  workloads::WorkloadGenerator gen(params, accounts);

  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());

  // --- Build 30 blocks of KVStore updates, certifying chain + index -------
  const int kBlocks = 30;
  std::printf("building %d blocks of KVStore updates...\n", kBlocks);
  for (int i = 0; i < kBlocks; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(12), 1000 + i);
    if (!block.ok() || !miner_node.SubmitBlock(block.value())) return 1;
    auto certs = ci.ProcessBlockHierarchical(block.value());
    if (!certs.ok()) {
      std::fprintf(stderr, "certification failed: %s\n", certs.message().c_str());
      return 1;
    }
    if (!client.ValidateAndAccept(block.value().header, *ci.LatestCert()) ||
        !client.AcceptIndexCert(block.value().header, certs.value()[0],
                                sp_index->CurrentDigest(), sp_index->Id())) {
      return 1;
    }
  }
  std::printf("chain height %llu, index covers %zu accounts\n\n",
              static_cast<unsigned long long>(client.Height()),
              sp_index->AccountCount());

  // --- Query: versions of account 3 in blocks [10, 20] --------------------
  const std::uint64_t kAccount = 3;
  Hash256 certified = *client.CertifiedIndexDigest(sp_index->Id());
  query::HistoricalQueryProof proof = sp_index->Query(kAccount, 10, 20);
  auto result =
      query::HistoricalIndex::VerifyQuery(certified, kAccount, 10, 20, proof);
  if (!result.ok()) {
    std::fprintf(stderr, "verification failed: %s\n", result.message().c_str());
    return 1;
  }
  std::printf("account %llu over blocks [10, 20]: %zu versions (proof %zu bytes)\n",
              static_cast<unsigned long long>(kAccount), result.value().size(),
              proof.ByteSize());
  for (const query::HistoricalVersion& v : result.value()) {
    std::printf("  block %4llu -> value %llu\n",
                static_cast<unsigned long long>(v.block_height),
                static_cast<unsigned long long>(v.value));
  }

  // --- Malicious SP: tampering and truncation are caught ------------------
  std::printf("\nmalicious SP simulations:\n");
  if (!result.value().empty()) {
    // (a) Tamper with a returned value inside the proof.
    query::HistoricalQueryProof tampered = sp_index->Query(kAccount, 10, 20);
    tampered.lower_root[0] ^= 1;  // lie about the account's tree
    auto bad = query::HistoricalIndex::VerifyQuery(certified, kAccount, 10, 20,
                                                   tampered);
    std::printf("  forged lower-tree root:    %s\n",
                bad.ok() ? "ACCEPTED (BUG!)" : "rejected");

    // (b) Serve a stale index state (replay an old digest).
    Hash256 stale = certified;
    stale[3] ^= 1;
    auto replay = query::HistoricalIndex::VerifyQuery(stale, kAccount, 10, 20,
                                                      sp_index->Query(kAccount, 10, 20));
    std::printf("  stale/forged index digest: %s\n",
                replay.ok() ? "ACCEPTED (BUG!)" : "rejected");
  }

  // (c) Unknown account: absence is provable, not just asserted.
  auto empty = query::HistoricalIndex::VerifyQuery(
      certified, 424242, 10, 20, sp_index->Query(424242, 10, 20));
  std::printf("  unknown account:           %s (provably empty)\n",
              empty.ok() && empty.value().empty() ? "verified" : "FAILED");
  return 0;
}
