// Figure 9 — impact of block size (number of transactions) on block
// certificate construction for the two macro workloads, KVStore (KV) and
// SmallBank (SB), with the same outside/inside breakdown as Fig. 8. The
// paper's observation: every component grows with block size because the
// read/write sets and their Merkle proofs grow with the transaction count.
#include "bench/bench_util.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Fig. 9", "impact of block size on certificate construction");
  PrintParams("block size {50,100,200,400} txs, 8 blocks per point, "
              "100 sender accounts, KV: 500 tuples");

  const std::vector<std::size_t> block_sizes = {50, 100, 200, 400};
  const workloads::Workload kinds[] = {workloads::Workload::kKvStore,
                                       workloads::Workload::kSmallBank};

  std::printf("%4s %6s | %9s %9s | %11s %12s | %9s\n", "wl", "txs", "rw-set",
              "proofs", "in-encl raw", "in-encl SGX", "total ms");
  std::printf("------------+---------------------+--------------------------+----------\n");

  for (workloads::Workload kind : kinds) {
    for (std::size_t block_size : block_sizes) {
      Rig rig(kind, /*accounts=*/100, /*instances=*/4);
      const int kBlocks = 8;
      std::vector<double> rwset_ms, proof_ms, wall_ms, modeled_ms, total_ms;
      for (int i = 0; i < kBlocks; ++i) {
        chain::Block blk = rig.MineNext(block_size);
        auto cert = rig.ci->ProcessBlock(blk);
        if (!cert.ok()) {
          std::fprintf(stderr, "cert failed: %s\n", cert.message().c_str());
          return 1;
        }
        const core::CertTiming& t = rig.ci->LastTiming();
        rwset_ms.push_back(static_cast<double>(t.rwset_ns) / 1e6);
        proof_ms.push_back(static_cast<double>(t.proof_ns) / 1e6);
        wall_ms.push_back(static_cast<double>(t.enclave_wall_ns) / 1e6);
        modeled_ms.push_back(static_cast<double>(t.enclave_modeled_ns) / 1e6);
        total_ms.push_back(t.TotalMs(/*modeled=*/true));
      }
      std::printf("%4s %6zu | %9.2f %9.2f | %11.2f %12.2f | %9.2f\n",
                  workloads::Name(kind).c_str(), block_size, Mean(rwset_ms),
                  Mean(proof_ms), Mean(wall_ms), Mean(modeled_ms), Mean(total_ms));
    }
    std::printf("------------+---------------------+--------------------------+----------\n");
  }
  return 0;
}
