// Ablation — why the stateless (Merkle-proof-based) enclave design wins
// (paper Sec. 4.1): the naive alternative keeps the full chain state
// resident inside the enclave, so once the state outgrows the EPC every
// certification pays paging costs proportional to the state size, while the
// stateless design's enclave inputs stay proportional to the *block's*
// read/write set.
//
// Both issuers certify the same chain. IOHeavy write bursts grow the state;
// KVStore blocks are the measured workload. The EPC limit is scaled down
// (8 MB instead of 93 MB) so the crossover appears at laptop-scale state —
// at real Ethereum state sizes (hundreds of GB vs 93 MB) the effect is ~4
// orders of magnitude, which is the paper's "impractical".
#include "bench/bench_util.h"
#include "dcert/naive_enclave.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Ablation", "stateless enclave (DCert) vs naive full-state-in-enclave");
  PrintParams("EPC scaled to 8 MB; state grown via IOHeavy write bursts; "
              "measured workload: KVStore blocks of 50 txs (mean of 5)");

  sgxsim::CostModelParams scaled;
  scaled.epc_limit_bytes = 8ull << 20;

  chain::ChainConfig config;
  config.difficulty_bits = 4;
  auto registry = workloads::MakeBlockbenchRegistry(4);

  core::CertificateIssuer stateless(config, registry, scaled);
  core::NaiveCertificateIssuer naive(config, registry, scaled);
  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  workloads::AccountPool pool(100, 42);

  workloads::WorkloadGenerator::Params io_params;
  io_params.kind = workloads::Workload::kIoHeavy;
  io_params.instances_per_workload = 4;
  io_params.io_keys_per_tx = 64;
  io_params.io_key_space = 1'000'000;
  workloads::WorkloadGenerator io_gen(io_params, pool);

  workloads::WorkloadGenerator::Params kv_params;
  kv_params.kind = workloads::Workload::kKvStore;
  kv_params.instances_per_workload = 4;
  workloads::WorkloadGenerator kv_gen(kv_params, pool);

  auto mine = [&](workloads::WorkloadGenerator& gen, std::size_t txs) {
    auto block = miner.MineBlock(gen.NextBlockTxs(txs),
                                 1700000000 + miner_node.Height() * 15);
    if (!block.ok()) throw std::runtime_error(block.message());
    if (!miner_node.SubmitBlock(block.value())) throw std::runtime_error("submit");
    return std::move(block.value());
  };

  auto certify_both = [&](const chain::Block& blk) {
    auto a = stateless.ProcessBlock(blk);
    auto b = naive.ProcessBlock(blk);
    if (!a.ok() || !b.ok()) {
      throw std::runtime_error("certify: " + a.status().message() + " / " +
                               b.status().message());
    }
  };

  std::printf("%12s | %13s %13s | %13s %13s | %8s\n", "state keys",
              "stateless ms", "(enclave)", "naive ms", "(enclave)", "ratio");
  std::printf("-------------+-----------------------------+-----------------------------+---------\n");

  const int kGrowthRounds = 5;
  const int kBallastBlocksPerRound = 8;
  for (int round = 0; round <= kGrowthRounds; ++round) {
    if (round > 0) {
      // Grow the state with IOHeavy write bursts (certified by both, so the
      // recursive chains stay intact).
      for (int i = 0; i < kBallastBlocksPerRound; ++i) {
        certify_both(mine(io_gen, 50));
      }
    }

    std::vector<double> stateless_ms, stateless_encl, naive_ms, naive_encl;
    for (int i = 0; i < 5; ++i) {
      chain::Block blk = mine(kv_gen, 50);
      certify_both(blk);
      stateless_ms.push_back(stateless.LastTiming().TotalMs(true));
      stateless_encl.push_back(
          static_cast<double>(stateless.LastTiming().enclave_modeled_ns) / 1e6);
      naive_ms.push_back(naive.LastTiming().TotalMs(true));
      naive_encl.push_back(
          static_cast<double>(naive.LastTiming().enclave_modeled_ns) / 1e6);
    }
    double ratio = Mean(stateless_ms) > 0 ? Mean(naive_ms) / Mean(stateless_ms) : 0;
    std::printf("%12zu | %13.2f %13.2f | %13.2f %13.2f | %7.2fx\n",
                miner_node.State().Size(), Mean(stateless_ms),
                Mean(stateless_encl), Mean(naive_ms), Mean(naive_encl), ratio);
  }

  std::printf(
      "\nthe stateless enclave's cost is flat in the chain-state size; the\n"
      "naive design degrades once the resident state exceeds the EPC.\n"
      "(state bytes are modelled at ~256 B/key; see naive_enclave.h.)\n");
  return 0;
}
