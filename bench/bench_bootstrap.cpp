// Figure 7 — bootstrapping cost of a traditional light client vs DCert's
// superlight client, as the chain grows.
//  7a: storage size (light = all headers, superlight = latest header + cert)
//  7b: chain validation time for a freshly joining client.
//
// Scale note (EXPERIMENTS.md): the paper plots up to 100k blocks; here the
// recursive certificate chain is built for 10k real blocks and the light-
// client series extends to the same range. The trends — linear vs constant —
// are scale-independent, and the table extrapolates the light client's
// storage to Ethereum scale for reference.
#include "bench/bench_util.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Fig. 7", "bootstrapping cost: light client vs superlight client");
  PrintParams("chain length 2k..10k blocks (empty blocks, difficulty 4), "
              "one certificate per block (recursive)");

  Rig rig(workloads::Workload::kDoNothing, /*accounts=*/2, /*instances=*/1);
  chain::LightClient light(rig.miner_node->GetBlock(0).header);

  const std::vector<std::uint64_t> checkpoints = {2000, 4000, 6000, 8000, 10000};

  std::printf("%8s | %15s %18s | %16s %19s\n", "blocks", "light bytes",
              "light validate ms", "superlight bytes", "superlight val. ms");
  std::printf("---------+------------------------------------+-------------------------------------\n");

  chain::Block latest;
  core::BlockCertificate latest_cert;
  std::uint64_t mined = 0;
  for (std::uint64_t checkpoint : checkpoints) {
    while (mined < checkpoint) {
      chain::Block blk = rig.MineNext(0);
      auto cert = rig.ci->ProcessBlock(blk);
      if (!cert.ok()) {
        std::fprintf(stderr, "cert failed at %llu: %s\n",
                     static_cast<unsigned long long>(mined),
                     cert.message().c_str());
        return 1;
      }
      if (!light.SyncHeader(blk.header).ok()) return 1;
      latest = blk;
      latest_cert = cert.value();
      ++mined;
    }

    // 7b left series: full header-chain validation (what a joining light
    // client must do), averaged over 3 runs.
    std::vector<double> light_ms;
    for (int r = 0; r < 3; ++r) {
      Stopwatch w;
      if (!light.ValidateAll().ok()) return 1;
      light_ms.push_back(w.ElapsedMs());
    }

    // 7b right series: a fresh superlight client validates the single
    // (header, certificate) pair. Averaged over 20 runs.
    std::vector<double> super_ms;
    std::size_t super_bytes = 0;
    for (int r = 0; r < 20; ++r) {
      core::SuperlightClient fresh(core::ExpectedEnclaveMeasurement());
      Stopwatch w;
      if (!fresh.ValidateAndAccept(latest.header, latest_cert).ok()) return 1;
      super_ms.push_back(w.ElapsedMs());
      super_bytes = fresh.StorageBytes();
    }

    std::printf("%8llu | %15zu %18.2f | %16zu %19.3f\n",
                static_cast<unsigned long long>(checkpoint), light.StorageBytes(),
                Mean(light_ms), super_bytes, Mean(super_ms));
  }

  std::printf(
      "\nextrapolation: at Ethereum scale (15.6M blocks, Sep'22) the light\n"
      "client stores %.2f GB of headers; the superlight client still stores\n"
      "the same constant few KB.\n",
      15.6e6 * static_cast<double>(chain::HeaderByteSize()) / 1e9);
  return 0;
}
