// Figure 8 — block certificate construction time per Blockbench workload,
// broken into the untrusted pre-processing outside the enclave (read/write
// set generation, Merkle proof generation) and the trusted program inside.
// The "native" column runs the identical trusted code without the SGX cost
// model; "enclave" applies the modelled SGX overheads (transitions, MEE
// slowdown, EPC paging) — the paper's observation is that the enclave costs
// at most ~1.8x native.
#include "bench/bench_util.h"
#include "query/historical_index.h"

using namespace dcert;
using namespace dcert::bench;

int main(int argc, char** argv) {
  const std::string json_path = ParseJsonPath(argc, argv);
  const MetricsDelta metrics_delta;
  PrintHeader("Fig. 8", "certificate construction time per workload (breakdown)");
  PrintParams("block size 100 txs, 20 blocks per workload, 100 sender accounts; "
              "CPU: 256 hash iterations/tx, IO: 32 keys/tx, KV: 500 tuples");

  std::printf("%4s | %9s %9s | %11s %12s %7s | %9s\n", "wl", "rw-set", "proofs",
              "in-encl raw", "in-encl SGX", "factor", "total ms");
  std::printf("-----+---------------------+----------------------------------+----------\n");

  std::vector<std::string> json_rows;
  for (workloads::Workload kind : workloads::kAllWorkloads) {
    Rig rig(kind, /*accounts=*/100, /*instances=*/4);
    const int kBlocks = 20;
    const std::size_t kBlockSize = 100;

    std::vector<double> rwset_ms, proof_ms, wall_ms, modeled_ms, total_ms;
    for (int i = 0; i < kBlocks; ++i) {
      chain::Block blk = rig.MineNext(kBlockSize);
      auto cert = rig.ci->ProcessBlock(blk);
      if (!cert.ok()) {
        std::fprintf(stderr, "%s cert failed: %s\n",
                     workloads::Name(kind).c_str(), cert.message().c_str());
        return 1;
      }
      const core::CertTiming& t = rig.ci->LastTiming();
      rwset_ms.push_back(static_cast<double>(t.rwset_ns) / 1e6);
      proof_ms.push_back(static_cast<double>(t.proof_ns) / 1e6);
      wall_ms.push_back(static_cast<double>(t.enclave_wall_ns) / 1e6);
      modeled_ms.push_back(static_cast<double>(t.enclave_modeled_ns) / 1e6);
      total_ms.push_back(t.TotalMs(/*modeled=*/true));
    }
    double factor = Mean(wall_ms) > 0 ? Mean(modeled_ms) / Mean(wall_ms) : 0.0;
    std::printf("%4s | %9.2f %9.2f | %11.2f %12.2f %6.2fx | %9.2f\n",
                workloads::Name(kind).c_str(), Mean(rwset_ms), Mean(proof_ms),
                Mean(wall_ms), Mean(modeled_ms), factor, Mean(total_ms));

    JsonObject row;
    row.Put("workload", workloads::Name(kind))
        .PutRaw("rwset_ms", JsonStats(rwset_ms))
        .PutRaw("proof_ms", JsonStats(proof_ms))
        .PutRaw("enclave_raw_ms", JsonStats(wall_ms))
        .PutRaw("enclave_sgx_ms", JsonStats(modeled_ms))
        .PutRaw("total_ms", JsonStats(total_ms))
        .Put("sgx_factor", factor);
    json_rows.push_back(row.Str());
  }

  // Index-attached leg (Alg. 5): certify a historical index alongside each
  // block so the ci.stage.index_aux_ns stage sees real traffic — without it
  // that histogram ships as a dead count:0 entry in the artifacts.
  std::vector<double> aux_ms, hier_total_ms;
  {
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/100, /*instances=*/4);
    rig.ci->AttachIndex(std::make_shared<query::HistoricalIndex>("hist"));
    const int kHierBlocks = 10;
    for (int i = 0; i < kHierBlocks; ++i) {
      chain::Block blk = rig.MineNext(100);
      auto certs = rig.ci->ProcessBlockHierarchical(blk);
      if (!certs.ok()) {
        std::fprintf(stderr, "hierarchical cert failed: %s\n",
                     certs.message().c_str());
        return 1;
      }
      const core::CertTiming& t = rig.ci->LastTiming();
      aux_ms.push_back(static_cast<double>(t.index_aux_ns) / 1e6);
      hier_total_ms.push_back(t.TotalMs(/*modeled=*/true));
    }
    std::printf(
        "\nhierarchical leg (KV + historical index, %d blocks): "
        "index aux %.2f ms/blk, total %.2f ms/blk\n",
        kHierBlocks, Mean(aux_ms), Mean(hier_total_ms));
  }

  if (!json_path.empty()) {
    JsonObject doc;
    JsonObject hier;
    hier.Put("workload", "KV+hist")
        .Put("blocks", 10)
        .PutRaw("index_aux_ms", JsonStats(aux_ms))
        .PutRaw("total_ms", JsonStats(hier_total_ms));
    doc.Put("bench", "bench_cert_construction")
        .Put("figure", "Fig. 8")
        .Put("block_txs", 100)
        .Put("blocks_per_workload", 20)
        .PutRaw("meta", JsonRunMeta())
        .PutRaw("metrics", metrics_delta.Json())
        .PutRaw("workloads", JsonArray(json_rows))
        .PutRaw("hierarchical", hier.Str());
    WriteJsonFile(json_path, doc.Str());
  }

  std::printf(
      "\ncolumns: rw-set = tx execution + read/write set generation (outside);\n"
      "proofs = Merkle update-proof generation (outside); in-encl raw = trusted\n"
      "program wall time; in-encl SGX = with modelled enclave overheads;\n"
      "factor = SGX/native for the in-enclave part (paper: at most ~1.8x).\n");
  return 0;
}
