// On-demand index activation cost (the paper's versatility claim, Sec. 5):
// attaching a NEW authenticated index at chain height H requires certifying
// its update for every historical block — one lightweight index Ecall per
// block — after which it is as cheap to maintain as a genesis-attached index.
// This bench measures activation cost vs. chain height for both index
// families.
#include "bench/bench_util.h"
#include "query/historical_index.h"
#include "query/keyword_index.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Backfill", "on-demand index activation cost vs chain height");
  PrintParams("KVStore blocks of 20 txs; index attached after the chain exists; "
              "one index Ecall per historical block");

  std::printf("%8s | %16s %10s | %16s %10s\n", "height", "historical ms",
              "ms/block", "keyword ms", "ms/block");
  std::printf("---------+-----------------------------+-----------------------------\n");

  for (std::uint64_t height : {25u, 50u, 100u, 200u}) {
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/32, /*instances=*/1,
            sgxsim::CostModelParams{}, /*difficulty=*/2, /*kv_keys=*/100);
    for (std::uint64_t h = 0; h < height; ++h) {
      chain::Block blk = rig.MineNext(20);
      auto cert = rig.ci->ProcessBlock(blk);
      if (!cert.ok()) {
        std::fprintf(stderr, "cert failed: %s\n", cert.message().c_str());
        return 1;
      }
    }

    Stopwatch hist_watch;
    auto hist_cert = rig.ci->AttachIndexWithBackfill(
        std::make_shared<query::HistoricalIndex>("hist-late"));
    double hist_ms = hist_watch.ElapsedMs();
    if (!hist_cert.ok()) {
      std::fprintf(stderr, "historical backfill failed: %s\n",
                   hist_cert.message().c_str());
      return 1;
    }

    Stopwatch kw_watch;
    auto kw_cert = rig.ci->AttachIndexWithBackfill(
        std::make_shared<query::KeywordIndex>("kw-late"));
    double kw_ms = kw_watch.ElapsedMs();
    if (!kw_cert.ok()) {
      std::fprintf(stderr, "keyword backfill failed: %s\n",
                   kw_cert.message().c_str());
      return 1;
    }

    std::printf("%8llu | %16.1f %10.2f | %16.1f %10.2f\n",
                static_cast<unsigned long long>(height), hist_ms,
                hist_ms / static_cast<double>(height), kw_ms,
                kw_ms / static_cast<double>(height));
  }

  std::printf(
      "\nactivation cost is linear in the chain height with a small per-block\n"
      "constant (one index Ecall); afterwards the index updates incrementally\n"
      "like any genesis-attached index.\n");
  return 0;
}
