// Figure 11 — verifiable historical-query performance: DCert's two-level
// index (MPT + MB-tree) vs the LineageChain-style baseline (MPT + auth.
// skip list), varying the queried window's distance from the latest block.
//  11a analogue: query latency (SP processing + client verification)
//  11b analogue: integrity proof size.
// Expected shape: the skip-list baseline degrades with distance (it must
// seek from the newest version); the MB-tree descends from the root and
// stays flat — DCert wins at every distance, more so at larger ones.
#include "bench/bench_util.h"
#include "query/historical_index.h"
#include "query/lineage_index.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Fig. 11",
              "historical queries: DCert (MB-tree) vs LineageChain (skip list)");

  const std::uint64_t kBlocks = 1000;
  const std::size_t kPutsPerBlock = 6;
  const std::uint64_t kAccounts = 50;
  const std::uint64_t kWindowBlocks = 20;
  PrintParams("1000-block history, 6 put txs/block over 50 accounts "
              "(~120 versions each); window 20 blocks; certified via "
              "hierarchical certificates");

  Rig rig(workloads::Workload::kKvStore, /*accounts=*/16, /*instances=*/1,
          sgxsim::CostModelParams{}, /*difficulty=*/2, /*kv_keys=*/kAccounts);
  auto dcert_index = std::make_shared<query::HistoricalIndex>();
  auto lineage_index = std::make_shared<query::LineageIndex>();
  rig.ci->AttachIndex(dcert_index);
  rig.ci->AttachIndex(lineage_index);

  std::printf("building and certifying the history");
  Rng value_rng(7);
  std::uint64_t kv_contract = workloads::ContractId(workloads::Workload::kKvStore, 0);
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    std::vector<chain::Transaction> txs;
    for (std::size_t i = 0; i < kPutsPerBlock; ++i) {
      std::uint64_t account = value_rng.NextBelow(kAccounts);
      std::uint64_t value = value_rng.NextU64() | 1;
      txs.push_back(rig.pool->MakeTx(value_rng.NextBelow(rig.pool->size()),
                                     kv_contract, {0, account, value}));
    }
    chain::Block blk = rig.MineTxs(std::move(txs));
    auto certs = rig.ci->ProcessBlockHierarchical(blk);
    if (!certs.ok()) {
      std::fprintf(stderr, "\ncertification failed: %s\n", certs.message().c_str());
      return 1;
    }
    if (b % 100 == 99) {
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf(" done\n\n");

  Hash256 dcert_digest = dcert_index->CurrentDigest();
  Hash256 lineage_digest = lineage_index->CurrentDigest();

  std::printf("%9s | %11s %11s %11s | %11s %11s %11s\n", "distance",
              "DCert ms", "DCert vfy", "DCert VO B", "Lineage ms", "Lin. vfy",
              "Lin. VO B");
  std::printf("----------+-------------------------------------+-------------------------------------\n");

  const std::uint64_t kTrialsPerPoint = 20;
  Rng pick(99);
  for (std::uint64_t distance : {100u, 200u, 400u, 800u, 950u}) {
    std::uint64_t to_height = kBlocks - distance;
    std::uint64_t from_height = to_height - kWindowBlocks + 1;

    std::vector<double> d_query, d_verify, d_size, l_query, l_verify, l_size;
    for (std::uint64_t t = 0; t < kTrialsPerPoint; ++t) {
      std::uint64_t account = pick.NextBelow(kAccounts);

      Stopwatch w1;
      auto d_proof = dcert_index->Query(account, from_height, to_height);
      d_query.push_back(w1.ElapsedMs());
      d_size.push_back(static_cast<double>(d_proof.ByteSize()));
      Stopwatch w2;
      auto d_result = query::HistoricalIndex::VerifyQuery(
          dcert_digest, account, from_height, to_height, d_proof);
      d_verify.push_back(w2.ElapsedMs());
      if (!d_result.ok()) {
        std::fprintf(stderr, "DCert verify failed: %s\n",
                     d_result.message().c_str());
        return 1;
      }

      Stopwatch w3;
      auto l_proof = lineage_index->Query(account, from_height, to_height);
      l_query.push_back(w3.ElapsedMs());
      l_size.push_back(static_cast<double>(l_proof.ByteSize()));
      Stopwatch w4;
      auto l_result = query::LineageIndex::VerifyQuery(
          lineage_digest, account, from_height, to_height, l_proof);
      l_verify.push_back(w4.ElapsedMs());
      if (!l_result.ok()) {
        std::fprintf(stderr, "Lineage verify failed: %s\n",
                     l_result.message().c_str());
        return 1;
      }
      if (d_result.value().size() != l_result.value().size()) {
        std::fprintf(stderr, "result mismatch between indexes!\n");
        return 1;
      }
    }
    std::printf("%9llu | %11.3f %11.3f %11.0f | %11.3f %11.3f %11.0f\n",
                static_cast<unsigned long long>(distance), Mean(d_query),
                Mean(d_verify), Mean(d_size), Mean(l_query), Mean(l_verify),
                Mean(l_size));
  }

  std::printf(
      "\ncolumns: ms = SP query+proof generation; vfy = client verification;\n"
      "VO B = proof (verification object) size in bytes. distance = blocks\n"
      "between the window and the chain tip.\n");
  return 0;
}
