// Micro-benchmarks (google-benchmark) for the primitives underpinning the
// figure benchmarks: hashing, signatures, the authenticated structures, and
// the simulated Ecall dispatch. Useful for regression-tracking the constants
// behind Figs. 7-11.
#include <benchmark/benchmark.h>

#include "chain/state.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "mht/mbtree.h"
#include "mht/merkle_tree.h"
#include "mht/mpt.h"
#include "mht/skiplist.h"
#include "mht/smt.h"
#include "sgxsim/enclave.h"

namespace {

using namespace dcert;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
  auto sk = crypto::SecretKey::FromSeed(StrBytes("bench"));
  Hash256 digest = crypto::Sha256::Digest(StrBytes("message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.Sign(digest));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  auto sk = crypto::SecretKey::FromSeed(StrBytes("bench"));
  Hash256 digest = crypto::Sha256::Digest(StrBytes("message"));
  auto sig = sk.Sign(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Verify(sk.Public(), digest, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

mht::SparseMerkleTree BuildSmt(int n) {
  mht::SparseMerkleTree smt;
  for (int i = 0; i < n; ++i) {
    Hash256 key = crypto::Sha256::Digest(StrBytes("key" + std::to_string(i)));
    smt.Update(key, crypto::Sha256::Digest(StrBytes("val" + std::to_string(i))));
  }
  return smt;
}

void BM_SmtUpdate(benchmark::State& state) {
  mht::SparseMerkleTree smt = BuildSmt(static_cast<int>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    Hash256 key = crypto::Sha256::Digest(StrBytes("key" + std::to_string(i % state.range(0))));
    smt.Update(key, crypto::Sha256::Digest(StrBytes("new" + std::to_string(i))));
    ++i;
  }
}
BENCHMARK(BM_SmtUpdate)->Arg(1000)->Arg(10000);

void BM_SmtMultiproof(benchmark::State& state) {
  mht::SparseMerkleTree smt = BuildSmt(10000);
  std::vector<Hash256> keys;
  for (int i = 0; i < state.range(0); ++i) {
    keys.push_back(crypto::Sha256::Digest(StrBytes("key" + std::to_string(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt.ProveKeys(keys));
  }
}
BENCHMARK(BM_SmtMultiproof)->Arg(10)->Arg(100);

void BM_SmtStatelessUpdate(benchmark::State& state) {
  // The enclave's verify+update path over a proof of `n` keys.
  mht::SparseMerkleTree smt = BuildSmt(10000);
  std::vector<Hash256> keys;
  std::map<Hash256, Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    Hash256 key = crypto::Sha256::Digest(StrBytes("key" + std::to_string(i)));
    keys.push_back(key);
    leaves[key] = crypto::Sha256::Digest(StrBytes("val" + std::to_string(i)));
  }
  mht::SmtMultiProof proof = smt.ProveKeys(keys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mht::SparseMerkleTree::ComputeRootFromProof(proof, leaves));
  }
}
BENCHMARK(BM_SmtStatelessUpdate)->Arg(10)->Arg(100);

void BM_MbTreeAppend(benchmark::State& state) {
  mht::MbTree tree;
  std::uint64_t k = 1;
  for (auto _ : state) {
    tree.Insert(k++, StrBytes("value"));
  }
}
BENCHMARK(BM_MbTreeAppend);

void BM_MbTreeRangeQuery(benchmark::State& state) {
  mht::MbTree tree;
  for (std::uint64_t k = 1; k <= 10000; ++k) tree.Insert(k, StrBytes("v"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeQueryWithProof(5000, 5050));
  }
}
BENCHMARK(BM_MbTreeRangeQuery);

void BM_SkipListQueryNear(benchmark::State& state) {
  mht::AuthSkipList list;
  for (std::uint64_t t = 1; t <= 10000; ++t) list.Append(t, StrBytes("v"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.QueryWithProof(9900, 9950));
  }
}
BENCHMARK(BM_SkipListQueryNear);

void BM_SkipListQueryFar(benchmark::State& state) {
  mht::AuthSkipList list;
  for (std::uint64_t t = 1; t <= 10000; ++t) list.Append(t, StrBytes("v"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.QueryWithProof(100, 150));
  }
}
BENCHMARK(BM_SkipListQueryFar);

void BM_MptPut(benchmark::State& state) {
  mht::MptTrie trie;
  int i = 0;
  for (auto _ : state) {
    Hash256 key = crypto::Sha256::Digest(StrBytes("acct" + std::to_string(i++)));
    trie.Put(key, crypto::Sha256::Digest(StrBytes("root")));
  }
}
BENCHMARK(BM_MptPut);

void BM_MerkleTreeBuild(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256::Digest(StrBytes("tx" + std::to_string(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mht::MerkleTree::ComputeRoot(leaves));
  }
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(100)->Arg(1000);

void BM_EcallDispatch(benchmark::State& state) {
  sgxsim::Enclave enclave("bench", "1.0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.Ecall(64, [] { return 1; }));
  }
}
BENCHMARK(BM_EcallDispatch);

}  // namespace

BENCHMARK_MAIN();
