// Micro-benchmarks for the primitives underpinning the figure benchmarks:
// SHA-256 backends (scalar / SHA-NI / AVX2 multi-buffer), batched vs single
// Schnorr verification, and the batched tree-hashing paths (Merkle build,
// SMT UpdateBatch). Each A/B section cross-checks that both variants produce
// identical outputs before reporting the speedup, so the numbers can never
// drift away from a correctness regression silently.
#include <cinttypes>
#include <map>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"
#include "crypto/signature.h"
#include "mht/merkle_tree.h"
#include "mht/node_hash.h"
#include "mht/smt.h"
#include "sgxsim/enclave.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

/// Wall time of `fn` repeated until ~`min_ms` of run time, in ns per call.
template <typename Fn>
double NsPerCall(Fn&& fn, double min_ms = 120.0) {
  std::uint64_t calls = 0;
  Stopwatch sw;
  do {
    fn();
    ++calls;
  } while (sw.ElapsedMs() < min_ms);
  return static_cast<double>(sw.ElapsedNs()) / static_cast<double>(calls);
}

/// Minimum ns/call over `reps` timing windows. The host is a shared vCPU, so
/// a single window can absorb a preemption; the minimum estimates the
/// undisturbed cost (standard practice for noisy machines).
template <typename Fn>
double MinNsPerCall(Fn&& fn, int reps = 3, double min_ms = 60.0) {
  double best = NsPerCall(fn, min_ms);
  for (int r = 1; r < reps; ++r) best = std::min(best, NsPerCall(fn, min_ms));
  return best;
}

/// Min-of-windows for an A/B pair, with the windows interleaved
/// (A,B,A,B,...) rather than all-A-then-all-B, so a contention episode that
/// spans several windows lands on both variants instead of distorting the
/// ratio in whichever direction it happened to fall.
template <typename FnA, typename FnB>
std::pair<double, double> MinNsPerCallAb(FnA&& a, FnB&& b, int reps = 3,
                                         double min_ms = 60.0) {
  double best_a = NsPerCall(a, min_ms);
  double best_b = NsPerCall(b, min_ms);
  for (int r = 1; r < reps; ++r) {
    best_a = std::min(best_a, NsPerCall(a, min_ms));
    best_b = std::min(best_b, NsPerCall(b, min_ms));
  }
  return {best_a, best_b};
}

struct BackendRow {
  std::string name;
  bool supported = false;
  double tree_mhash_s = 0;   // 65-byte pre-padded tree messages, batched
  double tree_mb_s = 0;
  double bulk_mb_s = 0;      // 1 KiB messages, batched
};

/// Batched hashing throughput of one backend over the tree-node shape
/// (65-byte two-block messages) and a bulk shape (1 KiB).
BackendRow MeasureBackend(crypto::ShaBackend backend) {
  BackendRow row;
  row.name = crypto::ShaBackendName(backend);
  row.supported = crypto::ShaBackendSupported(backend);
  if (!row.supported) return row;

  constexpr std::size_t kTreeJobs = 4096;
  constexpr std::size_t kTreeMsg = 65;
  std::vector<std::uint8_t> tree_data(kTreeJobs * kTreeMsg, 0xa5);
  std::vector<Hash256> out(kTreeJobs);
  std::vector<crypto::HashJob> jobs(kTreeJobs);
  for (std::size_t i = 0; i < kTreeJobs; ++i) {
    jobs[i] = {tree_data.data() + i * kTreeMsg, kTreeMsg, &out[i]};
  }
  double ns = NsPerCall([&] {
    crypto::internal::HashManyWith(backend, jobs.data(), jobs.size());
  });
  row.tree_mhash_s = kTreeJobs / (ns / 1e3);  // ns/batch -> Mhash/s
  row.tree_mb_s = kTreeJobs * kTreeMsg * 1e3 / ns;

  constexpr std::size_t kBulkJobs = 256;
  constexpr std::size_t kBulkMsg = 1024;
  std::vector<std::uint8_t> bulk_data(kBulkJobs * kBulkMsg, 0x5a);
  std::vector<Hash256> bulk_out(kBulkJobs);
  std::vector<crypto::HashJob> bulk_jobs(kBulkJobs);
  for (std::size_t i = 0; i < kBulkJobs; ++i) {
    bulk_jobs[i] = {bulk_data.data() + i * kBulkMsg, kBulkMsg, &bulk_out[i]};
  }
  double bulk_ns = NsPerCall([&] {
    crypto::internal::HashManyWith(backend, bulk_jobs.data(), bulk_jobs.size());
  });
  row.bulk_mb_s = kBulkJobs * kBulkMsg * 1e3 / bulk_ns;
  return row;
}

Hash256 KeyOf(int i) {
  return crypto::Sha256::Digest(StrBytes("key" + std::to_string(i)));
}
Hash256 ValOf(int i) {
  return crypto::Sha256::Digest(StrBytes("val" + std::to_string(i)));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ParseJsonPath(argc, argv);
  PrintHeader("primitives", "hashing / signing / tree-batching constants");
  PrintParams(std::string("active backends: stream=") +
              crypto::ShaBackendName(crypto::ActiveStreamBackend()) +
              " batch=" + crypto::ShaBackendName(crypto::ActiveBatchBackend()));

  // --- SHA-256: streaming baseline -------------------------------------
  Bytes msg65(65, 0xa5);
  double stream_ns = NsPerCall([&] { crypto::Sha256::Digest(msg65); });
  double stream_mhash = 1e3 / stream_ns;
  std::printf("\nSHA-256 streaming (Sha256::Digest, 65-byte msgs): %.2f Mhash/s\n",
              stream_mhash);

  // --- SHA-256: per-backend batched throughput -------------------------
  std::printf("\n%-8s | %10s %10s | %10s\n", "backend", "tree Mh/s", "tree MB/s",
              "1KiB MB/s");
  std::printf("---------+-----------------------+-----------\n");
  std::vector<BackendRow> backends;
  for (crypto::ShaBackend b :
       {crypto::ShaBackend::kScalar, crypto::ShaBackend::kShaNi,
        crypto::ShaBackend::kAvx2}) {
    BackendRow row = MeasureBackend(b);
    if (row.supported) {
      std::printf("%-8s | %10.2f %10.1f | %10.1f\n", row.name.c_str(),
                  row.tree_mhash_s, row.tree_mb_s, row.bulk_mb_s);
    } else {
      std::printf("%-8s | %21s | %10s\n", row.name.c_str(), "(unsupported)", "-");
    }
    backends.push_back(std::move(row));
  }

  // --- Tree hashing: per-node streaming vs batched multi-buffer --------
  constexpr std::size_t kPairs = 4096;
  std::vector<Hash256> lefts(kPairs), rights(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    lefts[i] = KeyOf(static_cast<int>(i));
    rights[i] = ValOf(static_cast<int>(i));
  }
  std::vector<Hash256> ref(kPairs), batched(kPairs);
  std::vector<mht::NodePairJob> pair_jobs(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    pair_jobs[i] = {&lefts[i], &rights[i], &batched[i]};
  }
  auto [pernode_ns, batch_ns] = MinNsPerCallAb(
      [&] {
        for (std::size_t i = 0; i < kPairs; ++i) {
          ref[i] =
              mht::TaggedDigest2(mht::NodeTag::kSmtInternal, lefts[i], rights[i]);
        }
      },
      [&] {
        mht::TaggedDigest2Many(mht::NodeTag::kSmtInternal, pair_jobs.data(),
                               kPairs);
      });
  if (ref != batched) {
    std::fprintf(stderr, "FATAL: batched tree hashes diverge from streaming\n");
    return 1;
  }
  double tree_speedup = pernode_ns / batch_ns;
  std::printf("\nsibling-pair hashing (%zu pairs): per-node %.0f ns/hash, "
              "batched %.0f ns/hash -> %.2fx\n",
              kPairs, pernode_ns / kPairs, batch_ns / kPairs, tree_speedup);

  // --- Merkle tree build (batched level construction) ------------------
  std::vector<Hash256> leaves;
  for (int i = 0; i < 4096; ++i) leaves.push_back(KeyOf(i));
  // Reference: the pre-batching per-node construction, kept bench-local.
  auto legacy_merkle = [&]() {
    std::vector<Hash256> level;
    level.reserve(leaves.size());
    for (const Hash256& h : leaves) {
      level.push_back(mht::TaggedDigest(mht::NodeTag::kMerkleLeaf, h.View()));
    }
    while (level.size() > 1) {
      std::vector<Hash256> next;
      next.reserve((level.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(
            mht::TaggedDigest2(mht::NodeTag::kMerkleInternal, level[i], level[i + 1]));
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    return level.front();
  };
  auto [merkle_legacy_ns, merkle_ns] = MinNsPerCallAb(
      legacy_merkle, [&] { mht::MerkleTree::ComputeRoot(leaves); });
  if (legacy_merkle() != mht::MerkleTree::ComputeRoot(leaves)) {
    std::fprintf(stderr, "FATAL: batched Merkle root diverges\n");
    return 1;
  }
  double merkle_speedup = merkle_legacy_ns / merkle_ns;
  std::printf("Merkle build (4096 leaves): legacy %.2f ms, batched %.2f ms -> %.2fx\n",
              merkle_legacy_ns / 1e6, merkle_ns / 1e6, merkle_speedup);

  // --- SMT UpdateBatch: kPerNode vs kBatched ---------------------------
  constexpr int kSmtBase = 10000;
  constexpr int kSmtBatch = 1024;
  std::map<Hash256, Hash256> entries;
  for (int i = 0; i < kSmtBatch; ++i) entries[KeyOf(i)] = ValOf(i + 777);
  auto build_smt = [&] {
    mht::SparseMerkleTree smt;
    std::map<Hash256, Hash256> base;
    for (int i = 0; i < kSmtBase; ++i) base[KeyOf(i)] = ValOf(i);
    smt.UpdateBatch(base);
    return smt;
  };
  common::ThreadPool& pool = common::ThreadPool::Shared();
  mht::SparseMerkleTree smt_a = build_smt();
  mht::SparseMerkleTree smt_b = build_smt();
  auto [smt_pernode_ns, smt_batched_ns] = MinNsPerCallAb(
      [&] {
        smt_a.UpdateBatchWith(entries, pool,
                              mht::SparseMerkleTree::RehashMode::kPerNode);
      },
      [&] {
        smt_b.UpdateBatchWith(entries, pool,
                              mht::SparseMerkleTree::RehashMode::kBatched);
      },
      /*reps=*/4, /*min_ms=*/150.0);
  if (smt_a.Root() != smt_b.Root()) {
    std::fprintf(stderr, "FATAL: batched SMT root diverges from per-node\n");
    return 1;
  }
  double smt_speedup = smt_pernode_ns / smt_batched_ns;
  std::printf("SMT UpdateBatch (%d updates into %d keys): per-node %.2f ms, "
              "batched %.2f ms -> %.2fx\n",
              kSmtBatch, kSmtBase, smt_pernode_ns / 1e6, smt_batched_ns / 1e6,
              smt_speedup);

  // --- secp256k1: single vs batched verification -----------------------
  constexpr int kSigners = 4;   // an announcement flood from few validators
  constexpr int kSigs = 32;
  std::vector<crypto::SecretKey> sks;
  for (int i = 0; i < kSigners; ++i) {
    sks.push_back(crypto::SecretKey::FromSeed(StrBytes("signer" + std::to_string(i))));
  }
  std::vector<crypto::PublicKey> pks;
  std::vector<Hash256> digests;
  std::vector<crypto::Signature> sigs;
  for (int i = 0; i < kSigs; ++i) {
    const crypto::SecretKey& sk = sks[i % kSigners];
    Hash256 d = crypto::Sha256::Digest(StrBytes("announce" + std::to_string(i)));
    pks.push_back(sk.Public());
    digests.push_back(d);
    sigs.push_back(sk.Sign(d));
  }
  std::vector<crypto::VerifyJob> vjobs(kSigs);
  for (int i = 0; i < kSigs; ++i) vjobs[i] = {&pks[i], &digests[i], &sigs[i]};
  auto [single_ns, vbatch_ns] = MinNsPerCallAb(
      [&] {
        for (int i = 0; i < kSigs; ++i) {
          if (!crypto::Verify(pks[i], digests[i], sigs[i])) std::abort();
        }
      },
      [&] {
        auto ok = crypto::VerifyBatch(vjobs.data(), kSigs);
        for (bool b : ok) {
          if (!b) std::abort();
        }
      },
      /*reps=*/3, /*min_ms=*/150.0);
  double verify_speedup = single_ns / vbatch_ns;
  std::printf("Schnorr verify (%d sigs, %d signers): single %.0f us/sig, "
              "batched %.0f us/sig -> %.2fx\n",
              kSigs, kSigners, single_ns / kSigs / 1e3, vbatch_ns / kSigs / 1e3,
              verify_speedup);

  // --- legacy constants kept for regression tracking -------------------
  auto sk = crypto::SecretKey::FromSeed(StrBytes("bench"));
  Hash256 digest = crypto::Sha256::Digest(StrBytes("message"));
  double sign_ns = NsPerCall([&] { sk.Sign(digest); }, 300.0);
  sgxsim::Enclave enclave("bench", "1.0");
  double ecall_ns = NsPerCall([&] { enclave.Ecall(64, [] { return 1; }); });
  std::printf("Schnorr sign: %.0f us;  Ecall dispatch: %.0f ns\n", sign_ns / 1e3,
              ecall_ns);

  if (!json_path.empty()) {
    std::vector<std::string> backend_rows;
    for (const BackendRow& b : backends) {
      JsonObject o;
      o.Put("backend", b.name)
          .Put("supported", b.supported)
          .Put("tree_mhash_per_s", b.tree_mhash_s)
          .Put("tree_mb_per_s", b.tree_mb_s)
          .Put("bulk_mb_per_s", b.bulk_mb_s);
      backend_rows.push_back(o.Str());
    }
    JsonObject doc;
    doc.Put("bench", "bench_primitives")
        .PutRaw("meta", JsonRunMeta())
        .Put("stream_mhash_per_s", stream_mhash)
        .PutRaw("sha_backends", JsonArray(backend_rows))
        .Put("tree_hash_speedup", tree_speedup)
        .Put("tree_hash_pernode_ns", pernode_ns / kPairs)
        .Put("tree_hash_batched_ns", batch_ns / kPairs)
        .Put("merkle_build_speedup", merkle_speedup)
        .Put("smt_update_batch_speedup", smt_speedup)
        .Put("smt_pernode_ms", smt_pernode_ns / 1e6)
        .Put("smt_batched_ms", smt_batched_ns / 1e6)
        .Put("verify_batch_speedup", verify_speedup)
        .Put("verify_single_us_per_sig", single_ns / kSigs / 1e3)
        .Put("verify_batched_us_per_sig", vbatch_ns / kSigs / 1e3)
        .Put("schnorr_sign_us", sign_ns / 1e3)
        .Put("ecall_dispatch_ns", ecall_ns);
    WriteJsonFile(json_path, doc.Str());
  }
  return 0;
}
