// Recovery latency — how fast a crashed Certificate Issuer is back in
// service, as a function of chain length. Three phases are timed separately:
//
//   replay     DurableCertificateIssuer::Open over intact logs: unseal the
//              signing key, re-validate every stored (block, cert) pair via
//              AcceptBlockWithCert, rebuild the in-memory chain.
//   gap        same, but the last certificate is missing (the crash hit
//              between the block and cert appends): replay N-1 plus one
//              enclave re-certification.
//   rehydrate  SpServer::Rehydrate from the same stores: certificate
//              envelope checks + HistoricalIndex rebuild, i.e. the
//              service-side half of a restart.
//
// Emits BENCH_recovery.json with median/p95 per phase and chain length when
// invoked with `--json <path>`.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "dcert/durable_issuer.h"
#include "svc/sp_server.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

struct Paths {
  std::string dir;
  std::string blocks;
  std::string certs;
  std::string key;
};

Paths ScratchPaths() {
  Paths p;
  p.dir = "bench_recovery_scratch";
  mkdir(p.dir.c_str(), 0755);
  p.blocks = p.dir + "/blocks.log";
  p.certs = p.dir + "/certs.log";
  p.key = p.dir + "/key.sealed";
  std::remove(p.blocks.c_str());
  std::remove(p.certs.c_str());
  std::remove(p.key.c_str());
  return p;
}

core::DurableIssuerOptions Options(const Paths& p) {
  core::DurableIssuerOptions options;
  options.block_log_path = p.blocks;
  options.cert_log_path = p.certs;
  options.sealed_key_path = p.key;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ParseJsonPath(argc, argv);
  PrintHeader("Recovery", "crash-recovery latency vs chain length");
  PrintParams("kv-store blocks (4 txs, difficulty 3), 5 reps per point; "
              "replay = intact logs, gap = last cert missing (1 block "
              "re-certified), rehydrate = SP index rebuild from the stores");

  MetricsDelta delta;
  const std::vector<std::uint64_t> lengths = {50, 100, 200, 400};
  constexpr int kReps = 5;

  std::printf("%8s | %21s | %21s | %21s\n", "blocks", "replay ms (med/p95)",
              "gap ms (med/p95)", "rehydrate ms (med/p95)");
  std::printf("---------+-----------------------+-----------------------+"
              "-----------------------\n");

  std::vector<std::string> rows;
  for (std::uint64_t len : lengths) {
    Paths paths = ScratchPaths();
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/8, /*instances=*/1,
            /*cost_model=*/{}, /*difficulty=*/3, /*kv_keys=*/64);
    {
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      if (!ci.ok()) {
        std::fprintf(stderr, "open: %s\n", ci.message().c_str());
        return 1;
      }
      for (std::uint64_t i = 0; i < len; ++i) {
        chain::Block blk = rig.MineNext(4);
        if (Status st = ci.value().CertifyBlock(blk); !st) {
          std::fprintf(stderr, "certify: %s\n", st.message().c_str());
          return 1;
        }
      }
    }

    std::vector<double> replay_ms;
    for (int r = 0; r < kReps; ++r) {
      Stopwatch w;
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      const double ms = w.ElapsedMs();
      if (!ci.ok() || ci.value().Recovery().blocks_replayed != len) {
        std::fprintf(stderr, "replay rep failed\n");
        return 1;
      }
      replay_ms.push_back(ms);
    }

    std::vector<double> gap_ms;
    for (int r = 0; r < kReps; ++r) {
      {
        // Drop the tip certificate: the block-log-ahead crash shape. The
        // timed Open re-certifies it, so each rep re-truncates.
        auto certs = core::CertificateStore::Open(paths.certs);
        if (!certs.ok() || !certs.value().TruncateTo(len - 1).ok()) return 1;
      }
      Stopwatch w;
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      const double ms = w.ElapsedMs();
      if (!ci.ok() || ci.value().Recovery().blocks_recertified != 1) {
        std::fprintf(stderr, "gap rep failed\n");
        return 1;
      }
      gap_ms.push_back(ms);
    }

    std::vector<double> rehydrate_ms;
    for (int r = 0; r < kReps; ++r) {
      auto blocks = chain::BlockStore::Open(paths.blocks);
      auto certs = core::CertificateStore::Open(paths.certs);
      if (!blocks.ok() || !certs.ok()) return 1;
      svc::SpServerConfig cfg;
      cfg.workers = 2;
      svc::SpServer server(cfg);
      Stopwatch w;
      if (Status st = server.Rehydrate(blocks.value(), certs.value()); !st) {
        std::fprintf(stderr, "rehydrate: %s\n", st.message().c_str());
        return 1;
      }
      rehydrate_ms.push_back(w.ElapsedMs());
      server.Shutdown();
    }

    std::printf("%8llu | %9.1f / %9.1f | %9.1f / %9.1f | %9.1f / %9.1f\n",
                static_cast<unsigned long long>(len), Median(replay_ms),
                P95(replay_ms), Median(gap_ms), P95(gap_ms),
                Median(rehydrate_ms), P95(rehydrate_ms));

    JsonObject row;
    row.Put("blocks", len)
        .PutRaw("replay_ms", JsonStats(replay_ms))
        .PutRaw("gap_ms", JsonStats(gap_ms))
        .PutRaw("rehydrate_ms", JsonStats(rehydrate_ms));
    rows.push_back(row.Str());

    std::remove(paths.blocks.c_str());
    std::remove(paths.certs.c_str());
    std::remove(paths.key.c_str());
    rmdir(paths.dir.c_str());
  }

  std::printf("\nrecovery is linear in chain length (one certificate check "
              "per stored block);\nthe gap column adds one enclave "
              "re-certification on top of the replay.\n");

  if (!json_path.empty()) {
    JsonObject doc;
    doc.Put("bench", "recovery")
        .PutRaw("rows", JsonArray(rows))
        .PutRaw("meta", JsonRunMeta())
        .PutRaw("metrics", delta.Json());
    if (!WriteJsonFile(json_path, doc.Str())) return 1;
  }
  return 0;
}
