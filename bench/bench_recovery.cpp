// Recovery latency — how fast a crashed Certificate Issuer is back in
// service, as a function of chain length. Phases timed separately:
//
//   replay     DurableCertificateIssuer::Open over intact logs: unseal the
//              signing key, re-validate every stored (block, cert) pair via
//              AcceptBlockWithCert, rebuild the in-memory chain.
//   gap        same, but the last certificate is missing (the crash hit
//              between the block and cert appends): replay N-1 plus one
//              enclave re-certification.
//   rehydrate  SpServer::Rehydrate from the same stores: certificate
//              envelope checks + HistoricalIndex rebuild, i.e. the
//              service-side half of a restart.
//   ckpt       CheckpointedIssuer::Open through the newest certified
//              checkpoint: install the snapshot, replay only the tail above
//              it. Flat in chain length at fixed checkpoint delta.
//   bootstrap  superlight client bootstrap from (checkpoint, cert) — the
//              O(1) light-client restart, no replay at all.
//
// A second sweep varies the checkpoint interval at fixed chain length: the
// recovery tail (and therefore the time) tracks the interval, not the chain.
//
// Emits BENCH_recovery.json with median/p95 per phase when invoked with
// `--json <path>`.
//
// CI verify mode: `bench_recovery --verify [--blocks N]` builds an N-block
// chain (default 10000) under a checkpoint cadence, reopens it, and exits
// nonzero unless recovery provably went through a checkpoint (ci.ckpt.loaded
// advanced, bootstrap height > 0) and replayed at most one interval of tail.
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "ckpt/checkpointed_issuer.h"
#include "dcert/durable_issuer.h"
#include "dcert/enclave_program.h"
#include "svc/sp_server.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

struct Paths {
  std::string dir;
  std::string blocks;
  std::string certs;
  std::string key;
  std::string ckpt;
};

/// Removes every regular file in `dir` (segments, sidecars, manifests,
/// checkpoints — the log families are flat) and the directory itself.
void RemoveTree(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* e = readdir(d)) {
      if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0)
        continue;
      const std::string path = dir + "/" + e->d_name;
      struct stat st{};
      if (stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(path);
      } else {
        std::remove(path.c_str());
      }
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

Paths ScratchPaths() {
  Paths p;
  p.dir = "bench_recovery_scratch";
  RemoveTree(p.dir);
  mkdir(p.dir.c_str(), 0755);
  p.blocks = p.dir + "/blocks.log";
  p.certs = p.dir + "/certs.log";
  p.key = p.dir + "/key.sealed";
  p.ckpt = p.dir + "/ckpt";
  return p;
}

core::DurableIssuerOptions Options(const Paths& p,
                                   std::uint64_t segment_records = 0) {
  core::DurableIssuerOptions options;
  options.block_log_path = p.blocks;
  options.cert_log_path = p.certs;
  options.sealed_key_path = p.key;
  options.segment_records = segment_records;
  return options;
}

ckpt::CheckpointConfig CkptConfig(const Paths& p, std::uint64_t interval) {
  ckpt::CheckpointConfig cfg;
  cfg.dir = p.ckpt;
  cfg.interval = interval;
  cfg.keep = 2;
  return cfg;
}

/// Builds a `len`-block checkpointed chain in `paths`; returns false on error.
bool BuildCheckpointedChain(Rig& rig, const Paths& paths, std::uint64_t len,
                            std::uint64_t interval, std::uint64_t segments,
                            std::size_t txs_per_block) {
  auto ci = ckpt::CheckpointedIssuer::Open(rig.config, rig.registry,
                                           Options(paths, segments),
                                           CkptConfig(paths, interval));
  if (!ci.ok()) {
    std::fprintf(stderr, "ckpt open: %s\n", ci.message().c_str());
    return false;
  }
  for (std::uint64_t i = 0; i < len; ++i) {
    chain::Block blk = rig.MineNext(txs_per_block);
    if (Status st = ci.value().CertifyBlock(blk); !st) {
      std::fprintf(stderr, "ckpt certify: %s\n", st.message().c_str());
      return false;
    }
  }
  return true;
}

/// One timed checkpoint-recovery rep; fills tail_out with the replayed tail.
bool TimedCkptReopen(Rig& rig, const Paths& paths, std::uint64_t interval,
                     std::uint64_t segments, double* ms_out,
                     std::uint64_t* tail_out) {
  Stopwatch w;
  auto ci = ckpt::CheckpointedIssuer::Open(rig.config, rig.registry,
                                           Options(paths, segments),
                                           CkptConfig(paths, interval));
  const double ms = w.ElapsedMs();
  if (!ci.ok()) {
    std::fprintf(stderr, "ckpt reopen: %s\n", ci.message().c_str());
    return false;
  }
  if (ci.value().BootstrapHeight() == 0) {
    std::fprintf(stderr, "ckpt reopen did not bootstrap from a checkpoint\n");
    return false;
  }
  const core::RecoveryReport& rec = ci.value().Durable().Recovery();
  *ms_out = ms;
  *tail_out = rec.blocks_replayed + rec.blocks_recertified;
  return true;
}

/// One timed superlight bootstrap from the newest checkpoint on disk.
bool TimedSuperlightBootstrap(const Paths& paths, double* ms_out,
                              std::size_t* bytes_out) {
  auto store = ckpt::CheckpointStore::Open(paths.ckpt);
  if (!store.ok()) return false;
  auto latest = store.value().LoadLatestValid(~std::uint64_t{0},
                                              core::ExpectedEnclaveMeasurement());
  if (!latest.ok() || !latest.value().has_value()) {
    std::fprintf(stderr, "no valid checkpoint for superlight bootstrap\n");
    return false;
  }
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  Stopwatch w;
  if (Status st = ckpt::BootstrapSuperlight(client, *latest.value()); !st) {
    std::fprintf(stderr, "superlight bootstrap: %s\n", st.message().c_str());
    return false;
  }
  *ms_out = w.ElapsedMs();
  *bytes_out = client.StorageBytes();
  return true;
}

/// CI verify mode (see file comment). Returns the process exit code.
int VerifyMode(std::uint64_t blocks) {
  constexpr std::uint64_t kInterval = 64;
  constexpr std::uint64_t kSegments = 256;
  std::printf("verify: building %llu-block chain, checkpoint interval %llu\n",
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(kInterval));
  Paths paths = ScratchPaths();
  Rig rig(workloads::Workload::kKvStore, /*accounts=*/8, /*instances=*/1,
          /*cost_model=*/{}, /*difficulty=*/2, /*kv_keys=*/64);
  if (!BuildCheckpointedChain(rig, paths, blocks, kInterval, kSegments,
                              /*txs_per_block=*/1)) {
    return 1;
  }

  auto& reg = obs::MetricsRegistry::Global();
  const std::uint64_t loaded_before = reg.GetCounter("ci.ckpt.loaded")->Value();

  double ms = 0.0;
  std::uint64_t tail = 0;
  if (!TimedCkptReopen(rig, paths, kInterval, kSegments, &ms, &tail)) return 1;
  const std::uint64_t loaded_after = reg.GetCounter("ci.ckpt.loaded")->Value();

  double boot_ms = 0.0;
  std::size_t boot_bytes = 0;
  if (!TimedSuperlightBootstrap(paths, &boot_ms, &boot_bytes)) return 1;

  std::printf("verify: recovered %llu-block chain in %.1f ms, tail %llu, "
              "checkpoints loaded %llu; superlight bootstrap %.2f ms "
              "(%zu bytes)\n",
              static_cast<unsigned long long>(blocks), ms,
              static_cast<unsigned long long>(tail),
              static_cast<unsigned long long>(loaded_after - loaded_before),
              boot_ms, boot_bytes);

  int rc = 0;
  if (loaded_after <= loaded_before) {
    std::fprintf(stderr, "FAIL: ci.ckpt.loaded did not advance — recovery "
                         "did not go through a checkpoint\n");
    rc = 1;
  }
  if (tail > kInterval) {
    std::fprintf(stderr, "FAIL: replayed tail %llu exceeds the checkpoint "
                         "interval %llu — recovery was not tail-only\n",
                 static_cast<unsigned long long>(tail),
                 static_cast<unsigned long long>(kInterval));
    rc = 1;
  }
  RemoveTree(paths.dir);
  if (rc == 0) std::printf("verify: OK (tail-only replay confirmed)\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t verify_blocks = 10000;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--verify") verify = true;
    if (std::string(argv[i]) == "--blocks" && i + 1 < argc) {
      verify_blocks = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (verify) return VerifyMode(verify_blocks);

  const std::string json_path = ParseJsonPath(argc, argv);
  PrintHeader("Recovery", "crash-recovery latency vs chain length");
  PrintParams("kv-store blocks (4 txs, difficulty 3), 5 reps per point; "
              "replay = intact logs, gap = last cert missing (1 block "
              "re-certified), rehydrate = SP index rebuild from the stores; "
              "ckpt = recovery through a certified checkpoint (interval 30), "
              "bootstrap = superlight client restart from (checkpoint, cert)");

  MetricsDelta delta;
  const std::vector<std::uint64_t> lengths = {50, 100, 200, 400};
  constexpr int kReps = 5;
  constexpr std::uint64_t kInterval = 30;
  constexpr std::uint64_t kSegments = 32;

  std::printf("%8s | %21s | %21s | %21s\n", "blocks", "replay ms (med/p95)",
              "gap ms (med/p95)", "rehydrate ms (med/p95)");
  std::printf("---------+-----------------------+-----------------------+"
              "-----------------------\n");

  std::vector<std::string> rows;
  for (std::uint64_t len : lengths) {
    Paths paths = ScratchPaths();
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/8, /*instances=*/1,
            /*cost_model=*/{}, /*difficulty=*/3, /*kv_keys=*/64);
    {
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      if (!ci.ok()) {
        std::fprintf(stderr, "open: %s\n", ci.message().c_str());
        return 1;
      }
      for (std::uint64_t i = 0; i < len; ++i) {
        chain::Block blk = rig.MineNext(4);
        if (Status st = ci.value().CertifyBlock(blk); !st) {
          std::fprintf(stderr, "certify: %s\n", st.message().c_str());
          return 1;
        }
      }
    }

    std::vector<double> replay_ms;
    for (int r = 0; r < kReps; ++r) {
      Stopwatch w;
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      const double ms = w.ElapsedMs();
      if (!ci.ok() || ci.value().Recovery().blocks_replayed != len) {
        std::fprintf(stderr, "replay rep failed\n");
        return 1;
      }
      replay_ms.push_back(ms);
    }

    std::vector<double> gap_ms;
    for (int r = 0; r < kReps; ++r) {
      {
        // Drop the tip certificate: the block-log-ahead crash shape. The
        // timed Open re-certifies it, so each rep re-truncates.
        auto certs = core::CertificateStore::Open(paths.certs);
        if (!certs.ok() || !certs.value().TruncateTo(len - 1).ok()) return 1;
      }
      Stopwatch w;
      auto ci = core::DurableCertificateIssuer::Open(rig.config, rig.registry,
                                                     Options(paths));
      const double ms = w.ElapsedMs();
      if (!ci.ok() || ci.value().Recovery().blocks_recertified != 1) {
        std::fprintf(stderr, "gap rep failed\n");
        return 1;
      }
      gap_ms.push_back(ms);
    }

    std::vector<double> rehydrate_ms;
    for (int r = 0; r < kReps; ++r) {
      auto blocks = chain::BlockStore::Open(paths.blocks);
      auto certs = core::CertificateStore::Open(paths.certs);
      if (!blocks.ok() || !certs.ok()) return 1;
      svc::SpServerConfig cfg;
      cfg.workers = 2;
      svc::SpServer server(cfg);
      Stopwatch w;
      if (Status st = server.Rehydrate(blocks.value(), certs.value()); !st) {
        std::fprintf(stderr, "rehydrate: %s\n", st.message().c_str());
        return 1;
      }
      rehydrate_ms.push_back(w.ElapsedMs());
      server.Shutdown();
    }

    std::printf("%8llu | %9.1f / %9.1f | %9.1f / %9.1f | %9.1f / %9.1f\n",
                static_cast<unsigned long long>(len), Median(replay_ms),
                P95(replay_ms), Median(gap_ms), P95(gap_ms),
                Median(rehydrate_ms), P95(rehydrate_ms));

    JsonObject row;
    row.Put("blocks", len)
        .PutRaw("replay_ms", JsonStats(replay_ms))
        .PutRaw("gap_ms", JsonStats(gap_ms))
        .PutRaw("rehydrate_ms", JsonStats(rehydrate_ms));
    rows.push_back(row.Str());

    RemoveTree(paths.dir);
  }

  std::printf("\nfull replay is linear in chain length (one certificate "
              "check per stored block);\nthe gap column adds one enclave "
              "re-certification on top of the replay.\n");

  // --- Checkpointed recovery: same lengths, fixed interval — flat. --------
  std::printf("\n%8s | %21s | %6s | %23s\n", "blocks", "ckpt ms (med/p95)",
              "tail", "bootstrap ms (med/p95)");
  std::printf("---------+-----------------------+--------+"
              "------------------------\n");

  std::vector<std::string> ckpt_rows;
  for (std::uint64_t len : lengths) {
    Paths paths = ScratchPaths();
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/8, /*instances=*/1,
            /*cost_model=*/{}, /*difficulty=*/3, /*kv_keys=*/64);
    if (!BuildCheckpointedChain(rig, paths, len, kInterval, kSegments, 4)) {
      return 1;
    }

    std::vector<double> ckpt_ms, boot_ms;
    std::uint64_t tail = 0;
    std::size_t boot_bytes = 0;
    for (int r = 0; r < kReps; ++r) {
      double ms = 0.0;
      if (!TimedCkptReopen(rig, paths, kInterval, kSegments, &ms, &tail)) {
        return 1;
      }
      ckpt_ms.push_back(ms);
      double bms = 0.0;
      if (!TimedSuperlightBootstrap(paths, &bms, &boot_bytes)) return 1;
      boot_ms.push_back(bms);
    }

    std::printf("%8llu | %9.1f / %9.1f | %6llu | %10.2f / %10.2f\n",
                static_cast<unsigned long long>(len), Median(ckpt_ms),
                P95(ckpt_ms), static_cast<unsigned long long>(tail),
                Median(boot_ms), P95(boot_ms));

    JsonObject row;
    row.Put("blocks", len)
        .Put("interval", kInterval)
        .Put("tail", tail)
        .Put("client_bytes", static_cast<std::uint64_t>(boot_bytes))
        .PutRaw("ckpt_ms", JsonStats(ckpt_ms))
        .PutRaw("bootstrap_ms", JsonStats(boot_ms));
    ckpt_rows.push_back(row.Str());

    RemoveTree(paths.dir);
  }

  std::printf("\ncheckpointed recovery replays only the tail above the "
              "newest checkpoint, so the\ntime tracks the interval, not the "
              "chain; superlight bootstrap is O(1) — one\ncertificate "
              "envelope check, no replay.\n");

  // --- Interval sweep at fixed chain length: tail tracks the interval. ----
  // 397 is coprime to every interval below, so the tail above the last
  // checkpoint is len mod interval — nonzero and growing with the interval
  // (a multiple of the interval would land a checkpoint exactly at the tip
  // and time an empty tail at every point).
  constexpr std::uint64_t kSweepLen = 397;
  const std::vector<std::uint64_t> intervals = {10, 25, 50, 100};

  std::printf("\n%8s | %21s | %6s   (chain fixed at %llu blocks)\n",
              "interval", "ckpt ms (med/p95)", "tail",
              static_cast<unsigned long long>(kSweepLen));
  std::printf("---------+-----------------------+--------\n");

  std::vector<std::string> interval_rows;
  for (std::uint64_t interval : intervals) {
    Paths paths = ScratchPaths();
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/8, /*instances=*/1,
            /*cost_model=*/{}, /*difficulty=*/3, /*kv_keys=*/64);
    if (!BuildCheckpointedChain(rig, paths, kSweepLen, interval, kSegments,
                                4)) {
      return 1;
    }

    std::vector<double> ckpt_ms;
    std::uint64_t tail = 0;
    for (int r = 0; r < kReps; ++r) {
      double ms = 0.0;
      if (!TimedCkptReopen(rig, paths, interval, kSegments, &ms, &tail)) {
        return 1;
      }
      ckpt_ms.push_back(ms);
    }

    std::printf("%8llu | %9.1f / %9.1f | %6llu\n",
                static_cast<unsigned long long>(interval), Median(ckpt_ms),
                P95(ckpt_ms), static_cast<unsigned long long>(tail));

    JsonObject row;
    row.Put("interval", interval)
        .Put("blocks", kSweepLen)
        .Put("tail", tail)
        .PutRaw("ckpt_ms", JsonStats(ckpt_ms));
    interval_rows.push_back(row.Str());

    RemoveTree(paths.dir);
  }

  if (!json_path.empty()) {
    JsonObject doc;
    doc.Put("bench", "recovery")
        .PutRaw("rows", JsonArray(rows))
        .PutRaw("ckpt_rows", JsonArray(ckpt_rows))
        .PutRaw("interval_rows", JsonArray(interval_rows))
        .PutRaw("meta", JsonRunMeta())
        .PutRaw("metrics", delta.Json());
    if (!WriteJsonFile(json_path, doc.Str())) return 1;
  }
  return 0;
}
