// Figure 10 — augmented vs hierarchical certificate construction as the
// number of authenticated indexes grows. The augmented scheme (Alg. 4)
// re-runs the full block verification inside the enclave for every index;
// the hierarchical scheme (Alg. 5) verifies the block once and then runs one
// cheap index Ecall per index. Expected shape: augmented grows steeply,
// hierarchical stays nearly flat, and with a single index the augmented
// scheme wins slightly (one fewer Ecall).
#include "bench/bench_util.h"
#include "query/historical_index.h"
#include "query/keyword_index.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

/// Runs one (scheme, index-count) configuration and returns the mean
/// certificate construction time in ms (modelled SGX) plus Ecall count.
struct ConfigResult {
  double total_ms = 0;
  double enclave_ms = 0;
  std::uint64_t ecalls = 0;
};

ConfigResult RunConfig(bool hierarchical, std::size_t index_count) {
  Rig rig(workloads::Workload::kKvStore, /*accounts=*/50, /*instances=*/2,
          sgxsim::CostModelParams{}, /*difficulty=*/4, /*kv_keys=*/100);
  for (std::size_t k = 0; k < index_count; ++k) {
    // Alternate index families to exercise both trusted verifiers.
    if (k % 2 == 0) {
      rig.ci->AttachIndex(std::make_shared<query::HistoricalIndex>(
          "hist-" + std::to_string(k)));
    } else {
      rig.ci->AttachIndex(
          std::make_shared<query::KeywordIndex>("kw-" + std::to_string(k)));
    }
  }

  const int kBlocks = 5;
  const std::size_t kBlockSize = 50;
  std::vector<double> total_ms, enclave_ms;
  std::uint64_t ecalls = 0;
  for (int i = 0; i < kBlocks; ++i) {
    chain::Block blk = rig.MineNext(kBlockSize);
    auto certs = hierarchical ? rig.ci->ProcessBlockHierarchical(blk)
                              : rig.ci->ProcessBlockAugmented(blk);
    if (!certs.ok()) {
      throw std::runtime_error("certification failed: " + certs.message());
    }
    const core::CertTiming& t = rig.ci->LastTiming();
    total_ms.push_back(t.TotalMs(/*modeled=*/true));
    enclave_ms.push_back(static_cast<double>(t.enclave_modeled_ns) / 1e6);
    ecalls = t.ecalls;
  }
  return {Mean(total_ms), Mean(enclave_ms), ecalls};
}

}  // namespace

int main() {
  PrintHeader("Fig. 10", "augmented vs hierarchical certificates vs #indexes");
  PrintParams("KVStore blocks of 50 txs, 5 blocks per point; indexes alternate "
              "historical (MPT+MB-tree) and keyword (inverted) families");

  std::printf("%8s | %12s %12s %7s | %12s %12s %7s\n", "indexes", "augm. ms",
              "aug encl", "ecalls", "hier. ms", "hier encl", "ecalls");
  std::printf("---------+-----------------------------------+-----------------------------------\n");

  for (std::size_t count : {1u, 2u, 4u, 8u, 16u}) {
    ConfigResult aug = RunConfig(/*hierarchical=*/false, count);
    ConfigResult hier = RunConfig(/*hierarchical=*/true, count);
    std::printf("%8zu | %12.2f %12.2f %7llu | %12.2f %12.2f %7llu\n", count,
                aug.total_ms, aug.enclave_ms,
                static_cast<unsigned long long>(aug.ecalls), hier.total_ms,
                hier.enclave_ms, static_cast<unsigned long long>(hier.ecalls));
  }

  std::printf(
      "\naugmented re-verifies the block inside the enclave per index (k heavy\n"
      "Ecalls); hierarchical verifies it once and adds k lightweight index\n"
      "Ecalls — the crossover at a single index matches the paper.\n");
  return 0;
}
