// Serving-side benchmark: an open-loop load generator drives N concurrent
// client connections against a live SpServer (loopback by default, --transport
// tcp for real sockets) with a repeated-query workload, once with the response
// cache disabled and once enabled. Requests are scheduled at a fixed offered
// rate (--rps) and assigned round-robin to the connections; a connection that
// falls behind issues its next request immediately, so measured latency is
// taken from the *scheduled* send time (coordinated-omission corrected).
// Reports throughput, p50/p95/p99 latency, shed rate (admission-control busy
// replies), and cache hit rate, and emits BENCH_serving.json with --json.
//
// The offered rate deliberately oversubscribes a small host so the comparison
// measures service capacity, not the generator: with the cache off every
// query regenerates its proof; with it on, repeated queries are served from
// the sharded LRU until a new certified block invalidates it.
//
// --fleet KxR adds the scale-out topology: K shard × R replica SpServer
// PROCESSES (re-exec'd children over TCP, each holding the full index but
// serving one key-shard), driven by shard-routed clients, against a 1x1
// single-process baseline under the same offered load — reporting fleet
// aggregate throughput, tail latency, and the scale factor. A verified
// scatter-gather pass (FleetClient) checks the fleet still only serves
// replies that survive client-side certificate + proof verification.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fleet/fleet_client.h"
#include "fleet/shard_map.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "svc/fault_transport.h"
#include "svc/sp_client.h"
#include "svc/sp_server.h"
#include "svc/tcp_transport.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

struct Options {
  std::size_t clients = 8;
  std::size_t requests = 4000;
  double rps = 100000.0;  // offered load (shared across all clients)
  std::string transport = "loopback";
  int blocks = 20;
  std::size_t txs = 40;
  // --fault-rate F runs the load through the seeded FaultInjectingTransport
  // (drop/delay/corrupt at F, truncate/duplicate at F/2, refused dials at F)
  // with retrying clients, measuring the robustness layer under adversity.
  double fault_rate = 0.0;
  std::uint64_t seed = 0xD0C5;
  // --obs-ab reruns the cache-enabled load with the metrics registry globally
  // disabled and re-enabled, reporting the observability overhead (the
  // acceptance budget is ≤5% throughput cost under this bench's load).
  bool obs_ab = false;
  // --hedge-ab drives a verified FleetClient against a 1-shard, 2-replica
  // in-process fleet whose second replica suffers seeded injected delays,
  // once with hedged requests off and once on, reporting the tail-latency
  // rescue plus the hedge-rate / wasted-work cost.
  bool hedge_ab = false;
  std::string json_path;
  // --fleet KxR: multi-process sharded fleet section (see header comment).
  std::string fleet;
};

struct FleetSpec {
  std::uint32_t shards = 1;
  std::uint32_t replicas = 1;
};

std::optional<FleetSpec> ParseFleetSpec(const std::string& s) {
  const std::size_t x = s.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= s.size()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long k = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + x) return std::nullopt;
  const unsigned long r = std::strtoul(s.c_str() + x + 1, &end, 10);
  if (*end != '\0') return std::nullopt;
  if (k < 1 || k > 16 || r < 1 || r > 4) return std::nullopt;
  return FleetSpec{static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(r)};
}

/// One knob fans out over the individual fault kinds so a soak exercises all
/// of them; recorded verbatim in the JSON meta for reproducibility.
svc::FaultConfig MakeFaultConfig(const Options& opt, std::uint64_t stream) {
  svc::FaultConfig fc;
  fc.drop_rate = opt.fault_rate;
  fc.delay_rate = opt.fault_rate;
  fc.delay_ms_max = 3;
  fc.truncate_rate = opt.fault_rate / 2;
  fc.duplicate_rate = opt.fault_rate / 2;
  fc.corrupt_rate = opt.fault_rate;
  fc.refuse_connect_rate = opt.fault_rate;
  fc.seed = opt.seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  return fc;
}

std::uint64_t ParseU64Flag(int argc, char** argv, const std::string& name,
                           std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

std::string ParseStrFlag(int argc, char** argv, const std::string& name,
                         const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return argv[i + 1];
  }
  return fallback;
}

double ParseDoubleFlag(int argc, char** argv, const std::string& name,
                       double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == "--" + name) return true;
  }
  return false;
}

/// One pre-mined certified chain: blocks plus their announcements, shared by
/// the cache-off and cache-on runs so both serve identical content.
struct ServingFixture {
  std::vector<svc::AnnounceRequest> announcements;
  std::vector<svc::QueryRequest> query_pool;  // repeated-query workload

  explicit ServingFixture(const Options& opt) {
    chain::ChainConfig config;
    config.difficulty_bits = 2;
    auto registry = workloads::MakeBlockbenchRegistry(1);
    core::CertificateIssuer ci(config, registry);
    auto hist = std::make_shared<query::HistoricalIndex>("historical");
    ci.AttachIndex(hist);
    chain::FullNode miner_node(config, registry);
    chain::Miner miner(miner_node);
    workloads::AccountPool pool(4, 77);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 10;  // few accounts => many versions each => repeats
    workloads::WorkloadGenerator gen(params, pool);

    std::map<std::uint64_t, std::uint64_t> versions_per_account;
    for (int i = 0; i < opt.blocks; ++i) {
      auto block = miner.MineBlock(gen.NextBlockTxs(opt.txs),
                                   1700000000 + miner_node.Height() * 15);
      if (!block.ok()) throw std::runtime_error("mine: " + block.message());
      if (Status st = miner_node.SubmitBlock(block.value()); !st) {
        throw std::runtime_error("submit: " + st.message());
      }
      auto icerts = ci.ProcessBlockHierarchical(block.value());
      if (!icerts.ok()) {
        throw std::runtime_error("certify: " + icerts.message());
      }
      svc::AnnounceRequest ann;
      ann.block = block.value();
      ann.block_cert = *ci.LatestCert();
      ann.index_digest = hist->CurrentDigest();
      ann.index_cert = icerts.value()[0];
      announcements.push_back(std::move(ann));
      for (const query::HistEntry& e :
           query::ExtractHistoricalWrites(block.value())) {
        ++versions_per_account[e.account_word];
      }
    }

    // A small pool of distinct queries over the hottest accounts; the load
    // generator samples from it, so every query repeats many times.
    const std::uint64_t tip = announcements.back().block.header.height;
    for (const auto& [account, writes] : versions_per_account) {
      if (query_pool.size() >= 24) break;
      query_pool.push_back(
          {svc::Op::kHistorical, account, 1, tip});
      query_pool.push_back(
          {svc::Op::kHistorical, account, tip / 2 + 1, tip});
      query_pool.push_back(
          {svc::Op::kAggregate, account, 1, tip});
    }
    if (query_pool.empty()) {
      throw std::runtime_error("workload produced no historical writes");
    }
  }
};

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t failed = 0;
  double throughput = 0.0;  // OK replies per second
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double shed_rate = 0.0;
  svc::SpServerStats server;
  // Aggregated across all client threads; zero unless faults/retries fire.
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t giveups = 0;
  std::uint64_t faults_injected = 0;

  std::string Json() const {
    JsonObject o;
    o.Put("wall_s", wall_s)
        .Put("ok", ok)
        .Put("busy", busy)
        .Put("failed", failed)
        .Put("throughput_rps", throughput)
        .Put("p50_ms", p50_ms)
        .Put("p95_ms", p95_ms)
        .Put("p99_ms", p99_ms)
        .Put("shed_rate", shed_rate)
        .Put("cache_hits", server.cache.hits)
        .Put("cache_misses", server.cache.misses)
        .Put("cache_hit_rate", server.cache.HitRate())
        .Put("served", server.served)
        .Put("shed", server.shed)
        .Put("errors", server.errors)
        .Put("client_retries", retries)
        .Put("client_reconnects", reconnects)
        .Put("client_timeouts", timeouts)
        .Put("client_giveups", giveups)
        .Put("faults_injected", faults_injected);
    return o.Str();
  }
};

RunResult RunLoad(const Options& opt, const ServingFixture& fixture,
                  bool cache_enabled) {
  svc::SpServerConfig config;
  config.workers = 4;
  // Admission bound below the client count so saturation is visible as
  // shedding, not just queueing: half the connections may be in flight.
  config.max_queue = std::max<std::size_t>(1, opt.clients / 2);
  config.enable_cache = cache_enabled;
  svc::SpServer server(config);

  svc::LoopbackTransport loopback;
  svc::TcpServerTransport tcp(0);
  const bool use_tcp = opt.transport == "tcp";
  Status st = use_tcp ? server.Serve(tcp) : server.Serve(loopback);
  if (!st) throw std::runtime_error("serve: " + st.message());

  for (const auto& ann : fixture.announcements) {
    if (Status ast = server.Announce(ann); !ast) {
      throw std::runtime_error("announce: " + ast.message());
    }
  }

  // One connection per client thread, dialed lazily through a Connector so
  // the fault decorator can refuse dials and the retrying client can redial.
  auto fault_counters = std::make_shared<svc::FaultCounters>();
  const std::uint16_t tcp_port = tcp.Port();

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now() + std::chrono::milliseconds(10);
  const double interval_s = 1.0 / opt.rps;
  std::vector<std::vector<double>> ok_latencies(opt.clients);
  std::vector<std::uint64_t> oks(opt.clients, 0), busys(opt.clients, 0),
      fails(opt.clients, 0);
  std::vector<svc::SpClientStats> client_stats(opt.clients);
  std::atomic<Clock::duration::rep> last_done{0};

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      svc::Connector dial;
      if (use_tcp) {
        dial = [tcp_port] {
          return svc::TcpClientTransport::Connect("127.0.0.1", tcp_port);
        };
      } else {
        dial = [&loopback] {
          return Result<std::unique_ptr<svc::ClientTransport>>(
              loopback.Connect());
        };
      }
      svc::RetryPolicy policy;  // defaults: one-shot, PR 2 behavior
      if (opt.fault_rate > 0.0) {
        dial = svc::FaultyConnector(std::move(dial), MakeFaultConfig(opt, c),
                                    fault_counters);
        policy.max_attempts = 10;
        policy.call_deadline = std::chrono::seconds(5);
        policy.initial_backoff = std::chrono::milliseconds(1);
        policy.max_backoff = std::chrono::milliseconds(16);
        policy.retry_budget = std::chrono::seconds(20);
        policy.jitter_seed = opt.seed + c;
      }
      svc::SpClient client(std::move(dial), policy);
      Rng rng(0x5eed + c);
      for (std::size_t i = c; i < opt.requests; i += opt.clients) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(interval_s *
                                                   static_cast<double>(i)));
        std::this_thread::sleep_until(scheduled);
        const svc::QueryRequest& q = fixture.query_pool[rng.NextRange(
            0, fixture.query_pool.size() - 1)];
        auto result =
            q.op == svc::Op::kHistorical
                ? client.Historical(q.account, q.from_height, q.to_height)
                : client.Aggregate(q.account, q.from_height, q.to_height);
        const auto done = Clock::now();
        if (result.ok()) {
          ++oks[c];
          ok_latencies[c].push_back(
              std::chrono::duration<double, std::milli>(done - scheduled)
                  .count());
        } else if (client.LastReplyBusy()) {
          ++busys[c];
        } else {
          ++fails[c];
        }
        auto rep = (done - t0).count();
        auto prev = last_done.load();
        while (rep > prev && !last_done.compare_exchange_weak(prev, rep)) {
        }
      }
      client_stats[c] = client.Stats();
    });
  }
  for (auto& t : threads) t.join();

  RunResult r;
  std::vector<double> latencies;
  for (std::size_t c = 0; c < opt.clients; ++c) {
    r.ok += oks[c];
    r.busy += busys[c];
    r.failed += fails[c];
    r.retries += client_stats[c].retries;
    r.reconnects += client_stats[c].reconnects;
    r.timeouts += client_stats[c].timeouts;
    r.giveups += client_stats[c].giveups;
    latencies.insert(latencies.end(), ok_latencies[c].begin(),
                     ok_latencies[c].end());
  }
  r.faults_injected = fault_counters->Total();
  r.wall_s = std::chrono::duration<double>(
                 Clock::duration(last_done.load()))
                 .count();
  if (r.wall_s <= 0.0) r.wall_s = 1e-9;
  r.throughput = static_cast<double>(r.ok) / r.wall_s;
  r.p50_ms = Percentile(latencies, 0.50);
  r.p95_ms = Percentile(latencies, 0.95);
  r.p99_ms = Percentile(latencies, 0.99);
  r.shed_rate = static_cast<double>(r.busy) /
                static_cast<double>(opt.requests == 0 ? 1 : opt.requests);
  r.server = server.Stats();
  server.Shutdown();
  return r;
}

/// End-to-end integrity spot check: fetch the tip over the wire, validate it
/// like a superlight client, and verify one served proof against the
/// certified digest.
void VerifyServedReplies(const Options& opt, const ServingFixture& fixture) {
  svc::SpServerConfig config;
  svc::SpServer server(config);
  svc::LoopbackTransport loopback;
  if (Status st = server.Serve(loopback); !st) {
    throw std::runtime_error(st.message());
  }
  for (const auto& ann : fixture.announcements) {
    if (Status st = server.Announce(ann); !st) {
      throw std::runtime_error(st.message());
    }
  }
  svc::SpClient client(loopback.Connect());
  auto tip = client.FetchTip();
  if (!tip.ok()) throw std::runtime_error(tip.message());
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  if (Status st = light.ValidateAndAccept(tip.value().header,
                                          tip.value().block_cert);
      !st) {
    throw std::runtime_error("tip rejected: " + st.message());
  }
  if (Status st =
          light.AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                tip.value().index_digest, "historical");
      !st) {
    throw std::runtime_error("index cert rejected: " + st.message());
  }
  const svc::QueryRequest& q = fixture.query_pool.front();
  auto reply = client.Historical(q.account, q.from_height, q.to_height);
  if (!reply.ok()) throw std::runtime_error(reply.message());
  auto verified = query::HistoricalIndex::VerifyQuery(
      *light.CertifiedIndexDigest("historical"), q.account, q.from_height,
      q.to_height, reply.value().proof);
  if (!verified.ok()) {
    throw std::runtime_error("served proof failed client-side verification: " +
                             verified.message());
  }
  (void)opt;
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// --fleet: multi-process sharded fleet vs. a 1x1 baseline.
// ---------------------------------------------------------------------------

/// Child mode (`--shard-server`): build the deterministic fixture (same seed
/// and chain parameters as the parent, so every process mines a byte-identical
/// chain), serve one shard of a K-shard map over TCP, print "PORT <n>" once
/// ready, and run until stdin reaches EOF (the parent closing our stdin is the
/// shutdown signal — it also works if the parent dies).
int RunShardServer(const Options& opt, std::uint32_t shard_id,
                   std::uint32_t shard_total, std::uint64_t map_version) {
  fleet::ShardMapConfig mc;
  mc.version = map_version;
  mc.key_shards = shard_total;
  auto map = fleet::ShardMap::Create(mc);
  if (!map.ok()) {
    std::fprintf(stderr, "shard-server: map: %s\n", map.message().c_str());
    return 1;
  }
  ServingFixture fixture(opt);

  svc::SpServerConfig config;
  config.workers = 4;
  config.max_queue = std::max<std::size_t>(1, opt.clients / 2);
  config.shard = map.value().AssignmentFor(shard_id);
  config.shard_map = map.value().Serialize();
  svc::SpServer server(config);
  svc::TcpServerTransport tcp(0);
  if (Status st = server.Serve(tcp); !st) {
    std::fprintf(stderr, "shard-server: serve: %s\n", st.message().c_str());
    return 1;
  }
  for (const auto& ann : fixture.announcements) {
    if (Status st = server.Announce(ann); !st) {
      std::fprintf(stderr, "shard-server: announce: %s\n",
                   st.message().c_str());
      return 1;
    }
  }
  std::printf("PORT %u\n", static_cast<unsigned>(tcp.Port()));
  std::fflush(stdout);
  char buf[64];
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
  }
  server.Shutdown();
  return 0;
}

/// One spawned shard-server child: its pid, a write end of its stdin (closing
/// it asks the child to exit), and the TCP port it reported.
struct ShardProc {
  pid_t pid = -1;
  int stdin_w = -1;
  std::FILE* out = nullptr;
  std::uint16_t port = 0;
};

void StopShard(ShardProc& p) {
  if (p.stdin_w >= 0) {
    close(p.stdin_w);  // EOF on the child's stdin => graceful shutdown
    p.stdin_w = -1;
  }
  if (p.out != nullptr) {
    std::fclose(p.out);
    p.out = nullptr;
  }
  if (p.pid > 0) {
    int status = 0;
    waitpid(p.pid, &status, 0);
    p.pid = -1;
  }
}

/// fork+exec ourselves (`/proc/self/exe`) in shard-server mode. All load
/// threads are joined whenever this runs, so fork is safe; the child execs
/// immediately.
ShardProc SpawnShardServer(const Options& opt, std::uint32_t shard_id,
                           std::uint32_t shard_total,
                           std::uint64_t map_version) {
  int to_child[2], from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw std::runtime_error("pipe failed");
  }
  // Close-on-exec everywhere: without this, later-spawned siblings inherit
  // this child's stdin write end, so closing ours never delivers the EOF
  // shutdown signal (the child would outlive StopShard and waitpid would
  // hang). The child's dup2 onto fds 0/1 clears the flag on its own copies.
  for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    char exe[4096];
    const ssize_t n = readlink("/proc/self/exe", exe, sizeof exe - 1);
    exe[n > 0 ? n : 0] = '\0';
    const std::vector<std::string> args = {
        exe,
        "--shard-server",
        "--shard-id",    std::to_string(shard_id),
        "--shard-total", std::to_string(shard_total),
        "--map-version", std::to_string(map_version),
        "--clients",     std::to_string(opt.clients),
        "--blocks",      std::to_string(opt.blocks),
        "--txs",         std::to_string(opt.txs),
        "--seed",        std::to_string(opt.seed),
    };
    std::vector<char*> argv;
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(exe, argv.data());
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  ShardProc p;
  p.pid = pid;
  p.stdin_w = to_child[1];
  p.out = fdopen(from_child[0], "r");
  if (p.out == nullptr) {
    StopShard(p);
    throw std::runtime_error("fdopen failed");
  }
  return p;
}

/// Blocks until the child reports its port (it mines the fixture chain
/// first); EOF without a PORT line means the child failed at startup.
void AwaitPort(ShardProc& p, std::uint32_t shard_id, std::uint32_t replica) {
  char line[256];
  while (std::fgets(line, sizeof line, p.out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "PORT %u", &port) == 1 && port != 0) {
      p.port = static_cast<std::uint16_t>(port);
      return;
    }
  }
  throw std::runtime_error("shard " + std::to_string(shard_id) + " replica " +
                           std::to_string(replica) +
                           " exited before reporting a port");
}

/// Same scheduled open-loop load as RunLoad, but each request is routed to
/// the shard owning its account (map.KeyShardOf) over a persistent per-thread
/// connection to one replica (round-robin per shard per request). Framing is
/// identical for baseline and fleet runs: both use shard-scoped requests.
RunResult FleetRunLoad(const Options& opt, const ServingFixture& fixture,
                       const fleet::ShardMap& map,
                       const std::vector<std::vector<std::uint16_t>>& ports) {
  const std::uint64_t version = map.Version();
  const std::uint32_t replicas = map.Replicas();
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now() + std::chrono::milliseconds(10);
  const double interval_s = 1.0 / opt.rps;
  std::vector<std::vector<double>> ok_latencies(opt.clients);
  std::vector<std::uint64_t> oks(opt.clients, 0), busys(opt.clients, 0),
      fails(opt.clients, 0);
  std::atomic<Clock::duration::rep> last_done{0};

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      // Lazily dialed persistent connection per (shard, replica).
      std::vector<std::vector<std::unique_ptr<svc::SpClient>>> conns(
          ports.size());
      for (auto& per_shard : conns) per_shard.resize(replicas);
      Rng rng(0x5eed + c);
      std::uint64_t seq = c;
      for (std::size_t i = c; i < opt.requests; i += opt.clients) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(interval_s *
                                                   static_cast<double>(i)));
        std::this_thread::sleep_until(scheduled);
        const svc::QueryRequest& q = fixture.query_pool[rng.NextRange(
            0, fixture.query_pool.size() - 1)];
        const std::uint32_t shard = map.ShardOf(q.account, q.from_height);
        const std::uint32_t replica =
            static_cast<std::uint32_t>(seq++ % replicas);
        auto& cli = conns[shard][replica];
        if (!cli) {
          const std::uint16_t port = ports[shard][replica];
          cli = std::make_unique<svc::SpClient>(
              [port] {
                return svc::TcpClientTransport::Connect("127.0.0.1", port);
              },
              svc::RetryPolicy{});
        }
        auto result =
            q.op == svc::Op::kHistorical
                ? cli->HistoricalSharded(version, shard, q.account,
                                         q.from_height, q.to_height)
                : cli->AggregateSharded(version, shard, q.account,
                                        q.from_height, q.to_height);
        const auto done = Clock::now();
        if (result.ok()) {
          ++oks[c];
          ok_latencies[c].push_back(
              std::chrono::duration<double, std::milli>(done - scheduled)
                  .count());
        } else if (cli->LastReplyBusy()) {
          ++busys[c];
        } else {
          ++fails[c];
          cli.reset();  // drop the connection; redial on next use
        }
        auto rep = (done - t0).count();
        auto prev = last_done.load();
        while (rep > prev && !last_done.compare_exchange_weak(prev, rep)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  RunResult r;
  std::vector<double> latencies;
  for (std::size_t c = 0; c < opt.clients; ++c) {
    r.ok += oks[c];
    r.busy += busys[c];
    r.failed += fails[c];
    latencies.insert(latencies.end(), ok_latencies[c].begin(),
                     ok_latencies[c].end());
  }
  r.wall_s =
      std::chrono::duration<double>(Clock::duration(last_done.load())).count();
  if (r.wall_s <= 0.0) r.wall_s = 1e-9;
  r.throughput = static_cast<double>(r.ok) / r.wall_s;
  r.p50_ms = Percentile(latencies, 0.50);
  r.p95_ms = Percentile(latencies, 0.95);
  r.p99_ms = Percentile(latencies, 0.99);
  r.shed_rate = static_cast<double>(r.busy) /
                static_cast<double>(opt.requests == 0 ? 1 : opt.requests);
  return r;
}

/// Fills the server-side fields of a fleet RunResult from the children's live
/// registries (Op::kStats per process, merged: counters sum, gauges max).
void FillFleetServerStats(RunResult& r,
                          const std::vector<std::vector<std::uint16_t>>& ports) {
  obs::MetricsSnapshot merged;
  for (const auto& per_shard : ports) {
    for (const std::uint16_t port : per_shard) {
      svc::SpClient cli(
          [port] {
            return svc::TcpClientTransport::Connect("127.0.0.1", port);
          },
          svc::RetryPolicy{});
      auto snap = cli.FetchStats();
      if (!snap.ok()) {
        throw std::runtime_error("fleet stats fetch: " + snap.message());
      }
      merged.MergeFrom(snap.value());
    }
  }
  const auto counter = [&merged](const char* name) -> std::uint64_t {
    auto it = merged.counters.find(name);
    return it == merged.counters.end() ? 0 : it->second;
  };
  r.server.served = counter("svc.server.served");
  r.server.shed = counter("svc.server.shed");
  r.server.errors = counter("svc.server.errors");
  r.server.cache.hits = counter("svc.cache.hits");
  r.server.cache.misses = counter("svc.cache.misses");
}

/// Verified scatter-gather spot check against the live fleet: a FleetClient
/// (cross-checking replicas when there are >=2) must verify every query in
/// the fixture pool; any reply that fails certificate/proof verification
/// fails the bench.
void VerifyFleetReplies(const ServingFixture& fixture,
                        const fleet::ShardMap& map,
                        const std::vector<std::vector<std::uint16_t>>& ports) {
  fleet::FleetClientConfig fc;
  fc.cross_check = map.Replicas() >= 2;
  fleet::FleetClient client(
      map,
      [&ports](std::uint32_t shard, std::uint32_t replica) -> svc::Connector {
        const std::uint16_t port = ports[shard][replica];
        return [port] {
          return svc::TcpClientTransport::Connect("127.0.0.1", port);
        };
      },
      fc);
  for (const svc::QueryRequest& q : fixture.query_pool) {
    if (q.op == svc::Op::kHistorical) {
      auto got = client.Historical(q.account, q.from_height, q.to_height);
      if (!got.ok()) {
        throw std::runtime_error("fleet scatter-gather verify: " +
                                 got.message());
      }
    } else {
      auto got = client.Aggregate(q.account, q.from_height, q.to_height);
      if (!got.ok()) {
        throw std::runtime_error("fleet scatter-gather verify: " +
                                 got.message());
      }
    }
  }
  const auto stats = client.Stats();
  if (stats.verified == 0 || stats.giveups != 0) {
    throw std::runtime_error("fleet scatter-gather verify: no verified replies");
  }
  std::printf("fleet scatter-gather: %llu/%llu subqueries verified "
              "client-side (%llu cross-checks, %llu mismatches)\n",
              static_cast<unsigned long long>(stats.verified),
              static_cast<unsigned long long>(stats.subqueries),
              static_cast<unsigned long long>(stats.cross_checks),
              static_cast<unsigned long long>(stats.cross_check_mismatches));
}

/// Runs the baseline (1x1) and the K x R fleet under the same offered load
/// and returns the JSON section. Both topologies use shard-scoped framing and
/// re-exec'd TCP server processes, so the only variable is the topology.
std::string RunFleetSection(const Options& opt, const ServingFixture& fixture,
                            const FleetSpec& spec) {
  const std::uint32_t K = spec.shards;
  const std::uint32_t R = spec.replicas;
  std::printf("\nfleet: spawning 1x1 baseline + %ux%u shard server "
              "processes (each mines the fixture chain first)...\n",
              static_cast<unsigned>(K), static_cast<unsigned>(R));

  // Baseline: one server process owning the whole key space (map version 1,
  // total 1 — still sharded framing, so requests are byte-identical).
  fleet::ShardMapConfig base_cfg;
  base_cfg.version = 1;
  auto base_map = fleet::ShardMap::Create(base_cfg);
  if (!base_map.ok()) throw std::runtime_error(base_map.message());
  ShardProc base_proc = SpawnShardServer(opt, 0, 1, base_cfg.version);
  RunResult baseline;
  try {
    AwaitPort(base_proc, 0, 0);
    const std::vector<std::vector<std::uint16_t>> base_ports = {
        {base_proc.port}};
    baseline = FleetRunLoad(opt, fixture, base_map.value(), base_ports);
    FillFleetServerStats(baseline, base_ports);
  } catch (...) {
    StopShard(base_proc);
    throw;
  }
  StopShard(base_proc);

  // Fleet: K shards x R replicas. Spawned sequentially — each child mines
  // the same deterministic chain, and on a small host parallel mining just
  // thrashes; ports are collected as children come up.
  fleet::ShardMapConfig fleet_cfg;
  fleet_cfg.version = 2;  // a different version than the baseline map
  fleet_cfg.key_shards = K;
  fleet_cfg.replicas = R;
  auto fleet_map = fleet::ShardMap::Create(fleet_cfg);
  if (!fleet_map.ok()) throw std::runtime_error(fleet_map.message());
  std::vector<ShardProc> procs;
  RunResult fleet_run;
  try {
    std::vector<std::vector<std::uint16_t>> ports(K);
    for (std::uint32_t s = 0; s < K; ++s) {
      for (std::uint32_t rep = 0; rep < R; ++rep) {
        procs.push_back(SpawnShardServer(opt, s, K, fleet_cfg.version));
        AwaitPort(procs.back(), s, rep);
        ports[s].push_back(procs.back().port);
      }
    }
    fleet_run = FleetRunLoad(opt, fixture, fleet_map.value(), ports);
    VerifyFleetReplies(fixture, fleet_map.value(), ports);
    FillFleetServerStats(fleet_run, ports);
  } catch (...) {
    for (auto& p : procs) StopShard(p);
    throw;
  }
  for (auto& p : procs) StopShard(p);

  const double scale = baseline.throughput > 0
                           ? fleet_run.throughput / baseline.throughput
                           : 0.0;
  std::printf("\n%9s | %9s %8s %8s %8s | %7s\n", "fleet", "tput r/s", "p50 ms",
              "p95 ms", "p99 ms", "shed");
  std::printf("----------+------------------------------------------+--------\n");
  std::printf("%9s | %9.0f %8.2f %8.2f %8.2f | %6.1f%%\n", "1x1 base",
              baseline.throughput, baseline.p50_ms, baseline.p95_ms,
              baseline.p99_ms, 100.0 * baseline.shed_rate);
  std::printf("%7ux%1u | %9.0f %8.2f %8.2f %8.2f | %6.1f%%\n",
              static_cast<unsigned>(K), static_cast<unsigned>(R),
              fleet_run.throughput, fleet_run.p50_ms, fleet_run.p95_ms,
              fleet_run.p99_ms, 100.0 * fleet_run.shed_rate);
  std::printf("fleet scale factor: %.2fx over the single-process baseline "
              "(%u host cores — CPU-bound shards cannot scale past the "
              "core count)\n",
              scale, std::thread::hardware_concurrency());

  JsonObject fo;
  fo.Put("shards", static_cast<std::uint64_t>(K))
      .Put("replicas", static_cast<std::uint64_t>(R))
      .Put("processes", static_cast<std::uint64_t>(K * R))
      .PutRaw("baseline_1x1", baseline.Json())
      .PutRaw("fleet", fleet_run.Json())
      .Put("scale_factor", scale);
  return fo.Str();
}

// ---------------------------------------------------------------------------
// --hedge-ab: hedged requests vs. a straggling replica.
// ---------------------------------------------------------------------------

struct HedgeArm {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  fleet::FleetClientStats stats;

  std::string Json() const {
    JsonObject o;
    o.Put("ok", ok)
        .Put("failed", failed)
        .Put("p50_ms", p50_ms)
        .Put("p95_ms", p95_ms)
        .Put("p99_ms", p99_ms)
        .Put("hedges", stats.hedges)
        .Put("hedge_wins", stats.hedge_wins)
        .Put("hedge_wasted", stats.hedge_wasted)
        .Put("breaker_skips", stats.breaker_skips)
        .Put("verified", stats.verified);
    return o.Str();
  }
};

/// A/B of hedged requests: a 1-shard x 2-replica in-process fleet where
/// replica 1's wire suffers seeded delays (no corruption — this measures the
/// latency policy, not quarantine). Round-robin replica choice means roughly
/// half the queries pick the straggler as primary; with hedging on, those
/// queries launch a secondary on the clean replica after an adaptive delay
/// and the first *verified* reply wins, so the straggler's delays should
/// vanish from the hedged tail while hedge_wasted quantifies the extra work.
std::string RunHedgeAbSection(const Options& opt,
                              const ServingFixture& fixture) {
  fleet::ShardMapConfig mc;
  mc.version = 1;
  mc.key_shards = 1;
  mc.replicas = 2;
  auto map = fleet::ShardMap::Create(mc);
  if (!map.ok()) throw std::runtime_error(map.message());

  std::vector<std::unique_ptr<svc::LoopbackTransport>> transports;
  std::vector<std::unique_ptr<svc::SpServer>> servers;
  for (std::uint32_t r = 0; r < 2; ++r) {
    svc::SpServerConfig config;
    config.workers = 4;
    config.shard = map.value().AssignmentFor(0);
    config.shard_map = map.value().Serialize();
    auto server = std::make_unique<svc::SpServer>(config);
    auto transport = std::make_unique<svc::LoopbackTransport>();
    if (Status st = server->Serve(*transport); !st) {
      throw std::runtime_error("hedge-ab serve: " + st.message());
    }
    for (const auto& ann : fixture.announcements) {
      if (Status st = server->Announce(ann); !st) {
        throw std::runtime_error("hedge-ab announce: " + st.message());
      }
    }
    transports.push_back(std::move(transport));
    servers.push_back(std::move(server));
  }

  auto fault_counters = std::make_shared<svc::FaultCounters>();
  auto backends = [&](std::uint32_t, std::uint32_t r) -> svc::Connector {
    svc::LoopbackTransport* lb = transports[r].get();
    svc::Connector dial = [lb] {
      return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
    };
    if (r == 1) {
      svc::FaultConfig fc;
      fc.delay_rate = 0.25;
      fc.delay_ms_max = 30;
      fc.seed = opt.seed ^ 0x4ed6e;
      dial = svc::FaultyConnector(std::move(dial), fc, fault_counters);
    }
    return dial;
  };

  const std::size_t kQueries = std::min<std::size_t>(opt.requests, 400);
  const auto run_arm = [&](bool hedge) {
    fleet::FleetClientConfig fc;
    fc.hedge = hedge;
    fc.hedge_min_delay_us = 200;
    // Cap the adaptive delay well below the straggler's worst case so the
    // hedge fires while the primary is still stuck in the injected sleep.
    fc.hedge_max_delay_us = 5000;
    fleet::FleetClient client(map.value(), backends, fc);
    HedgeArm arm;
    std::vector<double> latencies;
    Rng rng(0x5eed);
    using Clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < kQueries; ++i) {
      const svc::QueryRequest& q = fixture.query_pool[rng.NextRange(
          0, fixture.query_pool.size() - 1)];
      const auto t0 = Clock::now();
      bool ok;
      if (q.op == svc::Op::kHistorical) {
        ok = client.Historical(q.account, q.from_height, q.to_height).ok();
      } else {
        ok = client.Aggregate(q.account, q.from_height, q.to_height).ok();
      }
      const auto t1 = Clock::now();
      if (ok) {
        ++arm.ok;
        latencies.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      } else {
        ++arm.failed;
      }
    }
    arm.p50_ms = Percentile(latencies, 0.50);
    arm.p95_ms = Percentile(latencies, 0.95);
    arm.p99_ms = Percentile(latencies, 0.99);
    arm.stats = client.Stats();
    return arm;
  };

  // Same seeded workload and the same seeded delay schedule per arm: the
  // FaultyConnector re-derives per-connection fault streams from fc.seed, so
  // the straggler misbehaves identically with hedging off and on.
  const HedgeArm off = run_arm(false);
  const HedgeArm on = run_arm(true);
  for (auto& server : servers) server->Shutdown();

  std::printf("\nhedged requests A/B (1x2 fleet, replica 1 delayed at rate "
              "0.25 up to 30 ms, %zu verified queries per arm):\n",
              kQueries);
  std::printf("%9s | %8s %8s %8s | %7s %7s %7s\n", "hedge", "p50 ms", "p95 ms",
              "p99 ms", "hedges", "wins", "wasted");
  std::printf("----------+----------------------------+------------------------\n");
  for (const auto* a : {&off, &on}) {
    std::printf("%9s | %8.2f %8.2f %8.2f | %7llu %7llu %7llu\n",
                a == &off ? "off" : "on", a->p50_ms, a->p95_ms, a->p99_ms,
                static_cast<unsigned long long>(a->stats.hedges),
                static_cast<unsigned long long>(a->stats.hedge_wins),
                static_cast<unsigned long long>(a->stats.hedge_wasted));
  }
  const double rescue =
      off.p99_ms > 0 ? (off.p99_ms - on.p99_ms) / off.p99_ms : 0.0;
  const double hedge_rate =
      on.stats.subqueries > 0 ? static_cast<double>(on.stats.hedges) /
                                    static_cast<double>(on.stats.subqueries)
                              : 0.0;
  std::printf("hedging cut p99 by %.0f%% (hedge rate %.1f%%, %llu wasted "
              "replies; every accepted reply verified client-side)\n",
              100.0 * rescue, 100.0 * hedge_rate,
              static_cast<unsigned long long>(on.stats.hedge_wasted));

  JsonObject o;
  o.Put("queries_per_arm", static_cast<std::uint64_t>(kQueries))
      .Put("delay_rate", 0.25)
      .Put("delay_ms_max", static_cast<std::uint64_t>(30))
      .PutRaw("hedge_off", off.Json())
      .PutRaw("hedge_on", on.Json())
      .Put("p99_rescue", rescue)
      .Put("hedge_rate", hedge_rate)
      .Put("faults_injected", fault_counters->Total());
  return o.Str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.json_path = ParseJsonPath(argc, argv);
  opt.clients = ParseU64Flag(argc, argv, "clients", opt.clients);
  opt.requests = ParseU64Flag(argc, argv, "requests", opt.requests);
  opt.rps = static_cast<double>(
      ParseU64Flag(argc, argv, "rps", static_cast<std::uint64_t>(opt.rps)));
  opt.transport = ParseStrFlag(argc, argv, "transport", opt.transport);
  opt.blocks = static_cast<int>(ParseU64Flag(argc, argv, "blocks",
                                             static_cast<std::uint64_t>(opt.blocks)));
  opt.txs = ParseU64Flag(argc, argv, "txs", opt.txs);
  opt.fault_rate = ParseDoubleFlag(argc, argv, "fault-rate", opt.fault_rate);
  opt.seed = ParseU64Flag(argc, argv, "seed", opt.seed);
  opt.obs_ab = HasFlag(argc, argv, "obs-ab");
  opt.hedge_ab = HasFlag(argc, argv, "hedge-ab");
  opt.fleet = ParseStrFlag(argc, argv, "fleet", opt.fleet);

  // Hidden child mode: we were re-exec'd by a --fleet parent to serve one
  // shard. Options above are already parsed from the forwarded flags.
  if (HasFlag(argc, argv, "shard-server")) {
    try {
      return RunShardServer(
          opt,
          static_cast<std::uint32_t>(ParseU64Flag(argc, argv, "shard-id", 0)),
          static_cast<std::uint32_t>(
              ParseU64Flag(argc, argv, "shard-total", 1)),
          ParseU64Flag(argc, argv, "map-version", 1));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "shard-server: %s\n", e.what());
      return 1;
    }
  }

  std::optional<FleetSpec> fleet_spec;
  if (!opt.fleet.empty()) {
    fleet_spec = ParseFleetSpec(opt.fleet);
    if (!fleet_spec) {
      std::fprintf(stderr,
                   "bad --fleet %s (want KxR, 1<=K<=16, 1<=R<=4)\n",
                   opt.fleet.c_str());
      return 2;
    }
  }
  if (opt.clients == 0 || opt.requests == 0 || opt.rps <= 0.0 ||
      opt.fault_rate < 0.0 || opt.fault_rate >= 1.0 ||
      (opt.transport != "loopback" && opt.transport != "tcp")) {
    std::fprintf(stderr,
                 "usage: bench_serving [--clients N] [--requests N] [--rps R]\n"
                 "                     [--transport loopback|tcp] [--blocks B]\n"
                 "                     [--txs T] [--fault-rate F] [--seed S]\n"
                 "                     [--obs-ab] [--hedge-ab] [--fleet KxR]\n"
                 "                     [--json path]\n");
    return 2;
  }
  const MetricsDelta metrics_delta;

  PrintHeader("Serving", "SP server under concurrent client load");
  PrintParams(std::to_string(opt.clients) + " clients, " +
              std::to_string(opt.requests) + " requests offered at " +
              std::to_string(static_cast<std::uint64_t>(opt.rps)) +
              " rps over " + opt.transport + "; chain: " +
              std::to_string(opt.blocks) + " blocks x " +
              std::to_string(opt.txs) + " txs (KVStore); fault rate " +
              std::to_string(opt.fault_rate) + " (seed " +
              std::to_string(opt.seed) + "); host cores: " +
              std::to_string(std::thread::hardware_concurrency()));

  ServingFixture fixture(opt);
  VerifyServedReplies(opt, fixture);
  std::printf("served replies verify client-side against the certified tip\n\n");

  RunResult off = RunLoad(opt, fixture, /*cache_enabled=*/false);
  RunResult on = RunLoad(opt, fixture, /*cache_enabled=*/true);

  std::printf("%9s | %9s %8s %8s %8s | %7s %8s\n", "cache", "tput r/s",
              "p50 ms", "p95 ms", "p99 ms", "shed", "hit rate");
  std::printf("----------+------------------------------------------+------------------\n");
  for (const auto* r : {&off, &on}) {
    std::printf("%9s | %9.0f %8.2f %8.2f %8.2f | %6.1f%% %7.1f%%\n",
                r == &off ? "disabled" : "enabled", r->throughput, r->p50_ms,
                r->p95_ms, r->p99_ms, 100.0 * r->shed_rate,
                100.0 * r->server.cache.HitRate());
  }
  const double speedup = off.throughput > 0 ? on.throughput / off.throughput : 0;
  std::printf("\ncache speedup: %.2fx (OK-reply throughput, same offered load)\n",
              speedup);
  if (opt.fault_rate > 0.0) {
    std::printf("faults injected: %llu (retries %llu, reconnects %llu, "
                "timeouts %llu, giveups %llu)\n",
                static_cast<unsigned long long>(off.faults_injected +
                                                on.faults_injected),
                static_cast<unsigned long long>(off.retries + on.retries),
                static_cast<unsigned long long>(off.reconnects + on.reconnects),
                static_cast<unsigned long long>(off.timeouts + on.timeouts),
                static_cast<unsigned long long>(off.giveups + on.giveups));
  }

  // Observability A/B: the same cache-enabled load with the registry's global
  // kill-switch off (Add/Record are branch-only no-ops) vs. on. Run-to-run
  // variance of the oversubscribed load is several percent, so a single pair
  // is noise: interleave three pairs and compare median throughputs.
  std::string obs_ab_json;
  if (opt.obs_ab) {
    constexpr int kTrials = 3;
    std::vector<double> plain_tput, instr_tput;
    RunResult plain_last, instr_last;
    for (int t = 0; t < kTrials; ++t) {
      obs::SetEnabled(false);
      plain_last = RunLoad(opt, fixture, /*cache_enabled=*/true);
      plain_tput.push_back(plain_last.throughput);
      obs::SetEnabled(true);
      instr_last = RunLoad(opt, fixture, /*cache_enabled=*/true);
      instr_tput.push_back(instr_last.throughput);
    }
    const double plain_med = Median(plain_tput);
    const double instr_med = Median(instr_tput);
    const double overhead_pct =
        plain_med > 0 ? 100.0 * (plain_med - instr_med) / plain_med : 0.0;
    std::printf("\nobservability A/B (cache enabled, median of %d interleaved "
                "pairs): obs-off %.0f r/s, obs-on %.0f r/s, overhead %.2f%% "
                "(budget 5%%)\n",
                kTrials, plain_med, instr_med, overhead_pct);
    JsonObject ab;
    ab.Put("trials", kTrials)
        .Put("obs_disabled_tput_median", plain_med)
        .Put("obs_enabled_tput_median", instr_med)
        .PutRaw("obs_disabled", plain_last.Json())
        .PutRaw("obs_enabled", instr_last.Json())
        .Put("overhead_pct", overhead_pct);
    obs_ab_json = ab.Str();
  }

  std::string hedge_ab_json;
  if (opt.hedge_ab) {
    hedge_ab_json = RunHedgeAbSection(opt, fixture);
  }

  std::string fleet_json;
  if (fleet_spec) {
    fleet_json = RunFleetSection(opt, fixture, *fleet_spec);
  }

  if (!opt.json_path.empty()) {
    JsonObject doc;
    doc.Put("bench", "bench_serving")
        .PutRaw("meta", JsonRunMeta())
        .Put("transport", opt.transport)
        .Put("clients", static_cast<std::uint64_t>(opt.clients))
        .Put("requests", static_cast<std::uint64_t>(opt.requests))
        .Put("offered_rps", opt.rps)
        .Put("blocks", static_cast<std::uint64_t>(opt.blocks))
        .Put("txs_per_block", static_cast<std::uint64_t>(opt.txs))
        .Put("fault_rate", opt.fault_rate)
        .Put("seed", opt.seed)
        .PutRaw("cache_disabled", off.Json())
        .PutRaw("cache_enabled", on.Json())
        .Put("cache_speedup", speedup);
    if (!obs_ab_json.empty()) doc.PutRaw("obs_ab", obs_ab_json);
    if (!hedge_ab_json.empty()) doc.PutRaw("hedge_ab", hedge_ab_json);
    if (!fleet_json.empty()) doc.PutRaw("fleet", fleet_json);
    doc.PutRaw("metrics", metrics_delta.Json());
    WriteJsonFile(opt.json_path, doc.Str());
  }
  return 0;
}
