// Pipelined vs serial certificate construction throughput: the same span of
// pre-mined blocks is certified once with the serial ProcessBlock loop and
// once with ProcessBlocksPipelined (prepare of block N+1 overlapped with the
// Ecall of block N). Reports per-stage breakdown, pipeline occupancy, and
// the throughput ratio, and — with --json <path> — writes the machine-
// readable BENCH_pipeline.json that starts the perf trajectory. On a single
// hardware thread the two stages timeshare and the ratio collapses to ~1x;
// the ≥1.5x target applies to ≥4-core hosts.
#include <thread>

#include "bench/bench_util.h"

using namespace dcert;
using namespace dcert::bench;

namespace {

struct RunStats {
  double wall_ms = 0.0;
  double blocks_per_s = 0.0;
  double rwset_ms = 0.0;    // busy totals across the span
  double proof_ms = 0.0;
  double commit_ms = 0.0;
  double enclave_ms = 0.0;
  double occupancy = 0.0;   // pipelined runs only

  std::string Json() const {
    JsonObject o;
    o.Put("wall_ms", wall_ms)
        .Put("blocks_per_s", blocks_per_s)
        .Put("rwset_ms", rwset_ms)
        .Put("proof_ms", proof_ms)
        .Put("commit_ms", commit_ms)
        .Put("enclave_ms", enclave_ms)
        .Put("occupancy", occupancy);
    return o.Str();
  }
};

void FillStageTotals(const core::CertTiming& t, RunStats& s) {
  s.rwset_ms = static_cast<double>(t.rwset_ns) / 1e6;
  s.proof_ms = static_cast<double>(t.proof_ns) / 1e6;
  s.commit_ms = static_cast<double>(t.commit_ns) / 1e6;
  s.enclave_ms = static_cast<double>(t.enclave_wall_ns) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ParseJsonPath(argc, argv);
  const MetricsDelta metrics_delta;
  const unsigned cores = std::thread::hardware_concurrency();
  PrintHeader("Pipeline", "pipelined vs serial certificate construction");
  PrintParams("block size 100 txs, 30 blocks per workload, 100 sender accounts; "
              "KV: 500 tuples, IO: 32 keys/tx; host cores: " +
              std::to_string(cores));

  std::printf("%4s | %10s %10s | %10s %10s | %7s %9s\n", "wl", "serial ms",
              "blk/s", "pipe ms", "blk/s", "speedup", "occupancy");
  std::printf("-----+-----------------------+-----------------------+------------------\n");

  const int kBlocks = 30;
  const std::size_t kBlockSize = 100;
  std::vector<std::string> json_rows;

  for (workloads::Workload kind :
       {workloads::Workload::kKvStore, workloads::Workload::kIoHeavy}) {
    // One rig mines the span; two fresh CIs (same config/registry/key) then
    // certify identical blocks, so the serial and pipelined runs are
    // byte-comparable.
    Rig rig(kind, /*accounts=*/100, /*instances=*/4);
    std::vector<chain::Block> blocks;
    blocks.reserve(kBlocks);
    for (int i = 0; i < kBlocks; ++i) blocks.push_back(rig.MineNext(kBlockSize));

    auto serial_ci =
        std::make_unique<core::CertificateIssuer>(rig.config, rig.registry);
    RunStats serial;
    core::CertTiming serial_total;
    {
      Stopwatch watch;
      for (const chain::Block& blk : blocks) {
        auto cert = serial_ci->ProcessBlock(blk);
        if (!cert.ok()) {
          std::fprintf(stderr, "serial cert failed: %s\n", cert.message().c_str());
          return 1;
        }
        const core::CertTiming& t = serial_ci->LastTiming();
        serial_total.rwset_ns += t.rwset_ns;
        serial_total.proof_ns += t.proof_ns;
        serial_total.commit_ns += t.commit_ns;
        serial_total.enclave_wall_ns += t.enclave_wall_ns;
      }
      serial.wall_ms = watch.ElapsedMs();
    }
    serial.blocks_per_s = 1000.0 * kBlocks / serial.wall_ms;
    FillStageTotals(serial_total, serial);

    auto pipe_ci =
        std::make_unique<core::CertificateIssuer>(rig.config, rig.registry);
    RunStats pipe;
    {
      Stopwatch watch;
      auto certs = pipe_ci->ProcessBlocksPipelined(blocks);
      if (!certs.ok()) {
        std::fprintf(stderr, "pipelined cert failed: %s\n", certs.message().c_str());
        return 1;
      }
      pipe.wall_ms = watch.ElapsedMs();
      // Determinism spot-check: the pipelined chain must land on the same
      // tip certificate the serial chain produced.
      if (certs.value().back().Serialize() !=
          serial_ci->LatestCert()->Serialize()) {
        std::fprintf(stderr, "pipelined tip certificate diverged from serial\n");
        return 1;
      }
    }
    pipe.blocks_per_s = 1000.0 * kBlocks / pipe.wall_ms;
    const core::CertTiming& pt = pipe_ci->LastTiming();
    FillStageTotals(pt, pipe);
    pipe.occupancy = pt.PipelineOccupancy();

    const double speedup = pipe.blocks_per_s / serial.blocks_per_s;
    std::printf("%4s | %10.1f %10.2f | %10.1f %10.2f | %6.2fx %8.0f%%\n",
                workloads::Name(kind).c_str(), serial.wall_ms,
                serial.blocks_per_s, pipe.wall_ms, pipe.blocks_per_s, speedup,
                100.0 * pipe.occupancy);

    JsonObject row;
    row.Put("workload", workloads::Name(kind))
        .Put("blocks", kBlocks)
        .Put("txs_per_block", static_cast<std::uint64_t>(kBlockSize))
        .PutRaw("serial", serial.Json())
        .PutRaw("pipelined", pipe.Json())
        .Put("speedup", speedup);
    json_rows.push_back(row.Str());
  }

  if (!json_path.empty()) {
    JsonObject doc;
    doc.Put("bench", "bench_pipeline")
        .Put("host_cores", static_cast<std::uint64_t>(cores))
        .PutRaw("meta", JsonRunMeta())
        .PutRaw("metrics", metrics_delta.Json())
        .PutRaw("workloads", JsonArray(json_rows));
    WriteJsonFile(json_path, doc.Str());
  }

  std::printf(
      "\ncolumns: serial = one ProcessBlock per block; pipe = ProcessBlocksPipelined\n"
      "(prepare of block N+1 overlaps the Ecall of block N); occupancy = busy\n"
      "fraction of the two pipeline stages over the span's wall time (100%% =\n"
      "both stages always busy, 50%% = no overlap).\n");
  return 0;
}
