// Ablation — Ecall batching: certifying a span of blocks in one Ecall
// amortizes the enclave transition, the previous-certificate verification,
// and the signing across the span. The effect is largest for small blocks,
// where the fixed trusted-side costs dominate. The trade-off is certification
// latency: intermediate blocks receive no certificates of their own.
#include "bench/bench_util.h"

using namespace dcert;
using namespace dcert::bench;

int main() {
  PrintHeader("Batching", "per-block certification cost vs Ecall batch size");
  PrintParams("KVStore blocks of 10 txs, 32 blocks total per configuration");

  std::printf("%10s | %13s %13s | %8s\n", "batch", "ms/block", "encl ms/blk",
              "ecalls");
  std::printf("-----------+-----------------------------+---------\n");

  const int kTotalBlocks = 32;
  for (int batch : {1, 2, 4, 8, 16}) {
    Rig rig(workloads::Workload::kKvStore, /*accounts=*/32, /*instances=*/1,
            sgxsim::CostModelParams{}, /*difficulty=*/2, /*kv_keys=*/100);
    double total_ms = 0;
    double enclave_ms = 0;
    std::uint64_t ecalls = 0;
    for (int done = 0; done < kTotalBlocks; done += batch) {
      std::vector<chain::Block> span;
      for (int i = 0; i < batch; ++i) span.push_back(rig.MineNext(10));
      auto cert = rig.ci->ProcessBlockBatch(span);
      if (!cert.ok()) {
        std::fprintf(stderr, "batch cert failed: %s\n", cert.message().c_str());
        return 1;
      }
      total_ms += rig.ci->LastTiming().TotalMs(true);
      enclave_ms += static_cast<double>(rig.ci->LastTiming().enclave_modeled_ns) / 1e6;
      ecalls += rig.ci->LastTiming().ecalls;
    }
    std::printf("%10d | %13.2f %13.2f | %8llu\n", batch, total_ms / kTotalBlocks,
                enclave_ms / kTotalBlocks, static_cast<unsigned long long>(ecalls));
  }

  std::printf(
      "\nper-block cost falls with batch size as the fixed trusted costs\n"
      "(transition, previous-certificate verification, signing) amortize.\n");
  return 0;
}
