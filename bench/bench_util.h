// Shared plumbing for the figure-reproduction benchmarks: a mining+CI rig,
// table formatting, and the Table-1 parameter banner. Each bench binary
// regenerates one figure of the paper (see EXPERIMENTS.md for the mapping
// and the scale-down factors relative to the paper's testbed).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chain/node.h"
#include "common/timing.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workloads/workloads.h"

namespace dcert::bench {

inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PrintParams(const std::string& params) {
  std::printf("parameters: %s\n\n", params.c_str());
}

/// A self-contained chain + CI + workload-generator rig.
struct Rig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<core::CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  std::unique_ptr<workloads::AccountPool> pool;
  std::unique_ptr<workloads::WorkloadGenerator> gen;

  Rig(workloads::Workload kind, std::size_t accounts, std::uint64_t instances,
      sgxsim::CostModelParams cost_model = {}, std::uint32_t difficulty = 4,
      std::uint64_t kv_keys = 500, std::uint64_t cpu_iterations = 256,
      std::uint64_t io_keys_per_tx = 32) {
    config.difficulty_bits = difficulty;
    registry = workloads::MakeBlockbenchRegistry(instances);
    ci = std::make_unique<core::CertificateIssuer>(config, registry, cost_model);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    pool = std::make_unique<workloads::AccountPool>(accounts, 42);
    workloads::WorkloadGenerator::Params params;
    params.kind = kind;
    params.instances_per_workload = instances;
    params.kv_keys = kv_keys;
    params.cpu_iterations = cpu_iterations;
    params.io_keys_per_tx = io_keys_per_tx;
    gen = std::make_unique<workloads::WorkloadGenerator>(params, *pool);
  }

  /// Mines a block of `txs` transactions and appends it to the miner's node
  /// (NOT to the CI — the caller decides how the CI processes it).
  chain::Block MineNext(std::size_t txs) {
    auto block = miner->MineBlock(gen->NextBlockTxs(txs),
                                  1700000000 + miner_node->Height() * 15);
    if (!block.ok()) throw std::runtime_error("mining: " + block.message());
    if (Status st = miner_node->SubmitBlock(block.value()); !st) {
      throw std::runtime_error("submit: " + st.message());
    }
    return std::move(block.value());
  }

  /// Mines a block from explicitly provided transactions.
  chain::Block MineTxs(std::vector<chain::Transaction> txs) {
    auto block = miner->MineBlock(std::move(txs),
                                  1700000000 + miner_node->Height() * 15);
    if (!block.ok()) throw std::runtime_error("mining: " + block.message());
    if (Status st = miner_node->SubmitBlock(block.value()); !st) {
      throw std::runtime_error("submit: " + st.message());
    }
    return std::move(block.value());
  }
};

/// Mean over a vector of doubles.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// p-th percentile (p in [0,1], nearest-rank with linear interpolation).
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

inline double Median(const std::vector<double>& xs) { return Percentile(xs, 0.5); }
inline double P95(const std::vector<double>& xs) { return Percentile(xs, 0.95); }

// ---------------------------------------------------------------------------
// Machine-readable output: each bench can emit a BENCH_<name>.json next to
// its table when invoked with `--json <path>` (EXPERIMENTS.md documents the
// trajectory convention). The writer is a minimal escape-correct builder —
// enough for flat objects, arrays, and one level of nesting via Raw().
// ---------------------------------------------------------------------------

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

class JsonObject {
 public:
  JsonObject& Put(const std::string& key, const std::string& value) {
    return PutRaw(key, "\"" + JsonEscape(value) + "\"");
  }
  JsonObject& Put(const std::string& key, const char* value) {
    return Put(key, std::string(value));
  }
  JsonObject& Put(const std::string& key, double value) {
    if (!std::isfinite(value)) return PutRaw(key, "null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return PutRaw(key, buf);
  }
  JsonObject& Put(const std::string& key, std::uint64_t value) {
    return PutRaw(key, std::to_string(value));
  }
  JsonObject& Put(const std::string& key, int value) {
    return PutRaw(key, std::to_string(value));
  }
  /// Inserts `json` (an already-encoded value: object, array, literal).
  JsonObject& PutRaw(const std::string& key, const std::string& json) {
    if (!fields_.empty()) fields_ += ",";
    fields_ += "\"" + JsonEscape(key) + "\":" + json;
    return *this;
  }
  std::string Str() const { return "{" + fields_ + "}"; }

 private:
  std::string fields_;
};

inline std::string JsonArray(const std::vector<std::string>& elems) {
  std::string out = "[";
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (i != 0) out += ",";
    out += elems[i];
  }
  return out + "]";
}

/// Encodes {mean, median, p95} of a sample vector as a JSON object.
inline std::string JsonStats(const std::vector<double>& xs) {
  JsonObject o;
  o.Put("mean", Mean(xs)).Put("median", Median(xs)).Put("p95", P95(xs));
  return o.Str();
}

/// Run metadata attached to every BENCH_*.json document (as a "meta" object)
/// so entries in the perf trajectory are attributable to a machine/config:
/// core count, build type, sanitizer, and the git SHA the binary was built
/// from (configure-time; "unknown" outside a git checkout).
inline std::string JsonRunMeta() {
  JsonObject o;
  o.Put("host_cores",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
#ifdef DCERT_BUILD_TYPE
  o.Put("build_type", DCERT_BUILD_TYPE);
#else
  o.Put("build_type", "unknown");
#endif
#ifdef DCERT_GIT_SHA
  o.Put("git_sha", DCERT_GIT_SHA);
#else
  o.Put("git_sha", "unknown");
#endif
  // Sanitizer state is always recorded (not just when one is on): perf
  // numbers from a TSan/ASan build are not comparable to plain builds, and
  // an explicit `"sanitized": false` distinguishes "clean build" from "old
  // binary that predates the field".
#ifdef DCERT_SANITIZE_NAME
  o.PutRaw("sanitized", DCERT_SANITIZE_NAME[0] != '\0' ? "true" : "false");
  if (DCERT_SANITIZE_NAME[0] != '\0') o.Put("sanitizer", DCERT_SANITIZE_NAME);
#else
  o.PutRaw("sanitized", "false");
#endif
  return o.Str();
}

/// Captures a registry snapshot at construction; Json() renders everything
/// recorded since then (counter deltas, histogram summary deltas) so each
/// BENCH_*.json carries the observability view of its own run — embed with
/// `doc.PutRaw("metrics", delta.Json())`.
class MetricsDelta {
 public:
  MetricsDelta() : base_(obs::MetricsRegistry::Global().Snapshot()) {}
  std::string Json() const {
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::Global().Snapshot().DeltaFrom(base_);
    // A histogram no code path fed during this run is noise in a committed
    // artifact (and reads as dead instrumentation) — drop it. Stages the
    // bench *does* exercise must show up with real counts.
    std::erase_if(delta.histograms,
                  [](const auto& kv) { return kv.second.count == 0; });
    return obs::ToJson(delta);
  }

 private:
  obs::MetricsSnapshot base_;
};

/// Returns the path following a `--json` flag, or empty when absent.
inline std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// Writes `json` to `path`; prints a confirmation line. Returns false (with
/// a stderr message) when the file cannot be written.
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("json written to %s\n", path.c_str());
  return true;
}

}  // namespace dcert::bench
