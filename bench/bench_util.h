// Shared plumbing for the figure-reproduction benchmarks: a mining+CI rig,
// table formatting, and the Table-1 parameter banner. Each bench binary
// regenerates one figure of the paper (see EXPERIMENTS.md for the mapping
// and the scale-down factors relative to the paper's testbed).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/node.h"
#include "common/timing.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

namespace dcert::bench {

inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PrintParams(const std::string& params) {
  std::printf("parameters: %s\n\n", params.c_str());
}

/// A self-contained chain + CI + workload-generator rig.
struct Rig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<core::CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  std::unique_ptr<workloads::AccountPool> pool;
  std::unique_ptr<workloads::WorkloadGenerator> gen;

  Rig(workloads::Workload kind, std::size_t accounts, std::uint64_t instances,
      sgxsim::CostModelParams cost_model = {}, std::uint32_t difficulty = 4,
      std::uint64_t kv_keys = 500, std::uint64_t cpu_iterations = 256,
      std::uint64_t io_keys_per_tx = 32) {
    config.difficulty_bits = difficulty;
    registry = workloads::MakeBlockbenchRegistry(instances);
    ci = std::make_unique<core::CertificateIssuer>(config, registry, cost_model);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    pool = std::make_unique<workloads::AccountPool>(accounts, 42);
    workloads::WorkloadGenerator::Params params;
    params.kind = kind;
    params.instances_per_workload = instances;
    params.kv_keys = kv_keys;
    params.cpu_iterations = cpu_iterations;
    params.io_keys_per_tx = io_keys_per_tx;
    gen = std::make_unique<workloads::WorkloadGenerator>(params, *pool);
  }

  /// Mines a block of `txs` transactions and appends it to the miner's node
  /// (NOT to the CI — the caller decides how the CI processes it).
  chain::Block MineNext(std::size_t txs) {
    auto block = miner->MineBlock(gen->NextBlockTxs(txs),
                                  1700000000 + miner_node->Height() * 15);
    if (!block.ok()) throw std::runtime_error("mining: " + block.message());
    if (Status st = miner_node->SubmitBlock(block.value()); !st) {
      throw std::runtime_error("submit: " + st.message());
    }
    return std::move(block.value());
  }

  /// Mines a block from explicitly provided transactions.
  chain::Block MineTxs(std::vector<chain::Transaction> txs) {
    auto block = miner->MineBlock(std::move(txs),
                                  1700000000 + miner_node->Height() * 15);
    if (!block.ok()) throw std::runtime_error("mining: " + block.message());
    if (Status st = miner_node->SubmitBlock(block.value()); !st) {
      throw std::runtime_error("submit: " + st.message());
    }
    return std::move(block.value());
  }
};

/// Mean over a vector of doubles.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace dcert::bench
