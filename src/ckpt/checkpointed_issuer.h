// A DurableCertificateIssuer wrapped with checkpoint cadence and log
// compaction: every `interval` certified blocks it seals a checkpoint of the
// issuer's state (and, optionally, the historical index content it shadows),
// prunes old checkpoints, and compacts log segments below the oldest retained
// checkpoint. Open() recovers through the newest valid checkpoint — restore
// the sealed key, install the certified snapshot, replay only the tail — so
// recovery time is O(delta) in the checkpoint interval, flat in chain length.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/status.h"
#include "dcert/durable_issuer.h"
#include "query/historical_index.h"

namespace dcert::ckpt {

struct CheckpointConfig {
  /// Directory holding the sealed checkpoint files.
  std::string dir;
  /// Write a checkpoint whenever the tip advanced `interval` blocks past the
  /// last one (0 disables writing; existing checkpoints still bootstrap).
  std::uint64_t interval = 0;
  /// Checkpoints retained after each write (>= 1). Compaction only drops log
  /// history below the *oldest* retained checkpoint, so every retained
  /// checkpoint stays recoverable even if newer files rot.
  std::size_t keep = 2;
  /// Shadow a historical index and carry its content in checkpoints, so a
  /// rehydrating service restores the index in O(content) instead of
  /// replaying the (compacted) chain.
  bool with_index = true;
  /// Compact log segments below the oldest retained checkpoint after each
  /// write. Requires DurableIssuerOptions::segment_records > 0 to have any
  /// effect (compaction drops whole sealed segments).
  bool compact_logs = true;
};

class CheckpointedIssuer {
 public:
  CheckpointedIssuer(CheckpointedIssuer&&) noexcept = default;
  CheckpointedIssuer(const CheckpointedIssuer&) = delete;
  CheckpointedIssuer& operator=(const CheckpointedIssuer&) = delete;

  /// Opens the durable issuer with a checkpoint bootstrap hook installed:
  /// resume loads the newest valid checkpoint (if any), installs its
  /// certified snapshot, and replays only the stored tail above it. The
  /// shadow index is restored from the checkpoint's content and caught up
  /// over the same tail. A cadence already overdue at open (e.g. recovery
  /// crossed an interval boundary) triggers an immediate checkpoint.
  static Result<CheckpointedIssuer> Open(
      chain::ChainConfig config,
      std::shared_ptr<const chain::ContractRegistry> registry,
      core::DurableIssuerOptions options, CheckpointConfig ckpt);

  /// CertifyBlock + shadow-index apply + cadence check.
  Status CertifyBlock(const chain::Block& blk);

  /// CertifyBlocksPipelined + shadow-index apply; the cadence check runs
  /// once at the span boundary (mid-span the pipelined node state may
  /// already be ahead of the block being announced, so a mid-span snapshot
  /// would be inconsistent).
  Status CertifyBlocksPipelined(const std::vector<chain::Block>& blocks);

  /// Seals a checkpoint at the current tip regardless of cadence.
  Status WriteCheckpointNow();

  core::DurableCertificateIssuer& Durable() { return inner_; }
  const core::DurableCertificateIssuer& Durable() const { return inner_; }
  CheckpointStore& Store() { return store_; }
  const CheckpointStore& Store() const { return store_; }
  /// Height of the newest checkpoint this instance wrote or bootstrapped
  /// from (0 = none yet).
  std::uint64_t LastCheckpointHeight() const { return last_ckpt_; }
  /// Checkpoint height recovery resumed from (0 = full replay / fresh).
  std::uint64_t BootstrapHeight() const {
    return inner_.Recovery().bootstrap_height;
  }
  const query::HistoricalIndex& ShadowIndex() const { return shadow_; }

 private:
  CheckpointedIssuer(CheckpointConfig config, CheckpointStore store,
                     core::DurableCertificateIssuer inner,
                     query::HistoricalIndex shadow, std::uint64_t shadow_next,
                     std::uint64_t last_ckpt);

  bool ShadowActive() const {
    return config_.with_index && config_.interval > 0;
  }
  /// Applies stored blocks [shadow_next_, height] to the shadow index.
  Status AdvanceShadowTo(std::uint64_t height);
  /// Writes a checkpoint when the cadence is due.
  Status MaybeCheckpoint();

  CheckpointConfig config_;
  CheckpointStore store_;
  core::DurableCertificateIssuer inner_;
  query::HistoricalIndex shadow_;
  std::uint64_t shadow_next_ = 1;  // next height to apply to the shadow
  std::uint64_t last_ckpt_ = 0;
};

}  // namespace dcert::ckpt
