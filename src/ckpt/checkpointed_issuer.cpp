#include "ckpt/checkpointed_issuer.h"

#include <memory>
#include <utility>

#include "dcert/enclave_program.h"
#include "obs/metrics.h"

namespace dcert::ckpt {

namespace {

struct IssuerCkptMetrics {
  std::shared_ptr<obs::Counter> compactions;
  std::shared_ptr<obs::Gauge> bootstrap_height;
  std::shared_ptr<obs::Gauge> tail_replayed;

  static IssuerCkptMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static IssuerCkptMetrics* m = new IssuerCkptMetrics{
        reg.GetCounter("ci.ckpt.compactions"),
        reg.GetGauge("ci.ckpt.bootstrap_height"),
        reg.GetGauge("ci.ckpt.tail_replayed")};
    return *m;
  }
};

}  // namespace

CheckpointedIssuer::CheckpointedIssuer(CheckpointConfig config,
                                       CheckpointStore store,
                                       core::DurableCertificateIssuer inner,
                                       query::HistoricalIndex shadow,
                                       std::uint64_t shadow_next,
                                       std::uint64_t last_ckpt)
    : config_(std::move(config)),
      store_(std::move(store)),
      inner_(std::move(inner)),
      shadow_(std::move(shadow)),
      shadow_next_(shadow_next),
      last_ckpt_(last_ckpt) {}

Result<CheckpointedIssuer> CheckpointedIssuer::Open(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    core::DurableIssuerOptions options, CheckpointConfig ckpt) {
  using R = Result<CheckpointedIssuer>;
  auto store = CheckpointStore::Open(ckpt.dir);
  if (!store) return R(store.status());

  const bool shadow_active = ckpt.with_index && ckpt.interval > 0;
  query::HistoricalIndex shadow;
  std::uint64_t shadow_next = 1;
  std::uint64_t last_ckpt = 0;

  // The bootstrap hook runs synchronously inside DurableCertificateIssuer::
  // Open (resume path only), so capturing the locals above by reference is
  // safe: they outlive the call and carry the restored shadow state out.
  options.bootstrap = [&](core::CertificateIssuer& issuer,
                          const chain::BlockStore& blocks)
      -> Result<std::uint64_t> {
    using RB = Result<std::uint64_t>;
    if (blocks.Count() == 0) return std::uint64_t{0};
    auto latest = store.value().LoadLatestValid(
        blocks.Count() - 1, core::ExpectedEnclaveMeasurement());
    if (!latest) return RB(latest.status());
    if (!latest.value().has_value()) return std::uint64_t{0};
    Checkpoint& ck = *latest.value();
    if (!ck.has_body || !ck.has_state) {
      return RB::Error("checkpoint bootstrap: checkpoint at height " +
                       std::to_string(ck.height) +
                       " lacks the body/state an issuer resume needs");
    }
    if (Status st = issuer.InstallSnapshot(ck.TipBlock(), ck.state,
                                           ck.block_cert);
        !st) {
      return RB(st);
    }
    if (shadow_active) {
      if (!ck.has_index) {
        return RB::Error("checkpoint bootstrap: checkpoint at height " +
                         std::to_string(ck.height) +
                         " carries no index content but the shadow index "
                         "needs it (pre-checkpoint blocks may be compacted)");
      }
      if (Status st = shadow.RestoreContent(ck.index_content); !st) {
        return RB(st.WithContext("checkpoint shadow index"));
      }
      if (shadow.CurrentDigest() != ck.index_digest) {
        return RB::Error(
            "checkpoint bootstrap: restored index content does not reproduce "
            "the checkpoint's digest");
      }
    }
    shadow_next = ck.height + 1;
    last_ckpt = ck.height;
    return ck.height;
  };

  auto inner = core::DurableCertificateIssuer::Open(std::move(config),
                                                    std::move(registry),
                                                    std::move(options));
  if (!inner) return R(inner.status());

  auto& m = IssuerCkptMetrics::Get();
  m.bootstrap_height->Set(
      static_cast<std::int64_t>(inner.value().Recovery().bootstrap_height));
  m.tail_replayed->Set(
      static_cast<std::int64_t>(inner.value().Recovery().blocks_replayed +
                                inner.value().Recovery().blocks_recertified));

  CheckpointedIssuer out(std::move(ckpt), std::move(store.value()),
                         std::move(inner.value()), std::move(shadow),
                         shadow_next, last_ckpt);
  // Catch the shadow up over the replayed tail, then honor a cadence that
  // came due while the issuer was down.
  if (Status st = out.AdvanceShadowTo(out.inner_.Issuer().Node().Height());
      !st) {
    return R(st);
  }
  if (Status st = out.MaybeCheckpoint(); !st) return R(st);
  return out;
}

Status CheckpointedIssuer::AdvanceShadowTo(std::uint64_t height) {
  if (!ShadowActive()) return Status::Ok();
  for (; shadow_next_ <= height; ++shadow_next_) {
    auto blk = inner_.Blocks().Get(shadow_next_);
    if (!blk) return blk.status().WithContext("shadow index catch-up");
    (void)shadow_.ApplyBlockCapturingAux(blk.value());  // aux proofs unused
  }
  return Status::Ok();
}

Status CheckpointedIssuer::MaybeCheckpoint() {
  if (config_.interval == 0) return Status::Ok();
  const std::uint64_t tip = inner_.Issuer().Node().Height();
  if (tip == 0 || tip - last_ckpt_ < config_.interval) return Status::Ok();
  return WriteCheckpointNow();
}

Status CheckpointedIssuer::WriteCheckpointNow() {
  const chain::FullNode& node = inner_.Issuer().Node();
  const std::uint64_t tip = node.Height();
  if (tip == 0) return Status::Error("checkpoint: nothing to checkpoint yet");
  if (!inner_.Issuer().LatestCert()) {
    return Status::Error("checkpoint: tip carries no certificate");
  }
  if (ShadowActive() && shadow_next_ != tip + 1) {
    return Status::Error("checkpoint: shadow index is not at the tip");
  }

  Checkpoint ck;
  ck.height = tip;
  const chain::Block& tip_block = node.Tip();
  ck.header = tip_block.header;
  ck.has_body = true;
  ck.txs = tip_block.txs;
  ck.block_cert = *inner_.Issuer().LatestCert();
  ck.has_state = true;
  ck.state = node.State().Snapshot();
  if (ShadowActive()) {
    ck.has_index = true;
    ck.index_digest = shadow_.CurrentDigest();
    ck.index_content = shadow_.SerializeContent();
  }

  if (Status st = store_.Write(ck); !st) return st;
  if (Status st = store_.Prune(config_.keep); !st) return st;
  last_ckpt_ = tip;

  if (config_.compact_logs) {
    // Compact below the *oldest* retained checkpoint, never the newest: any
    // retained checkpoint then still has its anchor block + cert and a
    // replayable tail, so falling back past a rotten newest file works.
    const std::vector<std::uint64_t> retained = store_.Heights();
    if (!retained.empty()) {
      if (Status st = inner_.CompactBelow(retained.front()); !st) return st;
      IssuerCkptMetrics::Get().compactions->Add(1);
    }
  }
  return Status::Ok();
}

Status CheckpointedIssuer::CertifyBlock(const chain::Block& blk) {
  if (Status st = inner_.CertifyBlock(blk); !st) return st;
  if (ShadowActive() && blk.header.height == shadow_next_) {
    (void)shadow_.ApplyBlockCapturingAux(blk);
    ++shadow_next_;
  }
  return MaybeCheckpoint();
}

Status CheckpointedIssuer::CertifyBlocksPipelined(
    const std::vector<chain::Block>& blocks) {
  if (Status st = inner_.CertifyBlocksPipelined(blocks); !st) return st;
  if (ShadowActive()) {
    for (const chain::Block& blk : blocks) {
      if (blk.header.height != shadow_next_) continue;
      (void)shadow_.ApplyBlockCapturingAux(blk);
      ++shadow_next_;
    }
  }
  return MaybeCheckpoint();
}

}  // namespace dcert::ckpt
