// Certified checkpoints: a sealed, CRC'd snapshot of everything a recovering
// issuer or service needs at one height H — the tip header (optionally with
// its body), its block certificate, the full SMT state, and the historical
// index's raw content with its certified digest — so recovery replays only
// the tail above H and a superlight client bootstraps from (checkpoint, cert)
// instead of walking from genesis.
//
// Trust argument: nothing in a checkpoint is trusted on its own. The block
// certificate signs the tip header; the header commits the state root and the
// tx root; VerifyCheckpoint rebuilds the SMT from the snapshot entries and
// requires its root to equal the certified header's state root (and the body,
// when present, to hash to the tx root). Index content is restored through
// the same deterministic insert path the live index used, so the restored
// digest either reproduces the certified index digest exactly or the
// comparison fails — a tampered checkpoint cannot produce a verifying state.
//
// File format (one checkpoint per file, `ckpt-<height>.dcp`):
//   u32 magic "DCKP" | u32 version | payload | u32 CRC-32 over all preceding
// written via tmp + fsync + rename + dir-fsync, so a torn write never
// shadows the final name. Crash sites: ckpt.seal.begin (before any write),
// ckpt.seal.torn (leaves a torn tmp file behind), ckpt.seal.commit (after
// the rename is durable), ckpt.prune.unlink (before pruning unlinks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/state.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/certificate.h"
#include "dcert/superlight.h"

namespace dcert::ckpt {

/// One certified checkpoint. Two flavors share the format:
///  * issuer checkpoints carry the tip body and the SMT state (has_body,
///    has_state) — enough to re-base a CertificateIssuer;
///  * service (SP) checkpoints carry the index content plus the *real* index
///    certificate the SP received with its last announcement (has_index,
///    has_index_cert) — enough to rehydrate a query server whose queries
///    verify immediately.
struct Checkpoint {
  std::uint64_t height = 0;      // == header.height, named for the file
  chain::BlockHeader header;     // certified tip header at `height`
  core::BlockCertificate block_cert;

  bool has_body = false;         // tip transactions present
  std::vector<chain::Transaction> txs;

  bool has_state = false;        // full SMT snapshot present
  chain::StateMap state;

  bool has_index = false;        // historical-index content present
  Hash256 index_digest{};        // index digest at `height`
  Bytes index_content;           // query::HistoricalIndex::SerializeContent

  bool has_index_cert = false;   // certified index digest (SP checkpoints)
  core::IndexCertificate index_cert;

  /// The tip block (requires has_body).
  chain::Block TipBlock() const { return chain::Block{header, txs}; }

  /// Full file bytes: magic + version + payload + trailing CRC.
  Bytes Serialize() const;
  static Result<Checkpoint> Deserialize(ByteView data);
};

/// Verifies everything verifiable without replay: the certificate envelope
/// against the pinned enclave measurement, the digest binding to the header,
/// the header's consensus proof, the body against the tx root (when
/// present), the state snapshot against the state root (when present), and
/// the index certificate's binding to (header, index_digest) (when present).
/// Index *content* is deliberately not checked here — restoring it is the
/// check (see file comment); callers compare the restored digest.
Status VerifyCheckpoint(const Checkpoint& ck, const Hash256& expected_measurement);

/// O(1) superlight bootstrap (the paper's light-client claim made portable
/// across restarts): feeds the checkpoint's (header, cert) — and index cert,
/// when carried — to the client, which verifies them exactly as live
/// announcements. Constant cost regardless of chain length.
Status BootstrapSuperlight(core::SuperlightClient& client, const Checkpoint& ck,
                           const std::string& index_id = "historical");

/// Directory of sealed checkpoint files. Open() cleans up torn tmp files a
/// crashed seal left behind; Write() is atomic (see file comment); readers
/// skip files that fail CRC or verification, so one corrupt checkpoint
/// degrades to the previous one instead of wedging recovery.
class CheckpointStore {
 public:
  CheckpointStore(CheckpointStore&&) noexcept = default;
  CheckpointStore& operator=(CheckpointStore&&) noexcept = default;
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Opens (creating if absent) the checkpoint directory.
  static Result<CheckpointStore> Open(std::string dir);

  /// Seals `ck` durably under its height's file name (tmp + fsync + rename +
  /// dir fsync). Overwrites an existing checkpoint at the same height.
  Status Write(const Checkpoint& ck);

  /// Loads and CRC-validates the checkpoint at `height`.
  Result<Checkpoint> Load(std::uint64_t height) const;

  /// Heights with a checkpoint file, ascending (rescans the directory).
  std::vector<std::uint64_t> Heights() const;

  /// Newest checkpoint with height <= max_height that decodes, CRC-checks,
  /// and passes VerifyCheckpoint; invalid ones are skipped (counted in
  /// ci.ckpt.load_skipped). nullopt when none qualifies.
  Result<std::optional<Checkpoint>> LoadLatestValid(
      std::uint64_t max_height, const Hash256& expected_measurement) const;

  /// Unlinks all but the newest `keep` checkpoints (keep >= 1).
  Status Prune(std::size_t keep);

  const std::string& Dir() const { return dir_; }

 private:
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  std::string FilePath(std::uint64_t height) const;

  std::string dir_;
};

}  // namespace dcert::ckpt
