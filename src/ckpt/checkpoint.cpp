#include "ckpt/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "chain/consensus.h"
#include "common/crash_point.h"
#include "common/io_fault.h"
#include "common/record_log.h"
#include "common/serialize.h"
#include "obs/metrics.h"

namespace dcert::ckpt {

namespace {

constexpr std::uint32_t kCkptMagic = 0x44434B50;  // "DCKP"
constexpr std::uint32_t kCkptVersion = 1;
constexpr const char* kFilePrefix = "ckpt-";
constexpr const char* kFileSuffix = ".dcp";

/// Process-wide checkpoint metrics (the ci.ckpt.* family).
struct CkptMetrics {
  std::shared_ptr<obs::Counter> written;
  std::shared_ptr<obs::Counter> bytes_written;
  std::shared_ptr<obs::Counter> loaded;
  std::shared_ptr<obs::Counter> load_skipped;
  std::shared_ptr<obs::Counter> pruned;
  std::shared_ptr<obs::Gauge> latest_height;

  static CkptMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static CkptMetrics* m = new CkptMetrics{
        reg.GetCounter("ci.ckpt.written"),
        reg.GetCounter("ci.ckpt.bytes_written"),
        reg.GetCounter("ci.ckpt.loaded"),
        reg.GetCounter("ci.ckpt.load_skipped"),
        reg.GetCounter("ci.ckpt.pruned"),
        reg.GetGauge("ci.ckpt.latest_height")};
    return *m;
  }
};

Status FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Error("checkpoint: open dir " + dir + ": " +
                         std::strerror(errno));
  }
  if (::fsync(dfd) < 0) {
    const Status st = Status::Error("checkpoint: fsync dir " + dir + ": " +
                                    std::strerror(errno));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::Ok();
}

Status WriteAll(int fd, ByteView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w = ::write(fd, data.data() + done, data.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("checkpoint: write: ") +
                           std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

Result<Bytes> ReadWholeFile(const std::string& path) {
  using R = Result<Bytes>;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return R::Error("checkpoint: open " + path + ": " + std::strerror(errno));
  }
  struct stat sb;
  if (::fstat(fd, &sb) < 0) {
    const Status st = Status::Error("checkpoint: stat " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return R(st);
  }
  Bytes data(static_cast<std::size_t>(sb.st_size));
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t r = ::read(fd, data.data() + done, data.size() - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::Error(std::string("checkpoint: read: ") + std::strerror(errno));
      ::close(fd);
      return R(st);
    }
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  ::close(fd);
  if (done != data.size()) {
    return R::Error("checkpoint: short read of " + path);
  }
  return data;
}

/// Parses "ckpt-<height>.dcp"; nullopt for anything else.
std::optional<std::uint64_t> ParseHeight(const std::string& name) {
  const std::size_t plen = std::strlen(kFilePrefix);
  const std::size_t slen = std::strlen(kFileSuffix);
  if (name.size() <= plen + slen) return std::nullopt;
  if (name.compare(0, plen, kFilePrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - slen, slen, kFileSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t h = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    h = h * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return h;
}

}  // namespace

Bytes Checkpoint::Serialize() const {
  Encoder enc;
  enc.U32(kCkptMagic);
  enc.U32(kCkptVersion);
  enc.U64(height);
  enc.Blob(header.Serialize());
  enc.Blob(block_cert.Serialize());
  enc.Bool(has_body);
  if (has_body) {
    enc.U32(static_cast<std::uint32_t>(txs.size()));
    for (const chain::Transaction& tx : txs) enc.Blob(tx.Serialize());
  }
  enc.Bool(has_state);
  if (has_state) {
    enc.U64(state.size());
    for (const auto& [key, value] : state) {  // std::map: key order, canonical
      enc.HashField(key);
      enc.U64(value);
    }
  }
  enc.Bool(has_index);
  if (has_index) {
    enc.HashField(index_digest);
    enc.Blob(index_content);
  }
  enc.Bool(has_index_cert);
  if (has_index_cert) enc.Blob(index_cert.Serialize());

  Bytes out = enc.Take();
  const std::uint32_t crc = common::Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF));
  }
  return out;
}

Result<Checkpoint> Checkpoint::Deserialize(ByteView data) {
  using R = Result<Checkpoint>;
  if (data.size() < 4) return R::Error("checkpoint: truncated file");
  const ByteView body = data.subspan(0, data.size() - 4);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data[data.size() - 4 + i]) << (8 * i);
  }
  if (common::Crc32(body) != stored) {
    return R::Error("checkpoint: CRC mismatch (torn or corrupt file)");
  }
  try {
    Decoder dec(body);
    if (dec.U32() != kCkptMagic) return R::Error("checkpoint: bad magic");
    if (const std::uint32_t v = dec.U32(); v != kCkptVersion) {
      return R::Error("checkpoint: unknown version " + std::to_string(v));
    }
    Checkpoint ck;
    ck.height = dec.U64();
    {
      const Bytes hdr = dec.Blob();
      auto header = chain::BlockHeader::Deserialize(hdr);
      if (!header) return R(header.status());
      ck.header = header.value();
    }
    {
      const Bytes cert = dec.Blob();
      auto bc = core::BlockCertificate::Deserialize(cert);
      if (!bc) return R(bc.status());
      ck.block_cert = std::move(bc.value());
    }
    ck.has_body = dec.Bool();
    if (ck.has_body) {
      const std::uint32_t n = dec.U32();
      ck.txs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const Bytes raw = dec.Blob();
        auto tx = chain::Transaction::Deserialize(raw);
        if (!tx) return R(tx.status());
        ck.txs.push_back(std::move(tx.value()));
      }
    }
    ck.has_state = dec.Bool();
    if (ck.has_state) {
      const std::uint64_t n = dec.U64();
      for (std::uint64_t i = 0; i < n; ++i) {
        const Hash256 key = dec.HashField();
        const std::uint64_t value = dec.U64();
        ck.state.emplace(key, value);
      }
    }
    ck.has_index = dec.Bool();
    if (ck.has_index) {
      ck.index_digest = dec.HashField();
      ck.index_content = dec.Blob();
    }
    ck.has_index_cert = dec.Bool();
    if (ck.has_index_cert) {
      const Bytes cert = dec.Blob();
      auto ic = core::IndexCertificate::Deserialize(cert);
      if (!ic) return R(ic.status());
      ck.index_cert = std::move(ic.value());
    }
    dec.ExpectEnd();
    return ck;
  } catch (const DecodeError& e) {
    return R::Error(std::string("checkpoint: ") + e.what());
  }
}

Status VerifyCheckpoint(const Checkpoint& ck,
                        const Hash256& expected_measurement) {
  if (ck.height == 0) return Status::Error("checkpoint: height must be >= 1");
  if (ck.header.height != ck.height) {
    return Status::Error("checkpoint: header height does not match file height");
  }
  if (Status st = core::VerifyCertificateEnvelope(ck.block_cert,
                                                  expected_measurement);
      !st) {
    return st.WithContext("checkpoint block certificate");
  }
  if (ck.block_cert.digest != ck.header.Hash()) {
    return Status::Error(
        "checkpoint: certificate does not bind the tip header");
  }
  if (Status st = chain::VerifyConsensus(ck.header); !st) {
    return st.WithContext("checkpoint tip header");
  }
  if (ck.has_body) {
    if (chain::Block::ComputeTxRoot(ck.txs) != ck.header.tx_root) {
      return Status::Error(
          "checkpoint: body does not hash to the certified tx root");
    }
  }
  if (ck.has_state) {
    chain::StateDB rebuilt;
    rebuilt.ApplyWrites(ck.state);
    if (rebuilt.Root() != ck.header.state_root) {
      return Status::Error(
          "checkpoint: state snapshot does not hash to the certified state "
          "root");
    }
  }
  if (ck.has_index_cert) {
    if (!ck.has_index) {
      return Status::Error("checkpoint: index certificate without index");
    }
    if (Status st = core::VerifyCertificateEnvelope(ck.index_cert,
                                                    expected_measurement);
        !st) {
      return st.WithContext("checkpoint index certificate");
    }
    if (ck.index_cert.digest !=
        core::IndexCertDigest(ck.header.Hash(), ck.index_digest)) {
      return Status::Error(
          "checkpoint: index certificate does not bind (header, digest)");
    }
  }
  return Status::Ok();
}

Status BootstrapSuperlight(core::SuperlightClient& client, const Checkpoint& ck,
                           const std::string& index_id) {
  if (Status st = client.ValidateAndAccept(ck.header, ck.block_cert); !st) {
    return st.WithContext("superlight checkpoint bootstrap");
  }
  if (ck.has_index_cert) {
    if (Status st = client.AcceptIndexCert(ck.header, ck.index_cert,
                                           ck.index_digest, index_id);
        !st) {
      return st.WithContext("superlight checkpoint index cert");
    }
  }
  return Status::Ok();
}

Result<CheckpointStore> CheckpointStore::Open(std::string dir) {
  using R = Result<CheckpointStore>;
  if (::mkdir(dir.c_str(), 0777) < 0 && errno != EEXIST) {
    return R::Error("checkpoint: mkdir " + dir + ": " + std::strerror(errno));
  }
  // Clean up torn tmp files a crashed seal left behind; they were never
  // renamed into place, so unlinking them is always safe.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return R::Error("checkpoint: opendir " + dir + ": " + std::strerror(errno));
  }
  bool removed = false;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      ::unlink((dir + "/" + name).c_str());
      removed = true;
    }
  }
  ::closedir(d);
  if (removed) {
    if (Status st = FsyncDir(dir); !st) return R(st);
  }
  return CheckpointStore(std::move(dir));
}

std::string CheckpointStore::FilePath(std::uint64_t height) const {
  return dir_ + "/" + kFilePrefix + std::to_string(height) + kFileSuffix;
}

Status CheckpointStore::Write(const Checkpoint& ck) {
  auto& crash = common::CrashPoints::Global();
  crash.Hit("ckpt.seal.begin");
  const Bytes bytes = ck.Serialize();
  const std::string final_path = FilePath(ck.height);
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Error("checkpoint: open " + tmp_path + ": " +
                         std::strerror(errno));
  }
  if (crash.FireNow("ckpt.seal.torn")) {
    // Torn seal: half the bytes land in the tmp file, then the "process
    // dies". The tmp file never shadows the final name; Open() unlinks it.
    (void)!WriteAll(fd, ByteView(bytes.data(), bytes.size() / 2));
    ::close(fd);
    common::CrashPoints::Throw("ckpt.seal.torn");
  }
  switch (common::IoFaultInjector::Global().OnWrite("ckpt.write")) {
    case common::IoFaultDecision::kFailWrite:
      ::close(fd);
      return Status::Error("checkpoint: write " + tmp_path +
                           ": injected I/O error");
    case common::IoFaultDecision::kShortWrite:
      // Half the bytes land in the tmp file, then the write "fails". The
      // torn tmp never shadows the final name; Open() unlinks it.
      (void)!WriteAll(fd, ByteView(bytes.data(), bytes.size() / 2));
      ::close(fd);
      return Status::Error("checkpoint: write " + tmp_path +
                           ": injected short write");
    case common::IoFaultDecision::kNone:
      break;
  }
  if (Status st = WriteAll(fd, bytes); !st) {
    ::close(fd);
    return st;
  }
  if (common::IoFaultInjector::Global().OnFsync("ckpt.write")) {
    ::close(fd);
    return Status::Error("checkpoint: fsync " + tmp_path +
                         ": injected I/O error");
  }
  if (::fsync(fd) < 0) {
    const Status st =
        Status::Error(std::string("checkpoint: fsync: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) < 0) {
    return Status::Error("checkpoint: rename " + tmp_path + ": " +
                         std::strerror(errno));
  }
  if (Status st = FsyncDir(dir_); !st) return st;
  crash.Hit("ckpt.seal.commit");

  auto& m = CkptMetrics::Get();
  m.written->Add(1);
  m.bytes_written->Add(bytes.size());
  m.latest_height->Set(static_cast<std::int64_t>(ck.height));
  return Status::Ok();
}

Result<Checkpoint> CheckpointStore::Load(std::uint64_t height) const {
  using R = Result<Checkpoint>;
  auto data = ReadWholeFile(FilePath(height));
  if (!data) return R(data.status());
  auto ck = Checkpoint::Deserialize(data.value());
  if (!ck) return ck;
  if (ck.value().height != height) {
    return R::Error("checkpoint: file " + FilePath(height) +
                    " contains height " + std::to_string(ck.value().height));
  }
  return ck;
}

std::vector<std::uint64_t> CheckpointStore::Heights() const {
  std::vector<std::uint64_t> heights;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return heights;
  while (struct dirent* ent = ::readdir(d)) {
    if (auto h = ParseHeight(ent->d_name)) heights.push_back(*h);
  }
  ::closedir(d);
  std::sort(heights.begin(), heights.end());
  return heights;
}

Result<std::optional<Checkpoint>> CheckpointStore::LoadLatestValid(
    std::uint64_t max_height, const Hash256& expected_measurement) const {
  using R = Result<std::optional<Checkpoint>>;
  std::vector<std::uint64_t> heights = Heights();
  auto& m = CkptMetrics::Get();
  for (auto it = heights.rbegin(); it != heights.rend(); ++it) {
    if (*it > max_height) continue;
    auto ck = Load(*it);
    if (!ck) {
      m.load_skipped->Add(1);
      continue;  // torn/corrupt file: fall back to the previous checkpoint
    }
    if (Status st = VerifyCheckpoint(ck.value(), expected_measurement); !st) {
      m.load_skipped->Add(1);
      continue;
    }
    m.loaded->Add(1);
    return R(std::optional<Checkpoint>(std::move(ck.value())));
  }
  return R(std::optional<Checkpoint>());
}

Status CheckpointStore::Prune(std::size_t keep) {
  if (keep == 0) return Status::Error("checkpoint: prune must keep >= 1");
  std::vector<std::uint64_t> heights = Heights();
  if (heights.size() <= keep) return Status::Ok();
  auto& crash = common::CrashPoints::Global();
  crash.Hit("ckpt.prune.unlink");
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i + keep < heights.size(); ++i) {
    if (::unlink(FilePath(heights[i]).c_str()) < 0 && errno != ENOENT) {
      return Status::Error("checkpoint: unlink " + FilePath(heights[i]) + ": " +
                           std::strerror(errno));
    }
    ++removed;
  }
  if (Status st = FsyncDir(dir_); !st) return st;
  CkptMetrics::Get().pruned->Add(removed);
  return Status::Ok();
}

}  // namespace dcert::ckpt
