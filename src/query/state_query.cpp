#include "query/state_query.h"

#include <set>

namespace dcert::query {

StateQueryProof ProveState(const chain::StateDB& db, const chain::StateKey& key) {
  StateQueryProof proof;
  proof.value = db.Load(key);
  proof.smt_proof = db.ProveKeys({key});
  return proof;
}

MultiStateQueryProof ProveStates(const chain::StateDB& db,
                                 const std::vector<chain::StateKey>& keys) {
  MultiStateQueryProof proof;
  for (const chain::StateKey& key : keys) proof.values[key] = db.Load(key);
  proof.smt_proof = db.ProveKeys(keys);
  return proof;
}

Result<std::uint64_t> VerifyState(const Hash256& certified_state_root,
                                  const chain::StateKey& key,
                                  const StateQueryProof& proof) {
  using R = Result<std::uint64_t>;
  std::map<Hash256, Hash256> leaves{{key, chain::StateValueHash(proof.value)}};
  if (mht::SparseMerkleTree::ComputeRootFromProof(proof.smt_proof, leaves) !=
      certified_state_root) {
    return R::Error("state proof does not match the certified state root");
  }
  return proof.value;
}

Status VerifyStates(const Hash256& certified_state_root,
                    const std::vector<chain::StateKey>& keys,
                    const MultiStateQueryProof& proof) {
  std::set<chain::StateKey> wanted(keys.begin(), keys.end());
  if (proof.values.size() != wanted.size()) {
    return Status::Error("state proof covers a different key set");
  }
  std::map<Hash256, Hash256> leaves;
  for (const auto& [key, value] : proof.values) {
    if (wanted.count(key) == 0) {
      return Status::Error("state proof contains an unrequested key");
    }
    leaves[key] = chain::StateValueHash(value);
  }
  if (mht::SparseMerkleTree::ComputeRootFromProof(proof.smt_proof, leaves) !=
      certified_state_root) {
    return Status::Error("state proof does not match the certified state root");
  }
  return Status::Ok();
}

Bytes StateQueryProof::Serialize() const {
  Encoder enc;
  enc.U64(value);
  enc.Blob(smt_proof.Serialize());
  return enc.Take();
}

Result<StateQueryProof> StateQueryProof::Deserialize(ByteView data) {
  using R = Result<StateQueryProof>;
  try {
    Decoder dec(data);
    StateQueryProof proof;
    proof.value = dec.U64();
    Bytes smt = dec.Blob();
    dec.ExpectEnd();
    auto parsed = mht::SmtMultiProof::Deserialize(smt);
    if (!parsed) return R(parsed.status());
    proof.smt_proof = std::move(parsed.value());
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("StateQueryProof: ") + e.what());
  }
}

Bytes MultiStateQueryProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(values.size()));
  for (const auto& [key, value] : values) {
    enc.HashField(key);
    enc.U64(value);
  }
  enc.Blob(smt_proof.Serialize());
  return enc.Take();
}

Result<MultiStateQueryProof> MultiStateQueryProof::Deserialize(ByteView data) {
  using R = Result<MultiStateQueryProof>;
  try {
    Decoder dec(data);
    MultiStateQueryProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      Hash256 key = dec.HashField();
      proof.values[key] = dec.U64();
    }
    Bytes smt = dec.Blob();
    dec.ExpectEnd();
    auto parsed = mht::SmtMultiProof::Deserialize(smt);
    if (!parsed) return R(parsed.status());
    proof.smt_proof = std::move(parsed.value());
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("MultiStateQueryProof: ") + e.what());
  }
}

}  // namespace dcert::query
