// Certified keyword index (paper Fig. 5, right): an authenticated inverted
// index over transactions supporting conjunctive keyword queries, certified
// on demand by the CI like any other index.
#pragma once

#include <string>
#include <vector>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/index_verifier.h"
#include "dcert/issuer.h"
#include "mht/inverted_index.h"
#include "query/extraction.h"

namespace dcert::query {

class KeywordIndexVerifier final : public core::IndexUpdateVerifier {
 public:
  std::string TypeName() const override { return "keyword-inverted"; }
  Hash256 GenesisDigest() const override {
    return mht::SparseMerkleTree().Root();
  }
  Result<Hash256> ApplyUpdate(const Hash256& old_digest, ByteView aux_proof,
                              const chain::Block& blk) const override;
};

class KeywordIndex final : public core::CertifiedIndexHost {
 public:
  explicit KeywordIndex(std::string id = "keyword");

  std::string Id() const override { return id_; }
  const core::IndexUpdateVerifier& Verifier() const override { return verifier_; }
  Hash256 CurrentDigest() const override { return index_.Root(); }
  Bytes ApplyBlockCapturingAux(const chain::Block& blk) override;

  /// Conjunctive query: transactions matching all keywords, plus the proof.
  mht::KeywordQueryProof Query(const std::vector<std::string>& keywords) const {
    return index_.QueryConjunctive(keywords);
  }

  static Result<std::vector<mht::TxLocator>> VerifyQuery(
      const Hash256& certified_digest, const std::vector<std::string>& keywords,
      const mht::KeywordQueryProof& proof) {
    return mht::InvertedIndex::VerifyConjunctive(certified_digest, keywords, proof);
  }

 private:
  std::string id_;
  KeywordIndexVerifier verifier_;
  mht::InvertedIndex index_;
};

}  // namespace dcert::query
