#include "query/range_index.h"

#include <algorithm>

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "workloads/workloads.h"

namespace dcert::query {

namespace {

/// Key range covering every payment with amount in [lo, hi]. Amounts are
/// capped at 32 bits by the composite key layout.
std::pair<std::uint64_t, std::uint64_t> AmountWindow(std::uint64_t lo,
                                                     std::uint64_t hi) {
  constexpr std::uint64_t kMaxAmount = 0xFFFFFFFFull;
  lo = std::min<std::uint64_t>(lo, kMaxAmount);
  hi = std::min<std::uint64_t>(hi, kMaxAmount);
  return {lo << 32, (hi << 32) | 0xFFFFFFFFull};
}

}  // namespace

Bytes PaymentRecord::Serialize() const {
  // The amount leads so MbValueWord(value) == amount and the MB-tree's sum
  // aggregate is the payment volume.
  Encoder enc;
  enc.U64(amount);
  enc.U64(src);
  enc.U64(dst);
  enc.U64(block_height);
  enc.U32(tx_index);
  return enc.Take();
}

Result<PaymentRecord> PaymentRecord::Deserialize(ByteView data) {
  using R = Result<PaymentRecord>;
  try {
    Decoder dec(data);
    PaymentRecord rec;
    rec.amount = dec.U64();
    rec.src = dec.U64();
    rec.dst = dec.U64();
    rec.block_height = dec.U64();
    rec.tx_index = dec.U32();
    dec.ExpectEnd();
    return rec;
  } catch (const DecodeError& e) {
    return R::Error(std::string("PaymentRecord: ") + e.what());
  }
}

std::uint64_t PaymentKey(std::uint64_t amount, std::uint64_t height,
                         std::uint32_t tx_index) {
  const std::uint64_t seq = ((height << 12) | (tx_index & 0xFFF)) & 0xFFFFFFFFull;
  return (std::min<std::uint64_t>(amount, 0xFFFFFFFFull) << 32) | seq;
}

std::vector<PaymentRecord> ExtractPayments(const chain::Block& blk) {
  const std::uint64_t sb_base =
      workloads::ContractId(workloads::Workload::kSmallBank, 0);
  std::vector<PaymentRecord> payments;
  for (std::size_t i = 0; i < blk.txs.size(); ++i) {
    const chain::Transaction& tx = blk.txs[i];
    if (tx.contract_id < sb_base || tx.contract_id >= sb_base + 1000) continue;
    if (tx.calldata.size() != 4 || tx.calldata[0] != 3) continue;
    PaymentRecord rec;
    rec.src = tx.calldata[1];
    rec.dst = tx.calldata[2];
    rec.amount = tx.calldata[3];
    rec.block_height = blk.header.height;
    rec.tx_index = static_cast<std::uint32_t>(i);
    payments.push_back(rec);
  }
  return payments;
}

Result<Hash256> RangeIndexVerifier::ApplyUpdate(const Hash256& old_digest,
                                                ByteView aux_proof,
                                                const chain::Block& blk) const {
  using R = Result<Hash256>;
  std::vector<PaymentRecord> payments = ExtractPayments(blk);
  // Aux = one insert-path proof per payment, in order.
  try {
    Decoder dec(aux_proof);
    std::uint32_t n = dec.U32();
    if (n != payments.size()) {
      return R::Error("range-index aux proof does not cover the block's payments");
    }
    Hash256 digest = old_digest;
    for (const PaymentRecord& rec : payments) {
      Bytes proof_bytes = dec.Blob();
      auto proof = mht::MbAppendProof::Deserialize(proof_bytes);
      if (!proof) return R(proof.status());
      Bytes value = rec.Serialize();
      auto next = mht::MbTree::ApplyInsert(
          digest, proof.value(),
          PaymentKey(rec.amount, rec.block_height, rec.tx_index),
          crypto::Sha256::Digest(value), mht::MbValueWord(value));
      if (!next) return R(next.status().WithContext("payment insert"));
      digest = next.value();
    }
    dec.ExpectEnd();
    return digest;
  } catch (const DecodeError& e) {
    return R::Error(std::string("range-index aux proof: ") + e.what());
  }
}

RangeIndex::RangeIndex(std::string id) : id_(std::move(id)) {}

Bytes RangeIndex::ApplyBlockCapturingAux(const chain::Block& blk) {
  std::vector<PaymentRecord> payments = ExtractPayments(blk);
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(payments.size()));
  for (const PaymentRecord& rec : payments) {
    std::uint64_t key = PaymentKey(rec.amount, rec.block_height, rec.tx_index);
    enc.Blob(tree_.ProveInsert(key).Serialize());
    tree_.Insert(key, rec.Serialize());
  }
  return enc.Take();
}

mht::MbRangeProof RangeIndex::Query(std::uint64_t lo_amount,
                                    std::uint64_t hi_amount) const {
  auto [lo, hi] = AmountWindow(lo_amount, hi_amount);
  return tree_.RangeQueryWithProof(lo, hi);
}

Result<std::vector<PaymentRecord>> RangeIndex::VerifyQuery(
    const Hash256& certified_digest, std::uint64_t lo_amount,
    std::uint64_t hi_amount, const mht::MbRangeProof& proof) {
  using R = Result<std::vector<PaymentRecord>>;
  auto [lo, hi] = AmountWindow(lo_amount, hi_amount);
  auto entries = mht::MbTree::VerifyRange(certified_digest, lo, hi, proof);
  if (!entries) return R(entries.status());
  std::vector<PaymentRecord> payments;
  payments.reserve(entries.value().size());
  for (const mht::MbEntry& e : entries.value()) {
    auto rec = PaymentRecord::Deserialize(e.value);
    if (!rec) return R(rec.status());
    // The composite key must agree with the record it carries.
    if (PaymentKey(rec.value().amount, rec.value().block_height,
                   rec.value().tx_index) != e.key) {
      return R::Error("payment record does not match its index key");
    }
    payments.push_back(rec.value());
  }
  return payments;
}

mht::MbRangeProof RangeIndex::AggregateQuery(std::uint64_t lo_amount,
                                             std::uint64_t hi_amount) const {
  auto [lo, hi] = AmountWindow(lo_amount, hi_amount);
  return tree_.AggregateQueryWithProof(lo, hi);
}

Result<mht::MbAggregate> RangeIndex::VerifyAggregate(
    const Hash256& certified_digest, std::uint64_t lo_amount,
    std::uint64_t hi_amount, const mht::MbRangeProof& proof) {
  auto [lo, hi] = AmountWindow(lo_amount, hi_amount);
  return mht::MbTree::VerifyAggregate(certified_digest, lo, hi, proof);
}

}  // namespace dcert::query
