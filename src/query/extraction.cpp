#include "query/extraction.h"

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "workloads/workloads.h"

namespace dcert::query {

namespace {

constexpr std::uint64_t kVersionTxBits = 20;

bool IsKvPut(const chain::Transaction& tx) {
  const std::uint64_t kv_base =
      workloads::ContractId(workloads::Workload::kKvStore, 0);
  return tx.contract_id >= kv_base && tx.contract_id < kv_base + 1000 &&
         tx.calldata.size() == 3 && tx.calldata[0] == 0;
}

}  // namespace

std::uint64_t MakeVersion(std::uint64_t height, std::uint32_t tx_index) {
  return (height << kVersionTxBits) | (tx_index & ((1u << kVersionTxBits) - 1));
}

std::uint64_t VersionHeight(std::uint64_t version) {
  return version >> kVersionTxBits;
}

std::pair<std::uint64_t, std::uint64_t> VersionWindow(std::uint64_t from_height,
                                                      std::uint64_t to_height) {
  return {MakeVersion(from_height, 0),
          MakeVersion(to_height + 1, 0) - 1};
}

Hash256 HistAccountKey(std::uint64_t account_word) {
  Encoder enc;
  enc.Str("hist-account");
  enc.U64(account_word);
  return crypto::Sha256::Digest(enc.bytes());
}

Bytes HistValueBytes(std::uint64_t value_word) {
  Encoder enc;
  enc.U64(value_word);
  return enc.Take();
}

std::uint64_t HistValueWord(const Bytes& value) {
  Decoder dec(value);
  return dec.U64();
}

std::vector<HistEntry> ExtractHistoricalWrites(const chain::Block& blk) {
  std::vector<HistEntry> entries;
  for (std::size_t i = 0; i < blk.txs.size(); ++i) {
    const chain::Transaction& tx = blk.txs[i];
    if (!IsKvPut(tx)) continue;
    HistEntry e;
    e.account_word = tx.calldata[1];
    e.account_key = HistAccountKey(e.account_word);
    e.version = MakeVersion(blk.header.height, static_cast<std::uint32_t>(i));
    e.value_word = tx.calldata[2];
    entries.push_back(e);
  }
  return entries;
}

mht::InvertedIndex::WriteData ExtractKeywordWrites(const chain::Block& blk) {
  mht::InvertedIndex::WriteData writes;
  for (std::size_t i = 0; i < blk.txs.size(); ++i) {
    const chain::Transaction& tx = blk.txs[i];
    mht::TxLocator loc{blk.header.height, static_cast<std::uint32_t>(i)};
    writes["c" + std::to_string(tx.contract_id)].push_back(loc);
    if (!tx.calldata.empty()) {
      writes["op" + std::to_string(tx.calldata[0])].push_back(loc);
    }
  }
  return writes;
}

}  // namespace dcert::query
