// Certified amount-range index over SmallBank payments — a vChain-style [33]
// boolean range query family ("find all payments with amount in [a, b]"),
// demonstrating DCert's on-demand versatility with a third index type.
//
// One global aggregate-annotated MB-tree keyed by a composite of
// (amount, occurrence): payments arrive in arbitrary amount order, so
// certified updates use the general stateless insert (MbTree::ApplyInsert).
// Range queries return the matching payments with completeness; aggregate
// queries return (count, total volume) in O(log n) proof bytes.
#pragma once

#include <string>
#include <vector>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/index_verifier.h"
#include "dcert/issuer.h"
#include "mht/mbtree.h"

namespace dcert::query {

/// One indexed payment.
struct PaymentRecord {
  std::uint64_t amount = 0;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t block_height = 0;
  std::uint32_t tx_index = 0;

  Bytes Serialize() const;
  static Result<PaymentRecord> Deserialize(ByteView data);
  bool operator==(const PaymentRecord&) const = default;
};

/// Composite MB-tree key: amount in the high 32 bits, a per-payment sequence
/// (height << 12 | tx index, truncated) below — unique while heights stay
/// under 2^20 and blocks under 2^12 transactions (experiment scale; the key
/// layout is a documented simulation bound).
std::uint64_t PaymentKey(std::uint64_t amount, std::uint64_t height,
                         std::uint32_t tx_index);

/// Extraction (deterministic, shared by SP and enclave): every successful-
/// shape SmallBank sendPayment transaction (contract 4000-4999, calldata
/// {3, src, dst, amount}). Note: reverted payments are indexed too — the
/// extraction is syntactic; provenance systems typically index attempts.
std::vector<PaymentRecord> ExtractPayments(const chain::Block& blk);

class RangeIndexVerifier final : public core::IndexUpdateVerifier {
 public:
  std::string TypeName() const override { return "payment-range-mbtree"; }
  Hash256 GenesisDigest() const override { return mht::MbTree::EmptyRoot(); }
  Result<Hash256> ApplyUpdate(const Hash256& old_digest, ByteView aux_proof,
                              const chain::Block& blk) const override;
};

class RangeIndex final : public core::CertifiedIndexHost {
 public:
  explicit RangeIndex(std::string id = "payment-range");

  std::string Id() const override { return id_; }
  const core::IndexUpdateVerifier& Verifier() const override { return verifier_; }
  Hash256 CurrentDigest() const override { return tree_.Root(); }
  Bytes ApplyBlockCapturingAux(const chain::Block& blk) override;

  /// All payments with amount in [lo, hi], with completeness.
  mht::MbRangeProof Query(std::uint64_t lo_amount, std::uint64_t hi_amount) const;
  static Result<std::vector<PaymentRecord>> VerifyQuery(
      const Hash256& certified_digest, std::uint64_t lo_amount,
      std::uint64_t hi_amount, const mht::MbRangeProof& proof);

  /// (number of payments, total volume) with amount in [lo, hi].
  mht::MbRangeProof AggregateQuery(std::uint64_t lo_amount,
                                   std::uint64_t hi_amount) const;
  static Result<mht::MbAggregate> VerifyAggregate(const Hash256& certified_digest,
                                                  std::uint64_t lo_amount,
                                                  std::uint64_t hi_amount,
                                                  const mht::MbRangeProof& proof);

  std::size_t PaymentCount() const { return tree_.Size(); }

 private:
  std::string id_;
  RangeIndexVerifier verifier_;
  mht::MbTree tree_;
};

}  // namespace dcert::query
