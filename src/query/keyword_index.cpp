#include "query/keyword_index.h"

namespace dcert::query {

Result<Hash256> KeywordIndexVerifier::ApplyUpdate(const Hash256& old_digest,
                                                  ByteView aux_proof,
                                                  const chain::Block& blk) const {
  using R = Result<Hash256>;
  mht::InvertedIndex::WriteData writes = ExtractKeywordWrites(blk);
  auto proof = mht::InvertedIndex::UpdateProof::Deserialize(aux_proof);
  if (!proof) return R(proof.status());
  if (writes.empty()) return old_digest;  // block with no transactions
  return mht::InvertedIndex::ApplyUpdate(old_digest, proof.value(), writes);
}

KeywordIndex::KeywordIndex(std::string id) : id_(std::move(id)) {}

Bytes KeywordIndex::ApplyBlockCapturingAux(const chain::Block& blk) {
  mht::InvertedIndex::WriteData writes = ExtractKeywordWrites(blk);
  auto proof = index_.ProveUpdate(writes);
  index_.ApplyWrites(writes);
  return proof.Serialize();
}

}  // namespace dcert::query
