#include "query/lineage_index.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::query {

namespace {

/// Aux step: MPT pre-state path + the head record the stateless skip-list
/// append consumes (absent for the account's first version).
struct AppendStep {
  mht::MptProof mpt_proof;
  bool has_head = false;
  mht::SkipNodeRecord head;
};

Bytes SerializeSteps(const std::vector<AppendStep>& steps) {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(steps.size()));
  for (const AppendStep& s : steps) {
    enc.Blob(s.mpt_proof.Serialize());
    enc.Bool(s.has_head);
    if (s.has_head) s.head.Encode(enc);
  }
  return enc.Take();
}

Result<std::vector<AppendStep>> DeserializeSteps(ByteView data) {
  using R = Result<std::vector<AppendStep>>;
  try {
    Decoder dec(data);
    std::uint32_t n = dec.U32();
    std::vector<AppendStep> steps;
    steps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      AppendStep step;
      Bytes mpt_bytes = dec.Blob();
      auto mpt = mht::MptProof::Deserialize(mpt_bytes);
      if (!mpt) return R(mpt.status());
      step.mpt_proof = std::move(mpt.value());
      step.has_head = dec.Bool();
      if (step.has_head) step.head = mht::SkipNodeRecord::Decode(dec);
      steps.push_back(std::move(step));
    }
    dec.ExpectEnd();
    return steps;
  } catch (const DecodeError& e) {
    return R::Error(std::string("lineage aux proof: ") + e.what());
  }
}

}  // namespace

Result<Hash256> LineageIndexVerifier::ApplyUpdate(const Hash256& old_digest,
                                                  ByteView aux_proof,
                                                  const chain::Block& blk) const {
  using R = Result<Hash256>;
  std::vector<HistEntry> entries = ExtractHistoricalWrites(blk);
  auto steps = DeserializeSteps(aux_proof);
  if (!steps) return R(steps.status());
  if (steps.value().size() != entries.size()) {
    return R::Error("lineage aux proof does not cover the block's writes");
  }

  Hash256 digest = old_digest;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const HistEntry& e = entries[i];
    const AppendStep& step = steps.value()[i];
    auto lower = mht::MptTrie::VerifyGet(digest, e.account_key, step.mpt_proof);
    if (!lower) return R(lower.status().WithContext("upper MPT"));
    Hash256 lower_digest = lower.value().value_or(Hash256());
    std::optional<mht::SkipNodeRecord> head;
    if (step.has_head) head = step.head;
    Hash256 value_hash = crypto::Sha256::Digest(HistValueBytes(e.value_word));
    auto new_lower =
        mht::AuthSkipList::ApplyAppend(lower_digest, head, e.version, value_hash);
    if (!new_lower) return R(new_lower.status().WithContext("lower skip list"));
    auto new_digest = mht::MptTrie::ApplyPut(digest, e.account_key, step.mpt_proof,
                                             new_lower.value());
    if (!new_digest) return R(new_digest.status().WithContext("upper MPT put"));
    digest = new_digest.value();
  }
  return digest;
}

LineageIndex::LineageIndex(std::string id) : id_(std::move(id)) {}

Bytes LineageIndex::ApplyBlockCapturingAux(const chain::Block& blk) {
  std::vector<AppendStep> steps;
  for (const HistEntry& e : ExtractHistoricalWrites(blk)) {
    AppendStep step;
    step.mpt_proof = mpt_.Prove(e.account_key);
    mht::AuthSkipList& list = lists_[e.account_key];
    if (list.Size() > 0) {
      step.has_head = true;
      step.head = list.HeadRecord();
    }
    list.Append(e.version, HistValueBytes(e.value_word));
    mpt_.Put(e.account_key, list.Digest());
    steps.push_back(std::move(step));
  }
  return SerializeSteps(steps);
}

LineageQueryProof LineageIndex::Query(std::uint64_t account_word,
                                      std::uint64_t from_height,
                                      std::uint64_t to_height) const {
  LineageQueryProof proof;
  Hash256 key = HistAccountKey(account_word);
  proof.account_proof = mpt_.Prove(key);
  auto it = lists_.find(key);
  proof.account_present = it != lists_.end();
  if (proof.account_present) {
    proof.lower_digest = it->second.Digest();
    auto [lo, hi] = VersionWindow(from_height, to_height);
    proof.range_proof = it->second.QueryWithProof(lo, hi);
  }
  return proof;
}

Result<std::vector<HistoricalVersion>> LineageIndex::VerifyQuery(
    const Hash256& certified_digest, std::uint64_t account_word,
    std::uint64_t from_height, std::uint64_t to_height,
    const LineageQueryProof& proof) {
  using R = Result<std::vector<HistoricalVersion>>;
  Hash256 key = HistAccountKey(account_word);
  auto lower = mht::MptTrie::VerifyGet(certified_digest, key, proof.account_proof);
  if (!lower) return R(lower.status().WithContext("account proof"));
  if (!lower.value().has_value()) {
    if (proof.account_present) {
      return R::Error("proof claims a present account the MPT disproves");
    }
    return std::vector<HistoricalVersion>{};
  }
  if (!proof.account_present || proof.lower_digest != *lower.value()) {
    return R::Error("skip-list digest does not match the certified MPT value");
  }
  auto [lo, hi] = VersionWindow(from_height, to_height);
  auto entries = mht::AuthSkipList::VerifyQuery(proof.lower_digest, lo, hi,
                                                proof.range_proof);
  if (!entries) return R(entries.status().WithContext("version window"));
  std::vector<HistoricalVersion> versions;
  versions.reserve(entries.value().size());
  for (const mht::SkipEntry& e : entries.value()) {
    HistoricalVersion v;
    v.version = e.timestamp;
    v.block_height = VersionHeight(e.timestamp);
    v.value = HistValueWord(e.value);
    versions.push_back(v);
  }
  return versions;
}

Bytes LineageQueryProof::Serialize() const {
  Encoder enc;
  enc.Blob(account_proof.Serialize());
  enc.Bool(account_present);
  if (account_present) {
    enc.HashField(lower_digest);
    enc.Blob(range_proof.Serialize());
  }
  return enc.Take();
}

Result<LineageQueryProof> LineageQueryProof::Deserialize(ByteView data) {
  using R = Result<LineageQueryProof>;
  try {
    Decoder dec(data);
    LineageQueryProof proof;
    Bytes account_bytes = dec.Blob();
    auto account = mht::MptProof::Deserialize(account_bytes);
    if (!account) return R(account.status());
    proof.account_proof = std::move(account.value());
    proof.account_present = dec.Bool();
    if (proof.account_present) {
      proof.lower_digest = dec.HashField();
      Bytes range_bytes = dec.Blob();
      auto range = mht::SkipRangeProof::Deserialize(range_bytes);
      if (!range) return R(range.status());
      proof.range_proof = std::move(range.value());
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("LineageQueryProof: ") + e.what());
  }
}

}  // namespace dcert::query
