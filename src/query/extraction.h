// Deterministic index write-data extraction (the paper's
// get_index_write_data). Both the untrusted SP/CI (to update live indexes)
// and the trusted enclave verifiers (to validate those updates) derive the
// write data from the block's transactions with these functions, so the two
// sides agree by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.h"
#include "common/bytes.h"
#include "mht/inverted_index.h"

namespace dcert::query {

/// One historical version produced by a block: KVStore put transactions
/// (contract ids 3000-3999, calldata {0, key, value}) create a version of
/// "account" `key` at a unique, monotonically increasing version number
/// derived from (block height, tx index).
struct HistEntry {
  Hash256 account_key;       // index key: H("hist-account" || key word)
  std::uint64_t account_word = 0;
  std::uint64_t version = 0;
  std::uint64_t value_word = 0;
};

/// Version number: block height in the high bits, tx index in the low 20.
std::uint64_t MakeVersion(std::uint64_t height, std::uint32_t tx_index);
std::uint64_t VersionHeight(std::uint64_t version);

/// Version window covering whole blocks [from_height, to_height].
std::pair<std::uint64_t, std::uint64_t> VersionWindow(std::uint64_t from_height,
                                                      std::uint64_t to_height);

Hash256 HistAccountKey(std::uint64_t account_word);

/// Encoded value stored in the historical indexes (8-byte LE word).
Bytes HistValueBytes(std::uint64_t value_word);
std::uint64_t HistValueWord(const Bytes& value);

std::vector<HistEntry> ExtractHistoricalWrites(const chain::Block& blk);

/// Keyword extraction: every transaction is tagged "c<contract_id>" and,
/// when calldata is non-empty, "op<calldata[0]>" — supporting conjunctive
/// queries like "all operations of kind 0 on contract 3000".
mht::InvertedIndex::WriteData ExtractKeywordWrites(const chain::Block& blk);

}  // namespace dcert::query
