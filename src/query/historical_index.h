// DCert's two-level historical index (paper Fig. 5, left): a Merkle Patricia
// Trie over account keys whose values are the roots of per-account Merkle
// B-trees of time-stamped versions. Provides:
//  * the SP-side live index with authenticated window queries, and
//  * the trusted update verifier the enclave runs to certify index digests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/index_verifier.h"
#include "dcert/issuer.h"
#include "mht/mbtree.h"
#include "mht/mpt.h"
#include "query/extraction.h"

namespace dcert::query {

/// Proof for one historical window query: the MPT path for the account (also
/// proves unknown accounts) plus the lower-tree range proof.
struct HistoricalQueryProof {
  mht::MptProof account_proof;
  bool account_present = false;
  Hash256 lower_root;  // claimed lower-tree root (bound by account_proof)
  mht::MbRangeProof range_proof;

  Bytes Serialize() const;
  static Result<HistoricalQueryProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

/// One verified version.
struct HistoricalVersion {
  std::uint64_t version = 0;
  std::uint64_t block_height = 0;
  std::uint64_t value = 0;

  bool operator==(const HistoricalVersion&) const = default;
};

/// Trusted update verifier (runs inside the enclave).
class HistoricalIndexVerifier final : public core::IndexUpdateVerifier {
 public:
  std::string TypeName() const override { return "historical-mpt-mbtree"; }
  Hash256 GenesisDigest() const override { return mht::MptTrie::EmptyRoot(); }
  Result<Hash256> ApplyUpdate(const Hash256& old_digest, ByteView aux_proof,
                              const chain::Block& blk) const override;
};

/// SP/CI-side live index. Also the CertifiedIndexHost the CI drives.
class HistoricalIndex final : public core::CertifiedIndexHost {
 public:
  explicit HistoricalIndex(std::string id = "historical");

  // CertifiedIndexHost:
  std::string Id() const override { return id_; }
  const core::IndexUpdateVerifier& Verifier() const override { return verifier_; }
  Hash256 CurrentDigest() const override { return mpt_.Root(); }
  Bytes ApplyBlockCapturingAux(const chain::Block& blk) override;

  /// Authenticated query: versions of `account_word` written in blocks
  /// [from_height, to_height].
  HistoricalQueryProof Query(std::uint64_t account_word,
                             std::uint64_t from_height,
                             std::uint64_t to_height) const;

  /// Client-side verification against a *certified* index digest.
  static Result<std::vector<HistoricalVersion>> VerifyQuery(
      const Hash256& certified_digest, std::uint64_t account_word,
      std::uint64_t from_height, std::uint64_t to_height,
      const HistoricalQueryProof& proof);

  /// Authenticated aggregation over the account's versions in the window:
  /// (count, sum of values) with an O(log n) proof — no values shipped for
  /// fully covered subtrees (the paper's "complex queries such as
  /// aggregations" via the aggregate-annotated MB-tree).
  HistoricalQueryProof AggregateQuery(std::uint64_t account_word,
                                      std::uint64_t from_height,
                                      std::uint64_t to_height) const;

  static Result<mht::MbAggregate> VerifyAggregateQuery(
      const Hash256& certified_digest, std::uint64_t account_word,
      std::uint64_t from_height, std::uint64_t to_height,
      const HistoricalQueryProof& proof);

  std::size_t AccountCount() const { return trees_.size(); }

  /// Serializes the index's raw content — per account, the key-ordered
  /// version entries — for a checkpoint. Deliberately *content*, not tree
  /// structure: RestoreContent re-inserts through the same deterministic
  /// code path, so the restored digest either reproduces CurrentDigest()
  /// exactly or (if the bytes were tampered with) fails the caller's digest
  /// check against the certified value.
  Bytes SerializeContent() const;

  /// Rebuilds a *fresh* index (fails if anything was already applied) from
  /// SerializeContent bytes. Bulk-inserts per account (multi-buffer hashing),
  /// so restoring is far cheaper than replaying the blocks that produced the
  /// content. Callers must compare CurrentDigest() against a certified
  /// digest afterwards — this function checks shape, not authenticity.
  Status RestoreContent(ByteView data);

 private:
  std::string id_;
  HistoricalIndexVerifier verifier_;
  mht::MptTrie mpt_;
  std::map<Hash256, mht::MbTree> trees_;
};

}  // namespace dcert::query
