#include "query/historical_index.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::query {

namespace {

/// Aux proof for one block: per historical entry, the MPT pre-state path for
/// the account and the lower tree's append spine.
struct AppendStep {
  mht::MptProof mpt_proof;
  mht::MbAppendProof spine;
};

Bytes SerializeSteps(const std::vector<AppendStep>& steps) {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(steps.size()));
  for (const AppendStep& s : steps) {
    enc.Blob(s.mpt_proof.Serialize());
    enc.Blob(s.spine.Serialize());
  }
  return enc.Take();
}

Result<std::vector<AppendStep>> DeserializeSteps(ByteView data) {
  using R = Result<std::vector<AppendStep>>;
  try {
    Decoder dec(data);
    std::uint32_t n = dec.U32();
    std::vector<AppendStep> steps;
    steps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Bytes mpt_bytes = dec.Blob();
      Bytes spine_bytes = dec.Blob();
      auto mpt = mht::MptProof::Deserialize(mpt_bytes);
      if (!mpt) return R(mpt.status());
      auto spine = mht::MbAppendProof::Deserialize(spine_bytes);
      if (!spine) return R(spine.status());
      steps.push_back({std::move(mpt.value()), std::move(spine.value())});
    }
    dec.ExpectEnd();
    return steps;
  } catch (const DecodeError& e) {
    return R::Error(std::string("historical aux proof: ") + e.what());
  }
}

}  // namespace

Result<Hash256> HistoricalIndexVerifier::ApplyUpdate(const Hash256& old_digest,
                                                     ByteView aux_proof,
                                                     const chain::Block& blk) const {
  using R = Result<Hash256>;
  std::vector<HistEntry> entries = ExtractHistoricalWrites(blk);
  auto steps = DeserializeSteps(aux_proof);
  if (!steps) return R(steps.status());
  if (steps.value().size() != entries.size()) {
    return R::Error("historical aux proof does not cover the block's writes");
  }

  Hash256 digest = old_digest;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const HistEntry& e = entries[i];
    const AppendStep& step = steps.value()[i];
    // Upper level: resolve the account's current lower root (or absence).
    auto lower = mht::MptTrie::VerifyGet(digest, e.account_key, step.mpt_proof);
    if (!lower) return R(lower.status().WithContext("upper MPT"));
    Hash256 lower_root =
        lower.value().has_value() ? *lower.value() : mht::MbTree::EmptyRoot();
    // Lower level: stateless append of the new version.
    Hash256 value_hash = crypto::Sha256::Digest(HistValueBytes(e.value_word));
    // HistValueBytes is the LE64 encoding, so its MbValueWord IS value_word.
    auto new_lower = mht::MbTree::ApplyAppend(lower_root, step.spine, e.version,
                                              value_hash, e.value_word);
    if (!new_lower) return R(new_lower.status().WithContext("lower MB-tree"));
    // Upper level: stateless put of the updated lower root.
    auto new_digest = mht::MptTrie::ApplyPut(digest, e.account_key, step.mpt_proof,
                                             new_lower.value());
    if (!new_digest) return R(new_digest.status().WithContext("upper MPT put"));
    digest = new_digest.value();
  }
  return digest;
}

HistoricalIndex::HistoricalIndex(std::string id) : id_(std::move(id)) {}

Bytes HistoricalIndex::ApplyBlockCapturingAux(const chain::Block& blk) {
  std::vector<AppendStep> steps;
  for (const HistEntry& e : ExtractHistoricalWrites(blk)) {
    AppendStep step;
    step.mpt_proof = mpt_.Prove(e.account_key);
    mht::MbTree& tree = trees_[e.account_key];  // default-constructs when new
    step.spine = tree.ProveAppend();
    tree.Insert(e.version, HistValueBytes(e.value_word));
    mpt_.Put(e.account_key, tree.Root());
    steps.push_back(std::move(step));
  }
  return SerializeSteps(steps);
}

Bytes HistoricalIndex::SerializeContent() const {
  Encoder enc;
  enc.U32(1);  // content format version
  enc.U64(trees_.size());
  for (const auto& [key, tree] : trees_) {  // std::map: key order, canonical
    enc.HashField(key);
    const std::vector<mht::MbEntry> entries = tree.Entries();
    enc.U64(entries.size());
    for (const mht::MbEntry& e : entries) {
      enc.U64(e.key);
      enc.Blob(e.value);
    }
  }
  return enc.Take();
}

Status HistoricalIndex::RestoreContent(ByteView data) {
  if (!trees_.empty() || mpt_.Root() != mht::MptTrie::EmptyRoot()) {
    return Status::Error("historical index restore requires a fresh index");
  }
  try {
    Decoder dec(data);
    if (const std::uint32_t version = dec.U32(); version != 1) {
      return Status::Error("historical index content: unknown version " +
                           std::to_string(version));
    }
    const std::uint64_t accounts = dec.U64();
    for (std::uint64_t a = 0; a < accounts; ++a) {
      const Hash256 key = dec.HashField();
      const std::uint64_t count = dec.U64();
      std::vector<mht::MbEntry> entries;
      entries.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        mht::MbEntry e;
        e.key = dec.U64();
        e.value = dec.Blob();
        entries.push_back(std::move(e));
      }
      mht::MbTree tree;
      tree.InsertBatch(std::move(entries));
      mpt_.Put(key, tree.Root());
      trees_.emplace(key, std::move(tree));
    }
    dec.ExpectEnd();
  } catch (const DecodeError& e) {
    return Status::Error(std::string("historical index content: ") + e.what());
  } catch (const std::invalid_argument& e) {
    // Duplicate version keys in tampered content surface here.
    return Status::Error(std::string("historical index content: ") + e.what());
  }
  return Status::Ok();
}

HistoricalQueryProof HistoricalIndex::Query(std::uint64_t account_word,
                                            std::uint64_t from_height,
                                            std::uint64_t to_height) const {
  HistoricalQueryProof proof;
  Hash256 key = HistAccountKey(account_word);
  proof.account_proof = mpt_.Prove(key);
  auto it = trees_.find(key);
  proof.account_present = it != trees_.end();
  if (proof.account_present) {
    proof.lower_root = it->second.Root();
    auto [lo, hi] = VersionWindow(from_height, to_height);
    proof.range_proof = it->second.RangeQueryWithProof(lo, hi);
  }
  return proof;
}

Result<std::vector<HistoricalVersion>> HistoricalIndex::VerifyQuery(
    const Hash256& certified_digest, std::uint64_t account_word,
    std::uint64_t from_height, std::uint64_t to_height,
    const HistoricalQueryProof& proof) {
  using R = Result<std::vector<HistoricalVersion>>;
  Hash256 key = HistAccountKey(account_word);
  auto lower = mht::MptTrie::VerifyGet(certified_digest, key, proof.account_proof);
  if (!lower) return R(lower.status().WithContext("account proof"));
  if (!lower.value().has_value()) {
    // Provably unknown account: empty result.
    if (proof.account_present) {
      return R::Error("proof claims a present account the MPT disproves");
    }
    return std::vector<HistoricalVersion>{};
  }
  if (!proof.account_present || proof.lower_root != *lower.value()) {
    return R::Error("lower-tree root does not match the certified MPT value");
  }
  auto [lo, hi] = VersionWindow(from_height, to_height);
  auto entries = mht::MbTree::VerifyRange(proof.lower_root, lo, hi,
                                          proof.range_proof);
  if (!entries) return R(entries.status().WithContext("version range"));
  std::vector<HistoricalVersion> versions;
  versions.reserve(entries.value().size());
  for (const mht::MbEntry& e : entries.value()) {
    HistoricalVersion v;
    v.version = e.key;
    v.block_height = VersionHeight(e.key);
    v.value = HistValueWord(e.value);
    versions.push_back(v);
  }
  return versions;
}

HistoricalQueryProof HistoricalIndex::AggregateQuery(std::uint64_t account_word,
                                                     std::uint64_t from_height,
                                                     std::uint64_t to_height) const {
  HistoricalQueryProof proof;
  Hash256 key = HistAccountKey(account_word);
  proof.account_proof = mpt_.Prove(key);
  auto it = trees_.find(key);
  proof.account_present = it != trees_.end();
  if (proof.account_present) {
    proof.lower_root = it->second.Root();
    auto [lo, hi] = VersionWindow(from_height, to_height);
    proof.range_proof = it->second.AggregateQueryWithProof(lo, hi);
  }
  return proof;
}

Result<mht::MbAggregate> HistoricalIndex::VerifyAggregateQuery(
    const Hash256& certified_digest, std::uint64_t account_word,
    std::uint64_t from_height, std::uint64_t to_height,
    const HistoricalQueryProof& proof) {
  using R = Result<mht::MbAggregate>;
  Hash256 key = HistAccountKey(account_word);
  auto lower = mht::MptTrie::VerifyGet(certified_digest, key, proof.account_proof);
  if (!lower) return R(lower.status().WithContext("account proof"));
  if (!lower.value().has_value()) {
    if (proof.account_present) {
      return R::Error("proof claims a present account the MPT disproves");
    }
    return mht::MbAggregate{};
  }
  if (!proof.account_present || proof.lower_root != *lower.value()) {
    return R::Error("lower-tree root does not match the certified MPT value");
  }
  auto [lo, hi] = VersionWindow(from_height, to_height);
  auto agg = mht::MbTree::VerifyAggregate(proof.lower_root, lo, hi,
                                          proof.range_proof);
  if (!agg) return R(agg.status().WithContext("aggregate window"));
  return agg.value();
}

Bytes HistoricalQueryProof::Serialize() const {
  Encoder enc;
  enc.Blob(account_proof.Serialize());
  enc.Bool(account_present);
  if (account_present) {
    enc.HashField(lower_root);
    enc.Blob(range_proof.Serialize());
  }
  return enc.Take();
}

Result<HistoricalQueryProof> HistoricalQueryProof::Deserialize(ByteView data) {
  using R = Result<HistoricalQueryProof>;
  try {
    Decoder dec(data);
    HistoricalQueryProof proof;
    Bytes account_bytes = dec.Blob();
    auto account = mht::MptProof::Deserialize(account_bytes);
    if (!account) return R(account.status());
    proof.account_proof = std::move(account.value());
    proof.account_present = dec.Bool();
    if (proof.account_present) {
      proof.lower_root = dec.HashField();
      Bytes range_bytes = dec.Blob();
      auto range = mht::MbRangeProof::Deserialize(range_bytes);
      if (!range) return R(range.status());
      proof.range_proof = std::move(range.value());
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("HistoricalQueryProof: ") + e.what());
  }
}

}  // namespace dcert::query
