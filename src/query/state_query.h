// Verifiable current-state queries: a superlight client holding the latest
// certified header can ask any untrusted full node for a state value (an
// account balance, a contract slot) and verify the answer against the
// header's H_state — the light-client workhorse the block certificate makes
// trustworthy end to end (certificate ⇒ header ⇒ state root ⇒ SMT proof ⇒
// value).
#pragma once

#include "chain/state.h"
#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "mht/smt.h"

namespace dcert::query {

struct StateQueryProof {
  std::uint64_t value = 0;  // claimed value (0 = unset)
  mht::SmtMultiProof smt_proof;

  Bytes Serialize() const;
  static Result<StateQueryProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

/// Full-node side: proves the current value of `key`.
StateQueryProof ProveState(const chain::StateDB& db, const chain::StateKey& key);

/// Batched variant covering several keys with one multiproof.
struct MultiStateQueryProof {
  chain::StateMap values;
  mht::SmtMultiProof smt_proof;

  Bytes Serialize() const;
  static Result<MultiStateQueryProof> Deserialize(ByteView data);
};
MultiStateQueryProof ProveStates(const chain::StateDB& db,
                                 const std::vector<chain::StateKey>& keys);

/// Client side: verifies the claimed value against a certified state root.
Result<std::uint64_t> VerifyState(const Hash256& certified_state_root,
                                  const chain::StateKey& key,
                                  const StateQueryProof& proof);

/// Client side, batched: all claimed values must be covered and consistent.
Status VerifyStates(const Hash256& certified_state_root,
                    const std::vector<chain::StateKey>& keys,
                    const MultiStateQueryProof& proof);

}  // namespace dcert::query
