// LineageChain-style historical index (Ruan et al., PVLDB'19) — the baseline
// of the paper's Fig. 11. Same two-level shape as the DCert index, but the
// per-account lower structure is an authenticated deterministic *skip list*
// searched from the newest version backwards, so query cost and proof size
// grow with the window's distance from the chain tip.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/index_verifier.h"
#include "dcert/issuer.h"
#include "mht/mpt.h"
#include "mht/skiplist.h"
#include "query/extraction.h"
#include "query/historical_index.h"  // HistoricalVersion

namespace dcert::query {

struct LineageQueryProof {
  mht::MptProof account_proof;
  bool account_present = false;
  Hash256 lower_digest;
  mht::SkipRangeProof range_proof;

  Bytes Serialize() const;
  static Result<LineageQueryProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

class LineageIndexVerifier final : public core::IndexUpdateVerifier {
 public:
  std::string TypeName() const override { return "lineage-mpt-skiplist"; }
  Hash256 GenesisDigest() const override { return mht::MptTrie::EmptyRoot(); }
  Result<Hash256> ApplyUpdate(const Hash256& old_digest, ByteView aux_proof,
                              const chain::Block& blk) const override;
};

class LineageIndex final : public core::CertifiedIndexHost {
 public:
  explicit LineageIndex(std::string id = "lineage");

  std::string Id() const override { return id_; }
  const core::IndexUpdateVerifier& Verifier() const override { return verifier_; }
  Hash256 CurrentDigest() const override { return mpt_.Root(); }
  Bytes ApplyBlockCapturingAux(const chain::Block& blk) override;

  LineageQueryProof Query(std::uint64_t account_word, std::uint64_t from_height,
                          std::uint64_t to_height) const;

  static Result<std::vector<HistoricalVersion>> VerifyQuery(
      const Hash256& certified_digest, std::uint64_t account_word,
      std::uint64_t from_height, std::uint64_t to_height,
      const LineageQueryProof& proof);

 private:
  std::string id_;
  LineageIndexVerifier verifier_;
  mht::MptTrie mpt_;
  std::map<Hash256, mht::AuthSkipList> lists_;
};

}  // namespace dcert::query
