// Deterministic, seeded crash injection for crash-fault-tolerance testing.
// Durability-critical code paths declare named kill sites (`CrashPoints::Hit`);
// a test arms ONE site with a hit countdown, runs the system, and the armed
// site tears the operation down in-process by throwing CrashInjected when its
// countdown reaches zero — the moral equivalent of SIGKILL at that exact
// instruction, except the test harness survives to reopen the stores and
// drive recovery. Sites that need to leave a *partially written* artifact
// behind (a torn log record) use the two-step FireNow()/Throw() form so they
// can do their partial damage before unwinding.
//
// Disarmed, every site is a mutex-free early return on one relaxed atomic, so
// shipping the sites in production code costs nothing measurable.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace dcert::common {

/// Thrown by an armed crash site. Catching this anywhere below the test
/// harness and continuing would defeat the simulation, so nothing in the
/// library catches it specifically (generic catch(...) blocks that re-throw
/// after cleanup, like the pipelined issuer's thread join, are fine).
struct CrashInjected : std::runtime_error {
  explicit CrashInjected(std::string site_name)
      : std::runtime_error("crash injected at " + site_name),
        site(std::move(site_name)) {}
  std::string site;
};

/// Process-wide registry of armed crash sites. One site may be armed at a
/// time (a real crash happens once); arming replaces the previous site.
class CrashPoints {
 public:
  static CrashPoints& Global();

  /// Arms `site` to fire on its `countdown`-th hit from now (countdown >= 1;
  /// 1 means the very next hit). Resets hit counters.
  void Arm(const std::string& site, std::uint64_t countdown);

  /// Disarms everything and clears fired/hit state (recovery runs disarmed
  /// unless a test re-arms).
  void Disarm();

  bool Armed() const { return armed_.load(std::memory_order_acquire); }

  /// True when the armed site has fired since the last Arm().
  bool Fired() const;

  /// Plain kill site: throws CrashInjected when this hit fires.
  void Hit(const char* site) {
    if (FireNow(site)) Throw(site);
  }

  /// Two-step kill site for torn-artifact crashes: returns true when this
  /// hit fires; the caller then performs its partial write and calls Throw().
  bool FireNow(const char* site);

  [[noreturn]] static void Throw(const char* site);

  /// Total hits observed for `site` since the last Arm() (coverage checks).
  std::uint64_t HitCount(const std::string& site) const;

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string site_;
  std::uint64_t countdown_ = 0;  // hits remaining before firing
  bool fired_ = false;
  std::vector<std::pair<std::string, std::uint64_t>> hits_;
};

}  // namespace dcert::common
