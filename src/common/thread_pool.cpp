#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace dcert::common {

namespace {

/// Aggregate queue-depth/throughput metrics across every pool in the process
/// (gauges add/sub, so per-pool contributions compose).
struct PoolMetrics {
  std::shared_ptr<obs::Gauge> queue_depth;
  std::shared_ptr<obs::Counter> tasks_executed;

  static PoolMetrics& Get() {
    static PoolMetrics* m = new PoolMetrics{
        obs::MetricsRegistry::Global().GetGauge("common.pool.queue_depth"),
        obs::MetricsRegistry::Global().GetCounter("common.pool.tasks_executed")};
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  PoolMetrics::Get().queue_depth->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics::Get().queue_depth->Sub(1);
    task();
    PoolMetrics::Get().tasks_executed->Add(1);
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  PoolMetrics::Get().queue_depth->Sub(1);
  task();
  PoolMetrics::Get().tasks_executed->Add(1);
  return true;
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<Shared>();

  auto run = [state, n, &body] {
    std::size_t i;
    while (!state->failed.load(std::memory_order_relaxed) &&
           (i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // One runner per worker (capped by n); the calling thread is runner zero.
  const std::size_t runners = std::min(threads_.size(), n - 1);
  state->active.store(runners, std::memory_order_relaxed);
  for (std::size_t r = 0; r < runners; ++r) {
    Enqueue([state, run] {
      run();
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state->done_cv.notify_all();
      }
    });
  }

  run();  // the calling thread participates

  // Help drain the queue while runners finish — keeps nested ParallelFor
  // calls from deadlocking a fully-busy pool.
  while (state->active.load(std::memory_order_acquire) != 0) {
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return state->active.load(std::memory_order_acquire) == 0;
      });
    }
  }

  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

}  // namespace dcert::common
