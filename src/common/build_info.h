// Build identity for version-skew detection across a fleet: the git SHA,
// sanitizer, and build type are baked in as compile definitions by the root
// CMakeLists and surfaced both as strings (for the kHealth wire reply and
// operator tools) and as numeric gauges (so `dcertctl stats` merges can spot
// replicas running different binaries).
#pragma once

#include <cstdint>
#include <string>

namespace dcert::common {

/// The abbreviated git commit SHA the binary was built from ("unknown" when
/// built outside a git checkout).
const std::string& GitSha();

/// The sanitizer the binary was built with ("none", "thread", "address",
/// "undefined").
const std::string& SanitizerName();

/// CMAKE_BUILD_TYPE at configure time ("Release", "RelWithDebInfo", ...).
const std::string& BuildType();

/// One human-readable line: "<sha> <build-type> san=<sanitizer>".
const std::string& BuildString();

/// The first 8 hex digits of the git SHA as an integer gauge value (0 when
/// the SHA is unknown), so snapshots from different builds disagree numerically.
std::int64_t GitShaGauge();

/// Sanitizer as a small enum gauge: 0=none, 1=thread, 2=address, 3=undefined.
std::int64_t SanitizerGauge();

/// Registers `build.git_sha` and `build.sanitizer` gauges in the global
/// metrics registry (idempotent; latest registration wins, values identical).
void RegisterBuildInfoMetrics();

}  // namespace dcert::common
