#include "common/io_fault.h"

namespace dcert::common {

IoFaultInjector& IoFaultInjector::Global() {
  static IoFaultInjector injector;
  return injector;
}

void IoFaultInjector::Arm(const IoFaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rng_ = Rng(config.seed);
  failed_writes_.store(0);
  short_writes_.store(0);
  failed_fsyncs_.store(0);
  armed_.store(true, std::memory_order_relaxed);
}

void IoFaultInjector::Disarm() { armed_.store(false, std::memory_order_relaxed); }

IoFaultDecision IoFaultInjector::OnWrite(const char* site) {
  (void)site;
  if (!armed_.load(std::memory_order_relaxed)) return IoFaultDecision::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  // Short-write first so both faults stay reachable when both rates are set:
  // a single draw per class keeps the stream deterministic per call order.
  if (rng_.Chance(config_.short_write_rate)) {
    short_writes_.fetch_add(1);
    return IoFaultDecision::kShortWrite;
  }
  if (rng_.Chance(config_.fail_write_rate)) {
    failed_writes_.fetch_add(1);
    return IoFaultDecision::kFailWrite;
  }
  return IoFaultDecision::kNone;
}

bool IoFaultInjector::OnFsync(const char* site) {
  (void)site;
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (rng_.Chance(config_.fail_fsync_rate)) {
    failed_fsyncs_.fetch_add(1);
    return true;
  }
  return false;
}

}  // namespace dcert::common
