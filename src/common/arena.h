// Chunked object pool for tree nodes: bump allocation inside geometrically
// growing chunks plus a free list of destroyed slots, so batch updates that
// churn thousands of nodes stop paying one malloc/free per node. All chunk
// memory is released when the arena is destroyed.
//
// Lifetime rules (see DESIGN.md "SIMD hashing & memory layout"):
//  * Every object allocated from an arena must be destroyed (via Delete or an
//    ArenaPtr) before the arena itself dies — the arena asserts nothing and
//    simply frees its chunks, so a live object outliving its arena is a bug
//    in the owner.
//  * Owners therefore hold the arena behind a stable pointer declared BEFORE
//    the root ArenaPtr member, making member destruction order (root first,
//    arena second) enforce the rule, and keeping the owner movable (deleters
//    point at the heap-allocated arena, whose address never changes).
//  * Arenas are single-threaded by design: one tree owns one arena, and
//    trees are externally synchronized exactly as before.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dcert::common {

template <typename T>
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T in a pooled slot (reusing a freed slot when available).
  template <typename... Args>
  T* New(Args&&... args) {
    void* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next;
    } else {
      if (bump_ == bump_end_) Grow();
      slot = bump_;
      bump_ += kSlotSize;
    }
    return new (slot) T(std::forward<Args>(args)...);
  }

  /// Destroys a T previously returned by New and recycles its slot.
  void Delete(T* p) {
    p->~T();
    auto* node = new (static_cast<void*>(p)) FreeNode{free_};
    free_ = node;
  }

  /// Total slots ever carved out of chunks (capacity bound, for tests).
  std::size_t SlotCount() const { return slots_; }

 private:
  // A slot must fit T and, once freed, an intrusive free-list node.
  static constexpr std::size_t kSlotSize =
      sizeof(T) > sizeof(void*) ? sizeof(T) : sizeof(void*);
  static constexpr std::size_t kFirstChunkSlots = 64;
  static constexpr std::size_t kMaxChunkSlots = 8192;
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "Arena relies on operator new alignment");

  struct FreeNode {
    FreeNode* next;
  };

  void Grow() {
    const std::size_t chunk_slots =
        chunks_.empty()
            ? kFirstChunkSlots
            : std::min(kMaxChunkSlots, slots_);  // double until the cap
    chunks_.push_back(std::make_unique<std::byte[]>(chunk_slots * kSlotSize));
    bump_ = chunks_.back().get();
    bump_end_ = bump_ + chunk_slots * kSlotSize;
    slots_ += chunk_slots;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  FreeNode* free_ = nullptr;
  std::size_t slots_ = 0;
};

/// Deleter returning the object to its arena; default-constructed (null
/// arena) only for empty ArenaPtr.
template <typename T>
struct ArenaDeleter {
  Arena<T>* arena = nullptr;
  void operator()(T* p) const {
    if (p != nullptr) arena->Delete(p);
  }
};

template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDeleter<T>>;

/// Convenience: allocate from `arena` into an owning ArenaPtr.
template <typename T, typename... Args>
ArenaPtr<T> MakeArenaPtr(Arena<T>& arena, Args&&... args) {
  return ArenaPtr<T>(arena.New(std::forward<Args>(args)...),
                     ArenaDeleter<T>{&arena});
}

}  // namespace dcert::common
