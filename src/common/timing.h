// Wall-clock stopwatch and duration accumulators for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace dcert {

/// Monotonic stopwatch; Elapsed* reads do not stop it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  std::uint64_t ElapsedNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }
  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) / 1e3; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates durations across repeated measurements of one phase.
class DurationAccumulator {
 public:
  void AddNs(std::uint64_t ns) {
    total_ns_ += ns;
    ++count_;
  }
  std::uint64_t total_ns() const { return total_ns_; }
  std::uint64_t count() const { return count_; }
  double MeanMs() const {
    return count_ == 0 ? 0.0 : static_cast<double>(total_ns_) / 1e6 / count_;
  }
  void Reset() {
    total_ns_ = 0;
    count_ = 0;
  }

 private:
  std::uint64_t total_ns_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace dcert
