// Deterministic, seeded disk-fault injection for durability testing. The
// write/fsync paths of RecordLog and CheckpointStore consult the process-wide
// injector at named sites; a chaos test arms it with seeded failure rates and
// the hooks then return EIO-style errors or perform deliberate short writes
// (leaving a torn-but-recoverable artifact) on a reproducible schedule.
//
// Mirrors the CrashPoints contract: disarmed, every hook is a mutex-free
// early return on one relaxed atomic, so shipping the hooks in production
// code costs nothing measurable.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace dcert::common {

/// Seeded failure rates for the armed injector. Rates are per-hook-call
/// probabilities in [0, 1]; a zero rate never draws from the stream.
struct IoFaultConfig {
  std::uint64_t seed = 1;
  double fail_write_rate = 0;   // whole write fails with an EIO-style error
  double short_write_rate = 0;  // half the payload lands, then the error
  double fail_fsync_rate = 0;   // fsync reports failure after data was queued
};

/// What a write hook decided for this call.
enum class IoFaultDecision : std::uint8_t {
  kNone = 0,
  kFailWrite = 1,   // fail before writing anything
  kShortWrite = 2,  // write a prefix, then fail
};

class IoFaultInjector {
 public:
  static IoFaultInjector& Global();

  /// Arms the injector with seeded rates; replaces any previous arming and
  /// resets counters.
  void Arm(const IoFaultConfig& config);

  /// Disarms all fault injection (the default state).
  void Disarm();

  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Consulted by write paths before a WriteAll; `site` names the caller for
  /// diagnostics (e.g. "record_log.append", "ckpt.write").
  IoFaultDecision OnWrite(const char* site);

  /// Consulted by fsync paths; true means "inject an fsync failure".
  bool OnFsync(const char* site);

  std::uint64_t FailedWrites() const { return failed_writes_.load(); }
  std::uint64_t ShortWrites() const { return short_writes_.load(); }
  std::uint64_t FailedFsyncs() const { return failed_fsyncs_.load(); }
  std::uint64_t TotalInjected() const {
    return FailedWrites() + ShortWrites() + FailedFsyncs();
  }

 private:
  IoFaultInjector() : rng_(1) {}

  std::atomic<bool> armed_{false};
  std::mutex mu_;
  IoFaultConfig config_;
  Rng rng_;
  std::atomic<std::uint64_t> failed_writes_{0};
  std::atomic<std::uint64_t> short_writes_{0};
  std::atomic<std::uint64_t> failed_fsyncs_{0};
};

}  // namespace dcert::common
