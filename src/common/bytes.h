// Basic byte-buffer and 256-bit digest types shared by every DCert module.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dcert {

/// Raw byte buffer used for wire formats, proofs, and values.
using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// A 256-bit digest (SHA-256 output). Value type with total ordering so it can
/// key ordered and unordered containers alike.
class Hash256 {
 public:
  static constexpr std::size_t kSize = 32;

  constexpr Hash256() : data_{} {}
  explicit Hash256(const std::array<std::uint8_t, kSize>& data) : data_(data) {}

  /// Builds a digest from exactly 32 bytes; throws std::invalid_argument otherwise.
  static Hash256 FromBytes(ByteView bytes);

  /// Parses a 64-character hex string; throws std::invalid_argument on bad input.
  static Hash256 FromHex(std::string_view hex);

  const std::array<std::uint8_t, kSize>& data() const { return data_; }
  std::uint8_t* begin() { return data_.data(); }
  std::uint8_t* end() { return data_.data() + kSize; }
  const std::uint8_t* begin() const { return data_.data(); }
  const std::uint8_t* end() const { return data_.data() + kSize; }
  std::size_t size() const { return kSize; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }
  std::uint8_t& operator[](std::size_t i) { return data_[i]; }

  /// True iff every byte is zero (the conventional "null digest").
  bool IsZero() const;

  /// Returns the i-th bit, most-significant first (bit 0 = MSB of byte 0).
  /// Used to navigate binary Merkle tries keyed by digest bits.
  bool Bit(std::size_t i) const {
    return (data_[i / 8] >> (7 - (i % 8))) & 1u;
  }

  std::string ToHex() const;
  Bytes ToBytes() const { return Bytes(data_.begin(), data_.end()); }
  ByteView View() const { return ByteView(data_.data(), kSize); }

  auto operator<=>(const Hash256&) const = default;

 private:
  std::array<std::uint8_t, kSize> data_;
};

/// FNV-1a style mixing over the first 8 bytes; digests are uniformly random so
/// truncation is a perfectly good hash for containers.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    std::uint64_t v;
    std::memcpy(&v, h.data().data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

/// Hex helpers for logs and test vectors.
std::string ToHex(ByteView bytes);
Bytes FromHex(std::string_view hex);

/// Appends `src` to `dst` (concatenation helper for preimages).
void Append(Bytes& dst, ByteView src);
void Append(Bytes& dst, const Hash256& h);

/// Converts a string literal into bytes (no terminator).
Bytes StrBytes(std::string_view s);

}  // namespace dcert
