#include "common/bytes.h"

#include <stdexcept>

namespace dcert {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

Hash256 Hash256::FromBytes(ByteView bytes) {
  if (bytes.size() != kSize) {
    throw std::invalid_argument("Hash256::FromBytes: need exactly 32 bytes");
  }
  std::array<std::uint8_t, kSize> data;
  std::memcpy(data.data(), bytes.data(), kSize);
  return Hash256(data);
}

Hash256 Hash256::FromHex(std::string_view hex) {
  Bytes raw = dcert::FromHex(hex);
  return FromBytes(raw);
}

bool Hash256::IsZero() const {
  for (std::uint8_t b : data_) {
    if (b != 0) return false;
  }
  return true;
}

std::string Hash256::ToHex() const { return dcert::ToHex(View()); }

std::string ToHex(ByteView bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("FromHex: odd-length hex string");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("FromHex: invalid hex digit");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

void Append(Bytes& dst, const Hash256& h) { Append(dst, h.View()); }

Bytes StrBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

}  // namespace dcert
