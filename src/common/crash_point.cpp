#include "common/crash_point.h"

namespace dcert::common {

CrashPoints& CrashPoints::Global() {
  static CrashPoints* instance = new CrashPoints();
  return *instance;
}

void CrashPoints::Arm(const std::string& site, std::uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  site_ = site;
  countdown_ = countdown == 0 ? 1 : countdown;
  fired_ = false;
  hits_.clear();
  armed_.store(true, std::memory_order_release);
}

void CrashPoints::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  site_.clear();
  countdown_ = 0;
  fired_ = false;
  hits_.clear();
}

bool CrashPoints::Fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool CrashPoints::FireNow(const char* site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  bool counted = false;
  for (auto& [name, count] : hits_) {
    if (name == site) {
      ++count;
      counted = true;
      break;
    }
  }
  if (!counted) hits_.emplace_back(site, 1);
  if (fired_ || site_ != site) return false;
  if (--countdown_ > 0) return false;
  fired_ = true;
  // Disarm so recovery code re-entering the same site does not re-fire.
  armed_.store(false, std::memory_order_release);
  return true;
}

void CrashPoints::Throw(const char* site) { throw CrashInjected(site); }

std::uint64_t CrashPoints::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, count] : hits_) {
    if (name == site) return count;
  }
  return 0;
}

}  // namespace dcert::common
