// Lightweight Status/Result types for *expected* failures (verification of
// untrusted inputs: certificates, proofs, blocks). Programming errors and
// malformed internal state still throw exceptions, per the Core Guidelines.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace dcert {

/// Outcome of verifying untrusted data. Conversion to bool tests success so
/// call sites read naturally: `if (!VerifyCert(...)) ...`.
class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return ok(); }
  const std::string& message() const { return message_; }

  /// Prepends context to an error, leaving OK untouched.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Error(context + ": " + message_);
  }

 private:
  Status() = default;
  explicit Status(std::string message) : message_(std::move(message)) {
    if (message_.empty()) message_ = "(unspecified error)";
  }

  std::string message_;  // empty == OK
};

/// A value or an error message. `value()` throws std::logic_error if accessed
/// on an error — that is a caller bug, not an expected failure.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    if (std::get<Status>(storage_).ok()) {
      throw std::logic_error("Result constructed from OK status without a value");
    }
  }
  static Result Error(std::string message) {
    return Result(Status::Error(std::move(message)));
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    Check();
    return std::get<T>(storage_);
  }
  T& value() & {
    Check();
    return std::get<T>(storage_);
  }
  T&& value() && {
    Check();
    return std::get<T>(std::move(storage_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }
  const std::string& message() const { return std::get<Status>(storage_).message(); }

 private:
  void Check() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(storage_).message());
    }
  }

  std::variant<T, Status> storage_;
};

}  // namespace dcert
