#include "common/record_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/crash_point.h"

namespace dcert::common {

namespace {

constexpr std::uint32_t kRecordMagic = 0x44435254;  // "DCRT"
constexpr std::size_t kRecordHeaderSize = 12;       // magic + length + crc

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t DecodeU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

Status Errno(const std::string& name, const char* what) {
  return Status::Error(name + ": " + what + ": " + std::strerror(errno));
}

/// Full pread; false on error or short read (errno untouched on short read
/// beyond what pread set).
bool ReadAt(int fd, std::uint8_t* buf, std::size_t n, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buf + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-record
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteAll(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

/// fsyncs the directory containing `path` so a freshly created file's
/// directory entry is durable (a crash right after create must not lose the
/// empty log, or recovery could mistake "log never existed" for "log empty").
Status FsyncParentDir(const std::string& path, const std::string& name) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Errno(name, "open parent dir");
  if (::fsync(dfd) < 0) {
    const Status st = Errno(name, "fsync parent dir");
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::Ok();
}

}  // namespace

std::uint32_t Crc32(ByteView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = CrcTable()[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

RecordLog::RecordLog(std::string path, Options options, int fd,
                     std::vector<std::uint64_t> offsets, std::uint64_t end_offset,
                     bool recovered)
    : path_(std::move(path)),
      options_(std::move(options)),
      fd_(fd),
      offsets_(std::move(offsets)),
      end_offset_(end_offset),
      recovered_(recovered) {}

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);
}

RecordLog::RecordLog(RecordLog&& other) noexcept
    : path_(std::move(other.path_)),
      options_(std::move(other.options_)),
      fd_(other.fd_),
      offsets_(std::move(other.offsets_)),
      end_offset_(other.end_offset_),
      recovered_(other.recovered_) {
  other.fd_ = -1;
}

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    options_ = std::move(other.options_);
    fd_ = other.fd_;
    offsets_ = std::move(other.offsets_);
    end_offset_ = other.end_offset_;
    recovered_ = other.recovered_;
    other.fd_ = -1;
  }
  return *this;
}

Result<RecordLog> RecordLog::Open(const std::string& path, Options options) {
  using R = Result<RecordLog>;
  const std::string& name = options.name;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return R(Errno(name, ("open " + path).c_str()));
  if (!existed) {
    // Make the directory entry durable before any append relies on it.
    if (Status st = FsyncParentDir(path, name); !st) {
      ::close(fd);
      return R(st);
    }
  }

  struct stat sb;
  if (::fstat(fd, &sb) < 0) {
    const Status st = Errno(name, "fstat");
    ::close(fd);
    return R(st);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(sb.st_size);

  std::vector<std::uint64_t> offsets;
  std::uint64_t pos = 0;
  bool recovered = false;
  while (pos + kRecordHeaderSize <= file_size) {
    std::uint8_t header[kRecordHeaderSize];
    if (!ReadAt(fd, header, kRecordHeaderSize, pos)) {
      recovered = true;
      break;
    }
    const std::uint32_t magic = DecodeU32(header);
    const std::uint32_t length = DecodeU32(header + 4);
    const std::uint32_t crc = DecodeU32(header + 8);
    if (magic != kRecordMagic || pos + kRecordHeaderSize + length > file_size) {
      recovered = true;
      break;
    }
    Bytes payload(length);
    if (!ReadAt(fd, payload.data(), length, pos + kRecordHeaderSize) ||
        Crc32(payload) != crc) {
      recovered = true;
      break;
    }
    offsets.push_back(pos);
    pos += kRecordHeaderSize + length;
  }
  if (pos < file_size && !recovered) recovered = true;  // trailing partial header
  if (recovered) {
    // Physically truncate the torn tail and make the truncation durable
    // before trusting subsequent appends — without the fsync, a second crash
    // could resurrect the dropped tail and corrupt the record stream.
    if (::ftruncate(fd, static_cast<off_t>(pos)) < 0) {
      const Status st = Errno(name, "truncate torn tail");
      ::close(fd);
      return R(st);
    }
    if (::fsync(fd) < 0) {
      const Status st = Errno(name, "fsync after truncation");
      ::close(fd);
      return R(st);
    }
  }
  return RecordLog(path, std::move(options), fd, std::move(offsets), pos,
                   recovered);
}

Status RecordLog::Append(ByteView payload) {
  if (fd_ < 0) return Status::Error(options_.name + ": log is closed");
  Bytes record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendU32(record, kRecordMagic);
  AppendU32(record, static_cast<std::uint32_t>(payload.size()));
  AppendU32(record, Crc32(payload));
  record.insert(record.end(), payload.begin(), payload.end());

  auto& crash = CrashPoints::Global();
  crash.Hit((options_.name + ".append.before").c_str());
  if (crash.FireNow((options_.name + ".append.torn").c_str())) {
    // Simulated power loss mid-write: leave a torn record (header plus part
    // of the payload) on disk, exactly what a real crash can produce.
    const std::size_t torn = kRecordHeaderSize + payload.size() / 2;
    if (::lseek(fd_, static_cast<off_t>(end_offset_), SEEK_SET) >= 0) {
      (void)WriteAll(fd_, record.data(), torn);
    }
    CrashPoints::Throw((options_.name + ".append.torn").c_str());
  }

  if (::lseek(fd_, static_cast<off_t>(end_offset_), SEEK_SET) < 0) {
    return Errno(options_.name, "seek to end");
  }
  if (!WriteAll(fd_, record.data(), record.size())) {
    return Errno(options_.name, "write");
  }
  if (options_.fsync_on_append && ::fsync(fd_) < 0) {
    return Errno(options_.name, "fsync");
  }
  crash.Hit((options_.name + ".append.after").c_str());
  offsets_.push_back(end_offset_);
  end_offset_ += record.size();
  return Status::Ok();
}

Result<Bytes> RecordLog::Get(std::uint64_t index) const {
  using R = Result<Bytes>;
  if (index >= offsets_.size()) {
    return R::Error(options_.name + ": record " + std::to_string(index) +
                    " beyond stored count " + std::to_string(offsets_.size()));
  }
  if (fd_ < 0) return R::Error(options_.name + ": log is closed");
  const std::uint64_t pos = offsets_[static_cast<std::size_t>(index)];
  std::uint8_t header[kRecordHeaderSize];
  if (!ReadAt(fd_, header, kRecordHeaderSize, pos)) {
    return R::Error(options_.name + ": short header read");
  }
  const std::uint32_t length = DecodeU32(header + 4);
  const std::uint32_t crc = DecodeU32(header + 8);
  Bytes payload(length);
  if (!ReadAt(fd_, payload.data(), length, pos + kRecordHeaderSize)) {
    return R::Error(options_.name + ": short read");
  }
  if (Crc32(payload) != crc) {
    return R::Error(options_.name + ": CRC mismatch on read");
  }
  return payload;
}

Status RecordLog::TruncateTo(std::uint64_t count) {
  if (count > offsets_.size()) {
    return Status::Error(options_.name + ": cannot truncate to " +
                         std::to_string(count) + ", only " +
                         std::to_string(offsets_.size()) + " records");
  }
  if (count == offsets_.size()) return Status::Ok();
  const std::uint64_t new_end =
      count == 0 ? 0 : offsets_[static_cast<std::size_t>(count)];
  if (::ftruncate(fd_, static_cast<off_t>(new_end)) < 0) {
    return Errno(options_.name, "truncate");
  }
  if (::fsync(fd_) < 0) return Errno(options_.name, "fsync after truncate");
  offsets_.resize(static_cast<std::size_t>(count));
  end_offset_ = new_end;
  return Status::Ok();
}

Status RecordLog::Fsync() {
  if (fd_ < 0) return Status::Error(options_.name + ": log is closed");
  if (::fsync(fd_) < 0) return Errno(options_.name, "fsync");
  return Status::Ok();
}

}  // namespace dcert::common
