#include "common/record_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/crash_point.h"
#include "common/io_fault.h"
#include "common/serialize.h"

namespace dcert::common {

namespace {

constexpr std::uint32_t kRecordMagic = 0x44435254;   // "DCRT"
constexpr std::size_t kRecordHeaderSize = 12;        // magic + length + crc
constexpr std::uint32_t kSidecarMagic = 0x44435349;  // "DCSI"
constexpr std::uint32_t kManifestMagic = 0x4443534D; // "DCSM"
constexpr std::uint32_t kSidecarVersion = 1;
constexpr std::uint32_t kManifestVersion = 1;

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t DecodeU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

Status Errno(const std::string& name, const std::string& what) {
  return Status::Error(name + ": " + what + ": " + std::strerror(errno));
}

/// Full pread; false on error or short read (errno untouched on short read
/// beyond what pread set).
bool ReadAt(int fd, std::uint8_t* buf, std::size_t n, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buf + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-record
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteAll(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status FsyncDir(const std::string& dir, const std::string& name) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Errno(name, "open dir " + dir);
  if (::fsync(dfd) < 0) {
    const Status st = Errno(name, "fsync dir " + dir);
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::Ok();
}

/// fsyncs the directory containing `path` so a freshly created file's
/// directory entry is durable (a crash right after create must not lose the
/// empty log, or recovery could mistake "log never existed" for "log empty").
Status FsyncParentDir(const std::string& path, const std::string& name) {
  return FsyncDir(ParentDir(path), name);
}

/// write tmp + fsync + rename + dir fsync: the file at `path` is atomically
/// either its old content or `data`, never torn.
Status AtomicWriteDurable(const std::string& path, ByteView data,
                          const std::string& name) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno(name, "open " + tmp);
  if (!WriteAll(fd, data.data(), data.size())) {
    const Status st = Errno(name, "write " + tmp);
    ::close(fd);
    return st;
  }
  if (::fsync(fd) < 0) {
    const Status st = Errno(name, "fsync " + tmp);
    ::close(fd);
    return st;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    return Errno(name, "rename " + tmp);
  }
  return FsyncParentDir(path, name);
}

std::optional<Bytes> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat sb;
  if (::fstat(fd, &sb) < 0) {
    ::close(fd);
    return std::nullopt;
  }
  Bytes data(static_cast<std::size_t>(sb.st_size));
  if (!data.empty() && !ReadAt(fd, data.data(), data.size(), 0)) {
    ::close(fd);
    return std::nullopt;
  }
  ::close(fd);
  return data;
}

/// Verifying scan of a record file: offsets of every intact record plus the
/// clean end position. `clean` is false when a torn/corrupt tail follows.
struct ScanResult {
  std::vector<std::uint64_t> offsets;
  std::uint64_t end = 0;
  bool clean = true;
};

Result<ScanResult> ScanRecords(int fd, std::uint64_t file_size) {
  ScanResult out;
  std::uint64_t pos = 0;
  while (pos + kRecordHeaderSize <= file_size) {
    std::uint8_t header[kRecordHeaderSize];
    if (!ReadAt(fd, header, kRecordHeaderSize, pos)) {
      out.clean = false;
      break;
    }
    const std::uint32_t magic = DecodeU32(header);
    const std::uint32_t length = DecodeU32(header + 4);
    const std::uint32_t crc = DecodeU32(header + 8);
    if (magic != kRecordMagic || pos + kRecordHeaderSize + length > file_size) {
      out.clean = false;
      break;
    }
    Bytes payload(length);
    if (!ReadAt(fd, payload.data(), length, pos + kRecordHeaderSize) ||
        Crc32(payload) != crc) {
      out.clean = false;
      break;
    }
    out.offsets.push_back(pos);
    pos += kRecordHeaderSize + length;
  }
  if (pos < file_size) out.clean = false;  // trailing partial header
  out.end = pos;
  return out;
}

// --- sidecar offset index -------------------------------------------------

Bytes EncodeSidecar(std::uint64_t first, std::uint64_t file_size,
                    const std::vector<std::uint64_t>& offsets) {
  Encoder enc;
  enc.U32(kSidecarMagic);
  enc.U32(kSidecarVersion);
  enc.U64(first);
  enc.U64(file_size);
  enc.U64(offsets.size());
  for (std::uint64_t o : offsets) enc.U64(o);
  Bytes body = enc.Take();
  Bytes out = body;
  AppendU32(out, Crc32(body));
  return out;
}

struct SidecarIndex {
  std::uint64_t first = 0;
  std::uint64_t file_size = 0;
  std::vector<std::uint64_t> offsets;
};

std::optional<SidecarIndex> DecodeSidecar(ByteView data) {
  if (data.size() < 4) return std::nullopt;
  const ByteView body(data.data(), data.size() - 4);
  if (Crc32(body) != DecodeU32(data.data() + body.size())) return std::nullopt;
  try {
    Decoder dec(body);
    if (dec.U32() != kSidecarMagic) return std::nullopt;
    if (dec.U32() != kSidecarVersion) return std::nullopt;
    SidecarIndex idx;
    idx.first = dec.U64();
    idx.file_size = dec.U64();
    const std::uint64_t count = dec.U64();
    idx.offsets.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) idx.offsets.push_back(dec.U64());
    dec.ExpectEnd();
    return idx;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

// --- compaction manifest --------------------------------------------------

struct Manifest {
  std::uint64_t base = 0;
  std::uint64_t active_first = 0;
};

Bytes EncodeManifest(const Manifest& m) {
  Encoder enc;
  enc.U32(kManifestMagic);
  enc.U32(kManifestVersion);
  enc.U64(m.base);
  enc.U64(m.active_first);
  Bytes body = enc.Take();
  Bytes out = body;
  AppendU32(out, Crc32(body));
  return out;
}

std::optional<Manifest> DecodeManifest(ByteView data) {
  if (data.size() < 4) return std::nullopt;
  const ByteView body(data.data(), data.size() - 4);
  if (Crc32(body) != DecodeU32(data.data() + body.size())) return std::nullopt;
  try {
    Decoder dec(body);
    if (dec.U32() != kManifestMagic) return std::nullopt;
    if (dec.U32() != kManifestVersion) return std::nullopt;
    Manifest m;
    m.base = dec.U64();
    m.active_first = dec.U64();
    dec.ExpectEnd();
    return m;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

/// Parses the "<first>" suffix of a segment file name; nullopt when the
/// suffix is not a bare decimal number (e.g. a ".idx" sidecar).
std::optional<std::uint64_t> ParseSegmentFirst(const std::string& suffix) {
  if (suffix.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : suffix) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::uint32_t Crc32(ByteView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = CrcTable()[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void RecordLog::CloseAll() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(seg.map),
               static_cast<std::size_t>(seg.file_size));
      seg.map = nullptr;
    }
    if (seg.fd >= 0) ::close(seg.fd);
    seg.fd = -1;
  }
  segments_.clear();
}

RecordLog::~RecordLog() { CloseAll(); }

RecordLog::RecordLog(RecordLog&& other) noexcept
    : path_(std::move(other.path_)),
      options_(std::move(other.options_)),
      fd_(other.fd_),
      segments_(std::move(other.segments_)),
      offsets_(std::move(other.offsets_)),
      end_offset_(other.end_offset_),
      active_first_(other.active_first_),
      base_(other.base_),
      recovered_(other.recovered_),
      sidecar_rebuilt_(other.sidecar_rebuilt_) {
  other.fd_ = -1;
  other.segments_.clear();
}

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this != &other) {
    CloseAll();
    path_ = std::move(other.path_);
    options_ = std::move(other.options_);
    fd_ = other.fd_;
    segments_ = std::move(other.segments_);
    offsets_ = std::move(other.offsets_);
    end_offset_ = other.end_offset_;
    active_first_ = other.active_first_;
    base_ = other.base_;
    recovered_ = other.recovered_;
    sidecar_rebuilt_ = other.sidecar_rebuilt_;
    other.fd_ = -1;
    other.segments_.clear();
  }
  return *this;
}

Result<RecordLog> RecordLog::Open(const std::string& path, Options options) {
  using R = Result<RecordLog>;
  const std::string& name = options.name;
  const std::string dir = ParentDir(path);
  const std::string base_name = BaseName(path);
  const std::string seg_prefix = base_name + ".seg.";

  // Enumerate this log's on-disk family: sealed segments, sidecars, the
  // manifest, and any ".tmp" leftovers of an interrupted atomic write.
  std::vector<std::uint64_t> seg_firsts;
  std::vector<std::uint64_t> sidecar_firsts;
  {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return R(Errno(name, "opendir " + dir));
    while (struct dirent* ent = ::readdir(d)) {
      const std::string entry = ent->d_name;
      if (entry.rfind(base_name + ".", 0) == 0 &&
          entry.size() > 4 && entry.compare(entry.size() - 4, 4, ".tmp") == 0) {
        ::unlink((dir + "/" + entry).c_str());  // torn atomic write: roll back
        continue;
      }
      if (entry.rfind(seg_prefix, 0) != 0) continue;
      std::string suffix = entry.substr(seg_prefix.size());
      if (suffix.size() > 4 && suffix.compare(suffix.size() - 4, 4, ".idx") == 0) {
        if (auto first = ParseSegmentFirst(suffix.substr(0, suffix.size() - 4))) {
          sidecar_firsts.push_back(*first);
        }
        continue;
      }
      if (auto first = ParseSegmentFirst(suffix)) seg_firsts.push_back(*first);
    }
    ::closedir(d);
  }
  std::sort(seg_firsts.begin(), seg_firsts.end());

  Manifest manifest;  // absent manifest == {0, 0}: the legacy single-file log
  if (auto bytes = ReadWholeFile(path + ".manifest")) {
    auto decoded = DecodeManifest(*bytes);
    if (!decoded) {
      return R::Error(name + ": corrupt manifest " + path + ".manifest");
    }
    manifest = *decoded;
  }

  RecordLog log;
  log.path_ = path;
  log.options_ = options;
  log.base_ = manifest.base;

  // Resume an interrupted compaction: the manifest commit made records below
  // `base` dead, so any segment still on disk below it is unlinked now.
  // (Segment boundaries align with `base` by construction, so first < base
  // identifies exactly the segments the crashed compaction meant to remove.)
  for (std::uint64_t first : seg_firsts) {
    if (first >= manifest.base) continue;
    const std::string seg_path = path + ".seg." + std::to_string(first);
    ::unlink(seg_path.c_str());
    ::unlink((seg_path + ".idx").c_str());
  }
  seg_firsts.erase(std::remove_if(seg_firsts.begin(), seg_firsts.end(),
                                  [&](std::uint64_t f) { return f < manifest.base; }),
                   seg_firsts.end());
  // Orphan sidecars (their segment is gone) are stale; drop them.
  for (std::uint64_t first : sidecar_firsts) {
    if (std::binary_search(seg_firsts.begin(), seg_firsts.end(), first)) continue;
    ::unlink((path + ".seg." + std::to_string(first) + ".idx").c_str());
  }

  // Load every sealed segment, preferring its sidecar index; a missing or
  // CRC-failing sidecar falls back to one verifying scan and is rewritten.
  for (std::uint64_t first : seg_firsts) {
    Segment seg;
    seg.first = first;
    seg.path = path + ".seg." + std::to_string(first);
    seg.fd = ::open(seg.path.c_str(), O_RDONLY);
    if (seg.fd < 0) {
      const Status st = Errno(name, "open segment " + seg.path);
      log.CloseAll();
      return R(st);
    }
    struct stat sb;
    if (::fstat(seg.fd, &sb) < 0) {
      const Status st = Errno(name, "fstat segment " + seg.path);
      ::close(seg.fd);
      log.CloseAll();
      return R(st);
    }
    seg.file_size = static_cast<std::uint64_t>(sb.st_size);

    bool loaded = false;
    if (auto bytes = ReadWholeFile(seg.path + ".idx")) {
      if (auto idx = DecodeSidecar(*bytes);
          idx && idx->first == first && idx->file_size == seg.file_size) {
        seg.offsets = std::move(idx->offsets);
        loaded = true;
      }
    }
    if (!loaded) {
      auto scan = ScanRecords(seg.fd, seg.file_size);
      if (!scan) {
        ::close(seg.fd);
        log.CloseAll();
        return R(scan.status());
      }
      if (!scan.value().clean) {
        // Sealed segments were fsynced before the rename that sealed them;
        // a torn one is real corruption, not a crash artifact.
        ::close(seg.fd);
        log.CloseAll();
        return R::Error(name + ": sealed segment " + seg.path +
                        " is corrupt (torn record inside immutable history)");
      }
      seg.offsets = std::move(scan.value().offsets);
      if (Status st = AtomicWriteDurable(
              seg.path + ".idx", EncodeSidecar(first, seg.file_size, seg.offsets),
              name);
          !st) {
        ::close(seg.fd);
        log.CloseAll();
        return R(st.WithContext("rebuild sidecar"));
      }
      log.sidecar_rebuilt_ = true;
    }

    if (options.mmap_sealed && seg.file_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(seg.file_size),
                         PROT_READ, MAP_PRIVATE, seg.fd, 0);
      if (map != MAP_FAILED) seg.map = static_cast<const std::uint8_t*>(map);
    }
    log.segments_.push_back(std::move(seg));
  }

  // Contiguity: segments tile [base, active_first) exactly.
  std::uint64_t expect = manifest.base;
  for (const Segment& seg : log.segments_) {
    if (seg.first != expect) {
      log.CloseAll();
      return R::Error(name + ": segment gap: expected first index " +
                      std::to_string(expect) + ", found segment at " +
                      std::to_string(seg.first));
    }
    expect += seg.offsets.size();
  }
  log.active_first_ =
      log.segments_.empty() ? manifest.active_first
                            : log.segments_.back().first +
                                  log.segments_.back().offsets.size();

  // Open (or recreate, after a crash between rotation's rename and the new
  // active file's creation) the active segment.
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    log.CloseAll();
    return R(Errno(name, "open " + path));
  }
  log.fd_ = fd;
  if (!existed) {
    // Make the directory entry durable before any append relies on it.
    if (Status st = FsyncParentDir(path, name); !st) {
      log.CloseAll();
      return R(st);
    }
  }

  struct stat sb;
  if (::fstat(fd, &sb) < 0) {
    const Status st = Errno(name, "fstat");
    log.CloseAll();
    return R(st);
  }
  auto scan = ScanRecords(fd, static_cast<std::uint64_t>(sb.st_size));
  if (!scan) {
    log.CloseAll();
    return R(scan.status());
  }
  log.offsets_ = std::move(scan.value().offsets);
  log.end_offset_ = scan.value().end;
  log.recovered_ = !scan.value().clean;
  if (log.recovered_) {
    // Physically truncate the torn tail and make the truncation durable
    // before trusting subsequent appends — without the fsync, a second crash
    // could resurrect the dropped tail and corrupt the record stream.
    if (::ftruncate(fd, static_cast<off_t>(log.end_offset_)) < 0) {
      const Status st = Errno(name, "truncate torn tail");
      log.CloseAll();
      return R(st);
    }
    if (::fsync(fd) < 0) {
      const Status st = Errno(name, "fsync after truncation");
      log.CloseAll();
      return R(st);
    }
  }
  return log;
}

Status RecordLog::Rotate() {
  auto& crash = CrashPoints::Global();
  const std::string& name = options_.name;
  // Drop stray bytes past the indexed records (a failed write can leave
  // them), then make every sealed-to-be record durable.
  if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) < 0) {
    return Errno(name, "rotate: truncate stray tail");
  }
  if (::fsync(fd_) < 0) return Errno(name, "rotate: fsync active");
  crash.Hit((name + ".rotate.begin").c_str());

  const std::string seg_path = path_ + ".seg." + std::to_string(active_first_);
  if (::rename(path_.c_str(), seg_path.c_str()) < 0) {
    return Errno(name, "rotate: rename to " + seg_path);
  }
  if (Status st = FsyncParentDir(path_, name); !st) {
    fd_ = -1;  // on-disk layout moved under us; force a reopen
    return st.WithContext("rotate");
  }
  crash.Hit((name + ".rotate.rename").c_str());
  // fd_ now refers to the renamed (sealed) file; it stays the object's fd —
  // so a crash-site throw below still closes it via the destructor — until
  // the final commit hands it to the Segment.

  if (Status st = AtomicWriteDurable(
          seg_path + ".idx",
          EncodeSidecar(active_first_, end_offset_, offsets_), name);
      !st) {
    fd_ = -1;  // on-disk layout moved under us; force a reopen
    return st.WithContext("rotate: sidecar");
  }
  crash.Hit((name + ".rotate.sidecar").c_str());

  const int new_fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (new_fd < 0) {
    fd_ = -1;
    return Errno(name, "rotate: create fresh active " + path_);
  }
  try {
    if (Status st = FsyncParentDir(path_, name); !st) {
      ::close(new_fd);
      fd_ = -1;
      return st.WithContext("rotate");
    }
    crash.Hit((name + ".rotate.newfile").c_str());
  } catch (...) {
    ::close(new_fd);
    throw;
  }

  Segment seg;
  seg.path = seg_path;
  seg.first = active_first_;
  seg.file_size = end_offset_;
  seg.offsets = std::move(offsets_);
  seg.fd = fd_;
  if (options_.mmap_sealed && seg.file_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(seg.file_size),
                       PROT_READ, MAP_PRIVATE, seg.fd, 0);
    if (map != MAP_FAILED) seg.map = static_cast<const std::uint8_t*>(map);
  }
  active_first_ += seg.offsets.size();
  segments_.push_back(std::move(seg));
  offsets_.clear();
  end_offset_ = 0;
  fd_ = new_fd;
  return Status::Ok();
}

Status RecordLog::Append(ByteView payload) {
  if (fd_ < 0) return Status::Error(options_.name + ": log is closed");
  if (options_.segment_max_records > 0 &&
      offsets_.size() >= options_.segment_max_records) {
    if (Status st = Rotate(); !st) return st;
  }
  Bytes record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendU32(record, kRecordMagic);
  AppendU32(record, static_cast<std::uint32_t>(payload.size()));
  AppendU32(record, Crc32(payload));
  record.insert(record.end(), payload.begin(), payload.end());

  auto& crash = CrashPoints::Global();
  crash.Hit((options_.name + ".append.before").c_str());
  if (crash.FireNow((options_.name + ".append.torn").c_str())) {
    // Simulated power loss mid-write: leave a torn record (header plus part
    // of the payload) on disk, exactly what a real crash can produce.
    const std::size_t torn = kRecordHeaderSize + payload.size() / 2;
    if (::lseek(fd_, static_cast<off_t>(end_offset_), SEEK_SET) >= 0) {
      (void)WriteAll(fd_, record.data(), torn);
    }
    CrashPoints::Throw((options_.name + ".append.torn").c_str());
  }

  if (::lseek(fd_, static_cast<off_t>(end_offset_), SEEK_SET) < 0) {
    return Errno(options_.name, "seek to end");
  }
  switch (IoFaultInjector::Global().OnWrite("record_log.append")) {
    case IoFaultDecision::kFailWrite:
      return Status::Error(options_.name + ": write: injected I/O error");
    case IoFaultDecision::kShortWrite:
      // A torn tail: part of the record lands, the append reports failure,
      // and offsets_/end_offset_ stay unchanged so reopen-time recovery must
      // truncate the tail — the same artifact a real short write leaves.
      (void)WriteAll(fd_, record.data(),
                     kRecordHeaderSize + payload.size() / 2);
      return Status::Error(options_.name + ": write: injected short write");
    case IoFaultDecision::kNone:
      break;
  }
  if (!WriteAll(fd_, record.data(), record.size())) {
    return Errno(options_.name, "write");
  }
  if (options_.fsync_on_append) {
    if (IoFaultInjector::Global().OnFsync("record_log.append")) {
      return Status::Error(options_.name + ": fsync: injected I/O error");
    }
    if (::fsync(fd_) < 0) return Errno(options_.name, "fsync");
  }
  crash.Hit((options_.name + ".append.after").c_str());
  offsets_.push_back(end_offset_);
  end_offset_ += record.size();
  return Status::Ok();
}

Status RecordLog::ReadRecordAt(int fd, const std::uint8_t* map,
                               std::uint64_t file_size, std::uint64_t offset,
                               Bytes& out) const {
  std::uint8_t header[kRecordHeaderSize];
  if (map != nullptr) {
    if (offset + kRecordHeaderSize > file_size) {
      return Status::Error(options_.name + ": record header beyond segment end");
    }
    std::memcpy(header, map + offset, kRecordHeaderSize);
  } else if (!ReadAt(fd, header, kRecordHeaderSize, offset)) {
    return Status::Error(options_.name + ": short header read");
  }
  const std::uint32_t length = DecodeU32(header + 4);
  const std::uint32_t crc = DecodeU32(header + 8);
  out.assign(length, 0);
  if (map != nullptr) {
    if (offset + kRecordHeaderSize + length > file_size) {
      return Status::Error(options_.name + ": record payload beyond segment end");
    }
    std::memcpy(out.data(), map + offset + kRecordHeaderSize, length);
  } else if (!ReadAt(fd, out.data(), length, offset + kRecordHeaderSize)) {
    return Status::Error(options_.name + ": short read");
  }
  if (Crc32(out) != crc) {
    return Status::Error(options_.name + ": CRC mismatch on read");
  }
  return Status::Ok();
}

Result<Bytes> RecordLog::Get(std::uint64_t index) const {
  using R = Result<Bytes>;
  if (index < base_) {
    return R::Error(options_.name + ": record " + std::to_string(index) +
                    " was compacted (first retained: " + std::to_string(base_) +
                    ")");
  }
  if (index >= Count()) {
    return R::Error(options_.name + ": record " + std::to_string(index) +
                    " beyond stored count " + std::to_string(Count()));
  }
  Bytes payload;
  if (index >= active_first_) {
    if (fd_ < 0) return R::Error(options_.name + ": log is closed");
    const std::uint64_t pos =
        offsets_[static_cast<std::size_t>(index - active_first_)];
    if (Status st = ReadRecordAt(fd_, nullptr, end_offset_, pos, payload); !st) {
      return R(st);
    }
    return payload;
  }
  // Sealed history: binary search the segment covering `index`.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), index,
      [](std::uint64_t i, const Segment& s) { return i < s.first; });
  const Segment& seg = *std::prev(it);
  const std::uint64_t pos =
      seg.offsets[static_cast<std::size_t>(index - seg.first)];
  if (Status st = ReadRecordAt(seg.fd, seg.map, seg.file_size, pos, payload);
      !st) {
    return R(st);
  }
  return payload;
}

Status RecordLog::CompactBelow(std::uint64_t floor) {
  if (floor > Count()) {
    return Status::Error(options_.name + ": compaction floor " +
                         std::to_string(floor) + " beyond count " +
                         std::to_string(Count()));
  }
  // Only whole sealed segments can go; they are a prefix of the history.
  std::size_t removable = 0;
  std::uint64_t new_base = base_;
  for (const Segment& seg : segments_) {
    const std::uint64_t seg_end = seg.first + seg.offsets.size();
    if (seg_end > floor) break;
    ++removable;
    new_base = seg_end;
  }
  if (removable == 0) return Status::Ok();

  auto& crash = CrashPoints::Global();
  crash.Hit((options_.name + ".compact.manifest").c_str());
  // The manifest write is the commit point (the tombstone): once durable,
  // reopen treats every segment below `new_base` as dead and unlinks it, so
  // crashing anywhere past this line merely resumes the compaction.
  Manifest m{new_base, active_first_};
  if (Status st = AtomicWriteDurable(path_ + ".manifest", EncodeManifest(m),
                                     options_.name);
      !st) {
    return st.WithContext("compaction manifest");
  }
  crash.Hit((options_.name + ".compact.unlink").c_str());
  for (std::size_t i = 0; i < removable; ++i) {
    Segment& seg = segments_[i];
    if (seg.map != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(seg.map),
               static_cast<std::size_t>(seg.file_size));
      seg.map = nullptr;
    }
    if (seg.fd >= 0) ::close(seg.fd);
    seg.fd = -1;
    ::unlink(seg.path.c_str());
    ::unlink((seg.path + ".idx").c_str());
  }
  if (Status st = FsyncParentDir(path_, options_.name); !st) {
    return st.WithContext("compaction");
  }
  segments_.erase(segments_.begin(),
                  segments_.begin() + static_cast<std::ptrdiff_t>(removable));
  base_ = new_base;
  return Status::Ok();
}

Status RecordLog::TruncateTo(std::uint64_t count) {
  if (count > Count()) {
    return Status::Error(options_.name + ": cannot truncate to " +
                         std::to_string(count) + ", only " +
                         std::to_string(Count()) + " records");
  }
  if (count == Count()) return Status::Ok();
  if (count < active_first_) {
    return Status::Error(options_.name + ": cannot truncate to " +
                         std::to_string(count) +
                         " inside sealed history (active segment starts at " +
                         std::to_string(active_first_) + ")");
  }
  const std::size_t local = static_cast<std::size_t>(count - active_first_);
  const std::uint64_t new_end = local == 0 ? 0 : offsets_[local];
  if (::ftruncate(fd_, static_cast<off_t>(new_end)) < 0) {
    return Errno(options_.name, "truncate");
  }
  if (::fsync(fd_) < 0) return Errno(options_.name, "fsync after truncate");
  offsets_.resize(local);
  end_offset_ = new_end;
  return Status::Ok();
}

Status RecordLog::Fsync() {
  if (fd_ < 0) return Status::Error(options_.name + ": log is closed");
  if (IoFaultInjector::Global().OnFsync("record_log.fsync")) {
    return Status::Error(options_.name + ": fsync: injected I/O error");
  }
  if (::fsync(fd_) < 0) return Errno(options_.name, "fsync");
  return Status::Ok();
}

}  // namespace dcert::common
