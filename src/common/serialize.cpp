#include "common/serialize.h"

namespace dcert {

void Encoder::U16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::Blob(ByteView bytes) {
  U32(static_cast<std::uint32_t>(bytes.size()));
  Raw(bytes);
}

void Encoder::Str(std::string_view s) {
  Blob(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Decoder::Need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw DecodeError("Decoder: truncated input");
  }
}

std::uint8_t Decoder::U8() {
  Need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::U16() {
  Need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::U32() {
  Need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::U64() {
  Need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes Decoder::Raw(std::size_t n) {
  Need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Hash256 Decoder::HashField() {
  Need(Hash256::kSize);
  Hash256 h = Hash256::FromBytes(data_.subspan(pos_, Hash256::kSize));
  pos_ += Hash256::kSize;
  return h;
}

Bytes Decoder::Blob() {
  std::uint32_t n = U32();
  return Raw(n);
}

std::string Decoder::Str() {
  Bytes b = Blob();
  return std::string(b.begin(), b.end());
}

void Decoder::ExpectEnd() const {
  if (!AtEnd()) {
    throw DecodeError("Decoder: trailing bytes after structure");
  }
}

}  // namespace dcert
