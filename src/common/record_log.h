// Reusable append-only record log: the length-prefixed CRC-checked record
// format BlockStore pioneered, generalized so the block log and the durable
// certificate log share one recovery-hardened implementation. One file, an
// in-memory offset index built by a verifying scan on open, and torn-tail
// recovery: a crash mid-append leaves a partial or corrupt last record, which
// Open() detects, physically truncates away, and fsyncs — so a tail that was
// dropped once can never resurrect after a second crash.
//
// Durability contract:
//  * Open() fsyncs the parent directory after creating the file, and fsyncs
//    the file after any torn-tail truncation, before trusting appends.
//  * Append() optionally fsyncs (SetFsyncOnAppend) before reporting success,
//    so an acknowledged record survives power loss; a torn in-flight record
//    is still possible and is what recovery handles.
//  * TruncateTo() (reconciliation) physically truncates and fsyncs.
//
// Crash injection: Append() carries named kill sites (`<name>.append.before`,
// `<name>.append.torn`, `<name>.append.after`, where `name` comes from
// Options) so the crash soak can kill the process-equivalent at every
// durability-relevant instant, including mid-write with a torn record on
// disk. Disarmed sites are a single relaxed load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dcert::common {

/// CRC-32 (IEEE 802.3, reflected) over a byte buffer.
std::uint32_t Crc32(ByteView data);

class RecordLog {
 public:
  struct Options {
    /// Crash-site scope and error-message prefix ("blocklog", "certlog").
    std::string name = "recordlog";
    /// When on, every Append fsyncs before reporting success.
    bool fsync_on_append = false;
  };

  ~RecordLog();
  RecordLog(RecordLog&& other) noexcept;
  RecordLog& operator=(RecordLog&& other) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Opens (creating if absent) the log at `path`. Scans existing records
  /// verifying magic + CRC; a corrupt or torn tail is truncated and fsynced
  /// (records before it stay readable) and reported via
  /// RecoveredFromTornTail().
  static Result<RecordLog> Open(const std::string& path, Options options);
  static Result<RecordLog> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Appends one record. Every I/O step is errno-checked; on failure (or an
  /// injected crash) nothing is indexed.
  Status Append(ByteView payload);

  /// Reads record `index` back, re-verifying its CRC.
  Result<Bytes> Get(std::uint64_t index) const;

  std::uint64_t Count() const { return offsets_.size(); }

  /// Drops records [count, Count()): physical truncation + fsync. Used by
  /// reconciliation when this log ran ahead of its sibling.
  Status TruncateTo(std::uint64_t count);

  /// Explicit durability barrier.
  Status Fsync();

  bool RecoveredFromTornTail() const { return recovered_; }
  const std::string& Path() const { return path_; }
  void SetFsyncOnAppend(bool on) { options_.fsync_on_append = on; }
  bool FsyncOnAppend() const { return options_.fsync_on_append; }

 private:
  RecordLog(std::string path, Options options, int fd,
            std::vector<std::uint64_t> offsets, std::uint64_t end_offset,
            bool recovered);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::vector<std::uint64_t> offsets_;  // file offset of each record header
  std::uint64_t end_offset_ = 0;        // file offset where the next record goes
  bool recovered_ = false;
};

}  // namespace dcert::common
