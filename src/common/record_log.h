// Reusable append-only record log: the length-prefixed CRC-checked record
// format BlockStore pioneered, generalized so the block log and the durable
// certificate log share one recovery-hardened implementation — now a
// *segmented* log so pre-checkpoint history can be compacted away.
//
// Layout on disk (for a log opened at `path`):
//   path                 the ACTIVE segment: the only file ever appended to,
//                        with torn-tail recovery exactly as before.
//   path.seg.<first>     a SEALED segment holding records starting at logical
//                        index <first>. Immutable once renamed into place;
//                        cold reads go through an mmap of the file (pread
//                        fallback when mmap is unavailable).
//   path.seg.<first>.idx the sealed segment's sidecar offset index (magic +
//                        CRC). Lets a cold open skip the verifying scan; on a
//                        CRC/shape mismatch the sidecar is rebuilt by
//                        scanning the segment once.
//   path.manifest        CRC'd compaction manifest: the first retained
//                        logical index (base) and the active segment's first
//                        logical index. Written atomically (tmp + rename);
//                        only compaction updates it.
//
// Rotation (Append when the active segment holds segment_max_records):
//   fsync active -> rename it to path.seg.<first> -> write its sidecar ->
//   create a fresh active file. Every step is re-derivable on reopen: a
//   segment without a sidecar is rescanned, a missing active file is
//   recreated, so a crash anywhere inside rotation loses nothing.
//
// Compaction (CompactBelow): whole sealed segments entirely below the floor
// are removed. The manifest write is the commit point (the tombstone): once
// base is durable, reopen unlinks any segment still on disk below it, so a
// crash between manifest and unlink merely resumes the compaction.
//
// Durability contract:
//  * Open() fsyncs the parent directory after creating files, and fsyncs the
//    active file after any torn-tail truncation, before trusting appends.
//  * Append() optionally fsyncs (SetFsyncOnAppend) before reporting success.
//  * TruncateTo() (reconciliation) physically truncates and fsyncs. It only
//    reaches into the active segment — sealed history is immutable.
//
// Crash injection: Append() carries the original kill sites
// (`<name>.append.before/.torn/.after`); rotation adds
// `<name>.rotate.begin/.rename/.sidecar/.newfile` and compaction
// `<name>.compact.manifest/.unlink`, so the crash soak can kill the
// process-equivalent inside every step of the rename/tombstone protocol.
// Disarmed sites are a single relaxed load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dcert::common {

/// CRC-32 (IEEE 802.3, reflected) over a byte buffer.
std::uint32_t Crc32(ByteView data);

class RecordLog {
 public:
  struct Options {
    /// Crash-site scope and error-message prefix ("blocklog", "certlog").
    std::string name = "recordlog";
    /// When on, every Append fsyncs before reporting success.
    bool fsync_on_append = false;
    /// Records per segment before the active file is sealed and a fresh one
    /// started. 0 (default) never rotates — the original single-file log.
    std::uint64_t segment_max_records = 0;
    /// mmap sealed segments for cold reads (pread fallback when off or when
    /// the mapping fails).
    bool mmap_sealed = true;
  };

  ~RecordLog();
  RecordLog(RecordLog&& other) noexcept;
  RecordLog& operator=(RecordLog&& other) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Opens (creating if absent) the log at `path`. Sealed segments load via
  /// their sidecar index (rebuilt by a verifying scan on CRC mismatch); the
  /// active segment is scanned verifying magic + CRC, and a corrupt or torn
  /// tail is truncated and fsynced (records before it stay readable) and
  /// reported via RecoveredFromTornTail(). Leftovers of an interrupted
  /// rotation or compaction are rolled forward.
  static Result<RecordLog> Open(const std::string& path, Options options);
  static Result<RecordLog> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Appends one record, sealing the active segment first when full. Every
  /// I/O step is errno-checked; on failure (or an injected crash) nothing is
  /// indexed.
  Status Append(ByteView payload);

  /// Reads logical record `index` back, re-verifying its CRC. Fails for
  /// compacted records (index < BaseIndex()).
  Result<Bytes> Get(std::uint64_t index) const;

  /// Logical record count: compacted records still count (they existed).
  std::uint64_t Count() const { return active_first_ + offsets_.size(); }

  /// First retained logical index (> 0 after compaction).
  std::uint64_t BaseIndex() const { return base_; }

  /// Sealed (immutable) segments currently on disk.
  std::size_t SegmentCount() const { return segments_.size(); }

  /// Removes whole sealed segments entirely below logical index `floor`
  /// (records [base, floor) become unreadable; partial segments stay). The
  /// manifest write commits the compaction; unlinks are resumable on reopen.
  Status CompactBelow(std::uint64_t floor);

  /// Drops records [count, Count()): physical truncation + fsync. Used by
  /// reconciliation when this log ran ahead of its sibling; only reaches
  /// into the active segment (sealed history is immutable).
  Status TruncateTo(std::uint64_t count);

  /// Explicit durability barrier (active segment; sealed ones are already
  /// durable).
  Status Fsync();

  bool RecoveredFromTornTail() const { return recovered_; }
  /// True when a sealed segment's sidecar index was missing or failed its
  /// CRC on open and had to be rebuilt by scanning the segment.
  bool SidecarRebuilt() const { return sidecar_rebuilt_; }
  const std::string& Path() const { return path_; }
  void SetFsyncOnAppend(bool on) { options_.fsync_on_append = on; }
  bool FsyncOnAppend() const { return options_.fsync_on_append; }

 private:
  /// One sealed segment: records [first, first + offsets.size()).
  struct Segment {
    std::string path;
    std::uint64_t first = 0;
    std::uint64_t file_size = 0;
    std::vector<std::uint64_t> offsets;  // record-header offsets in the file
    int fd = -1;
    const std::uint8_t* map = nullptr;  // mmap base (nullptr = use pread)

    Result<Bytes> Read(std::uint64_t offset, const std::string& name) const;
  };

  RecordLog() = default;

  /// Seals the full active segment and starts a fresh one (the rotation
  /// protocol above).
  Status Rotate();
  Status ReadRecordAt(int fd, const std::uint8_t* map, std::uint64_t file_size,
                      std::uint64_t offset, Bytes& out) const;
  void CloseAll();

  std::string path_;
  Options options_;
  int fd_ = -1;  // active segment
  std::vector<Segment> segments_;
  std::vector<std::uint64_t> offsets_;  // active records' header offsets
  std::uint64_t end_offset_ = 0;        // active-file offset of the next record
  std::uint64_t active_first_ = 0;      // logical index of active record 0
  std::uint64_t base_ = 0;              // first retained logical index
  bool recovered_ = false;
  bool sidecar_rebuilt_ = false;
};

}  // namespace dcert::common
