#include "common/rng.h"

#include <stdexcept>

namespace dcert {

namespace {

// splitmix64 expands a single seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(seed);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::NextBelow: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t Rng::NextRange(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::NextRange: lo > hi");
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Bytes Rng::NextBytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = NextU64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

}  // namespace dcert
