// Deterministic pseudo-random generator (xoshiro256**) for workload generation
// and tests. Deterministic seeding keeps every experiment reproducible; it is
// NOT used for key material (crypto derives nonces by hashing).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace dcert {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t NextU64();
  /// Uniform in [0, bound) for bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::uint64_t NextRange(std::uint64_t lo, std::uint64_t hi);
  double NextDouble();  // [0, 1)
  /// True with probability `p` (clamped to [0, 1]); p <= 0 never draws, so
  /// zero-rate fault configs cost nothing and do not perturb the stream.
  bool Chance(double p);
  Bytes NextBytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace dcert
