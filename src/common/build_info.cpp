#include "common/build_info.h"

#include <cctype>
#include <memory>

#include "obs/metrics.h"

#ifndef DCERT_GIT_SHA
#define DCERT_GIT_SHA "unknown"
#endif
#ifndef DCERT_SANITIZE_NAME
#define DCERT_SANITIZE_NAME "none"
#endif
#ifndef DCERT_BUILD_TYPE
#define DCERT_BUILD_TYPE "unknown"
#endif

namespace dcert::common {

const std::string& GitSha() {
  static const std::string sha = DCERT_GIT_SHA;
  return sha;
}

const std::string& SanitizerName() {
  static const std::string name = DCERT_SANITIZE_NAME;
  return name;
}

const std::string& BuildType() {
  static const std::string type = DCERT_BUILD_TYPE;
  return type;
}

const std::string& BuildString() {
  static const std::string line =
      GitSha() + " " + BuildType() + " san=" + SanitizerName();
  return line;
}

std::int64_t GitShaGauge() {
  std::int64_t v = 0;
  int digits = 0;
  for (char c : GitSha()) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return 0;
    const int nibble = (c >= '0' && c <= '9') ? c - '0'
                       : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                                                : c - 'A' + 10;
    v = (v << 4) | nibble;
    if (++digits == 8) break;
  }
  return digits == 8 ? v : 0;
}

std::int64_t SanitizerGauge() {
  const std::string& name = SanitizerName();
  if (name == "thread") return 1;
  if (name == "address") return 2;
  if (name == "undefined") return 3;
  return 0;
}

void RegisterBuildInfoMetrics() {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("build.git_sha")->Set(GitShaGauge());
  reg.GetGauge("build.sanitizer")->Set(SanitizerGauge());
}

}  // namespace dcert::common
