// Minimal deterministic binary serialization used for all hashable structures
// (block headers, transactions, certificates, proofs). Little-endian fixed-width
// integers plus length-prefixed buffers; no alignment, no padding, so encodings
// are canonical and safe to hash or sign.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace dcert {

/// Thrown by Decoder when the input is truncated or malformed.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fields to an owned buffer.
class Encoder {
 public:
  Encoder() = default;

  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Raw bytes without a length prefix (use for fixed-size fields).
  void Raw(ByteView bytes) { Append(buf_, bytes); }
  void HashField(const Hash256& h) { Append(buf_, h); }
  /// Length-prefixed (u32) variable-size buffer.
  void Blob(ByteView bytes);
  void Str(std::string_view s);
  void Bool(bool b) { U8(b ? 1 : 0); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads fields back out of a buffer; throws DecodeError on truncation.
class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  Bytes Raw(std::size_t n);
  Hash256 HashField();
  Bytes Blob();
  std::string Str();
  bool Bool() { return U8() != 0; }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }
  /// Asserts the whole input was consumed; rejects trailing garbage.
  void ExpectEnd() const;

 private:
  void Need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace dcert
