// A small fixed-size worker pool shared by the parallel hot paths (SMT
// multiproof generation, bulk leaf hashing, index aux-proof capture, the
// pipelined certificate issuer).
//
// Design constraints that shaped the API:
//  * Reentrancy: pool tasks may themselves call ParallelFor (the pipelined
//    issuer's prepare stage runs ProveKeys, which fans out again). A blocking
//    wait inside a worker would deadlock a small pool, so every wait in this
//    class *helps* — it drains queued tasks on the waiting thread instead of
//    sleeping while work is available.
//  * Determinism: the pool only ever executes caller-supplied closures; all
//    ordering-sensitive merging stays with the caller, so results are
//    byte-identical to serial execution by construction.
//  * Exceptions: Submit propagates through the returned future; ParallelFor
//    rethrows the first exception after all iterations finish or are
//    abandoned.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dcert::common {

class ThreadPool {
 public:
  /// `workers` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t WorkerCount() const { return threads_.size(); }

  /// Enqueues `fn` and returns a future for its result. Never blocks; safe
  /// to call from inside a pool task.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs body(0..n-1), distributing iterations over the workers *and* the
  /// calling thread; returns when all iterations completed. Iterations must
  /// be independent. The first exception thrown by any iteration is rethrown
  /// here (remaining iterations are abandoned, in-flight ones finish).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized to the hardware. Lazily constructed; lives for
  /// the process lifetime.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  /// Pops and runs one queued task. Returns false when the queue was empty.
  bool RunOneTask();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace dcert::common
