// AVX2 8-lane multi-buffer SHA-256: eight independent messages advance in
// lockstep, with the hash state held transposed across ymm registers — vector
// slot i of every register belongs to lane i, so one scalar round expressed in
// 32-bit vector ops performs the round for all eight lanes at once. The state
// is transposed once on entry and once on exit; message words are transposed
// per block with the classic unpack/permute2x128 8x8 network.
//
// This is the only translation unit compiled with -mavx2; callers must check
// Avx2Supported() before using CompressAvx2x8.
#include "crypto/sha256_compress.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

namespace dcert::crypto::internal {

bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

namespace {

// Transposes an 8x8 matrix of 32-bit words held row-major in r[0..7].
inline void Transpose8x8(__m256i r[8]) {
  const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

inline __m256i Ror(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

inline __m256i BigSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror(x, 2), Ror(x, 13)), Ror(x, 22));
}
inline __m256i BigSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror(x, 6), Ror(x, 11)), Ror(x, 25));
}
inline __m256i SmallSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror(x, 7), Ror(x, 18)),
                          _mm256_srli_epi32(x, 3));
}
inline __m256i SmallSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror(x, 17), Ror(x, 19)),
                          _mm256_srli_epi32(x, 10));
}
// Ch(e,f,g) = (e & f) ^ (~e & g), as g ^ (e & (f ^ g)) to save an op.
inline __m256i Ch(__m256i e, __m256i f, __m256i g) {
  return _mm256_xor_si256(g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
}
// Maj(a,b,c) = (a & b) | (c & (a | b)).
inline __m256i Maj(__m256i a, __m256i b, __m256i c) {
  return _mm256_or_si256(_mm256_and_si256(a, b),
                         _mm256_and_si256(c, _mm256_or_si256(a, b)));
}

}  // namespace

void CompressAvx2x8(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t n) {
  // Byte-swap each 32-bit word (big-endian message load), per 128-bit lane.
  const __m256i kBswap = _mm256_set_epi8(
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3,
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);

  // Load lane-major state and transpose so s[w] holds word w of all lanes.
  __m256i s[8];
  for (int lane = 0; lane < 8; ++lane) {
    s[lane] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(states + 8 * lane));
  }
  Transpose8x8(s);

  for (std::size_t blk = 0; blk < n; ++blk) {
    const std::uint8_t* const* lane_blocks = blocks + blk * 8;

    __m256i w[16];
    for (int half = 0; half < 2; ++half) {
      __m256i r[8];
      for (int lane = 0; lane < 8; ++lane) {
        r[lane] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(lane_blocks[lane] + 32 * half));
      }
      Transpose8x8(r);
      for (int word = 0; word < 8; ++word) {
        w[8 * half + word] = _mm256_shuffle_epi8(r[word], kBswap);
      }
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];

// One round for all 8 lanes; callers rotate the argument list instead of
// shifting registers (H receives T1+T2, D receives D+T1).
#define DCERT_AVX2_RND(A, B, C, D, E, F, G, H, W, K)                      \
  do {                                                                    \
    const __m256i t1 = _mm256_add_epi32(                                  \
        _mm256_add_epi32(_mm256_add_epi32(H, BigSigma1(E)),               \
                         _mm256_add_epi32(Ch(E, F, G),                    \
                                          _mm256_set1_epi32(              \
                                              static_cast<int>(K)))),     \
        W);                                                               \
    const __m256i t2 = _mm256_add_epi32(BigSigma0(A), Maj(A, B, C));      \
    D = _mm256_add_epi32(D, t1);                                          \
    H = _mm256_add_epi32(t1, t2);                                         \
  } while (0)

// Eight rounds = one full cycle of the argument rotation.
#define DCERT_AVX2_RND8(W0, W1, W2, W3, W4, W5, W6, W7, KBASE)            \
  DCERT_AVX2_RND(a, b, c, d, e, f, g, h, W0, kSha256K[(KBASE) + 0]);      \
  DCERT_AVX2_RND(h, a, b, c, d, e, f, g, W1, kSha256K[(KBASE) + 1]);      \
  DCERT_AVX2_RND(g, h, a, b, c, d, e, f, W2, kSha256K[(KBASE) + 2]);      \
  DCERT_AVX2_RND(f, g, h, a, b, c, d, e, W3, kSha256K[(KBASE) + 3]);      \
  DCERT_AVX2_RND(e, f, g, h, a, b, c, d, W4, kSha256K[(KBASE) + 4]);      \
  DCERT_AVX2_RND(d, e, f, g, h, a, b, c, W5, kSha256K[(KBASE) + 5]);      \
  DCERT_AVX2_RND(c, d, e, f, g, h, a, b, W6, kSha256K[(KBASE) + 6]);      \
  DCERT_AVX2_RND(b, c, d, e, f, g, h, a, W7, kSha256K[(KBASE) + 7]);

// Message-schedule step on the 16-entry ring: w[j] corresponds to w[i-16]
// for round i with j = i mod 16.
#define DCERT_AVX2_WUPD(J)                                                \
  w[(J)] = _mm256_add_epi32(                                              \
      _mm256_add_epi32(w[(J)], SmallSigma0(w[((J) + 1) & 15])),           \
      _mm256_add_epi32(w[((J) + 9) & 15], SmallSigma1(w[((J) + 14) & 15])))

#define DCERT_AVX2_WUPD8(BASE)                                            \
  DCERT_AVX2_WUPD((BASE) + 0); DCERT_AVX2_WUPD((BASE) + 1);               \
  DCERT_AVX2_WUPD((BASE) + 2); DCERT_AVX2_WUPD((BASE) + 3);               \
  DCERT_AVX2_WUPD((BASE) + 4); DCERT_AVX2_WUPD((BASE) + 5);               \
  DCERT_AVX2_WUPD((BASE) + 6); DCERT_AVX2_WUPD((BASE) + 7)

    DCERT_AVX2_RND8(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], 0);
    DCERT_AVX2_RND8(w[8], w[9], w[10], w[11], w[12], w[13], w[14], w[15], 8);
    DCERT_AVX2_WUPD8(0);
    DCERT_AVX2_RND8(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], 16);
    DCERT_AVX2_WUPD8(8);
    DCERT_AVX2_RND8(w[8], w[9], w[10], w[11], w[12], w[13], w[14], w[15], 24);
    DCERT_AVX2_WUPD8(0);
    DCERT_AVX2_RND8(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], 32);
    DCERT_AVX2_WUPD8(8);
    DCERT_AVX2_RND8(w[8], w[9], w[10], w[11], w[12], w[13], w[14], w[15], 40);
    DCERT_AVX2_WUPD8(0);
    DCERT_AVX2_RND8(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], 48);
    DCERT_AVX2_WUPD8(8);
    DCERT_AVX2_RND8(w[8], w[9], w[10], w[11], w[12], w[13], w[14], w[15], 56);

#undef DCERT_AVX2_WUPD8
#undef DCERT_AVX2_WUPD
#undef DCERT_AVX2_RND8
#undef DCERT_AVX2_RND

    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], h);
  }

  Transpose8x8(s);
  for (int lane = 0; lane < 8; ++lane) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(states + 8 * lane),
                        s[lane]);
  }
}

}  // namespace dcert::crypto::internal

#else  // non-x86 fallback

namespace dcert::crypto::internal {

bool Avx2Supported() { return false; }

void CompressAvx2x8(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t n) {
  for (std::size_t blk = 0; blk < n; ++blk) {
    for (int lane = 0; lane < 8; ++lane) {
      CompressScalar(states + 8 * lane, blocks[blk * 8 + lane], 1);
    }
  }
}

}  // namespace dcert::crypto::internal

#endif
