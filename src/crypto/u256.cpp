#include "crypto/u256.h"

#include <stdexcept>

namespace dcert::crypto {

namespace {

// 64x64 -> 128 multiply using the compiler's native support.
inline void Mul64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo,
                  std::uint64_t& hi) {
  unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  lo = static_cast<std::uint64_t>(p);
  hi = static_cast<std::uint64_t>(p >> 64);
}

inline std::uint64_t AddWithCarry(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t& carry) {
  unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}

}  // namespace

U256 U256::FromBytesBE(ByteView bytes32) {
  if (bytes32.size() != 32) {
    throw std::invalid_argument("U256::FromBytesBE: need 32 bytes");
  }
  U256 out;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | bytes32[static_cast<std::size_t>((3 - limb) * 8 + b)];
    }
    out.limbs[static_cast<std::size_t>(limb)] = v;
  }
  return out;
}

U256 U256::FromHex(std::string_view hex) {
  if (hex.size() > 64) throw std::invalid_argument("U256::FromHex: too long");
  std::string padded(64 - hex.size(), '0');
  padded += std::string(hex);
  return FromBytesBE(dcert::FromHex(padded));
}

Bytes U256::ToBytesBE() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = limbs[static_cast<std::size_t>(limb)];
    for (int b = 0; b < 8; ++b) {
      out[static_cast<std::size_t>((3 - limb) * 8 + (7 - b))] =
          static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

Hash256 U256::ToHash() const { return Hash256::FromBytes(ToBytesBE()); }

std::string U256::ToHex() const { return dcert::ToHex(ToBytesBE()); }

U256 Add(const U256& a, const U256& b, std::uint64_t& carry_out) {
  U256 out;
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    out.limbs[static_cast<std::size_t>(i)] =
        AddWithCarry(a.limbs[static_cast<std::size_t>(i)],
                     b.limbs[static_cast<std::size_t>(i)], carry);
  }
  carry_out = carry;
  return out;
}

U256 Sub(const U256& a, const U256& b, std::uint64_t& borrow_out) {
  U256 out;
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.limbs[static_cast<std::size_t>(i)]) -
                          b.limbs[static_cast<std::size_t>(i)] - borrow;
    out.limbs[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(d);
    borrow = static_cast<std::uint64_t>((d >> 64) & 1);
  }
  borrow_out = borrow;
  return out;
}

U512 Mul(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      std::uint64_t lo, hi;
      Mul64(a.limbs[static_cast<std::size_t>(i)], b.limbs[static_cast<std::size_t>(j)],
            lo, hi);
      // out[i+j] += lo + carry; propagate into hi.
      std::uint64_t c1 = 0;
      out.limbs[static_cast<std::size_t>(i + j)] =
          AddWithCarry(out.limbs[static_cast<std::size_t>(i + j)], lo, c1);
      std::uint64_t c2 = 0;
      out.limbs[static_cast<std::size_t>(i + j)] =
          AddWithCarry(out.limbs[static_cast<std::size_t>(i + j)], carry, c2);
      carry = hi + c1 + c2;  // hi < 2^64-1 so this cannot overflow
    }
    // Propagate the final carry upward.
    std::size_t k = static_cast<std::size_t>(i) + 4;
    while (carry != 0) {
      std::uint64_t c = 0;
      out.limbs[k] = AddWithCarry(out.limbs[k], carry, c);
      carry = c;
      ++k;
    }
  }
  return out;
}

U256 Shr(const U256& a, unsigned s) {
  if (s >= 256) return U256();
  U256 out;
  unsigned limb_shift = s / 64;
  unsigned bit_shift = s % 64;
  for (unsigned i = 0; i + limb_shift < 4; ++i) {
    std::uint64_t v = a.limbs[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 4) {
      v |= a.limbs[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs[i] = v;
  }
  return out;
}

ModArith::ModArith(const U256& modulus, const U256& c) : modulus_(modulus), c_(c) {
  std::uint64_t carry = 0;
  U256 check = dcert::crypto::Add(modulus, c, carry);
  if (!check.IsZero() || carry != 1) {
    throw std::invalid_argument("ModArith: modulus must equal 2^256 - c");
  }
}

U256 ModArith::Reduce(const U256& a) const {
  if (a < modulus_) return a;
  std::uint64_t borrow = 0;
  U256 r = dcert::crypto::Sub(a, modulus_, borrow);
  return r;  // a < 2^256 < 2m, so one subtraction suffices
}

U256 ModArith::Reduce512(const U512& a) const {
  // Fast path for single-limb c (secp256k1's field prime): two fold rounds
  // with 256x64 multiplies instead of full 256x256 products.
  if ((c_.limbs[1] | c_.limbs[2] | c_.limbs[3]) == 0) {
    const std::uint64_t c = c_.limbs[0];
    // t = lo + hi*c, a 5-limb value.
    std::uint64_t t[5];
    std::uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      std::uint64_t mul_lo, mul_hi;
      Mul64(a.limbs[static_cast<std::size_t>(i) + 4], c, mul_lo, mul_hi);
      unsigned __int128 s = static_cast<unsigned __int128>(
                                a.limbs[static_cast<std::size_t>(i)]) +
                            mul_lo + carry;
      t[i] = static_cast<std::uint64_t>(s);
      carry = mul_hi + static_cast<std::uint64_t>(s >> 64);  // cannot overflow
    }
    t[4] = carry;
    // Second fold: t[4]*c is at most ~97 bits, added into the low limbs.
    std::uint64_t fold_lo, fold_hi;
    Mul64(t[4], c, fold_lo, fold_hi);
    unsigned __int128 s = static_cast<unsigned __int128>(t[0]) + fold_lo;
    U256 r;
    r.limbs[0] = static_cast<std::uint64_t>(s);
    s = (s >> 64) + t[1] + fold_hi;
    r.limbs[1] = static_cast<std::uint64_t>(s);
    s = (s >> 64) + t[2];
    r.limbs[2] = static_cast<std::uint64_t>(s);
    s = (s >> 64) + t[3];
    r.limbs[3] = static_cast<std::uint64_t>(s);
    std::uint64_t overflow = static_cast<std::uint64_t>(s >> 64);
    // A final (rare) fold of the single overflow bit, then normalize.
    while (overflow != 0) {
      // overflow * 2^256 ≡ overflow * c.
      std::uint64_t c2 = 0;
      std::uint64_t of_lo, of_hi;
      Mul64(overflow, c, of_lo, of_hi);
      U256 fold2(of_lo, of_hi, 0, 0);
      r = dcert::crypto::Add(r, fold2, c2);
      overflow = c2;
    }
    while (r >= modulus_) {
      std::uint64_t borrow = 0;
      r = dcert::crypto::Sub(r, modulus_, borrow);
    }
    return r;
  }
  // x = hi*2^256 + lo ≡ hi*c + lo (mod 2^256 - c). Each fold shrinks hi by
  // at least 64 bits (c < 2^192), so a few iterations reach hi == 0.
  U256 lo = a.Lo();
  U256 hi = a.Hi();
  while (!hi.IsZero()) {
    U512 fold = dcert::crypto::Mul(hi, c_);
    std::uint64_t carry = 0;
    U256 new_lo = dcert::crypto::Add(lo, fold.Lo(), carry);
    U256 new_hi = fold.Hi();
    if (carry) {
      std::uint64_t c2 = 0;
      new_hi = dcert::crypto::Add(new_hi, U256(1), c2);
    }
    lo = new_lo;
    hi = new_hi;
  }
  // lo may still be in [m, 2^256): subtract until in range (at most twice).
  while (lo >= modulus_) {
    std::uint64_t borrow = 0;
    lo = dcert::crypto::Sub(lo, modulus_, borrow);
  }
  return lo;
}

U256 ModArith::Add(const U256& a, const U256& b) const {
  std::uint64_t carry = 0;
  U256 s = dcert::crypto::Add(a, b, carry);
  if (carry || s >= modulus_) {
    std::uint64_t borrow = 0;
    s = dcert::crypto::Sub(s, modulus_, borrow);
  }
  return s;
}

U256 ModArith::Sub(const U256& a, const U256& b) const {
  std::uint64_t borrow = 0;
  U256 d = dcert::crypto::Sub(a, b, borrow);
  if (borrow) {
    std::uint64_t carry = 0;
    d = dcert::crypto::Add(d, modulus_, carry);
  }
  return d;
}

U256 ModArith::Mul(const U256& a, const U256& b) const {
  return Reduce512(dcert::crypto::Mul(a, b));
}

U256 ModArith::Neg(const U256& a) const {
  if (a.IsZero()) return a;
  std::uint64_t borrow = 0;
  return dcert::crypto::Sub(modulus_, a, borrow);
}

U256 ModArith::Pow(const U256& a, const U256& e) const {
  U256 result(1);
  U256 base = Reduce(a);
  for (int i = 255; i >= 0; --i) {
    result = Sqr(result);
    if (e.Bit(i)) result = Mul(result, base);
  }
  return result;
}

U256 ModArith::Inv(const U256& a) const {
  if (a.IsZero()) throw std::invalid_argument("ModArith::Inv: zero has no inverse");
  std::uint64_t borrow = 0;
  U256 e = dcert::crypto::Sub(modulus_, U256(2), borrow);
  return Pow(a, e);
}

}  // namespace dcert::crypto
