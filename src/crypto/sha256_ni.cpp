// SHA-256 compression using the x86 SHA extensions (SHA-NI). Structure
// follows the well-known Intel reference flow: the message schedule lives in
// four XMM registers advanced with SHA256MSG1/MSG2, and each four-round group
// runs two SHA256RNDS2 operations on the (ABEF, CDGH) state pair.
//
// This translation unit is the only one compiled with -msha; callers must
// check ShaNiSupported() before using CompressShaNi.
#include "crypto/sha256_compress.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

namespace dcert::crypto::internal {

bool ShaNiSupported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

namespace {

inline __m128i LoadK(int group) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * group]));
}

}  // namespace

void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n) {
  const __m128i kByteSwapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack the linear state words into the (ABEF, CDGH) register layout.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (n-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;
    __m128i w0, w1, w2, w3;

    // Rounds 0-3.
    w0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)),
        kByteSwapMask);
    msg = _mm_add_epi32(w0, LoadK(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    w1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        kByteSwapMask);
    msg = _mm_add_epi32(w1, LoadK(1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    w0 = _mm_sha256msg1_epu32(w0, w1);

    // Rounds 8-11.
    w2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        kByteSwapMask);
    msg = _mm_add_epi32(w2, LoadK(2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    w1 = _mm_sha256msg1_epu32(w1, w2);

    // Rounds 12-15 load the last message quad; from here each group also
    // advances the schedule: wb += alignr(wa, wd, 4); wb = msg2(wb, wa);
    // wd = msg1(wd, wa).
    w3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kByteSwapMask);

#define DCERT_SHA_GROUP(group, wa, wb, wd)                   \
  msg = _mm_add_epi32(wa, LoadK(group));                     \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);       \
  msgtmp = _mm_alignr_epi8(wa, wd, 4);                       \
  wb = _mm_add_epi32(wb, msgtmp);                            \
  wb = _mm_sha256msg2_epu32(wb, wa);                         \
  msg = _mm_shuffle_epi32(msg, 0x0E);                        \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);       \
  wd = _mm_sha256msg1_epu32(wd, wa);

    DCERT_SHA_GROUP(3, w3, w0, w2)    // rounds 12-15
    DCERT_SHA_GROUP(4, w0, w1, w3)    // rounds 16-19
    DCERT_SHA_GROUP(5, w1, w2, w0)    // rounds 20-23
    DCERT_SHA_GROUP(6, w2, w3, w1)    // rounds 24-27
    DCERT_SHA_GROUP(7, w3, w0, w2)    // rounds 28-31
    DCERT_SHA_GROUP(8, w0, w1, w3)    // rounds 32-35
    DCERT_SHA_GROUP(9, w1, w2, w0)    // rounds 36-39
    DCERT_SHA_GROUP(10, w2, w3, w1)   // rounds 40-43
    DCERT_SHA_GROUP(11, w3, w0, w2)   // rounds 44-47
    DCERT_SHA_GROUP(12, w0, w1, w3)   // rounds 48-51
#undef DCERT_SHA_GROUP

    // Rounds 52-55: final msg2 for w2, no more msg1 needed.
    msg = _mm_add_epi32(w1, LoadK(13));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(w1, w0, 4);
    w2 = _mm_add_epi32(w2, msgtmp);
    w2 = _mm_sha256msg2_epu32(w2, w1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(w2, LoadK(14));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(w2, w1, 4);
    w3 = _mm_add_epi32(w3, msgtmp);
    w3 = _mm_sha256msg2_epu32(w3, w2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(w3, LoadK(15));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Repack registers back into linear state words.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

namespace {

// (ABEF, CDGH) register pair for one stream, with the linear repacking from
// CompressShaNi factored out so the two-stream variant can reuse it.
struct NiState {
  __m128i abef;
  __m128i cdgh;

  void Load(const std::uint32_t state[8]) {
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
    __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
    hi = _mm_shuffle_epi32(hi, 0x1B);    // EFGH
    abef = _mm_alignr_epi8(tmp, hi, 8);  // ABEF
    cdgh = _mm_blend_epi16(hi, tmp, 0xF0);
  }
  void Store(std::uint32_t state[8]) const {
    __m128i tmp = _mm_shuffle_epi32(abef, 0x1B);  // FEBA
    __m128i hi = _mm_shuffle_epi32(cdgh, 0xB1);   // DCHG
    __m128i lo = _mm_blend_epi16(tmp, hi, 0xF0);  // DCBA
    hi = _mm_alignr_epi8(hi, tmp, 8);             // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), hi);
  }
};

}  // namespace

void CompressShaNiX2(std::uint32_t sa[8], const std::uint8_t* const* a_blocks,
                     std::uint32_t sb[8], const std::uint8_t* const* b_blocks,
                     std::size_t n) {
  const __m128i kByteSwapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  NiState A, B;
  A.Load(sa);
  B.Load(sb);

  for (std::size_t blk = 0; blk < n; ++blk) {
    const std::uint8_t* pa = a_blocks[blk];
    const std::uint8_t* pb = b_blocks[blk];
    const __m128i abef_save_a = A.abef, cdgh_save_a = A.cdgh;
    const __m128i abef_save_b = B.abef, cdgh_save_b = B.cdgh;
    __m128i msg_a, msg_b, tmp_a, tmp_b;
    __m128i w0a, w1a, w2a, w3a, w0b, w1b, w2b, w3b;

    // Rounds 0-3. Every step is issued for both streams back to back; the
    // two rnds2 dependency chains are independent, so they pipeline.
    w0a = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 0)), kByteSwapMask);
    w0b = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 0)), kByteSwapMask);
    msg_a = _mm_add_epi32(w0a, LoadK(0));
    msg_b = _mm_add_epi32(w0b, LoadK(0));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);

    // Rounds 4-7.
    w1a = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 16)), kByteSwapMask);
    w1b = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 16)), kByteSwapMask);
    msg_a = _mm_add_epi32(w1a, LoadK(1));
    msg_b = _mm_add_epi32(w1b, LoadK(1));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);
    w0a = _mm_sha256msg1_epu32(w0a, w1a);
    w0b = _mm_sha256msg1_epu32(w0b, w1b);

    // Rounds 8-11.
    w2a = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 32)), kByteSwapMask);
    w2b = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 32)), kByteSwapMask);
    msg_a = _mm_add_epi32(w2a, LoadK(2));
    msg_b = _mm_add_epi32(w2b, LoadK(2));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);
    w1a = _mm_sha256msg1_epu32(w1a, w2a);
    w1b = _mm_sha256msg1_epu32(w1b, w2b);

    // Rounds 12-15 load the last message quad; from here each group also
    // advances the schedule (same flow as the single-stream version).
    w3a = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 48)), kByteSwapMask);
    w3b = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 48)), kByteSwapMask);

#define DCERT_SHA_GROUP_X2(group, wa, wb, wd)                     \
  msg_a = _mm_add_epi32(wa##a, LoadK(group));                     \
  msg_b = _mm_add_epi32(wa##b, LoadK(group));                     \
  A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);          \
  B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);          \
  tmp_a = _mm_alignr_epi8(wa##a, wd##a, 4);                       \
  tmp_b = _mm_alignr_epi8(wa##b, wd##b, 4);                       \
  wb##a = _mm_add_epi32(wb##a, tmp_a);                            \
  wb##b = _mm_add_epi32(wb##b, tmp_b);                            \
  wb##a = _mm_sha256msg2_epu32(wb##a, wa##a);                     \
  wb##b = _mm_sha256msg2_epu32(wb##b, wa##b);                     \
  msg_a = _mm_shuffle_epi32(msg_a, 0x0E);                         \
  msg_b = _mm_shuffle_epi32(msg_b, 0x0E);                         \
  A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);          \
  B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);          \
  wd##a = _mm_sha256msg1_epu32(wd##a, wa##a);                     \
  wd##b = _mm_sha256msg1_epu32(wd##b, wa##b);

    DCERT_SHA_GROUP_X2(3, w3, w0, w2)    // rounds 12-15
    DCERT_SHA_GROUP_X2(4, w0, w1, w3)    // rounds 16-19
    DCERT_SHA_GROUP_X2(5, w1, w2, w0)    // rounds 20-23
    DCERT_SHA_GROUP_X2(6, w2, w3, w1)    // rounds 24-27
    DCERT_SHA_GROUP_X2(7, w3, w0, w2)    // rounds 28-31
    DCERT_SHA_GROUP_X2(8, w0, w1, w3)    // rounds 32-35
    DCERT_SHA_GROUP_X2(9, w1, w2, w0)    // rounds 36-39
    DCERT_SHA_GROUP_X2(10, w2, w3, w1)   // rounds 40-43
    DCERT_SHA_GROUP_X2(11, w3, w0, w2)   // rounds 44-47
    DCERT_SHA_GROUP_X2(12, w0, w1, w3)   // rounds 48-51
#undef DCERT_SHA_GROUP_X2

    // Rounds 52-55: final msg2 for w2, no more msg1 needed.
    msg_a = _mm_add_epi32(w1a, LoadK(13));
    msg_b = _mm_add_epi32(w1b, LoadK(13));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    tmp_a = _mm_alignr_epi8(w1a, w0a, 4);
    tmp_b = _mm_alignr_epi8(w1b, w0b, 4);
    w2a = _mm_add_epi32(w2a, tmp_a);
    w2b = _mm_add_epi32(w2b, tmp_b);
    w2a = _mm_sha256msg2_epu32(w2a, w1a);
    w2b = _mm_sha256msg2_epu32(w2b, w1b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);

    // Rounds 56-59.
    msg_a = _mm_add_epi32(w2a, LoadK(14));
    msg_b = _mm_add_epi32(w2b, LoadK(14));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    tmp_a = _mm_alignr_epi8(w2a, w1a, 4);
    tmp_b = _mm_alignr_epi8(w2b, w1b, 4);
    w3a = _mm_add_epi32(w3a, tmp_a);
    w3b = _mm_add_epi32(w3b, tmp_b);
    w3a = _mm_sha256msg2_epu32(w3a, w2a);
    w3b = _mm_sha256msg2_epu32(w3b, w2b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);

    // Rounds 60-63.
    msg_a = _mm_add_epi32(w3a, LoadK(15));
    msg_b = _mm_add_epi32(w3b, LoadK(15));
    A.cdgh = _mm_sha256rnds2_epu32(A.cdgh, A.abef, msg_a);
    B.cdgh = _mm_sha256rnds2_epu32(B.cdgh, B.abef, msg_b);
    msg_a = _mm_shuffle_epi32(msg_a, 0x0E);
    msg_b = _mm_shuffle_epi32(msg_b, 0x0E);
    A.abef = _mm_sha256rnds2_epu32(A.abef, A.cdgh, msg_a);
    B.abef = _mm_sha256rnds2_epu32(B.abef, B.cdgh, msg_b);

    A.abef = _mm_add_epi32(A.abef, abef_save_a);
    B.abef = _mm_add_epi32(B.abef, abef_save_b);
    A.cdgh = _mm_add_epi32(A.cdgh, cdgh_save_a);
    B.cdgh = _mm_add_epi32(B.cdgh, cdgh_save_b);
  }

  A.Store(sa);
  B.Store(sb);
}

void CompressShaNiX4(std::uint32_t* states, const std::uint8_t* const* blocks,
                     std::size_t n) {
  const __m128i kByteSwapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  NiState S[4];
  for (int l = 0; l < 4; ++l) S[l].Load(states + 8 * l);

  for (std::size_t blk = 0; blk < n; ++blk) {
    __m128i save_abef[4], save_cdgh[4];
    __m128i w[4][4];  // w[quad][lane]
    __m128i msg[4], tmp[4];
    for (int l = 0; l < 4; ++l) {
      save_abef[l] = S[l].abef;
      save_cdgh[l] = S[l].cdgh;
    }

// One message quad loaded and byte-swapped for all four lanes.
#define DCERT_X4_LOAD(q)                                                   \
  for (int l = 0; l < 4; ++l) {                                            \
    w[q][l] = _mm_shuffle_epi8(                                            \
        _mm_loadu_si128(                                                   \
            reinterpret_cast<const __m128i*>(blocks[blk * 4 + l] + 16 * (q))), \
        kByteSwapMask);                                                    \
  }

// Four rounds for all lanes without schedule advance (first three groups).
#define DCERT_X4_ROUNDS(group, q)                                          \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_add_epi32(w[q][l], LoadK(group)); \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].cdgh = _mm_sha256rnds2_epu32(S[l].cdgh, S[l].abef, msg[l]);       \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_shuffle_epi32(msg[l], 0x0E);    \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].abef = _mm_sha256rnds2_epu32(S[l].abef, S[l].cdgh, msg[l]);

// Schedule advance: wd = msg1(wd, wa) (fed by the group that consumed wa).
#define DCERT_X4_MSG1(wd, wa)                                              \
  for (int l = 0; l < 4; ++l)                                              \
    w[wd][l] = _mm_sha256msg1_epu32(w[wd][l], w[wa][l]);

// Full middle group: rounds + wb update (alignr/msg2) + wd msg1.
#define DCERT_X4_GROUP(group, wa, wb, wd)                                  \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_add_epi32(w[wa][l], LoadK(group)); \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].cdgh = _mm_sha256rnds2_epu32(S[l].cdgh, S[l].abef, msg[l]);       \
  for (int l = 0; l < 4; ++l) tmp[l] = _mm_alignr_epi8(w[wa][l], w[wd][l], 4); \
  for (int l = 0; l < 4; ++l) w[wb][l] = _mm_add_epi32(w[wb][l], tmp[l]);  \
  for (int l = 0; l < 4; ++l)                                              \
    w[wb][l] = _mm_sha256msg2_epu32(w[wb][l], w[wa][l]);                   \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_shuffle_epi32(msg[l], 0x0E);    \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].abef = _mm_sha256rnds2_epu32(S[l].abef, S[l].cdgh, msg[l]);       \
  for (int l = 0; l < 4; ++l)                                              \
    w[wd][l] = _mm_sha256msg1_epu32(w[wd][l], w[wa][l]);

// Late group: rounds + wb update, no further msg1 needed.
#define DCERT_X4_GROUP_NOMSG1(group, wa, wb, wd)                           \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_add_epi32(w[wa][l], LoadK(group)); \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].cdgh = _mm_sha256rnds2_epu32(S[l].cdgh, S[l].abef, msg[l]);       \
  for (int l = 0; l < 4; ++l) tmp[l] = _mm_alignr_epi8(w[wa][l], w[wd][l], 4); \
  for (int l = 0; l < 4; ++l) w[wb][l] = _mm_add_epi32(w[wb][l], tmp[l]);  \
  for (int l = 0; l < 4; ++l)                                              \
    w[wb][l] = _mm_sha256msg2_epu32(w[wb][l], w[wa][l]);                   \
  for (int l = 0; l < 4; ++l) msg[l] = _mm_shuffle_epi32(msg[l], 0x0E);    \
  for (int l = 0; l < 4; ++l)                                              \
    S[l].abef = _mm_sha256rnds2_epu32(S[l].abef, S[l].cdgh, msg[l]);

    DCERT_X4_LOAD(0)
    DCERT_X4_ROUNDS(0, 0)   // rounds 0-3
    DCERT_X4_LOAD(1)
    DCERT_X4_ROUNDS(1, 1)   // rounds 4-7
    DCERT_X4_MSG1(0, 1)
    DCERT_X4_LOAD(2)
    DCERT_X4_ROUNDS(2, 2)   // rounds 8-11
    DCERT_X4_MSG1(1, 2)
    DCERT_X4_LOAD(3)

    DCERT_X4_GROUP(3, 3, 0, 2)    // rounds 12-15
    DCERT_X4_GROUP(4, 0, 1, 3)    // rounds 16-19
    DCERT_X4_GROUP(5, 1, 2, 0)    // rounds 20-23
    DCERT_X4_GROUP(6, 2, 3, 1)    // rounds 24-27
    DCERT_X4_GROUP(7, 3, 0, 2)    // rounds 28-31
    DCERT_X4_GROUP(8, 0, 1, 3)    // rounds 32-35
    DCERT_X4_GROUP(9, 1, 2, 0)    // rounds 36-39
    DCERT_X4_GROUP(10, 2, 3, 1)   // rounds 40-43
    DCERT_X4_GROUP(11, 3, 0, 2)   // rounds 44-47
    DCERT_X4_GROUP(12, 0, 1, 3)   // rounds 48-51
    DCERT_X4_GROUP_NOMSG1(13, 1, 2, 0)  // rounds 52-55
    DCERT_X4_GROUP_NOMSG1(14, 2, 3, 1)  // rounds 56-59
    DCERT_X4_ROUNDS(15, 3)              // rounds 60-63

#undef DCERT_X4_LOAD
#undef DCERT_X4_ROUNDS
#undef DCERT_X4_MSG1
#undef DCERT_X4_GROUP
#undef DCERT_X4_GROUP_NOMSG1

    for (int l = 0; l < 4; ++l) {
      S[l].abef = _mm_add_epi32(S[l].abef, save_abef[l]);
      S[l].cdgh = _mm_add_epi32(S[l].cdgh, save_cdgh[l]);
    }
  }

  for (int l = 0; l < 4; ++l) S[l].Store(states + 8 * l);
}

}  // namespace dcert::crypto::internal

#else  // non-x86 fallback

namespace dcert::crypto::internal {

bool ShaNiSupported() { return false; }

void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n) {
  CompressScalar(state, blocks, n);
}

void CompressShaNiX2(std::uint32_t sa[8], const std::uint8_t* const* a_blocks,
                     std::uint32_t sb[8], const std::uint8_t* const* b_blocks,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    CompressScalar(sa, a_blocks[i], 1);
    CompressScalar(sb, b_blocks[i], 1);
  }
}

void CompressShaNiX4(std::uint32_t* states, const std::uint8_t* const* blocks,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (int l = 0; l < 4; ++l) {
      CompressScalar(states + 8 * l, blocks[i * 4 + l], 1);
    }
  }
}

}  // namespace dcert::crypto::internal

#endif
