// SHA-256 compression using the x86 SHA extensions (SHA-NI). Structure
// follows the well-known Intel reference flow: the message schedule lives in
// four XMM registers advanced with SHA256MSG1/MSG2, and each four-round group
// runs two SHA256RNDS2 operations on the (ABEF, CDGH) state pair.
//
// This translation unit is the only one compiled with -msha; callers must
// check ShaNiSupported() before using CompressShaNi.
#include "crypto/sha256_compress.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

namespace dcert::crypto::internal {

bool ShaNiSupported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

namespace {

inline __m128i LoadK(int group) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256K[4 * group]));
}

}  // namespace

void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n) {
  const __m128i kByteSwapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack the linear state words into the (ABEF, CDGH) register layout.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (n-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;
    __m128i w0, w1, w2, w3;

    // Rounds 0-3.
    w0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)),
        kByteSwapMask);
    msg = _mm_add_epi32(w0, LoadK(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    w1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        kByteSwapMask);
    msg = _mm_add_epi32(w1, LoadK(1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    w0 = _mm_sha256msg1_epu32(w0, w1);

    // Rounds 8-11.
    w2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        kByteSwapMask);
    msg = _mm_add_epi32(w2, LoadK(2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    w1 = _mm_sha256msg1_epu32(w1, w2);

    // Rounds 12-15 load the last message quad; from here each group also
    // advances the schedule: wb += alignr(wa, wd, 4); wb = msg2(wb, wa);
    // wd = msg1(wd, wa).
    w3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kByteSwapMask);

#define DCERT_SHA_GROUP(group, wa, wb, wd)                   \
  msg = _mm_add_epi32(wa, LoadK(group));                     \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);       \
  msgtmp = _mm_alignr_epi8(wa, wd, 4);                       \
  wb = _mm_add_epi32(wb, msgtmp);                            \
  wb = _mm_sha256msg2_epu32(wb, wa);                         \
  msg = _mm_shuffle_epi32(msg, 0x0E);                        \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);       \
  wd = _mm_sha256msg1_epu32(wd, wa);

    DCERT_SHA_GROUP(3, w3, w0, w2)    // rounds 12-15
    DCERT_SHA_GROUP(4, w0, w1, w3)    // rounds 16-19
    DCERT_SHA_GROUP(5, w1, w2, w0)    // rounds 20-23
    DCERT_SHA_GROUP(6, w2, w3, w1)    // rounds 24-27
    DCERT_SHA_GROUP(7, w3, w0, w2)    // rounds 28-31
    DCERT_SHA_GROUP(8, w0, w1, w3)    // rounds 32-35
    DCERT_SHA_GROUP(9, w1, w2, w0)    // rounds 36-39
    DCERT_SHA_GROUP(10, w2, w3, w1)   // rounds 40-43
    DCERT_SHA_GROUP(11, w3, w0, w2)   // rounds 44-47
    DCERT_SHA_GROUP(12, w0, w1, w3)   // rounds 48-51
#undef DCERT_SHA_GROUP

    // Rounds 52-55: final msg2 for w2, no more msg1 needed.
    msg = _mm_add_epi32(w1, LoadK(13));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(w1, w0, 4);
    w2 = _mm_add_epi32(w2, msgtmp);
    w2 = _mm_sha256msg2_epu32(w2, w1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(w2, LoadK(14));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(w2, w1, 4);
    w3 = _mm_add_epi32(w3, msgtmp);
    w3 = _mm_sha256msg2_epu32(w3, w2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(w3, LoadK(15));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Repack registers back into linear state words.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace dcert::crypto::internal

#else  // non-x86 fallback

namespace dcert::crypto::internal {

bool ShaNiSupported() { return false; }

void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n) {
  CompressScalar(state, blocks, n);
}

}  // namespace dcert::crypto::internal

#endif
