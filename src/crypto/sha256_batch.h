// Multi-buffer SHA-256: hashes many independent messages at once, filling
// SIMD lanes (AVX2 8-lane transposed rounds) or interleaving hardware streams
// (SHA-NI two-way) instead of walking messages one at a time. This is the
// engine behind batched Merkle-node rehashing — every tree in src/mht feeds
// its per-level sibling-pair jobs through HashMany.
//
// Backend selection is resolved once per process from CPU features, with a
// runtime override for testing the fallback paths on any machine:
//   DCERT_FORCE_SCALAR_HASH=1          — portable scalar everywhere
//   DCERT_FORCE_SHA_BACKEND=scalar|shani|avx2
// Requesting an unsupported ISA falls back to the best supported backend
// (never to an unsupported one); ActiveBatchBackend()/ActiveStreamBackend()
// report what actually runs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace dcert::crypto {

enum class ShaBackend : std::uint8_t {
  kScalar = 0,  // portable C++ (always available)
  kShaNi = 1,   // x86 SHA extensions; batch path interleaves two streams
  kAvx2 = 2,    // 8-lane transposed rounds (batch path only)
};

/// Stable lowercase name ("scalar", "shani", "avx2") for logs and JSON.
const char* ShaBackendName(ShaBackend b);

/// True when this CPU can run the backend at all.
bool ShaBackendSupported(ShaBackend b);

/// Backend the multi-buffer batch path (HashMany) uses, after env overrides.
ShaBackend ActiveBatchBackend();

/// Backend the single-stream path (class Sha256) uses, after env overrides.
/// AVX2 has no single-stream advantage, so forcing avx2 affects the batch
/// path only; the stream path then picks the best of SHA-NI/scalar.
ShaBackend ActiveStreamBackend();

/// One independent message to hash. `out` receives the full SHA-256 digest.
struct HashJob {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  Hash256* out = nullptr;
};

/// Hashes every job (one-shot SHA-256 each) using the active batch backend.
/// Jobs may have arbitrary, differing lengths; lanes are grouped by padded
/// block count internally. Byte-identical to Sha256::Digest per job.
void HashMany(const HashJob* jobs, std::size_t n);

/// One pre-padded message: `blocks` points at m complete 64-byte blocks
/// (message, 0x80 pad, zeros, big-endian bit length already laid out).
/// `out` receives the 32 digest bytes; it may alias the job's own message
/// bytes (a digest feeding the next round of a fold chain) — every input
/// block is fully consumed before any digest is stored.
struct PaddedJob {
  const std::uint8_t* blocks = nullptr;
  std::uint8_t* out = nullptr;
};

/// Hashes n pre-padded messages of identical geometry (m blocks each) on the
/// active batch backend. This is the lowest-overhead entry: the tree layers
/// materialize fixed-shape node messages (65 bytes → m=2, 33 bytes → m=1)
/// straight into padded buffers and skip per-job padding analysis entirely.
void HashPadded(const PaddedJob* jobs, std::size_t n, std::size_t m);

namespace internal {

/// Number of 64-byte blocks the padded message occupies.
inline std::size_t PaddedBlockCount(std::size_t size) {
  return (size + 9 + 63) / 64;
}

/// Runs HashMany on an explicit backend (equivalence tests, per-backend
/// benches). Requesting an unsupported backend throws std::runtime_error.
void HashManyWith(ShaBackend backend, const HashJob* jobs, std::size_t n);

/// Pure resolution logic, exposed for tests: maps an override string
/// ("scalar" / "shani" / "avx2", nullptr/empty = no override) to the backend
/// the named path would use. `batch` selects batch-path (AVX2 eligible) vs
/// stream-path rules. The result is always a supported backend.
ShaBackend ResolveShaBackend(const char* override_name, bool batch);

}  // namespace internal

}  // namespace dcert::crypto
