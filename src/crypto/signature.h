// Schnorr signatures over secp256k1 (BIP340-flavoured: even-Y nonces, tagged
// challenge hash, 64-byte signatures). This is the scheme the simulated
// enclave uses for block certificates and the IAS simulation uses for
// attestation reports.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/secp256k1.h"

namespace dcert::crypto {

/// 64-byte signature: R.x (32) || s (32), both big-endian.
struct Signature {
  U256 r;
  U256 s;

  Bytes Serialize() const;
  static std::optional<Signature> Deserialize(ByteView bytes64);
  bool operator==(const Signature&) const = default;
};

/// Public key = affine curve point, serialized uncompressed (64 bytes).
struct PublicKey {
  AffinePoint point;

  Bytes Serialize() const { return point.Serialize(); }
  static std::optional<PublicKey> Deserialize(ByteView bytes64);
  bool operator==(const PublicKey&) const = default;
};

/// Secret key. Keeps the scalar private; signing is the only operation.
class SecretKey {
 public:
  /// Deterministically derives a valid key from arbitrary seed bytes.
  static SecretKey FromSeed(ByteView seed);

  /// Reconstructs a key from its 32-byte big-endian scalar (e.g. unsealed
  /// from enclave storage). Throws std::invalid_argument when the scalar is
  /// zero or not below the group order.
  static SecretKey FromScalarBytes(ByteView scalar32);

  /// Big-endian scalar bytes for sealing. Handle with the same care as the
  /// key itself.
  Bytes ScalarBytes() const { return scalar_.ToBytesBE(); }

  const PublicKey& Public() const { return public_key_; }

  /// Signs a 32-byte message digest. Nonces are derived deterministically
  /// (HMAC of key and message), so signing is reproducible and needs no RNG.
  Signature Sign(const Hash256& digest32) const;

  /// Exposed for the enclave sealing tests only.
  const U256& scalar() const { return scalar_; }

 private:
  SecretKey(U256 scalar, PublicKey pk)
      : scalar_(scalar), public_key_(std::move(pk)) {}

  U256 scalar_;
  PublicKey public_key_;
};

/// Verifies a signature on a 32-byte digest. Constant work (two scalar mults).
bool Verify(const PublicKey& pk, const Hash256& digest32, const Signature& sig);

/// One verification job; all pointers must outlive the VerifyBatch call.
struct VerifyJob {
  const PublicKey* pk = nullptr;
  const Hash256* digest = nullptr;
  const Signature* sig = nullptr;
};

/// Batched Schnorr verification. Combines all jobs into one random-linear-
/// combination equation evaluated by a shared-doubling multi-scalar
/// multiplication, merging challenge scalars per distinct public key (an
/// announcement flood signed by a handful of validators collapses to a few
/// point terms). When the combined equation fails, the batch is bisected to
/// isolate the offenders. Returns exactly what per-job Verify would return.
std::vector<bool> VerifyBatch(const VerifyJob* jobs, std::size_t n);

}  // namespace dcert::crypto
