// Internal: SHA-256 compression-function dispatch. The portable scalar
// implementation always exists; on x86-64 CPUs with the SHA extensions a
// hardware path is selected at runtime (verified against the same NIST
// vectors by the test suite).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcert::crypto::internal {

/// Compresses `n` consecutive 64-byte blocks into `state`.
using CompressFn = void (*)(std::uint32_t state[8], const std::uint8_t* blocks,
                            std::size_t n);

void CompressScalar(std::uint32_t state[8], const std::uint8_t* blocks,
                    std::size_t n);

/// Hardware (SHA-NI) path; only callable when ShaNiSupported() is true.
void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n);
bool ShaNiSupported();

/// Best available implementation for this CPU (resolved once).
CompressFn GetCompressFn();

/// Round constants, shared by both implementations.
extern const std::uint32_t kSha256K[64];

}  // namespace dcert::crypto::internal
