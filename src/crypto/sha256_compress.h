// Internal: SHA-256 compression-function dispatch. The portable scalar
// implementation always exists; on x86-64 CPUs with the SHA extensions a
// hardware path is selected at runtime (verified against the same NIST
// vectors by the test suite).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcert::crypto::internal {

/// Compresses `n` consecutive 64-byte blocks into `state`.
using CompressFn = void (*)(std::uint32_t state[8], const std::uint8_t* blocks,
                            std::size_t n);

void CompressScalar(std::uint32_t state[8], const std::uint8_t* blocks,
                    std::size_t n);

/// Hardware (SHA-NI) path; only callable when ShaNiSupported() is true.
void CompressShaNi(std::uint32_t state[8], const std::uint8_t* blocks,
                   std::size_t n);
bool ShaNiSupported();

/// Two independent SHA-NI streams advanced in lockstep, one instruction
/// stream: sha256rnds2 has multi-cycle latency on a serial dependency chain,
/// so interleaving two chains nearly doubles throughput. `a_blocks` /
/// `b_blocks` are arrays of `n` pointers, each to one 64-byte block (blocks
/// need not be contiguous — padded tail blocks live in per-job scratch).
/// Only callable when ShaNiSupported() is true.
void CompressShaNiX2(std::uint32_t sa[8], const std::uint8_t* const* a_blocks,
                     std::uint32_t sb[8], const std::uint8_t* const* b_blocks,
                     std::size_t n);

/// Four independent SHA-NI streams in one instruction stream. sha256rnds2
/// still has latency headroom with two chains (≈6-cycle latency, 1/cycle
/// throughput), so four chains hide more of it; the schedule registers spill
/// to L1 but the rnds2 chains dominate. Layout matches CompressAvx2x8:
/// `states` is lane-major (lane i's 8 words at states + 8*i); `blocks` holds
/// n*4 pointers, blocks[b*4 + lane] = lane's b-th 64-byte block. Only
/// callable when ShaNiSupported() is true.
void CompressShaNiX4(std::uint32_t* states, const std::uint8_t* const* blocks,
                     std::size_t n);

/// AVX2 8-lane transposed-state path: eight independent messages advance one
/// 64-byte block per step. `states` is lane-major (lane i's 8 words at
/// states + 8*i); `blocks` holds n*8 pointers, blocks[b*8 + lane] = lane i's
/// b-th block. Only callable when Avx2Supported() is true.
void CompressAvx2x8(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t n);
bool Avx2Supported();

/// Implementation for the single-stream path on this process (resolved once;
/// honours DCERT_FORCE_SCALAR_HASH / DCERT_FORCE_SHA_BACKEND).
CompressFn GetCompressFn();

/// Round constants, shared by both implementations.
extern const std::uint32_t kSha256K[64];

}  // namespace dcert::crypto::internal
