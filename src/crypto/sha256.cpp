#include "crypto/sha256.h"

#include <cstring>
#include <stdexcept>

#include "crypto/sha256_batch.h"
#include "crypto/sha256_compress.h"

namespace dcert::crypto {

namespace internal {

const std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline std::uint32_t Rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void CompressScalar(std::uint32_t state[8], const std::uint8_t* blocks,
                    std::size_t n) {
  while (n-- > 0) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(blocks[4 * i]) << 24) |
             (static_cast<std::uint32_t>(blocks[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(blocks[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(blocks[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      std::uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      std::uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      std::uint32_t ch = (e & f) ^ (~e & g);
      std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
      std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += 64;
  }
}

CompressFn GetCompressFn() {
  // ActiveStreamBackend() folds in CPU support and the DCERT_FORCE_* env
  // overrides; it never names a backend this CPU cannot run.
  static const CompressFn fn =
      ActiveStreamBackend() == ShaBackend::kShaNi ? &CompressShaNi
                                                  : &CompressScalar;
  return fn;
}

}  // namespace internal

namespace {

// Resolved once per process.
const internal::CompressFn kCompress = internal::GetCompressFn();

}  // namespace

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
  finalized_ = false;
}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  kCompress(state_, block, 1);
}

void Sha256::Update(ByteView data) {
  if (finalized_) throw std::logic_error("Sha256::Update after Finalize");
  // An empty view may carry a null data(); bail before handing that to
  // memcpy (UB even for zero lengths).
  if (data.empty()) return;
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min<std::size_t>(64 - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  const std::size_t full_blocks = (data.size() - offset) / 64;
  if (full_blocks > 0) {
    kCompress(state_, data.data() + offset, full_blocks);
    offset += full_blocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Hash256 Sha256::Finalize() {
  if (finalized_) throw std::logic_error("Sha256::Finalize called twice");
  finalized_ = true;

  std::uint8_t pad[72];
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  std::size_t rem = (buffer_len_ + 1) % 64;
  std::size_t zeros = (rem <= 56) ? (56 - rem) : (120 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<std::uint8_t>(bit_count_ >> (8 * i));
  }

  // Feed padding through the block machinery directly (bypassing the
  // finalized_ guard in Update).
  std::size_t offset = 0;
  while (offset < pad_len) {
    std::size_t take = std::min<std::size_t>(64 - buffer_len_, pad_len - offset);
    std::memcpy(buffer_ + buffer_len_, pad + offset, take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }

  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return Hash256(out);
}

Hash256 Sha256::Digest(ByteView data) {
  Sha256 ctx;
  ctx.Update(data);
  return ctx.Finalize();
}

Hash256 Sha256::Digest2(ByteView a, ByteView b) {
  Sha256 ctx;
  ctx.Update(a);
  ctx.Update(b);
  return ctx.Finalize();
}

Hash256 HmacSha256(ByteView key, ByteView message) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    Hash256 kh = Sha256::Digest(key);
    std::memcpy(k, kh.data().data(), 32);
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ByteView(ipad, 64));
  inner.Update(message);
  Hash256 inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(ByteView(opad, 64));
  outer.Update(inner_digest.View());
  return outer.Finalize();
}

}  // namespace dcert::crypto
