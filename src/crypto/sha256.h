// From-scratch SHA-256 (FIPS 180-4) plus HMAC-SHA256. Every digest in DCert —
// block headers, Merkle nodes, certificate digests, signature challenges — goes
// through this implementation, so it is tested against the NIST vectors.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace dcert::crypto {

/// Incremental SHA-256 context; supports streaming updates.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteView data);
  /// Finalizes and returns the digest; the context must be Reset() before reuse.
  Hash256 Finalize();

  /// One-shot convenience.
  static Hash256 Digest(ByteView data);
  /// Digest of the concatenation a || b (the Merkle-node idiom H(l || r)).
  static Hash256 Digest2(ByteView a, ByteView b);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
  bool finalized_;
};

/// HMAC-SHA256 (RFC 2104); used for deterministic signature nonces and the
/// simulated enclave sealing MAC.
Hash256 HmacSha256(ByteView key, ByteView message);

}  // namespace dcert::crypto
