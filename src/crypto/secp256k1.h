// secp256k1 group arithmetic (Jacobian coordinates) built on the U256 modular
// toolkit. Only what the signature scheme needs: point add/double, scalar
// multiplication, and (de)serialization of affine points.
#pragma once

#include <optional>

#include "crypto/u256.h"

namespace dcert::crypto {

/// Field and group parameters of secp256k1.
struct Secp256k1Params {
  const ModArith& Fp() const;     // arithmetic mod the field prime p
  const ModArith& Fn() const;     // arithmetic mod the group order n
  const U256& P() const;          // field prime
  const U256& N() const;          // group order
};

/// Singleton accessor (the parameter tables are immutable).
const Secp256k1Params& Curve();

/// Affine point; infinity is represented by the dedicated flag.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  /// 64-byte uncompressed encoding x||y (big-endian). Infinity is not
  /// serializable — callers must never sign/publish it.
  Bytes Serialize() const;
  static std::optional<AffinePoint> Deserialize(ByteView bytes64);

  /// True iff the point satisfies y^2 = x^3 + 7 over Fp.
  bool IsOnCurve() const;
  bool operator==(const AffinePoint&) const = default;
};

/// Jacobian point (X/Z^2, Y/Z^3) for inversion-free chains of operations.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;  // z == 0 encodes infinity

  static JacobianPoint Infinity();
  static JacobianPoint FromAffine(const AffinePoint& p);
  AffinePoint ToAffine() const;
  bool IsInfinity() const { return z.IsZero(); }
};

JacobianPoint Double(const JacobianPoint& p);
JacobianPoint AddJacobian(const JacobianPoint& p, const JacobianPoint& q);
JacobianPoint AddMixed(const JacobianPoint& p, const AffinePoint& q);

/// k * P via double-and-add over the 256 bits of k.
JacobianPoint ScalarMul(const U256& k, const AffinePoint& p);
/// k * G with the fixed generator.
JacobianPoint ScalarMulBase(const U256& k);
/// a*G + b*P — the verifier's workhorse (Shamir's trick).
JacobianPoint DoubleScalarMul(const U256& a, const U256& b, const AffinePoint& p);

/// One term of a multi-scalar multiplication.
struct MsmTerm {
  U256 scalar;
  AffinePoint point;
};

/// Σ scalar_i * point_i with one shared doubling ladder (Strauss): 256
/// doublings total regardless of n, plus ~64 windowed additions per term.
/// The batch verifier's workhorse.
JacobianPoint MultiScalarMul(const MsmTerm* terms, std::size_t n);

/// The even-Y curve point with x-coordinate `x`, or nullopt when x is not on
/// the curve (or >= p). BIP340-style x-only decompression.
std::optional<AffinePoint> LiftX(const U256& x);

const AffinePoint& Generator();

}  // namespace dcert::crypto
