#include "crypto/signature.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace dcert::crypto {

namespace {

// Tagged hash (BIP340 style): H(H(tag) || H(tag) || payload) gives domain
// separation between the challenge hash and every other SHA-256 use.
Hash256 TaggedHash(std::string_view tag, ByteView payload) {
  Hash256 tag_hash = Sha256::Digest(StrBytes(tag));
  Sha256 ctx;
  ctx.Update(tag_hash.View());
  ctx.Update(tag_hash.View());
  ctx.Update(payload);
  return ctx.Finalize();
}

U256 ChallengeScalar(const U256& rx, const PublicKey& pk, const Hash256& digest) {
  Bytes payload = rx.ToBytesBE();
  Bytes pk_bytes = pk.Serialize();
  payload.insert(payload.end(), pk_bytes.begin(), pk_bytes.end());
  Append(payload, digest);
  Hash256 e = TaggedHash("DCert/challenge", payload);
  return Curve().Fn().Reduce(U256::FromHash(e));
}

}  // namespace

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytesBE();
  Bytes sb = s.ToBytesBE();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<Signature> Signature::Deserialize(ByteView bytes64) {
  if (bytes64.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::FromBytesBE(bytes64.subspan(0, 32));
  sig.s = U256::FromBytesBE(bytes64.subspan(32, 32));
  if (sig.r >= Curve().P() || sig.s >= Curve().N()) return std::nullopt;
  return sig;
}

std::optional<PublicKey> PublicKey::Deserialize(ByteView bytes64) {
  auto point = AffinePoint::Deserialize(bytes64);
  if (!point) return std::nullopt;
  return PublicKey{*point};
}

SecretKey SecretKey::FromSeed(ByteView seed) {
  const ModArith& fn = Curve().Fn();
  // Hash the seed with an incrementing counter until we land in [1, n).
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes material(seed.begin(), seed.end());
    for (int i = 0; i < 4; ++i) {
      material.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    Hash256 h = TaggedHash("DCert/keygen", material);
    U256 candidate = fn.Reduce(U256::FromHash(h));
    if (candidate.IsZero()) continue;
    AffinePoint pub = ScalarMulBase(candidate).ToAffine();
    return SecretKey(candidate, PublicKey{pub});
  }
}

SecretKey SecretKey::FromScalarBytes(ByteView scalar32) {
  if (scalar32.size() != 32) {
    throw std::invalid_argument("SecretKey::FromScalarBytes: need 32 bytes");
  }
  U256 scalar = U256::FromBytesBE(scalar32);
  if (scalar.IsZero() || !(scalar < Curve().N())) {
    throw std::invalid_argument("SecretKey::FromScalarBytes: scalar out of range");
  }
  AffinePoint pub = ScalarMulBase(scalar).ToAffine();
  return SecretKey(scalar, PublicKey{pub});
}

Signature SecretKey::Sign(const Hash256& digest32) const {
  const ModArith& fn = Curve().Fn();
  // Deterministic nonce: HMAC(sk, digest || counter), retried on k == 0.
  Bytes sk_bytes = scalar_.ToBytesBE();
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes message = digest32.ToBytes();
    for (int i = 0; i < 4; ++i) {
      message.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    U256 k = fn.Reduce(U256::FromHash(HmacSha256(sk_bytes, message)));
    if (k.IsZero()) continue;

    AffinePoint r_point = ScalarMulBase(k).ToAffine();
    // Normalize to an even-Y nonce point so verification needs no Y byte.
    if (r_point.y.IsOdd()) {
      k = fn.Neg(k);
      r_point.y = Curve().Fp().Neg(r_point.y);
    }

    U256 e = ChallengeScalar(r_point.x, public_key_, digest32);
    U256 s = fn.Add(k, fn.Mul(e, scalar_));
    return Signature{r_point.x, s};
  }
}

bool Verify(const PublicKey& pk, const Hash256& digest32, const Signature& sig) {
  const ModArith& fn = Curve().Fn();
  if (sig.r >= Curve().P() || sig.s >= Curve().N()) return false;
  if (pk.point.infinity || !pk.point.IsOnCurve()) return false;

  U256 e = ChallengeScalar(sig.r, pk, digest32);
  // R' = s*G - e*P; accept iff R' is affine with even Y and X == sig.r.
  JacobianPoint r_prime = DoubleScalarMul(sig.s, fn.Neg(e), pk.point);
  if (r_prime.IsInfinity()) return false;
  AffinePoint r_affine = r_prime.ToAffine();
  return !r_affine.y.IsOdd() && r_affine.x == sig.r;
}

}  // namespace dcert::crypto
