#include "crypto/signature.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "crypto/sha256.h"

namespace dcert::crypto {

namespace {

// Tagged hash (BIP340 style): H(H(tag) || H(tag) || payload) gives domain
// separation between the challenge hash and every other SHA-256 use.
Hash256 TaggedHash(std::string_view tag, ByteView payload) {
  Hash256 tag_hash = Sha256::Digest(StrBytes(tag));
  Sha256 ctx;
  ctx.Update(tag_hash.View());
  ctx.Update(tag_hash.View());
  ctx.Update(payload);
  return ctx.Finalize();
}

U256 ChallengeScalar(const U256& rx, const PublicKey& pk, const Hash256& digest) {
  Bytes payload = rx.ToBytesBE();
  Bytes pk_bytes = pk.Serialize();
  payload.insert(payload.end(), pk_bytes.begin(), pk_bytes.end());
  Append(payload, digest);
  Hash256 e = TaggedHash("DCert/challenge", payload);
  return Curve().Fn().Reduce(U256::FromHash(e));
}

}  // namespace

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytesBE();
  Bytes sb = s.ToBytesBE();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<Signature> Signature::Deserialize(ByteView bytes64) {
  if (bytes64.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::FromBytesBE(bytes64.subspan(0, 32));
  sig.s = U256::FromBytesBE(bytes64.subspan(32, 32));
  if (sig.r >= Curve().P() || sig.s >= Curve().N()) return std::nullopt;
  return sig;
}

std::optional<PublicKey> PublicKey::Deserialize(ByteView bytes64) {
  auto point = AffinePoint::Deserialize(bytes64);
  if (!point) return std::nullopt;
  return PublicKey{*point};
}

SecretKey SecretKey::FromSeed(ByteView seed) {
  const ModArith& fn = Curve().Fn();
  // Hash the seed with an incrementing counter until we land in [1, n).
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes material(seed.begin(), seed.end());
    for (int i = 0; i < 4; ++i) {
      material.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    Hash256 h = TaggedHash("DCert/keygen", material);
    U256 candidate = fn.Reduce(U256::FromHash(h));
    if (candidate.IsZero()) continue;
    AffinePoint pub = ScalarMulBase(candidate).ToAffine();
    return SecretKey(candidate, PublicKey{pub});
  }
}

SecretKey SecretKey::FromScalarBytes(ByteView scalar32) {
  if (scalar32.size() != 32) {
    throw std::invalid_argument("SecretKey::FromScalarBytes: need 32 bytes");
  }
  U256 scalar = U256::FromBytesBE(scalar32);
  if (scalar.IsZero() || !(scalar < Curve().N())) {
    throw std::invalid_argument("SecretKey::FromScalarBytes: scalar out of range");
  }
  AffinePoint pub = ScalarMulBase(scalar).ToAffine();
  return SecretKey(scalar, PublicKey{pub});
}

Signature SecretKey::Sign(const Hash256& digest32) const {
  const ModArith& fn = Curve().Fn();
  // Deterministic nonce: HMAC(sk, digest || counter), retried on k == 0.
  Bytes sk_bytes = scalar_.ToBytesBE();
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes message = digest32.ToBytes();
    for (int i = 0; i < 4; ++i) {
      message.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    U256 k = fn.Reduce(U256::FromHash(HmacSha256(sk_bytes, message)));
    if (k.IsZero()) continue;

    AffinePoint r_point = ScalarMulBase(k).ToAffine();
    // Normalize to an even-Y nonce point so verification needs no Y byte.
    if (r_point.y.IsOdd()) {
      k = fn.Neg(k);
      r_point.y = Curve().Fp().Neg(r_point.y);
    }

    U256 e = ChallengeScalar(r_point.x, public_key_, digest32);
    U256 s = fn.Add(k, fn.Mul(e, scalar_));
    return Signature{r_point.x, s};
  }
}

bool Verify(const PublicKey& pk, const Hash256& digest32, const Signature& sig) {
  const ModArith& fn = Curve().Fn();
  if (sig.r >= Curve().P() || sig.s >= Curve().N()) return false;
  if (pk.point.infinity || !pk.point.IsOnCurve()) return false;

  U256 e = ChallengeScalar(sig.r, pk, digest32);
  // R' = s*G - e*P; accept iff R' is affine with even Y and X == sig.r.
  JacobianPoint r_prime = DoubleScalarMul(sig.s, fn.Neg(e), pk.point);
  if (r_prime.IsInfinity()) return false;
  AffinePoint r_affine = r_prime.ToAffine();
  return !r_affine.y.IsOdd() && r_affine.x == sig.r;
}

namespace {

/// One structurally valid signature prepared for the combined equation:
/// s*G = R + e*P with R = lift_x(r).
struct BatchTerm {
  std::size_t job_index = 0;
  U256 a;            // random combination coefficient (a_0 = 1)
  U256 s;            // signature scalar
  U256 ae;           // a * e mod n
  AffinePoint r;     // lifted nonce point
  const PublicKey* pk = nullptr;
};

/// Evaluates Σ a_i s_i * G - Σ a_i R_i - Σ (Σ_pk a_i e_i) P_pk == ∞ over
/// terms [lo, hi), merging the P scalars per distinct public key.
bool CombinedCheck(const std::vector<BatchTerm>& terms, std::size_t lo,
                   std::size_t hi) {
  const ModArith& fn = Curve().Fn();
  U256 s_sum(0);
  std::map<Bytes, std::pair<const PublicKey*, U256>> per_pk;
  std::vector<MsmTerm> msm;
  msm.reserve(hi - lo + 2);
  for (std::size_t i = lo; i < hi; ++i) {
    const BatchTerm& t = terms[i];
    s_sum = fn.Add(s_sum, fn.Mul(t.a, t.s));
    msm.push_back({fn.Neg(t.a), t.r});
    auto [it, fresh] = per_pk.try_emplace(t.pk->Serialize(), t.pk, t.ae);
    if (!fresh) it->second.second = fn.Add(it->second.second, t.ae);
  }
  msm.push_back({s_sum, Generator()});
  for (const auto& [bytes, entry] : per_pk) {
    msm.push_back({fn.Neg(entry.second), entry.first->point});
  }
  return MultiScalarMul(msm.data(), msm.size()).IsInfinity();
}

/// Marks results for terms [lo, hi): one combined check when the slice is
/// big enough, bisecting on failure, single Verify at the leaves.
void ResolveSlice(const std::vector<BatchTerm>& terms, std::size_t lo,
                  std::size_t hi, const VerifyJob* jobs,
                  std::vector<bool>& results) {
  if (hi - lo >= 2 && CombinedCheck(terms, lo, hi)) {
    for (std::size_t i = lo; i < hi; ++i) results[terms[i].job_index] = true;
    return;
  }
  if (hi - lo <= 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const VerifyJob& job = jobs[terms[i].job_index];
      results[terms[i].job_index] = Verify(*job.pk, *job.digest, *job.sig);
    }
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  ResolveSlice(terms, lo, mid, jobs, results);
  ResolveSlice(terms, mid, hi, jobs, results);
}

}  // namespace

std::vector<bool> VerifyBatch(const VerifyJob* jobs, std::size_t n) {
  std::vector<bool> results(n, false);
  if (n == 0) return results;
  if (n == 1) {
    results[0] = Verify(*jobs[0].pk, *jobs[0].digest, *jobs[0].sig);
    return results;
  }
  const ModArith& fn = Curve().Fn();

  // Structural screening mirrors Verify exactly; jobs failing it are final
  // rejects and never enter the combined equation.
  std::vector<BatchTerm> terms;
  terms.reserve(n);
  Sha256 transcript_ctx;
  for (std::size_t i = 0; i < n; ++i) {
    const VerifyJob& job = jobs[i];
    if (job.sig->r >= Curve().P() || job.sig->s >= Curve().N()) continue;
    if (job.pk->point.infinity || !job.pk->point.IsOnCurve()) continue;
    auto lifted = LiftX(job.sig->r);
    if (!lifted) continue;  // Verify would fail: no R with this x exists
    BatchTerm t;
    t.job_index = i;
    t.s = job.sig->s;
    t.r = *lifted;
    t.pk = job.pk;
    U256 e = ChallengeScalar(job.sig->r, *job.pk, *job.digest);
    t.ae = e;  // scaled by a below
    terms.push_back(t);
    transcript_ctx.Update(job.sig->r.ToHash().View());
    transcript_ctx.Update(job.sig->s.ToHash().View());
    Bytes pk_bytes = job.pk->Serialize();
    transcript_ctx.Update(pk_bytes);
    transcript_ctx.Update(job.digest->View());
  }
  if (terms.empty()) return results;

  // Combination coefficients: a_0 = 1, the rest derived from the whole batch
  // transcript (a forger cannot choose signatures after seeing them).
  Hash256 transcript = transcript_ctx.Finalize();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i == 0) {
      terms[i].a = U256(1);
    } else {
      Bytes material = transcript.ToBytes();
      for (int b = 0; b < 8; ++b) {
        material.push_back(static_cast<std::uint8_t>(i >> (8 * b)));
      }
      Hash256 h = TaggedHash("DCert/batchcoeff", material);
      U256 a = fn.Reduce(U256::FromHash(h));
      terms[i].a = a.IsZero() ? U256(1) : a;
    }
    terms[i].ae = fn.Mul(terms[i].a, terms[i].ae);
  }

  ResolveSlice(terms, 0, terms.size(), jobs, results);
  return results;
}

}  // namespace dcert::crypto
