#include "crypto/secp256k1.h"

#include <stdexcept>
#include <vector>

namespace dcert::crypto {

namespace {

// p = 2^256 - 2^32 - 977
const U256 kP = U256::FromHex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kPc = U256::FromHex("1000003d1");
// n = group order
const U256 kN = U256::FromHex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
const U256 kNc = U256::FromHex("14551231950b75fc4402da1732fc9bebf");

const ModArith& FpArith() {
  static const ModArith fp(kP, kPc);
  return fp;
}

const ModArith& FnArith() {
  static const ModArith fn(kN, kNc);
  return fn;
}

const AffinePoint kG = {
    U256::FromHex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
    U256::FromHex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
    false};

}  // namespace

const ModArith& Secp256k1Params::Fp() const { return FpArith(); }
const ModArith& Secp256k1Params::Fn() const { return FnArith(); }
const U256& Secp256k1Params::P() const { return kP; }
const U256& Secp256k1Params::N() const { return kN; }

const Secp256k1Params& Curve() {
  static const Secp256k1Params params;
  return params;
}

const AffinePoint& Generator() { return kG; }

Bytes AffinePoint::Serialize() const {
  if (infinity) throw std::logic_error("AffinePoint::Serialize: infinity");
  Bytes out = x.ToBytesBE();
  Bytes ybytes = y.ToBytesBE();
  out.insert(out.end(), ybytes.begin(), ybytes.end());
  return out;
}

std::optional<AffinePoint> AffinePoint::Deserialize(ByteView bytes64) {
  if (bytes64.size() != 64) return std::nullopt;
  AffinePoint p;
  p.x = U256::FromBytesBE(bytes64.subspan(0, 32));
  p.y = U256::FromBytesBE(bytes64.subspan(32, 32));
  p.infinity = false;
  if (p.x >= kP || p.y >= kP) return std::nullopt;
  if (!p.IsOnCurve()) return std::nullopt;
  return p;
}

bool AffinePoint::IsOnCurve() const {
  if (infinity) return false;
  const ModArith& fp = FpArith();
  U256 lhs = fp.Sqr(y);
  U256 rhs = fp.Add(fp.Mul(fp.Sqr(x), x), U256(7));
  return lhs == rhs;
}

JacobianPoint JacobianPoint::Infinity() { return {U256(1), U256(1), U256(0)}; }

JacobianPoint JacobianPoint::FromAffine(const AffinePoint& p) {
  if (p.infinity) return Infinity();
  return {p.x, p.y, U256(1)};
}

AffinePoint JacobianPoint::ToAffine() const {
  if (IsInfinity()) return {U256(0), U256(0), true};
  const ModArith& fp = FpArith();
  U256 zinv = fp.Inv(z);
  U256 zinv2 = fp.Sqr(zinv);
  U256 zinv3 = fp.Mul(zinv2, zinv);
  return {fp.Mul(x, zinv2), fp.Mul(y, zinv3), false};
}

JacobianPoint Double(const JacobianPoint& p) {
  if (p.IsInfinity() || p.y.IsZero()) return JacobianPoint::Infinity();
  const ModArith& fp = FpArith();
  // Standard dbl-2009-l formulas (a = 0 curve).
  U256 a = fp.Sqr(p.x);
  U256 b = fp.Sqr(p.y);
  U256 c = fp.Sqr(b);
  U256 d = fp.Sub(fp.Sqr(fp.Add(p.x, b)), fp.Add(a, c));
  d = fp.Add(d, d);
  U256 e = fp.Add(fp.Add(a, a), a);
  U256 f = fp.Sqr(e);
  U256 x3 = fp.Sub(f, fp.Add(d, d));
  U256 c8 = fp.Add(c, c);
  c8 = fp.Add(c8, c8);
  c8 = fp.Add(c8, c8);
  U256 y3 = fp.Sub(fp.Mul(e, fp.Sub(d, x3)), c8);
  U256 z3 = fp.Mul(fp.Add(p.y, p.y), p.z);
  return {x3, y3, z3};
}

JacobianPoint AddJacobian(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  const ModArith& fp = FpArith();
  U256 z1z1 = fp.Sqr(p.z);
  U256 z2z2 = fp.Sqr(q.z);
  U256 u1 = fp.Mul(p.x, z2z2);
  U256 u2 = fp.Mul(q.x, z1z1);
  U256 s1 = fp.Mul(fp.Mul(p.y, z2z2), q.z);
  U256 s2 = fp.Mul(fp.Mul(q.y, z1z1), p.z);
  if (u1 == u2) {
    if (s1 == s2) return Double(p);
    return JacobianPoint::Infinity();
  }
  U256 h = fp.Sub(u2, u1);
  U256 i = fp.Sqr(fp.Add(h, h));
  U256 j = fp.Mul(h, i);
  U256 r = fp.Sub(s2, s1);
  r = fp.Add(r, r);
  U256 v = fp.Mul(u1, i);
  U256 x3 = fp.Sub(fp.Sub(fp.Sqr(r), j), fp.Add(v, v));
  U256 s1j = fp.Mul(s1, j);
  U256 y3 = fp.Sub(fp.Mul(r, fp.Sub(v, x3)), fp.Add(s1j, s1j));
  U256 z3 = fp.Mul(fp.Sub(fp.Sub(fp.Sqr(fp.Add(p.z, q.z)), z1z1), z2z2), h);
  return {x3, y3, z3};
}

JacobianPoint AddMixed(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  return AddJacobian(p, JacobianPoint::FromAffine(q));
}

namespace {

/// 4-bit fixed-window table: entry i holds i*P (entry 0 unused).
using WindowTable = std::array<JacobianPoint, 16>;

WindowTable BuildWindowTable(const AffinePoint& p) {
  WindowTable table;
  table[0] = JacobianPoint::Infinity();
  table[1] = JacobianPoint::FromAffine(p);
  for (int i = 2; i < 16; ++i) table[i] = AddMixed(table[i - 1], p);
  return table;
}

const WindowTable& GeneratorTable() {
  static const WindowTable table = BuildWindowTable(kG);
  return table;
}

/// Nibble w (0 = least significant) of a 256-bit scalar.
inline unsigned Nibble(const U256& k, int w) {
  return static_cast<unsigned>(
      (k.limbs[static_cast<std::size_t>(w / 16)] >> ((w % 16) * 4)) & 0xf);
}

/// Shared windowed ladder for a*G' + b*P' with precomputed tables; either
/// table pointer may be null to skip that term.
JacobianPoint WindowedMul(const U256* a, const WindowTable* ta, const U256* b,
                          const WindowTable* tb) {
  JacobianPoint acc = JacobianPoint::Infinity();
  for (int w = 63; w >= 0; --w) {
    if (w != 63) {
      acc = Double(acc);
      acc = Double(acc);
      acc = Double(acc);
      acc = Double(acc);
    }
    if (a != nullptr) {
      unsigned nib = Nibble(*a, w);
      if (nib != 0) acc = AddJacobian(acc, (*ta)[nib]);
    }
    if (b != nullptr) {
      unsigned nib = Nibble(*b, w);
      if (nib != 0) acc = AddJacobian(acc, (*tb)[nib]);
    }
  }
  return acc;
}

}  // namespace

JacobianPoint ScalarMul(const U256& k, const AffinePoint& p) {
  if (p.infinity || k.IsZero()) return JacobianPoint::Infinity();
  WindowTable table = BuildWindowTable(p);
  return WindowedMul(&k, &table, nullptr, nullptr);
}

JacobianPoint ScalarMulBase(const U256& k) {
  if (k.IsZero()) return JacobianPoint::Infinity();
  return WindowedMul(&k, &GeneratorTable(), nullptr, nullptr);
}

JacobianPoint DoubleScalarMul(const U256& a, const U256& b, const AffinePoint& p) {
  if (p.infinity || b.IsZero()) return ScalarMulBase(a);
  WindowTable table_p = BuildWindowTable(p);
  return WindowedMul(&a, &GeneratorTable(), &b, &table_p);
}

JacobianPoint MultiScalarMul(const MsmTerm* terms, std::size_t n) {
  // One table per live term, then a single shared doubling ladder.
  std::vector<WindowTable> tables;
  std::vector<const U256*> scalars;
  tables.reserve(n);
  scalars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (terms[i].scalar.IsZero() || terms[i].point.infinity) continue;
    tables.push_back(BuildWindowTable(terms[i].point));
    scalars.push_back(&terms[i].scalar);
  }
  JacobianPoint acc = JacobianPoint::Infinity();
  for (int w = 63; w >= 0; --w) {
    if (w != 63) {
      acc = Double(acc);
      acc = Double(acc);
      acc = Double(acc);
      acc = Double(acc);
    }
    for (std::size_t i = 0; i < scalars.size(); ++i) {
      unsigned nib = Nibble(*scalars[i], w);
      if (nib != 0) acc = AddJacobian(acc, tables[i][nib]);
    }
  }
  return acc;
}

std::optional<AffinePoint> LiftX(const U256& x) {
  if (x >= kP) return std::nullopt;
  const ModArith& fp = FpArith();
  U256 rhs = fp.Add(fp.Mul(fp.Sqr(x), x), U256(7));
  // sqrt via a^((p+1)/4) — valid because p ≡ 3 (mod 4).
  static const U256 kSqrtExp = U256::FromHex(
      "3fffffffffffffffffffffffffffffffffffffffffffffffffffffffbfffff0c");
  U256 y = fp.Pow(rhs, kSqrtExp);
  if (fp.Sqr(y) != rhs) return std::nullopt;
  if (y.IsOdd()) y = fp.Neg(y);
  return AffinePoint{x, y, false};
}

}  // namespace dcert::crypto
