// 256-bit unsigned integer arithmetic with the modular routines needed for
// secp256k1. Both secp256k1 moduli (the field prime p and the group order n)
// have the shape 2^256 - c with small-ish c, so reduction is done by folding
// the high limbs back in (no division anywhere).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace dcert::crypto {

/// Little-endian 4x64-bit unsigned integer.
struct U256 {
  std::array<std::uint64_t, 4> limbs{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limbs{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limbs{l0, l1, l2, l3} {}

  static U256 FromBytesBE(ByteView bytes32);
  static U256 FromHash(const Hash256& h) { return FromBytesBE(h.View()); }
  static U256 FromHex(std::string_view hex);

  Bytes ToBytesBE() const;
  Hash256 ToHash() const;
  std::string ToHex() const;

  bool IsZero() const { return (limbs[0] | limbs[1] | limbs[2] | limbs[3]) == 0; }
  bool IsOdd() const { return limbs[0] & 1; }
  bool Bit(int i) const { return (limbs[i / 64] >> (i % 64)) & 1; }

  auto operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limbs[i] != o.limbs[i]) return limbs[i] <=> o.limbs[i];
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;
};

/// 512-bit product of two U256 (little-endian 8 limbs).
struct U512 {
  std::array<std::uint64_t, 8> limbs{};
  U256 Lo() const { return U256(limbs[0], limbs[1], limbs[2], limbs[3]); }
  U256 Hi() const { return U256(limbs[4], limbs[5], limbs[6], limbs[7]); }
  bool HiIsZero() const { return (limbs[4] | limbs[5] | limbs[6] | limbs[7]) == 0; }
};

/// a + b; carry_out receives the overflow bit.
U256 Add(const U256& a, const U256& b, std::uint64_t& carry_out);
/// a - b; borrow_out receives the underflow bit.
U256 Sub(const U256& a, const U256& b, std::uint64_t& borrow_out);
/// Full 256x256 -> 512 school-book multiplication.
U512 Mul(const U256& a, const U256& b);
/// Logical shift right by s (< 256).
U256 Shr(const U256& a, unsigned s);

/// Modulus of the shape 2^256 - c. Provides the complete modular toolkit used
/// by the curve arithmetic: reduction, add/sub/mul, exponentiation, inversion.
class ModArith {
 public:
  /// `c` must satisfy modulus == 2^256 - c with c < 2^192 (true for both
  /// secp256k1 moduli).
  ModArith(const U256& modulus, const U256& c);

  const U256& modulus() const { return modulus_; }

  /// Reduces an arbitrary 256-bit value into [0, m).
  U256 Reduce(const U256& a) const;
  /// Reduces a 512-bit value into [0, m) by repeated folding hi*c + lo.
  U256 Reduce512(const U512& a) const;

  U256 Add(const U256& a, const U256& b) const;
  U256 Sub(const U256& a, const U256& b) const;
  U256 Mul(const U256& a, const U256& b) const;
  U256 Sqr(const U256& a) const { return Mul(a, a); }
  U256 Neg(const U256& a) const;
  /// a^e mod m by square-and-multiply.
  U256 Pow(const U256& a, const U256& e) const;
  /// Multiplicative inverse via Fermat (modulus must be prime).
  U256 Inv(const U256& a) const;

 private:
  U256 modulus_;
  U256 c_;
};

}  // namespace dcert::crypto
