#include "crypto/sha256_batch.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/sha256_compress.h"

namespace dcert::crypto {

namespace {

constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                  0xa54ff53a, 0x510e527f, 0x9b05688c,
                                  0x1f83d9ab, 0x5be0cd19};

// True when the env var is set to anything other than "" or "0".
bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

ShaBackend ResolveFromEnv(bool batch) {
  if (EnvTruthy("DCERT_FORCE_SCALAR_HASH")) return ShaBackend::kScalar;
  return internal::ResolveShaBackend(std::getenv("DCERT_FORCE_SHA_BACKEND"),
                                     batch);
}

// A job plus its padded-block geometry. Blocks that lie fully inside the
// message are read in place; only the final one or two blocks (0x80 pad,
// zeros, big-endian bit length) are materialized into `tail`.
struct Prepared {
  const HashJob* job;
  std::size_t blocks;  // total padded blocks
  std::size_t full;    // blocks fully inside job->data (= size / 64)
  std::uint8_t tail[128];

  const std::uint8_t* BlockPtr(std::size_t b) const {
    return b < full ? job->data + b * 64 : tail + (b - full) * 64;
  }
};

void Prepare(const HashJob& job, Prepared& p) {
  p.job = &job;
  p.blocks = internal::PaddedBlockCount(job.size);
  p.full = job.size / 64;
  const std::size_t tail_blocks = p.blocks - p.full;  // always 1 or 2
  std::memset(p.tail, 0, tail_blocks * 64);
  const std::size_t rem = job.size - p.full * 64;
  if (rem > 0) std::memcpy(p.tail, job.data + p.full * 64, rem);
  p.tail[rem] = 0x80;
  const std::uint64_t bit_count = static_cast<std::uint64_t>(job.size) * 8;
  std::uint8_t* len_at = p.tail + tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) {
    len_at[i] = static_cast<std::uint8_t>(bit_count >> (8 * (7 - i)));
  }
}

void StoreDigest(const std::uint32_t s[8], std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t be = __builtin_bswap32(s[i]);
    std::memcpy(p + 4 * i, &be, 4);
  }
}

void StoreDigest(const std::uint32_t s[8], Hash256* out) {
  StoreDigest(s, out->begin());
}

// Single-stream fallback for leftovers inside the batch paths: contiguous
// prefix in one compress call, then the materialized tail blocks.
void HashOneWith(internal::CompressFn fn, const Prepared& p) {
  std::uint32_t s[8];
  std::memcpy(s, kIv, sizeof(s));
  if (p.full > 0) fn(s, p.job->data, p.full);
  fn(s, p.tail, p.blocks - p.full);
  StoreDigest(s, p.job->out);
}

// Indices sorted by padded block count so equal-length runs can share lanes.
std::vector<std::size_t> SortedByBlocks(const std::vector<Prepared>& prep) {
  std::vector<std::size_t> order(prep.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return prep[a].blocks < prep[b].blocks;
                   });
  return order;
}

// Pairs prepared jobs of equal block count through the two-stream SHA-NI
// compressor; `a` and `b` may alias one Prepared for an odd leftover (the
// duplicate stream's digest is simply stored twice).
void ShaNiPair(const Prepared& a, const Prepared& b) {
  const std::size_t m = a.blocks;
  constexpr std::size_t kStackBlocks = 64;
  const std::uint8_t* stack_ptrs[2 * kStackBlocks];
  std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** pa = stack_ptrs;
  if (m > kStackBlocks) {
    heap_ptrs.resize(2 * m);
    pa = heap_ptrs.data();
  }
  const std::uint8_t** pb = pa + m;
  for (std::size_t blk = 0; blk < m; ++blk) {
    pa[blk] = a.BlockPtr(blk);
    pb[blk] = b.BlockPtr(blk);
  }
  std::uint32_t sa[8], sb[8];
  std::memcpy(sa, kIv, sizeof(sa));
  std::memcpy(sb, kIv, sizeof(sb));
  internal::CompressShaNiX2(sa, pa, sb, pb, m);
  StoreDigest(sa, a.job->out);
  StoreDigest(sb, b.job->out);
}

// Runs four prepared jobs of equal block count through the four-stream
// SHA-NI compressor.
void ShaNiQuad(const Prepared* const* group) {
  const std::size_t m = group[0]->blocks;
  constexpr std::size_t kStackBlocks = 32;
  const std::uint8_t* stack_ptrs[4 * kStackBlocks];
  std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** ptrs = stack_ptrs;
  if (m > kStackBlocks) {
    heap_ptrs.resize(4 * m);
    ptrs = heap_ptrs.data();
  }
  for (std::size_t blk = 0; blk < m; ++blk) {
    for (std::size_t lane = 0; lane < 4; ++lane) {
      ptrs[blk * 4 + lane] = group[lane]->BlockPtr(blk);
    }
  }
  std::uint32_t states[32];
  for (int lane = 0; lane < 4; ++lane) {
    std::memcpy(states + 8 * lane, kIv, sizeof(kIv));
  }
  internal::CompressShaNiX4(states, ptrs, m);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    StoreDigest(states + 8 * lane, group[lane]->job->out);
  }
}

// Runs up to 8 prepared jobs of equal block count through the AVX2 8-lane
// compressor. Unused lanes duplicate lane 0 (one 8-wide compress per block
// regardless); only real lanes store their digest.
void Avx2Group(const Prepared* const* group, std::size_t lanes) {
  const std::size_t m = group[0]->blocks;
  constexpr std::size_t kStackBlocks = 32;
  const std::uint8_t* stack_ptrs[8 * kStackBlocks];
  std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** ptrs = stack_ptrs;
  if (m > kStackBlocks) {
    heap_ptrs.resize(8 * m);
    ptrs = heap_ptrs.data();
  }
  for (std::size_t blk = 0; blk < m; ++blk) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const Prepared& p = *group[std::min(lane, lanes - 1)];
      ptrs[blk * 8 + lane] = p.BlockPtr(blk);
    }
  }
  alignas(32) std::uint32_t states[64];
  for (int lane = 0; lane < 8; ++lane) {
    std::memcpy(states + 8 * lane, kIv, sizeof(kIv));
  }
  internal::CompressAvx2x8(states, ptrs, m);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    StoreDigest(states + 8 * lane, group[lane]->job->out);
  }
}

// True when every job pads to the same block count — the dominant case on
// the Merkle paths (fixed 65-byte node messages). The fast paths below then
// skip index sorting and bulk preparation and work lane-group at a time on
// the stack, which roughly halves per-hash overhead for small messages.
bool UniformBlocks(const HashJob* jobs, std::size_t n) {
  const std::size_t b0 = internal::PaddedBlockCount(jobs[0].size);
  for (std::size_t i = 1; i < n; ++i) {
    if (internal::PaddedBlockCount(jobs[i].size) != b0) return false;
  }
  return true;
}

void HashManyScalar(const HashJob* jobs, std::size_t n) {
  Prepared p;
  for (std::size_t i = 0; i < n; ++i) {
    Prepare(jobs[i], p);
    HashOneWith(&internal::CompressScalar, p);
  }
}

void HashManyShaNi(const HashJob* jobs, std::size_t n) {
  if (UniformBlocks(jobs, n)) {
    Prepared lanes[4];
    const Prepared* group[4] = {&lanes[0], &lanes[1], &lanes[2], &lanes[3]};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      for (int k = 0; k < 4; ++k) Prepare(jobs[i + k], lanes[k]);
      ShaNiQuad(group);
    }
    if (i + 2 <= n) {
      Prepare(jobs[i], lanes[0]);
      Prepare(jobs[i + 1], lanes[1]);
      ShaNiPair(lanes[0], lanes[1]);
      i += 2;
    }
    if (i < n) {
      Prepare(jobs[i], lanes[0]);
      HashOneWith(&internal::CompressShaNi, lanes[0]);
    }
    return;
  }
  std::vector<Prepared> prep(n);
  for (std::size_t i = 0; i < n; ++i) Prepare(jobs[i], prep[i]);
  const std::vector<std::size_t> order = SortedByBlocks(prep);
  std::size_t i = 0;
  while (i < n) {
    // Run of jobs with the same padded block count; fill quads, then a pair,
    // then a single within the run.
    std::size_t j = i + 1;
    while (j < n && prep[order[j]].blocks == prep[order[i]].blocks) ++j;
    for (; i + 4 <= j; i += 4) {
      const Prepared* group[4] = {&prep[order[i]], &prep[order[i + 1]],
                                  &prep[order[i + 2]], &prep[order[i + 3]]};
      ShaNiQuad(group);
    }
    if (i + 2 <= j) {
      ShaNiPair(prep[order[i]], prep[order[i + 1]]);
      i += 2;
    }
    if (i < j) {
      HashOneWith(&internal::CompressShaNi, prep[order[i]]);
      ++i;
    }
  }
}

void HashManyAvx2(const HashJob* jobs, std::size_t n) {
  if (UniformBlocks(jobs, n)) {
    Prepared lanes[8];
    const Prepared* group[8];
    for (std::size_t i = 0; i < n; i += 8) {
      const std::size_t take = std::min<std::size_t>(8, n - i);
      for (std::size_t k = 0; k < take; ++k) {
        Prepare(jobs[i + k], lanes[k]);
        group[k] = &lanes[k];
      }
      Avx2Group(group, take);
    }
    return;
  }
  std::vector<Prepared> prep(n);
  for (std::size_t i = 0; i < n; ++i) Prepare(jobs[i], prep[i]);
  const std::vector<std::size_t> order = SortedByBlocks(prep);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && prep[order[j]].blocks == prep[order[i]].blocks) ++j;
    while (i < j) {
      const Prepared* group[8];
      const std::size_t take = std::min<std::size_t>(8, j - i);
      for (std::size_t k = 0; k < take; ++k) group[k] = &prep[order[i + k]];
      Avx2Group(group, take);
      i += take;
    }
  }
}

// Pre-padded jobs are contiguous m-block messages, so the single-stream
// arrangement needs no pointer tables at all: seed, compress, store.
void HashPaddedShaNiSingle(const PaddedJob* jobs, std::size_t n,
                           std::size_t m) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t s[8];
    std::memcpy(s, kIv, sizeof(s));
    internal::CompressShaNi(s, jobs[i].blocks, m);
    StoreDigest(s, jobs[i].out);
  }
}

void HashPaddedShaNiMulti(const PaddedJob* jobs, std::size_t n,
                          std::size_t m) {
  constexpr std::size_t kStackBlocks = 64;
  const std::uint8_t* stack_ptrs[4 * kStackBlocks];
  std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** pa = stack_ptrs;
  if (m > kStackBlocks) {
    heap_ptrs.resize(4 * m);
    pa = heap_ptrs.data();
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t blk = 0; blk < m; ++blk) {
      for (std::size_t lane = 0; lane < 4; ++lane) {
        pa[blk * 4 + lane] = jobs[i + lane].blocks + blk * 64;
      }
    }
    std::uint32_t states[32];
    for (int lane = 0; lane < 4; ++lane) {
      std::memcpy(states + 8 * lane, kIv, sizeof(kIv));
    }
    internal::CompressShaNiX4(states, pa, m);
    for (std::size_t lane = 0; lane < 4; ++lane) {
      StoreDigest(states + 8 * lane, jobs[i + lane].out);
    }
  }
  const std::uint8_t** pb = pa + m;
  for (; i + 2 <= n; i += 2) {
    for (std::size_t blk = 0; blk < m; ++blk) {
      pa[blk] = jobs[i].blocks + blk * 64;
      pb[blk] = jobs[i + 1].blocks + blk * 64;
    }
    std::uint32_t sa[8], sb[8];
    std::memcpy(sa, kIv, sizeof(sa));
    std::memcpy(sb, kIv, sizeof(sb));
    internal::CompressShaNiX2(sa, pa, sb, pb, m);
    StoreDigest(sa, jobs[i].out);
    StoreDigest(sb, jobs[i + 1].out);
  }
  if (i < n) {
    std::uint32_t s[8];
    std::memcpy(s, kIv, sizeof(s));
    internal::CompressShaNi(s, jobs[i].blocks, m);
    StoreDigest(s, jobs[i].out);
  }
}

// Whether single-stream SHA-NI beats the interleaved arrangement for
// fixed-geometry jobs on this host. On bare metal sha256rnds2 pipelines
// across independent streams and the interleave wins; some virtualized hosts
// serialize the instruction, which turns the interleave's lane setup into
// pure overhead. Probed once at first use by timing the two real code paths
// over a realistic slot array — they produce byte-identical digests, so the
// choice is performance-only.
bool NiPaddedPreferSingle() {
  static const bool prefer_single = [] {
    constexpr std::size_t kJobs = 256;
    std::vector<std::uint8_t> slots(kJobs * 128);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    std::vector<std::uint8_t> outs(kJobs * 32);
    std::vector<PaddedJob> jobs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
      jobs[i] = {slots.data() + i * 128, outs.data() + i * 32};
    }
    double single_ns = 1e18, multi_ns = 1e18;
    for (int trial = 0; trial < 5; ++trial) {
      auto t0 = std::chrono::steady_clock::now();
      HashPaddedShaNiSingle(jobs.data(), kJobs, 2);
      auto t1 = std::chrono::steady_clock::now();
      HashPaddedShaNiMulti(jobs.data(), kJobs, 2);
      auto t2 = std::chrono::steady_clock::now();
      single_ns = std::min(
          single_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
      multi_ns = std::min(
          multi_ns, std::chrono::duration<double, std::nano>(t2 - t1).count());
    }
    // Stick with the interleave unless single-stream is clearly faster.
    return single_ns * 1.05 < multi_ns;
  }();
  return prefer_single;
}

void HashPaddedShaNi(const PaddedJob* jobs, std::size_t n, std::size_t m) {
  if (NiPaddedPreferSingle()) {
    HashPaddedShaNiSingle(jobs, n, m);
  } else {
    HashPaddedShaNiMulti(jobs, n, m);
  }
}

void HashPaddedAvx2(const PaddedJob* jobs, std::size_t n, std::size_t m) {
  constexpr std::size_t kStackBlocks = 32;
  const std::uint8_t* stack_ptrs[8 * kStackBlocks];
  std::vector<const std::uint8_t*> heap_ptrs;
  const std::uint8_t** ptrs = stack_ptrs;
  if (m > kStackBlocks) {
    heap_ptrs.resize(8 * m);
    ptrs = heap_ptrs.data();
  }
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t lanes = std::min<std::size_t>(8, n - i);
    for (std::size_t blk = 0; blk < m; ++blk) {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        ptrs[blk * 8 + lane] =
            jobs[i + std::min(lane, lanes - 1)].blocks + blk * 64;
      }
    }
    alignas(32) std::uint32_t states[64];
    for (int lane = 0; lane < 8; ++lane) {
      std::memcpy(states + 8 * lane, kIv, sizeof(kIv));
    }
    internal::CompressAvx2x8(states, ptrs, m);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      StoreDigest(states + 8 * lane, jobs[i + lane].out);
    }
  }
}

}  // namespace

void HashPadded(const PaddedJob* jobs, std::size_t n, std::size_t m) {
  if (n == 0) return;
  switch (ActiveBatchBackend()) {
    case ShaBackend::kShaNi:
      HashPaddedShaNi(jobs, n, m);
      break;
    case ShaBackend::kAvx2:
      HashPaddedAvx2(jobs, n, m);
      break;
    case ShaBackend::kScalar:
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t s[8];
        std::memcpy(s, kIv, sizeof(s));
        internal::CompressScalar(s, jobs[i].blocks, m);
        StoreDigest(s, jobs[i].out);
      }
      break;
  }
}

const char* ShaBackendName(ShaBackend b) {
  switch (b) {
    case ShaBackend::kScalar: return "scalar";
    case ShaBackend::kShaNi: return "shani";
    case ShaBackend::kAvx2: return "avx2";
  }
  return "unknown";
}

bool ShaBackendSupported(ShaBackend b) {
  switch (b) {
    case ShaBackend::kScalar: return true;
    case ShaBackend::kShaNi: return internal::ShaNiSupported();
    case ShaBackend::kAvx2: return internal::Avx2Supported();
  }
  return false;
}

ShaBackend ActiveBatchBackend() {
  static const ShaBackend backend = ResolveFromEnv(/*batch=*/true);
  return backend;
}

ShaBackend ActiveStreamBackend() {
  static const ShaBackend backend = ResolveFromEnv(/*batch=*/false);
  return backend;
}

void HashMany(const HashJob* jobs, std::size_t n) {
  internal::HashManyWith(ActiveBatchBackend(), jobs, n);
}

namespace internal {

ShaBackend ResolveShaBackend(const char* override_name, bool batch) {
  const auto best = [batch]() {
    if (ShaNiSupported()) return ShaBackend::kShaNi;
    if (batch && Avx2Supported()) return ShaBackend::kAvx2;
    return ShaBackend::kScalar;
  };
  if (override_name == nullptr || override_name[0] == '\0') return best();
  std::string name(override_name);
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "scalar") return ShaBackend::kScalar;
  if (name == "shani" || name == "sha-ni" || name == "sha_ni") {
    return ShaNiSupported() ? ShaBackend::kShaNi : best();
  }
  if (name == "avx2") {
    // AVX2 is a batch-only backend; the stream path falls through to its
    // best supported implementation.
    return (batch && Avx2Supported()) ? ShaBackend::kAvx2 : best();
  }
  return best();  // unknown name: graceful fallback
}

void HashManyWith(ShaBackend backend, const HashJob* jobs, std::size_t n) {
  if (n == 0) return;
  if (!ShaBackendSupported(backend)) {
    throw std::runtime_error(std::string("sha256 backend unsupported: ") +
                             ShaBackendName(backend));
  }
  switch (backend) {
    case ShaBackend::kScalar: HashManyScalar(jobs, n); break;
    case ShaBackend::kShaNi: HashManyShaNi(jobs, n); break;
    case ShaBackend::kAvx2: HashManyAvx2(jobs, n); break;
  }
}

}  // namespace internal

}  // namespace dcert::crypto
