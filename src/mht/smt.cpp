#include "mht/smt.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "mht/node_hash.h"

namespace dcert::mht {

namespace {

constexpr int kDepth = SparseMerkleTree::kDepth;

/// Returns `h` with every bit from position `level` onward cleared, i.e. the
/// canonical encoding of the length-`level` path prefix.
Hash256 PrefixAt(const Hash256& h, int level) {
  Hash256 out = h;
  int full_bytes = level / 8;
  int rem_bits = level % 8;
  if (full_bytes < 32) {
    if (rem_bits != 0) {
      out[static_cast<std::size_t>(full_bytes)] &=
          static_cast<std::uint8_t>(0xff << (8 - rem_bits));
      ++full_bytes;
    }
    for (int i = full_bytes; i < 32; ++i) out[static_cast<std::size_t>(i)] = 0;
  }
  return out;
}

/// Flips bit `level-1` of a level-`level` prefix (the partner node's prefix).
Hash256 FlipBit(const Hash256& prefix, int bit) {
  Hash256 out = prefix;
  out[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(0x80 >> (bit % 8));
  return out;
}

/// True iff two keys address the same leaf slot (same first kDepth bits).
bool SamePath(const Hash256& a, const Hash256& b) {
  return PrefixAt(a, kDepth) == PrefixAt(b, kDepth);
}

/// First bit position in [from, kDepth) where the keys' paths differ, or -1.
int FirstDiffBit(const Hash256& a, const Hash256& b, int from) {
  for (int i = from; i < kDepth; ++i) {
    if (a.Bit(static_cast<std::size_t>(i)) != b.Bit(static_cast<std::size_t>(i))) {
      return i;
    }
  }
  return -1;
}

}  // namespace

struct SparseMerkleTree::Node {
  Hash256 hash;  // SMT-equivalent hash of this subtree at its level
  bool is_leaf = false;
  bool dirty = false;  // hash is stale (deferred-hash bulk update in flight)
  // Leaf payload (singleton subtree).
  Hash256 key;
  Hash256 value_hash;
  // Branch children (either may be null = all-default subtree).
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;
};

SparseMerkleTree::SparseMerkleTree() = default;
SparseMerkleTree::~SparseMerkleTree() = default;
SparseMerkleTree::SparseMerkleTree(SparseMerkleTree&&) noexcept = default;
SparseMerkleTree& SparseMerkleTree::operator=(SparseMerkleTree&&) noexcept = default;

const Hash256& SparseMerkleTree::DefaultHash(int level) {
  static const std::vector<Hash256> defaults = [] {
    std::vector<Hash256> d(static_cast<std::size_t>(kDepth) + 1);
    d[kDepth] = TaggedDigest(NodeTag::kSmtLeaf, {});
    for (int l = kDepth - 1; l >= 0; --l) {
      d[static_cast<std::size_t>(l)] =
          TaggedDigest2(NodeTag::kSmtInternal, d[static_cast<std::size_t>(l) + 1],
                        d[static_cast<std::size_t>(l) + 1]);
    }
    return d;
  }();
  if (level < 0 || level > kDepth) {
    throw std::out_of_range("SparseMerkleTree::DefaultHash: bad level");
  }
  return defaults[static_cast<std::size_t>(level)];
}

Hash256 SparseMerkleTree::LeafNodeHash(const Hash256& key, const Hash256& value_hash) {
  Bytes payload = key.ToBytes();
  Append(payload, value_hash);
  return TaggedDigest(NodeTag::kSmtLeaf, payload);
}

namespace {

/// SMT hash of a singleton subtree holding (key, vh), rooted at `level`.
Hash256 FoldLeaf(const Hash256& key, const Hash256& vh, int level) {
  Hash256 h = SparseMerkleTree::LeafNodeHash(key, vh);
  for (int l = kDepth - 1; l >= level; --l) {
    const Hash256& def = SparseMerkleTree::DefaultHash(l + 1);
    h = key.Bit(static_cast<std::size_t>(l))
            ? TaggedDigest2(NodeTag::kSmtInternal, def, h)
            : TaggedDigest2(NodeTag::kSmtInternal, h, def);
  }
  return h;
}

}  // namespace

std::unique_ptr<SparseMerkleTree::Node> SparseMerkleTree::InsertRec(
    std::unique_ptr<Node> node, int level, const Hash256& key,
    const Hash256& value_hash, bool defer_hash) {
  if (!node) {
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    leaf->key = key;
    leaf->value_hash = value_hash;
    if (defer_hash) {
      leaf->dirty = true;
    } else {
      leaf->hash = FoldLeaf(key, value_hash, level);
    }
    ++size_;
    return leaf;
  }
  if (node->is_leaf) {
    if (SamePath(node->key, key)) {
      node->key = key;
      node->value_hash = value_hash;
      if (defer_hash) {
        node->dirty = true;
      } else {
        node->hash = FoldLeaf(key, value_hash, level);
      }
      return node;
    }
    // Split the singleton: push the existing leaf one level down and insert
    // the new key into the same branch.
    auto branch = std::make_unique<Node>();
    bool old_bit = node->key.Bit(static_cast<std::size_t>(level));
    if (defer_hash) {
      node->dirty = true;  // leaf folds from a deeper level now
    } else {
      node->hash = FoldLeaf(node->key, node->value_hash, level + 1);
    }
    (old_bit ? branch->right : branch->left) = std::move(node);
    bool new_bit = key.Bit(static_cast<std::size_t>(level));
    auto& slot = new_bit ? branch->right : branch->left;
    slot = InsertRec(std::move(slot), level + 1, key, value_hash, defer_hash);
    if (defer_hash) {
      branch->dirty = true;
    } else {
      const Hash256& lh =
          branch->left ? branch->left->hash : DefaultHash(level + 1);
      const Hash256& rh =
          branch->right ? branch->right->hash : DefaultHash(level + 1);
      branch->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
    }
    return branch;
  }
  auto& child = key.Bit(static_cast<std::size_t>(level)) ? node->right : node->left;
  child = InsertRec(std::move(child), level + 1, key, value_hash, defer_hash);
  if (defer_hash) {
    node->dirty = true;
  } else {
    const Hash256& lh = node->left ? node->left->hash : DefaultHash(level + 1);
    const Hash256& rh = node->right ? node->right->hash : DefaultHash(level + 1);
    node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  }
  return node;
}

std::unique_ptr<SparseMerkleTree::Node> SparseMerkleTree::RemoveRec(
    std::unique_ptr<Node> node, int level, const Hash256& key, bool& removed,
    bool defer_hash) {
  if (!node) return nullptr;
  if (node->is_leaf) {
    if (SamePath(node->key, key)) {
      removed = true;
      --size_;
      return nullptr;
    }
    return node;
  }
  auto& child = key.Bit(static_cast<std::size_t>(level)) ? node->right : node->left;
  child = RemoveRec(std::move(child), level + 1, key, removed, defer_hash);
  if (!removed) return node;
  // Collapse a branch whose only remaining child is a leaf — hash-neutral
  // (fold of a leaf at level equals the branch hash with a default sibling),
  // but it keeps storage proportional to the key count.
  Node* only = nullptr;
  if (node->left && !node->right) only = node->left.get();
  if (node->right && !node->left) only = node->right.get();
  if (only != nullptr && only->is_leaf) {
    auto lifted = node->left ? std::move(node->left) : std::move(node->right);
    if (defer_hash) {
      lifted->dirty = true;  // folds from a shallower level now
    } else {
      lifted->hash = FoldLeaf(lifted->key, lifted->value_hash, level);
    }
    return lifted;
  }
  if (!node->left && !node->right) return nullptr;  // cannot happen, but safe
  if (defer_hash) {
    node->dirty = true;
  } else {
    const Hash256& lh = node->left ? node->left->hash : DefaultHash(level + 1);
    const Hash256& rh = node->right ? node->right->hash : DefaultHash(level + 1);
    node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  }
  return node;
}

void SparseMerkleTree::Update(const Hash256& key, const Hash256& value_hash) {
  if (value_hash.IsZero()) {
    bool removed = false;
    root_ = RemoveRec(std::move(root_), 0, key, removed, /*defer_hash=*/false);
    return;
  }
  root_ = InsertRec(std::move(root_), 0, key, value_hash, /*defer_hash=*/false);
}

void SparseMerkleTree::RehashRec(Node* node, int level, common::ThreadPool* pool,
                                 int par_levels) {
  if (node == nullptr || !node->dirty) return;
  if (node->is_leaf) {
    node->hash = FoldLeaf(node->key, node->value_hash, level);
    node->dirty = false;
    return;
  }
  Node* left = node->left.get();
  Node* right = node->right.get();
  const bool both_dirty =
      left != nullptr && left->dirty && right != nullptr && right->dirty;
  if (pool != nullptr && par_levels > 0 && both_dirty) {
    // Sibling subtrees are disjoint; hash them concurrently. The hash of a
    // subtree is a pure function of its content, so scheduling cannot change
    // the result.
    pool->ParallelFor(2, [&](std::size_t i) {
      RehashRec(i == 0 ? left : right, level + 1, pool, par_levels - 1);
    });
  } else {
    RehashRec(left, level + 1, pool, par_levels);
    RehashRec(right, level + 1, pool, par_levels);
  }
  const Hash256& lh = left != nullptr ? left->hash : DefaultHash(level + 1);
  const Hash256& rh = right != nullptr ? right->hash : DefaultHash(level + 1);
  node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  node->dirty = false;
}

void SparseMerkleTree::UpdateBatchWith(const std::map<Hash256, Hash256>& entries,
                                       common::ThreadPool& pool) {
  for (const auto& [key, value_hash] : entries) {
    if (value_hash.IsZero()) {
      bool removed = false;
      root_ = RemoveRec(std::move(root_), 0, key, removed, /*defer_hash=*/true);
    } else {
      root_ = InsertRec(std::move(root_), 0, key, value_hash, /*defer_hash=*/true);
    }
  }
  RehashRec(root_.get(), 0, pool.WorkerCount() > 1 ? &pool : nullptr,
            /*par_levels=*/4);
}

void SparseMerkleTree::UpdateBatch(const std::map<Hash256, Hash256>& entries) {
  // Below this size the deferred pass + task handoff costs more than it
  // saves; the cutover keeps single-tx blocks on the straight path.
  constexpr std::size_t kParallelThreshold = 32;
  if (entries.size() < kParallelThreshold ||
      common::ThreadPool::Shared().WorkerCount() <= 1) {
    for (const auto& [key, value_hash] : entries) Update(key, value_hash);
    return;
  }
  UpdateBatchWith(entries, common::ThreadPool::Shared());
}

Hash256 SparseMerkleTree::Get(const Hash256& key) const {
  const Node* node = root_.get();
  int level = 0;
  while (node != nullptr && !node->is_leaf) {
    node = key.Bit(static_cast<std::size_t>(level)) ? node->right.get()
                                                    : node->left.get();
    ++level;
  }
  if (node != nullptr && SamePath(node->key, key)) return node->value_hash;
  return Hash256();
}

Hash256 SparseMerkleTree::Root() const {
  return root_ ? root_->hash : DefaultHash(0);
}

namespace {

/// Sorted, deduped leaf paths of a proof's key set; "is this node id an
/// ancestor of some proof key" is then a binary search.
std::vector<Hash256> CanonicalPaths(const std::vector<Hash256>& keys) {
  std::vector<Hash256> paths;
  paths.reserve(keys.size());
  for (const Hash256& k : keys) paths.push_back(PrefixAt(k, kDepth));
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

bool CoveredBy(const std::vector<Hash256>& paths, const SmtNodeId& id) {
  auto it = std::lower_bound(paths.begin(), paths.end(), id.prefix);
  return it != paths.end() && PrefixAt(*it, id.level) == id.prefix;
}

}  // namespace

void SparseMerkleTree::CollectSiblings(
    const Hash256& key, const std::vector<Hash256>& paths,
    std::map<SmtNodeId, Hash256>& sink) const {
  const Node* node = root_.get();
  int level = 0;
  while (node != nullptr) {
    if (node->is_leaf) {
      if (SamePath(node->key, key)) break;  // siblings below are all default
      int diff = FirstDiffBit(node->key, key, level);
      if (diff < 0) break;
      // The resident leaf's subtree becomes the sibling at the divergence.
      SmtNodeId id{static_cast<std::uint16_t>(diff + 1),
                   PrefixAt(node->key, diff + 1)};
      if (!CoveredBy(paths, id)) {
        sink.emplace(id, FoldLeaf(node->key, node->value_hash, diff + 1));
      }
      break;
    }
    bool bit = key.Bit(static_cast<std::size_t>(level));
    const Node* sibling = bit ? node->left.get() : node->right.get();
    if (sibling != nullptr) {
      SmtNodeId id{static_cast<std::uint16_t>(level + 1),
                   FlipBit(PrefixAt(key, level + 1), level)};
      if (!CoveredBy(paths, id)) sink.emplace(id, sibling->hash);
    }
    node = bit ? node->right.get() : node->left.get();
    ++level;
  }
}

SmtMultiProof SparseMerkleTree::ProveKeysSerial(
    const std::vector<Hash256>& keys) const {
  const std::vector<Hash256> paths = CanonicalPaths(keys);
  SmtMultiProof proof;
  for (const Hash256& key : keys) CollectSiblings(key, paths, proof.siblings);
  return proof;
}

SmtMultiProof SparseMerkleTree::ProveKeysParallel(
    const std::vector<Hash256>& keys, common::ThreadPool& pool) const {
  const std::vector<Hash256> paths = CanonicalPaths(keys);
  // Chunk the key set across the pool; each chunk descends the (read-only)
  // tree into its own sibling map. A given node id always maps to the same
  // hash (it is a function of the tree alone), so merging the chunk maps
  // yields exactly the serial proof regardless of scheduling.
  const std::size_t chunks = std::min<std::size_t>(
      pool.WorkerCount() + 1, (keys.size() + kMinKeysPerChunk - 1) / kMinKeysPerChunk);
  if (chunks <= 1) return ProveKeysSerial(keys);
  std::vector<std::map<SmtNodeId, Hash256>> partial(chunks);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    const std::size_t begin = keys.size() * c / chunks;
    const std::size_t end = keys.size() * (c + 1) / chunks;
    for (std::size_t i = begin; i < end; ++i) {
      CollectSiblings(keys[i], paths, partial[c]);
    }
  });
  SmtMultiProof proof;
  proof.siblings = std::move(partial[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    proof.siblings.merge(partial[c]);
  }
  return proof;
}

SmtMultiProof SparseMerkleTree::ProveKeys(const std::vector<Hash256>& keys) const {
  if (keys.size() < kMinKeysPerChunk * 2 ||
      common::ThreadPool::Shared().WorkerCount() <= 1) {
    return ProveKeysSerial(keys);
  }
  return ProveKeysParallel(keys, common::ThreadPool::Shared());
}

Hash256 SparseMerkleTree::ComputeRootFromProof(
    const SmtMultiProof& proof, const std::map<Hash256, Hash256>& leaves) {
  // Frontier: sorted (canonical prefix, subtree hash) pairs at the current
  // level, merged in place level by level. Entries computed from the
  // caller's leaves always take precedence over proof entries, so a
  // malicious proof cannot override a covered subtree.
  std::vector<std::pair<Hash256, Hash256>> frontier;
  frontier.reserve(leaves.size());
  for (const auto& [key, vh] : leaves) {
    frontier.emplace_back(PrefixAt(key, kDepth),
                          vh.IsZero() ? DefaultHash(kDepth) : LeafNodeHash(key, vh));
  }
  // leaves is an ordered map and PrefixAt preserves order, except that two
  // keys sharing a path collapse; dedupe defensively.
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 frontier.end());
  if (frontier.empty()) return DefaultHash(0);

  std::vector<std::pair<Hash256, Hash256>> next;
  for (int level = kDepth; level > 0; --level) {
    next.clear();
    next.reserve(frontier.size());
    const int bit_index = level - 1;
    for (std::size_t i = 0; i < frontier.size();) {
      const Hash256& prefix = frontier[i].first;
      bool bit = prefix.Bit(static_cast<std::size_t>(bit_index));
      Hash256 parent = PrefixAt(prefix, bit_index);

      Hash256 left, right;
      if (!bit && i + 1 < frontier.size() &&
          frontier[i + 1].first == FlipBit(prefix, bit_index)) {
        // Both children are on the frontier (keys diverging here).
        left = frontier[i].second;
        right = frontier[i + 1].second;
        i += 2;
      } else {
        Hash256 partner = FlipBit(prefix, bit_index);
        auto sib = proof.siblings.find(
            SmtNodeId{static_cast<std::uint16_t>(level), partner});
        const Hash256& sibling_hash =
            sib != proof.siblings.end() ? sib->second : DefaultHash(level);
        left = bit ? sibling_hash : frontier[i].second;
        right = bit ? frontier[i].second : sibling_hash;
        i += 1;
      }
      next.emplace_back(parent, TaggedDigest2(NodeTag::kSmtInternal, left, right));
    }
    frontier.swap(next);
  }
  return frontier.front().second;
}

Bytes SmtMultiProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& [id, hash] : siblings) {
    enc.U16(id.level);
    enc.HashField(id.prefix);
    enc.HashField(hash);
  }
  return enc.Take();
}

Result<SmtMultiProof> SmtMultiProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    SmtMultiProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      SmtNodeId id;
      id.level = dec.U16();
      id.prefix = dec.HashField();
      Hash256 h = dec.HashField();
      if (id.level > SparseMerkleTree::kDepth) {
        return Result<SmtMultiProof>::Error("SmtMultiProof: level out of range");
      }
      proof.siblings.emplace(id, h);
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<SmtMultiProof>::Error(std::string("SmtMultiProof: ") + e.what());
  }
}

}  // namespace dcert::mht
