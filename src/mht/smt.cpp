#include "mht/smt.h"

#include <algorithm>
#include <stdexcept>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "crypto/sha256_batch.h"
#include "mht/node_hash.h"

namespace dcert::mht {

namespace {

constexpr int kDepth = SparseMerkleTree::kDepth;

/// Returns `h` with every bit from position `level` onward cleared, i.e. the
/// canonical encoding of the length-`level` path prefix.
Hash256 PrefixAt(const Hash256& h, int level) {
  Hash256 out = h;
  int full_bytes = level / 8;
  int rem_bits = level % 8;
  if (full_bytes < 32) {
    if (rem_bits != 0) {
      out[static_cast<std::size_t>(full_bytes)] &=
          static_cast<std::uint8_t>(0xff << (8 - rem_bits));
      ++full_bytes;
    }
    for (int i = full_bytes; i < 32; ++i) out[static_cast<std::size_t>(i)] = 0;
  }
  return out;
}

/// Flips bit `level-1` of a level-`level` prefix (the partner node's prefix).
Hash256 FlipBit(const Hash256& prefix, int bit) {
  Hash256 out = prefix;
  out[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(0x80 >> (bit % 8));
  return out;
}

/// True iff two keys address the same leaf slot (same first kDepth bits).
bool SamePath(const Hash256& a, const Hash256& b) {
  return PrefixAt(a, kDepth) == PrefixAt(b, kDepth);
}

/// First bit position in [from, kDepth) where the keys' paths differ, or -1.
int FirstDiffBit(const Hash256& a, const Hash256& b, int from) {
  for (int i = from; i < kDepth; ++i) {
    if (a.Bit(static_cast<std::size_t>(i)) != b.Bit(static_cast<std::size_t>(i))) {
      return i;
    }
  }
  return -1;
}

}  // namespace

struct SparseMerkleTree::Node {
  Hash256 hash;  // SMT-equivalent hash of this subtree at its level
  bool is_leaf = false;
  bool dirty = false;  // hash is stale (deferred-hash bulk update in flight)
  // Leaf payload (singleton subtree).
  Hash256 key;
  Hash256 value_hash;
  // Branch children (either may be null = all-default subtree). Arena-owned:
  // the tree's arena outlives every node.
  NodePtr left;
  NodePtr right;
};

SparseMerkleTree::SparseMerkleTree()
    : arena_(std::make_unique<common::Arena<Node>>()) {}
SparseMerkleTree::~SparseMerkleTree() = default;
SparseMerkleTree::SparseMerkleTree(SparseMerkleTree&&) noexcept = default;
SparseMerkleTree& SparseMerkleTree::operator=(SparseMerkleTree&& o) noexcept {
  if (this != &o) {
    root_.reset();  // our nodes must die before our arena (member-wise
                    // assignment would free the arena first)
    arena_ = std::move(o.arena_);
    root_ = std::move(o.root_);
    size_ = o.size_;
    o.size_ = 0;
  }
  return *this;
}

SparseMerkleTree::NodePtr SparseMerkleTree::MakeNode() {
  return common::MakeArenaPtr(*arena_);
}

const Hash256& SparseMerkleTree::DefaultHash(int level) {
  static const std::vector<Hash256> defaults = [] {
    std::vector<Hash256> d(static_cast<std::size_t>(kDepth) + 1);
    d[kDepth] = TaggedDigest(NodeTag::kSmtLeaf, {});
    for (int l = kDepth - 1; l >= 0; --l) {
      d[static_cast<std::size_t>(l)] =
          TaggedDigest2(NodeTag::kSmtInternal, d[static_cast<std::size_t>(l) + 1],
                        d[static_cast<std::size_t>(l) + 1]);
    }
    return d;
  }();
  if (level < 0 || level > kDepth) {
    throw std::out_of_range("SparseMerkleTree::DefaultHash: bad level");
  }
  return defaults[static_cast<std::size_t>(level)];
}

Hash256 SparseMerkleTree::LeafNodeHash(const Hash256& key, const Hash256& value_hash) {
  Bytes payload = key.ToBytes();
  Append(payload, value_hash);
  return TaggedDigest(NodeTag::kSmtLeaf, payload);
}

namespace {

/// SMT hash of a singleton subtree holding (key, vh), rooted at `level`.
Hash256 FoldLeaf(const Hash256& key, const Hash256& vh, int level) {
  Hash256 h = SparseMerkleTree::LeafNodeHash(key, vh);
  for (int l = kDepth - 1; l >= level; --l) {
    const Hash256& def = SparseMerkleTree::DefaultHash(l + 1);
    h = key.Bit(static_cast<std::size_t>(l))
            ? TaggedDigest2(NodeTag::kSmtInternal, def, h)
            : TaggedDigest2(NodeTag::kSmtInternal, h, def);
  }
  return h;
}

}  // namespace

SparseMerkleTree::NodePtr SparseMerkleTree::InsertRec(
    NodePtr node, int level, const Hash256& key, const Hash256& value_hash,
    bool defer_hash) {
  if (!node) {
    NodePtr leaf = MakeNode();
    leaf->is_leaf = true;
    leaf->key = key;
    leaf->value_hash = value_hash;
    if (defer_hash) {
      leaf->dirty = true;
    } else {
      leaf->hash = FoldLeaf(key, value_hash, level);
    }
    ++size_;
    return leaf;
  }
  if (node->is_leaf) {
    if (SamePath(node->key, key)) {
      node->key = key;
      node->value_hash = value_hash;
      if (defer_hash) {
        node->dirty = true;
      } else {
        node->hash = FoldLeaf(key, value_hash, level);
      }
      return node;
    }
    // Split the singleton: push the existing leaf one level down and insert
    // the new key into the same branch.
    NodePtr branch = MakeNode();
    bool old_bit = node->key.Bit(static_cast<std::size_t>(level));
    if (defer_hash) {
      node->dirty = true;  // leaf folds from a deeper level now
    } else {
      node->hash = FoldLeaf(node->key, node->value_hash, level + 1);
    }
    (old_bit ? branch->right : branch->left) = std::move(node);
    bool new_bit = key.Bit(static_cast<std::size_t>(level));
    auto& slot = new_bit ? branch->right : branch->left;
    slot = InsertRec(std::move(slot), level + 1, key, value_hash, defer_hash);
    if (defer_hash) {
      branch->dirty = true;
    } else {
      const Hash256& lh =
          branch->left ? branch->left->hash : DefaultHash(level + 1);
      const Hash256& rh =
          branch->right ? branch->right->hash : DefaultHash(level + 1);
      branch->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
    }
    return branch;
  }
  auto& child = key.Bit(static_cast<std::size_t>(level)) ? node->right : node->left;
  child = InsertRec(std::move(child), level + 1, key, value_hash, defer_hash);
  if (defer_hash) {
    node->dirty = true;
  } else {
    const Hash256& lh = node->left ? node->left->hash : DefaultHash(level + 1);
    const Hash256& rh = node->right ? node->right->hash : DefaultHash(level + 1);
    node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  }
  return node;
}

SparseMerkleTree::NodePtr SparseMerkleTree::RemoveRec(
    NodePtr node, int level, const Hash256& key, bool& removed,
    bool defer_hash) {
  if (!node) return nullptr;
  if (node->is_leaf) {
    if (SamePath(node->key, key)) {
      removed = true;
      --size_;
      return nullptr;
    }
    return node;
  }
  auto& child = key.Bit(static_cast<std::size_t>(level)) ? node->right : node->left;
  child = RemoveRec(std::move(child), level + 1, key, removed, defer_hash);
  if (!removed) return node;
  // Collapse a branch whose only remaining child is a leaf — hash-neutral
  // (fold of a leaf at level equals the branch hash with a default sibling),
  // but it keeps storage proportional to the key count.
  Node* only = nullptr;
  if (node->left && !node->right) only = node->left.get();
  if (node->right && !node->left) only = node->right.get();
  if (only != nullptr && only->is_leaf) {
    auto lifted = node->left ? std::move(node->left) : std::move(node->right);
    if (defer_hash) {
      lifted->dirty = true;  // folds from a shallower level now
    } else {
      lifted->hash = FoldLeaf(lifted->key, lifted->value_hash, level);
    }
    return lifted;
  }
  if (!node->left && !node->right) return nullptr;  // cannot happen, but safe
  if (defer_hash) {
    node->dirty = true;
  } else {
    const Hash256& lh = node->left ? node->left->hash : DefaultHash(level + 1);
    const Hash256& rh = node->right ? node->right->hash : DefaultHash(level + 1);
    node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  }
  return node;
}

void SparseMerkleTree::Update(const Hash256& key, const Hash256& value_hash) {
  if (value_hash.IsZero()) {
    bool removed = false;
    root_ = RemoveRec(std::move(root_), 0, key, removed, /*defer_hash=*/false);
    return;
  }
  root_ = InsertRec(std::move(root_), 0, key, value_hash, /*defer_hash=*/false);
}

void SparseMerkleTree::RehashRec(Node* node, int level, common::ThreadPool* pool,
                                 int par_levels) {
  if (node == nullptr || !node->dirty) return;
  if (node->is_leaf) {
    node->hash = FoldLeaf(node->key, node->value_hash, level);
    node->dirty = false;
    return;
  }
  Node* left = node->left.get();
  Node* right = node->right.get();
  const bool both_dirty =
      left != nullptr && left->dirty && right != nullptr && right->dirty;
  if (pool != nullptr && par_levels > 0 && both_dirty) {
    // Sibling subtrees are disjoint; hash them concurrently. The hash of a
    // subtree is a pure function of its content, so scheduling cannot change
    // the result.
    pool->ParallelFor(2, [&](std::size_t i) {
      RehashRec(i == 0 ? left : right, level + 1, pool, par_levels - 1);
    });
  } else {
    RehashRec(left, level + 1, pool, par_levels);
    RehashRec(right, level + 1, pool, par_levels);
  }
  const Hash256& lh = left != nullptr ? left->hash : DefaultHash(level + 1);
  const Hash256& rh = right != nullptr ? right->hash : DefaultHash(level + 1);
  node->hash = TaggedDigest2(NodeTag::kSmtInternal, lh, rh);
  node->dirty = false;
}

namespace {

/// Hashes sibling-pair jobs, sharding across the pool when the level is
/// large enough for the task handoff to pay for itself. Jobs are disjoint
/// (each writes only its own out), so sharding cannot change any result.
void HashPairsSharded(NodeTag tag, std::vector<NodePairJob>& jobs,
                      common::ThreadPool* pool) {
  constexpr std::size_t kMinJobsPerShard = 512;
  if (jobs.empty()) return;
  const std::size_t shards =
      pool == nullptr ? 1
                      : std::min<std::size_t>(pool->WorkerCount() + 1,
                                              jobs.size() / kMinJobsPerShard);
  if (shards <= 1) {
    TaggedDigest2Many(tag, jobs.data(), jobs.size());
    return;
  }
  pool->ParallelFor(shards, [&](std::size_t s) {
    const std::size_t begin = jobs.size() * s / shards;
    const std::size_t end = jobs.size() * (s + 1) / shards;
    TaggedDigest2Many(tag, jobs.data() + begin, end - begin);
  });
}

/// One leaf whose singleton-subtree hash is being folded up the default
/// chain: `h` starts at LeafNodeHash(key, vh) and merges with level-default
/// siblings until `stop_level` is reached.
struct LeafFold {
  const Hash256* key;
  const Hash256* value_hash;
  int stop_level;
  Hash256* out;  // receives the completed fold
  Hash256 h;     // working value while the chain runs
};

/// Runs every fold to completion, batching across folds level by level (one
/// multi-buffer dispatch per level instead of one streaming hash per step).
/// Computes exactly the chain FoldLeaf computes for each entry.
///
/// Each fold owns one persistent pre-padded 128-byte message slot. A level's
/// digest is stored directly into the position the next level reads it from
/// (left or right half, by the key's next path bit), so the per-level work
/// beyond the hash itself is a single 32-byte default-sibling copy.
void BatchFolds(std::vector<LeafFold>& folds, common::ThreadPool* pool) {
  if (folds.empty()) return;
  // Seed every fold with its leaf hash (same 65-byte geometry as a pair).
  {
    std::vector<NodePairJob> jobs(folds.size());
    for (std::size_t i = 0; i < folds.size(); ++i) {
      jobs[i] = {folds[i].key, folds[i].value_hash, &folds[i].h};
    }
    HashPairsSharded(NodeTag::kSmtLeaf, jobs, pool);
  }
  // Ascending stop level => the active set is a shrinking prefix as the fold
  // walks from the bottom of the tree toward the root.
  std::sort(folds.begin(), folds.end(),
            [](const LeafFold& a, const LeafFold& b) {
              return a.stop_level < b.stop_level;
            });
  // At level l the working value sits in the left half when the key's bit l
  // is 0 and the right half when it is 1 (the default sibling takes the
  // other half) — the same orientation FoldLeaf uses.
  const auto pos = [](const LeafFold& f, int l) {
    return f.key->Bit(static_cast<std::size_t>(l)) ? 33 : 1;
  };
  std::vector<std::uint8_t> slots(folds.size() * 128);
  std::vector<crypto::PaddedJob> jobs(folds.size());
  // cur_pos[i] caches pos(folds[i], l) for the level about to be hashed, so
  // the hot loop reads one byte instead of re-deriving two key bits.
  std::vector<std::uint8_t> cur_pos(folds.size());
  for (std::size_t i = 0; i < folds.size(); ++i) {
    std::uint8_t* slot = slots.data() + i * 128;
    PrePadPairSlot(slot, NodeTag::kSmtInternal);
    jobs[i].blocks = slot;  // never changes; only .out moves per level
    if (folds[i].stop_level >= kDepth) {
      *folds[i].out = folds[i].h;  // no chain: the seed is the result
    } else {
      cur_pos[i] = static_cast<std::uint8_t>(pos(folds[i], kDepth - 1));
      std::memcpy(slot + cur_pos[i], folds[i].h.data().data(), 32);
    }
  }
  std::size_t active = folds.size();
  for (int l = kDepth - 1; l >= 0 && active > 0; --l) {
    while (active > 0 && folds[active - 1].stop_level > l) --active;
    if (active == 0) break;
    const Hash256& def = SparseMerkleTree::DefaultHash(l + 1);
    for (std::size_t i = 0; i < active; ++i) {
      LeafFold& f = folds[i];
      std::uint8_t* slot = slots.data() + i * 128;
      std::memcpy(slot + (34 - cur_pos[i]), def.data().data(), 32);
      if (l == f.stop_level) {
        jobs[i].out = f.out->begin();
      } else {
        cur_pos[i] = static_cast<std::uint8_t>(pos(f, l - 1));
        jobs[i].out = slot + cur_pos[i];
      }
    }
    constexpr std::size_t kMinJobsPerShard = 512;
    const std::size_t shards =
        pool == nullptr ? 1
                        : std::min<std::size_t>(pool->WorkerCount() + 1,
                                                active / kMinJobsPerShard);
    if (shards <= 1) {
      crypto::HashPadded(jobs.data(), active, /*m=*/2);
    } else {
      pool->ParallelFor(shards, [&](std::size_t s) {
        const std::size_t begin = active * s / shards;
        const std::size_t end = active * (s + 1) / shards;
        crypto::HashPadded(jobs.data() + begin, end - begin, /*m=*/2);
      });
    }
  }
}

}  // namespace

void SparseMerkleTree::RehashBatched(Node* root, common::ThreadPool* pool) {
  if (root == nullptr || !root->dirty) return;
  // Phase 1: collect the dirty frontier — leaves (with their levels) and
  // branches bucketed by depth. Only dirty nodes are visited; Insert/Remove
  // marked every ancestor of a change dirty, so this reaches all stale
  // hashes.
  std::vector<std::pair<Node*, int>> leaves;
  std::vector<std::vector<Node*>> branches(static_cast<std::size_t>(kDepth));
  std::vector<std::pair<Node*, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [node, level] = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      leaves.emplace_back(node, level);
      continue;
    }
    branches[static_cast<std::size_t>(level)].push_back(node);
    if (node->left && node->left->dirty) {
      stack.emplace_back(node->left.get(), level + 1);
    }
    if (node->right && node->right->dirty) {
      stack.emplace_back(node->right.get(), level + 1);
    }
  }

  // Phase 2: fold all dirty leaves level-by-level across the batch; each
  // fold writes straight into its node's hash.
  std::vector<LeafFold> leaf_folds;
  leaf_folds.reserve(leaves.size());
  for (const auto& [node, level] : leaves) {
    leaf_folds.push_back(
        {&node->key, &node->value_hash, level, &node->hash, Hash256()});
    node->dirty = false;
  }
  BatchFolds(leaf_folds, pool);

  // Phase 3: dirty branches, deepest level first; children (dirty or not)
  // have final hashes by the time their parents are batched.
  std::vector<NodePairJob> jobs;
  for (int level = kDepth - 1; level >= 0; --level) {
    auto& bucket = branches[static_cast<std::size_t>(level)];
    if (bucket.empty()) continue;
    jobs.resize(bucket.size());
    const Hash256& def = DefaultHash(level + 1);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      Node* node = bucket[i];
      jobs[i] = {node->left ? &node->left->hash : &def,
                 node->right ? &node->right->hash : &def, &node->hash};
    }
    HashPairsSharded(NodeTag::kSmtInternal, jobs, pool);
    for (Node* node : bucket) node->dirty = false;
  }
}

void SparseMerkleTree::UpdateBatchWith(const std::map<Hash256, Hash256>& entries,
                                       common::ThreadPool& pool,
                                       RehashMode mode) {
  for (const auto& [key, value_hash] : entries) {
    if (value_hash.IsZero()) {
      bool removed = false;
      root_ = RemoveRec(std::move(root_), 0, key, removed, /*defer_hash=*/true);
    } else {
      root_ = InsertRec(std::move(root_), 0, key, value_hash, /*defer_hash=*/true);
    }
  }
  common::ThreadPool* pool_ptr = pool.WorkerCount() > 1 ? &pool : nullptr;
  if (mode == RehashMode::kBatched) {
    RehashBatched(root_.get(), pool_ptr);
  } else {
    RehashRec(root_.get(), 0, pool_ptr, /*par_levels=*/4);
  }
}

void SparseMerkleTree::UpdateBatch(const std::map<Hash256, Hash256>& entries) {
  // Below this size the deferred pass costs more than it saves (the
  // multi-buffer hasher needs a few lanes' worth of independent work); the
  // cutover keeps single-tx blocks on the straight path.
  constexpr std::size_t kBatchThreshold = 8;
  if (entries.size() < kBatchThreshold) {
    for (const auto& [key, value_hash] : entries) Update(key, value_hash);
    return;
  }
  UpdateBatchWith(entries, common::ThreadPool::Shared());
}

Hash256 SparseMerkleTree::Get(const Hash256& key) const {
  const Node* node = root_.get();
  int level = 0;
  while (node != nullptr && !node->is_leaf) {
    node = key.Bit(static_cast<std::size_t>(level)) ? node->right.get()
                                                    : node->left.get();
    ++level;
  }
  if (node != nullptr && SamePath(node->key, key)) return node->value_hash;
  return Hash256();
}

Hash256 SparseMerkleTree::Root() const {
  return root_ ? root_->hash : DefaultHash(0);
}

namespace {

/// Sorted, deduped leaf paths of a proof's key set; "is this node id an
/// ancestor of some proof key" is then a binary search.
std::vector<Hash256> CanonicalPaths(const std::vector<Hash256>& keys) {
  std::vector<Hash256> paths;
  paths.reserve(keys.size());
  for (const Hash256& k : keys) paths.push_back(PrefixAt(k, kDepth));
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

bool CoveredBy(const std::vector<Hash256>& paths, const SmtNodeId& id) {
  auto it = std::lower_bound(paths.begin(), paths.end(), id.prefix);
  return it != paths.end() && PrefixAt(*it, id.level) == id.prefix;
}

}  // namespace

void SparseMerkleTree::ResolveFolds(std::vector<PendingFold>& folds,
                                    std::map<SmtNodeId, Hash256>& sink) {
  if (folds.empty()) return;
  std::vector<Hash256> results(folds.size());
  std::vector<LeafFold> chains;
  chains.reserve(folds.size());
  for (std::size_t i = 0; i < folds.size(); ++i) {
    chains.push_back({&folds[i].key, &folds[i].value_hash, folds[i].id.level,
                      &results[i], Hash256()});
  }
  BatchFolds(chains, nullptr);
  // emplace keeps the first value per id, matching the eager-hash behaviour
  // (duplicate ids come from the same resident leaf, so values agree anyway).
  for (std::size_t i = 0; i < folds.size(); ++i) {
    sink.emplace(folds[i].id, results[i]);
  }
}

void SparseMerkleTree::CollectSiblings(
    const Hash256& key, const std::vector<Hash256>& paths,
    std::map<SmtNodeId, Hash256>& sink,
    std::vector<PendingFold>& folds) const {
  const Node* node = root_.get();
  int level = 0;
  while (node != nullptr) {
    if (node->is_leaf) {
      if (SamePath(node->key, key)) break;  // siblings below are all default
      int diff = FirstDiffBit(node->key, key, level);
      if (diff < 0) break;
      // The resident leaf's subtree becomes the sibling at the divergence;
      // its default-chain fold is deferred so all folds batch together.
      SmtNodeId id{static_cast<std::uint16_t>(diff + 1),
                   PrefixAt(node->key, diff + 1)};
      if (!CoveredBy(paths, id)) {
        folds.push_back({id, node->key, node->value_hash});
      }
      break;
    }
    bool bit = key.Bit(static_cast<std::size_t>(level));
    const Node* sibling = bit ? node->left.get() : node->right.get();
    if (sibling != nullptr) {
      SmtNodeId id{static_cast<std::uint16_t>(level + 1),
                   FlipBit(PrefixAt(key, level + 1), level)};
      if (!CoveredBy(paths, id)) sink.emplace(id, sibling->hash);
    }
    node = bit ? node->right.get() : node->left.get();
    ++level;
  }
}

SmtMultiProof SparseMerkleTree::ProveKeysSerial(
    const std::vector<Hash256>& keys) const {
  const std::vector<Hash256> paths = CanonicalPaths(keys);
  SmtMultiProof proof;
  std::vector<PendingFold> folds;
  for (const Hash256& key : keys) {
    CollectSiblings(key, paths, proof.siblings, folds);
  }
  ResolveFolds(folds, proof.siblings);
  return proof;
}

SmtMultiProof SparseMerkleTree::ProveKeysParallel(
    const std::vector<Hash256>& keys, common::ThreadPool& pool) const {
  const std::vector<Hash256> paths = CanonicalPaths(keys);
  // Chunk the key set across the pool; each chunk descends the (read-only)
  // tree into its own sibling map. A given node id always maps to the same
  // hash (it is a function of the tree alone), so merging the chunk maps
  // yields exactly the serial proof regardless of scheduling.
  const std::size_t chunks = std::min<std::size_t>(
      pool.WorkerCount() + 1, (keys.size() + kMinKeysPerChunk - 1) / kMinKeysPerChunk);
  if (chunks <= 1) return ProveKeysSerial(keys);
  std::vector<std::map<SmtNodeId, Hash256>> partial(chunks);
  pool.ParallelFor(chunks, [&](std::size_t c) {
    const std::size_t begin = keys.size() * c / chunks;
    const std::size_t end = keys.size() * (c + 1) / chunks;
    std::vector<PendingFold> folds;
    for (std::size_t i = begin; i < end; ++i) {
      CollectSiblings(keys[i], paths, partial[c], folds);
    }
    ResolveFolds(folds, partial[c]);
  });
  SmtMultiProof proof;
  proof.siblings = std::move(partial[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    proof.siblings.merge(partial[c]);
  }
  return proof;
}

SmtMultiProof SparseMerkleTree::ProveKeys(const std::vector<Hash256>& keys) const {
  if (keys.size() < kMinKeysPerChunk * 2 ||
      common::ThreadPool::Shared().WorkerCount() <= 1) {
    return ProveKeysSerial(keys);
  }
  return ProveKeysParallel(keys, common::ThreadPool::Shared());
}

Hash256 SparseMerkleTree::ComputeRootFromProof(
    const SmtMultiProof& proof, const std::map<Hash256, Hash256>& leaves) {
  // Frontier: sorted (canonical prefix, subtree hash) pairs at the current
  // level, merged in place level by level. Entries computed from the
  // caller's leaves always take precedence over proof entries, so a
  // malicious proof cannot override a covered subtree.
  std::vector<std::pair<Hash256, Hash256>> frontier;
  frontier.reserve(leaves.size());  // reserved: jobs point into the vector
  std::vector<NodePairJob> leaf_jobs;
  for (const auto& [key, vh] : leaves) {
    frontier.emplace_back(PrefixAt(key, kDepth), DefaultHash(kDepth));
    if (!vh.IsZero()) {
      // LeafNodeHash(key, vh) == H(kSmtLeaf || key || vh): pair geometry.
      leaf_jobs.push_back({&key, &vh, &frontier.back().second});
    }
  }
  TaggedDigest2Many(NodeTag::kSmtLeaf, leaf_jobs.data(), leaf_jobs.size());
  // leaves is an ordered map and PrefixAt preserves order, except that two
  // keys sharing a path collapse; dedupe defensively.
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 frontier.end());
  if (frontier.empty()) return DefaultHash(0);

  // Per level: gather every parent's (left, right) pair, then hash the whole
  // level in one multi-buffer dispatch instead of one streaming hash per node.
  std::vector<std::pair<Hash256, Hash256>> next;
  std::vector<Hash256> lefts, rights;
  std::vector<NodePairJob> jobs;
  for (int level = kDepth; level > 0; --level) {
    next.clear();
    next.reserve(frontier.size());
    lefts.clear();
    rights.clear();
    lefts.reserve(frontier.size());
    rights.reserve(frontier.size());
    const int bit_index = level - 1;
    for (std::size_t i = 0; i < frontier.size();) {
      const Hash256& prefix = frontier[i].first;
      bool bit = prefix.Bit(static_cast<std::size_t>(bit_index));
      Hash256 parent = PrefixAt(prefix, bit_index);

      if (!bit && i + 1 < frontier.size() &&
          frontier[i + 1].first == FlipBit(prefix, bit_index)) {
        // Both children are on the frontier (keys diverging here).
        lefts.push_back(frontier[i].second);
        rights.push_back(frontier[i + 1].second);
        i += 2;
      } else {
        Hash256 partner = FlipBit(prefix, bit_index);
        auto sib = proof.siblings.find(
            SmtNodeId{static_cast<std::uint16_t>(level), partner});
        const Hash256& sibling_hash =
            sib != proof.siblings.end() ? sib->second : DefaultHash(level);
        lefts.push_back(bit ? sibling_hash : frontier[i].second);
        rights.push_back(bit ? frontier[i].second : sibling_hash);
        i += 1;
      }
      next.emplace_back(parent, Hash256());
    }
    jobs.resize(next.size());
    for (std::size_t i = 0; i < next.size(); ++i) {
      jobs[i] = {&lefts[i], &rights[i], &next[i].second};
    }
    TaggedDigest2Many(NodeTag::kSmtInternal, jobs.data(), jobs.size());
    frontier.swap(next);
  }
  return frontier.front().second;
}

Bytes SmtMultiProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& [id, hash] : siblings) {
    enc.U16(id.level);
    enc.HashField(id.prefix);
    enc.HashField(hash);
  }
  return enc.Take();
}

Result<SmtMultiProof> SmtMultiProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    SmtMultiProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      SmtNodeId id;
      id.level = dec.U16();
      id.prefix = dec.HashField();
      Hash256 h = dec.HashField();
      if (id.level > SparseMerkleTree::kDepth) {
        return Result<SmtMultiProof>::Error("SmtMultiProof: level out of range");
      }
      proof.siblings.emplace(id, h);
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<SmtMultiProof>::Error(std::string("SmtMultiProof: ") + e.what());
  }
}

}  // namespace dcert::mht
