// Merkle Patricia Trie (radix-16) over 32-byte keys — the upper level of
// DCert's two-level historical index (paper Fig. 5), mapping hashed account
// addresses to the root of that account's lower MB-tree.
//
// Simplified relative to Ethereum's MPT: no extension nodes (branch chains
// cover shared prefixes) and values live only in leaves, which is sufficient
// because all keys have equal length. Supports authenticated reads
// (presence and absence) and stateless in-enclave updates via ApplyPut.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert::mht {

/// Path proof for one key: the branch nodes from the root downward (sparse
/// off-path children only) plus the terminal — a leaf (matching = presence,
/// mismatching = absence) or nothing (absence via an empty child slot).
struct MptProof {
  struct BranchStep {
    /// Off-path children as (nibble index, hash); the on-path child is
    /// reconstructed by the verifier and must not appear here.
    std::vector<std::pair<std::uint8_t, Hash256>> children;
  };

  std::vector<BranchStep> steps;
  bool has_leaf = false;
  std::vector<std::uint8_t> leaf_suffix;  // remaining nibbles below the steps
  Hash256 leaf_value_hash;

  Bytes Serialize() const;
  static Result<MptProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

class MptTrie {
 public:
  MptTrie();
  ~MptTrie();
  MptTrie(MptTrie&&) noexcept;
  MptTrie& operator=(MptTrie&&) noexcept;
  MptTrie(const MptTrie&) = delete;
  MptTrie& operator=(const MptTrie&) = delete;

  /// Inserts or overwrites. Value hashes must be non-zero (no deletions —
  /// accounts are never removed from the historical index).
  void Put(const Hash256& key, const Hash256& value_hash);

  /// Stored value hash, or nullopt when absent.
  std::optional<Hash256> Get(const Hash256& key) const;

  Hash256 Root() const;
  std::size_t Size() const { return size_; }

  /// Builds a presence/absence proof for `key`.
  MptProof Prove(const Hash256& key) const;

  /// Verifies a proof against a trusted root. Returns the proven value hash,
  /// or nullopt when the proof establishes absence.
  static Result<std::optional<Hash256>> VerifyGet(const Hash256& root,
                                                  const Hash256& key,
                                                  const MptProof& proof);

  /// Stateless update: verifies `proof` (a pre-state proof for `key`) against
  /// `old_root`, then returns the root after Put(key, new_value_hash).
  /// Deterministically mirrors Put, so the result equals Root() after the
  /// equivalent in-tree update. Used inside the enclave for index
  /// certification (Alg. 4 line 10 / Alg. 5 line 13).
  static Result<Hash256> ApplyPut(const Hash256& old_root, const Hash256& key,
                                  const MptProof& proof,
                                  const Hash256& new_value_hash);

  /// The empty trie commits to the zero hash.
  static Hash256 EmptyRoot() { return Hash256(); }

  /// Number of nibbles in a full key path.
  static constexpr std::size_t kPathNibbles = 64;

  /// Exposed for the implementation's free helper functions only.
  struct Node;

 private:
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dcert::mht
