// Domain-separated hashing conventions shared by every authenticated data
// structure in DCert. Each node kind gets its own tag byte so that a leaf of
// one structure can never be confused with an internal node of another.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace dcert::mht {

enum class NodeTag : std::uint8_t {
  kMerkleLeaf = 0x00,      // binary MHT leaf
  kMerkleInternal = 0x01,  // binary MHT internal node
  kSmtLeaf = 0x02,         // sparse Merkle tree leaf
  kSmtInternal = 0x03,     // sparse Merkle tree internal node
  kMbLeaf = 0x04,          // Merkle B-tree leaf node
  kMbInternal = 0x05,      // Merkle B-tree internal node
  kMptLeaf = 0x06,         // Merkle Patricia trie leaf
  kMptBranch = 0x07,       // Merkle Patricia trie branch
  kSkipNode = 0x08,        // authenticated skip list node
  kChainStep = 0x09,       // hash-chain bucket step (inverted index)
};

/// H(tag || payload).
Hash256 TaggedDigest(NodeTag tag, ByteView payload);

/// H(tag || left || right) — the two-child internal node idiom.
Hash256 TaggedDigest2(NodeTag tag, const Hash256& left, const Hash256& right);

}  // namespace dcert::mht
