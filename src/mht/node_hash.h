// Domain-separated hashing conventions shared by every authenticated data
// structure in DCert. Each node kind gets its own tag byte so that a leaf of
// one structure can never be confused with an internal node of another.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace dcert::mht {

enum class NodeTag : std::uint8_t {
  kMerkleLeaf = 0x00,      // binary MHT leaf
  kMerkleInternal = 0x01,  // binary MHT internal node
  kSmtLeaf = 0x02,         // sparse Merkle tree leaf
  kSmtInternal = 0x03,     // sparse Merkle tree internal node
  kMbLeaf = 0x04,          // Merkle B-tree leaf node
  kMbInternal = 0x05,      // Merkle B-tree internal node
  kMptLeaf = 0x06,         // Merkle Patricia trie leaf
  kMptBranch = 0x07,       // Merkle Patricia trie branch
  kSkipNode = 0x08,        // authenticated skip list node
  kChainStep = 0x09,       // hash-chain bucket step (inverted index)
};

/// H(tag || payload).
Hash256 TaggedDigest(NodeTag tag, ByteView payload);

/// H(tag || left || right) — the two-child internal node idiom.
Hash256 TaggedDigest2(NodeTag tag, const Hash256& left, const Hash256& right);

/// One sibling-pair hash job for the batched internal-node idiom. `out` may
/// alias `left` or `right`: the message is materialized before any digest is
/// written back.
struct NodePairJob {
  const Hash256* left = nullptr;
  const Hash256* right = nullptr;
  Hash256* out = nullptr;
};

/// Batched TaggedDigest2: out[i] = H(tag || *left[i] || *right[i]), fed
/// through the multi-buffer SHA-256 backend (the 65-byte message is exactly
/// two padded blocks). Byte-identical to calling TaggedDigest2 per job.
void TaggedDigest2Many(NodeTag tag, const NodePairJob* jobs, std::size_t n);

/// One 32-byte-payload hash job (the leaf idiom over a digest).
struct NodeLeafJob {
  const Hash256* payload = nullptr;
  Hash256* out = nullptr;
};

/// Batched TaggedDigest over 32-byte payloads: out[i] = H(tag || *payload[i])
/// (a 33-byte message, exactly one padded block).
void TaggedDigestMany32(NodeTag tag, const NodeLeafJob* jobs, std::size_t n);

/// Writes the constant bytes of the 128-byte pre-padded H(tag || l || r)
/// message into `slot`: tag at 0, 0x80 terminator, zeros, and the 520-bit
/// length. The caller fills bytes [1,33) and [33,65) with the operands and
/// hands the slot to crypto::HashPadded with m=2. Lets long fold chains keep
/// one persistent slot per chain and store each level's digest directly into
/// the next message (see SMT batch rehash).
void PrePadPairSlot(std::uint8_t* slot, NodeTag tag);

}  // namespace dcert::mht
