#include "mht/node_hash.h"

namespace dcert::mht {

Hash256 TaggedDigest(NodeTag tag, ByteView payload) {
  crypto::Sha256 ctx;
  std::uint8_t t = static_cast<std::uint8_t>(tag);
  ctx.Update(ByteView(&t, 1));
  ctx.Update(payload);
  return ctx.Finalize();
}

Hash256 TaggedDigest2(NodeTag tag, const Hash256& left, const Hash256& right) {
  crypto::Sha256 ctx;
  std::uint8_t t = static_cast<std::uint8_t>(tag);
  ctx.Update(ByteView(&t, 1));
  ctx.Update(left.View());
  ctx.Update(right.View());
  return ctx.Finalize();
}

}  // namespace dcert::mht
