#include "mht/node_hash.h"

#include <cstring>
#include <vector>

#include "crypto/sha256_batch.h"

namespace dcert::mht {

namespace {

// Messages are materialized pre-padded into chunked scratch so a batch of any
// size stays inside a few pages of working memory while the hasher runs.
constexpr std::size_t kChunkJobs = 256;

// The scratch slots have fixed geometry, so the constant suffix of every
// padded message — tag byte, 0x80 terminator, zeros, big-endian bit length —
// is written once per slot up front; the per-job loops then only copy the
// hash payload bytes.

// Slot prefix for H(tag || payload32): 33 bytes of message in one block,
// 264-bit length.
inline void PrePadLeaf(std::uint8_t* buf, NodeTag tag) {
  buf[0] = static_cast<std::uint8_t>(tag);
  buf[33] = 0x80;
  std::memset(buf + 34, 0, 28);
  buf[62] = 0x01;  // 33 * 8 = 264 = 0x0108 bits
  buf[63] = 0x08;
}

// Slot prefix for H(tag || left || right): 65 bytes of message in two
// blocks, 520-bit length.
inline void PrePadPair(std::uint8_t* buf, NodeTag tag) {
  buf[0] = static_cast<std::uint8_t>(tag);
  buf[65] = 0x80;
  std::memset(buf + 66, 0, 60);
  buf[126] = 0x02;  // 65 * 8 = 520 = 0x0208 bits
  buf[127] = 0x08;
}

}  // namespace

Hash256 TaggedDigest(NodeTag tag, ByteView payload) {
  crypto::Sha256 ctx;
  std::uint8_t t = static_cast<std::uint8_t>(tag);
  ctx.Update(ByteView(&t, 1));
  ctx.Update(payload);
  return ctx.Finalize();
}

Hash256 TaggedDigest2(NodeTag tag, const Hash256& left, const Hash256& right) {
  crypto::Sha256 ctx;
  std::uint8_t t = static_cast<std::uint8_t>(tag);
  ctx.Update(ByteView(&t, 1));
  ctx.Update(left.View());
  ctx.Update(right.View());
  return ctx.Finalize();
}

void TaggedDigest2Many(NodeTag tag, const NodePairJob* jobs, std::size_t n) {
  // Scratch persists across calls (the SMT fold loop issues one call per
  // tree level); the constant padding is only rewritten when the tag
  // changes. Thread-local keeps the sharded path race-free.
  thread_local std::vector<std::uint8_t> scratch;
  thread_local std::vector<crypto::PaddedJob> padded;
  thread_local int padded_tag = -1;
  if (scratch.size() < kChunkJobs * 128) {
    scratch.resize(kChunkJobs * 128);
    padded.resize(kChunkJobs);
    padded_tag = -1;
  }
  if (padded_tag != static_cast<int>(tag)) {
    for (std::size_t i = 0; i < kChunkJobs; ++i) {
      PrePadPair(scratch.data() + i * 128, tag);
    }
    padded_tag = static_cast<int>(tag);
  }
  for (std::size_t start = 0; start < n; start += kChunkJobs) {
    const std::size_t take = std::min(kChunkJobs, n - start);
    for (std::size_t i = 0; i < take; ++i) {
      const NodePairJob& job = jobs[start + i];
      std::uint8_t* buf = scratch.data() + i * 128;
      std::memcpy(buf + 1, job.left->data().data(), 32);
      std::memcpy(buf + 33, job.right->data().data(), 32);
      padded[i] = {buf, job.out->begin()};
    }
    crypto::HashPadded(padded.data(), take, /*m=*/2);
  }
}

void TaggedDigestMany32(NodeTag tag, const NodeLeafJob* jobs, std::size_t n) {
  thread_local std::vector<std::uint8_t> scratch;
  thread_local std::vector<crypto::PaddedJob> padded;
  thread_local int padded_tag = -1;
  if (scratch.size() < kChunkJobs * 64) {
    scratch.resize(kChunkJobs * 64);
    padded.resize(kChunkJobs);
    padded_tag = -1;
  }
  if (padded_tag != static_cast<int>(tag)) {
    for (std::size_t i = 0; i < kChunkJobs; ++i) {
      PrePadLeaf(scratch.data() + i * 64, tag);
    }
    padded_tag = static_cast<int>(tag);
  }
  for (std::size_t start = 0; start < n; start += kChunkJobs) {
    const std::size_t take = std::min(kChunkJobs, n - start);
    for (std::size_t i = 0; i < take; ++i) {
      const NodeLeafJob& job = jobs[start + i];
      std::uint8_t* buf = scratch.data() + i * 64;
      std::memcpy(buf + 1, job.payload->data().data(), 32);
      padded[i] = {buf, job.out->begin()};
    }
    crypto::HashPadded(padded.data(), take, /*m=*/1);
  }
}

void PrePadPairSlot(std::uint8_t* slot, NodeTag tag) { PrePadPair(slot, tag); }

}  // namespace dcert::mht
