#include "mht/mpt.h"

#include <algorithm>
#include <stdexcept>

#include "mht/node_hash.h"

namespace dcert::mht {

namespace {

std::uint8_t Nibble(const Hash256& key, std::size_t i) {
  std::uint8_t byte = key[i / 2];
  return (i % 2 == 0) ? (byte >> 4) : (byte & 0x0f);
}

std::vector<std::uint8_t> SuffixFrom(const Hash256& key, std::size_t depth) {
  std::vector<std::uint8_t> out;
  out.reserve(MptTrie::kPathNibbles - depth);
  for (std::size_t i = depth; i < MptTrie::kPathNibbles; ++i) {
    out.push_back(Nibble(key, i));
  }
  return out;
}

Hash256 LeafHash(const std::vector<std::uint8_t>& suffix, const Hash256& value_hash) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(suffix.size()));
  for (std::uint8_t nib : suffix) enc.U8(nib);
  enc.HashField(value_hash);
  return TaggedDigest(NodeTag::kMptLeaf, enc.bytes());
}

Hash256 BranchHash(const std::array<Hash256, 16>& children) {
  Encoder enc;
  for (const Hash256& c : children) enc.HashField(c);
  return TaggedDigest(NodeTag::kMptBranch, enc.bytes());
}

}  // namespace

struct MptTrie::Node {
  bool is_leaf = true;
  // Leaf payload.
  std::vector<std::uint8_t> suffix;
  Hash256 value_hash;
  // Branch payload.
  std::array<std::unique_ptr<Node>, 16> children;

  Hash256 hash;

  void Recompute() {
    if (is_leaf) {
      hash = LeafHash(suffix, value_hash);
      return;
    }
    std::array<Hash256, 16> child_hashes;
    for (std::size_t i = 0; i < 16; ++i) {
      if (children[i]) child_hashes[i] = children[i]->hash;
    }
    hash = BranchHash(child_hashes);
  }
};

MptTrie::MptTrie() = default;
MptTrie::~MptTrie() = default;
MptTrie::MptTrie(MptTrie&&) noexcept = default;
MptTrie& MptTrie::operator=(MptTrie&&) noexcept = default;

Hash256 MptTrie::Root() const { return root_ ? root_->hash : EmptyRoot(); }

namespace {

std::unique_ptr<MptTrie::Node> PutRec(std::unique_ptr<MptTrie::Node> node,
                                      std::size_t depth, const Hash256& key,
                                      const Hash256& value_hash, std::size_t& size) {
  using Node = MptTrie::Node;
  if (!node) {
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    leaf->suffix = SuffixFrom(key, depth);
    leaf->value_hash = value_hash;
    leaf->Recompute();
    ++size;
    return leaf;
  }
  if (node->is_leaf) {
    std::vector<std::uint8_t> new_suffix = SuffixFrom(key, depth);
    if (node->suffix == new_suffix) {
      node->value_hash = value_hash;
      node->Recompute();
      return node;
    }
    // Split: one branch per shared nibble, then both leaves diverge.
    std::size_t common = 0;
    while (common < new_suffix.size() && node->suffix[common] == new_suffix[common]) {
      ++common;
    }
    // Build from the divergence upward.
    auto old_leaf = std::move(node);
    std::uint8_t old_nib = old_leaf->suffix[common];
    std::uint8_t new_nib = new_suffix[common];
    old_leaf->suffix.erase(old_leaf->suffix.begin(),
                           old_leaf->suffix.begin() +
                               static_cast<std::ptrdiff_t>(common) + 1);
    old_leaf->Recompute();
    auto new_leaf = std::make_unique<Node>();
    new_leaf->is_leaf = true;
    new_leaf->suffix.assign(new_suffix.begin() +
                                static_cast<std::ptrdiff_t>(common) + 1,
                            new_suffix.end());
    new_leaf->value_hash = value_hash;
    new_leaf->Recompute();
    ++size;

    auto branch = std::make_unique<Node>();
    branch->is_leaf = false;
    branch->children[old_nib] = std::move(old_leaf);
    branch->children[new_nib] = std::move(new_leaf);
    branch->Recompute();
    for (std::size_t i = common; i > 0; --i) {
      auto outer = std::make_unique<Node>();
      outer->is_leaf = false;
      outer->children[new_suffix[i - 1]] = std::move(branch);
      outer->Recompute();
      branch = std::move(outer);
    }
    return branch;
  }
  std::uint8_t nib = Nibble(key, depth);
  node->children[nib] =
      PutRec(std::move(node->children[nib]), depth + 1, key, value_hash, size);
  node->Recompute();
  return node;
}

}  // namespace

void MptTrie::Put(const Hash256& key, const Hash256& value_hash) {
  if (value_hash.IsZero()) {
    throw std::invalid_argument("MptTrie::Put: zero value hash is reserved");
  }
  root_ = PutRec(std::move(root_), 0, key, value_hash, size_);
}

std::optional<Hash256> MptTrie::Get(const Hash256& key) const {
  const Node* node = root_.get();
  std::size_t depth = 0;
  while (node != nullptr && !node->is_leaf) {
    node = node->children[Nibble(key, depth)].get();
    ++depth;
  }
  if (node == nullptr) return std::nullopt;
  if (node->suffix != SuffixFrom(key, depth)) return std::nullopt;
  return node->value_hash;
}

MptProof MptTrie::Prove(const Hash256& key) const {
  MptProof proof;
  const Node* node = root_.get();
  std::size_t depth = 0;
  while (node != nullptr && !node->is_leaf) {
    std::uint8_t on_path = Nibble(key, depth);
    MptProof::BranchStep step;
    for (std::uint8_t i = 0; i < 16; ++i) {
      if (i != on_path && node->children[i]) {
        step.children.emplace_back(i, node->children[i]->hash);
      }
    }
    proof.steps.push_back(std::move(step));
    node = node->children[on_path].get();
    ++depth;
  }
  if (node != nullptr) {
    proof.has_leaf = true;
    proof.leaf_suffix = node->suffix;
    proof.leaf_value_hash = node->value_hash;
  }
  return proof;
}

namespace {

/// Folds a terminal subtree hash upward through the proof's branch steps,
/// inserting it at the key's on-path slot of each branch. Returns the root.
Result<Hash256> FoldSteps(const MptProof& proof, const Hash256& key,
                          Hash256 terminal) {
  for (std::size_t i = proof.steps.size(); i > 0; --i) {
    const auto& step = proof.steps[i - 1];
    std::uint8_t on_path = Nibble(key, i - 1);
    std::array<Hash256, 16> children;
    std::uint8_t prev = 0;
    bool first = true;
    for (const auto& [nib, hash] : step.children) {
      if (nib >= 16) return Result<Hash256>::Error("MPT proof: nibble out of range");
      if (!first && nib <= prev) {
        return Result<Hash256>::Error("MPT proof: children not ascending");
      }
      first = false;
      prev = nib;
      if (nib == on_path) {
        return Result<Hash256>::Error("MPT proof: on-path child listed explicitly");
      }
      if (hash.IsZero()) {
        return Result<Hash256>::Error("MPT proof: zero hash for present child");
      }
      children[nib] = hash;
    }
    children[on_path] = terminal;
    terminal = BranchHash(children);
  }
  return terminal;
}

/// Shared validation: checks structural sanity and that the proof
/// reconstructs `root`. Returns the depth of the terminal position.
Status CheckProof(const Hash256& root, const Hash256& key, const MptProof& proof) {
  if (proof.steps.size() > MptTrie::kPathNibbles) {
    return Status::Error("MPT proof: too many steps");
  }
  if (proof.has_leaf) {
    if (proof.leaf_suffix.size() != MptTrie::kPathNibbles - proof.steps.size()) {
      return Status::Error("MPT proof: leaf suffix length mismatch");
    }
    for (std::uint8_t nib : proof.leaf_suffix) {
      if (nib >= 16) return Status::Error("MPT proof: leaf nibble out of range");
    }
    if (proof.leaf_value_hash.IsZero()) {
      return Status::Error("MPT proof: zero leaf value hash");
    }
  } else if (proof.steps.empty()) {
    // Absence in the empty trie.
    if (root != MptTrie::EmptyRoot()) {
      return Status::Error("MPT proof: empty proof for non-empty trie");
    }
    return Status::Ok();
  }
  Hash256 terminal;  // zero = absent slot
  if (proof.has_leaf) terminal = LeafHash(proof.leaf_suffix, proof.leaf_value_hash);
  Result<Hash256> computed = FoldSteps(proof, key, terminal);
  if (!computed) return computed.status();
  if (computed.value() != root) {
    return Status::Error("MPT proof does not reconstruct the root");
  }
  return Status::Ok();
}

}  // namespace

Result<std::optional<Hash256>> MptTrie::VerifyGet(const Hash256& root,
                                                  const Hash256& key,
                                                  const MptProof& proof) {
  using R = Result<std::optional<Hash256>>;
  Status st = CheckProof(root, key, proof);
  if (!st) return R(st);
  if (!proof.has_leaf) return std::optional<Hash256>{};
  if (proof.leaf_suffix == SuffixFrom(key, proof.steps.size())) {
    return std::optional<Hash256>{proof.leaf_value_hash};
  }
  return std::optional<Hash256>{};  // mismatching leaf proves absence
}

Result<Hash256> MptTrie::ApplyPut(const Hash256& old_root, const Hash256& key,
                                  const MptProof& proof,
                                  const Hash256& new_value_hash) {
  using R = Result<Hash256>;
  if (new_value_hash.IsZero()) return R::Error("MPT ApplyPut: zero value hash");
  Status st = CheckProof(old_root, key, proof);
  if (!st) return R(st);

  const std::size_t depth = proof.steps.size();
  std::vector<std::uint8_t> key_suffix = SuffixFrom(key, depth);
  Hash256 terminal;
  if (!proof.has_leaf) {
    // Empty slot (or empty trie): a fresh leaf with the remaining suffix.
    terminal = LeafHash(key_suffix, new_value_hash);
  } else if (proof.leaf_suffix == key_suffix) {
    // Overwrite in place.
    terminal = LeafHash(key_suffix, new_value_hash);
  } else {
    // Mismatching leaf: mirror Put's split — branches over the shared
    // nibbles, then both leaves with trimmed suffixes.
    std::size_t common = 0;
    while (common < key_suffix.size() &&
           proof.leaf_suffix[common] == key_suffix[common]) {
      ++common;
    }
    std::vector<std::uint8_t> old_trimmed(
        proof.leaf_suffix.begin() + static_cast<std::ptrdiff_t>(common) + 1,
        proof.leaf_suffix.end());
    std::vector<std::uint8_t> new_trimmed(
        key_suffix.begin() + static_cast<std::ptrdiff_t>(common) + 1,
        key_suffix.end());
    std::array<Hash256, 16> split_children;
    split_children[proof.leaf_suffix[common]] =
        LeafHash(old_trimmed, proof.leaf_value_hash);
    split_children[key_suffix[common]] = LeafHash(new_trimmed, new_value_hash);
    terminal = BranchHash(split_children);
    for (std::size_t i = common; i > 0; --i) {
      std::array<Hash256, 16> chain;
      chain[key_suffix[i - 1]] = terminal;
      terminal = BranchHash(chain);
    }
  }
  return FoldSteps(proof, key, terminal);
}

Bytes MptProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(steps.size()));
  for (const auto& step : steps) {
    enc.U8(static_cast<std::uint8_t>(step.children.size()));
    for (const auto& [nib, hash] : step.children) {
      enc.U8(nib);
      enc.HashField(hash);
    }
  }
  enc.Bool(has_leaf);
  if (has_leaf) {
    enc.U8(static_cast<std::uint8_t>(leaf_suffix.size()));
    for (std::uint8_t nib : leaf_suffix) enc.U8(nib);
    enc.HashField(leaf_value_hash);
  }
  return enc.Take();
}

Result<MptProof> MptProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    MptProof proof;
    std::uint32_t n_steps = dec.U32();
    if (n_steps > MptTrie::kPathNibbles) {
      return Result<MptProof>::Error("MptProof: too many steps");
    }
    for (std::uint32_t i = 0; i < n_steps; ++i) {
      BranchStep step;
      std::uint8_t n_children = dec.U8();
      for (std::uint8_t j = 0; j < n_children; ++j) {
        std::uint8_t nib = dec.U8();
        Hash256 h = dec.HashField();
        step.children.emplace_back(nib, h);
      }
      proof.steps.push_back(std::move(step));
    }
    proof.has_leaf = dec.Bool();
    if (proof.has_leaf) {
      std::uint8_t len = dec.U8();
      for (std::uint8_t i = 0; i < len; ++i) proof.leaf_suffix.push_back(dec.U8());
      proof.leaf_value_hash = dec.HashField();
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<MptProof>::Error(std::string("MptProof: ") + e.what());
  }
}

}  // namespace dcert::mht
