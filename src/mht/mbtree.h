// Merkle B+-tree (MB-tree, Li et al. SIGMOD'06) keyed by 64-bit timestamps,
// with *authenticated aggregates*: every node binds the (count, sum) of its
// subtree into its hash, so COUNT/SUM queries verify in O(log n) without
// shipping the values (the "complex queries such as aggregations" the paper
// points to via Xu et al. [32]). The aggregated word of an entry is the
// little-endian 64-bit prefix of its value (exactly the encoding DCert's
// historical index stores).
//
// The lower level of DCert's two-level historical index (paper Fig. 5): each
// account owns one MB-tree of its time-stamped state versions.
//
// Authenticated operations:
//  * RangeQueryWithProof — returns the versions in [lo, hi] plus a pruned-
//    subtree proof whose min/max separators establish completeness.
//  * AggregateQueryWithProof — verifiable (count, sum) over [lo, hi]; fully
//    covered subtrees contribute their bound aggregates as stubs.
//  * ProveAppend / ApplyAppend — a rightmost-spine proof that lets the
//    *enclave* recompute the new root (and aggregates) after appending a
//    version without holding the tree (the index analogue of Alg. 4 lines
//    9-10).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert::mht {

/// One queried version: timestamp key plus the stored value.
struct MbEntry {
  std::uint64_t key = 0;
  Bytes value;

  bool operator==(const MbEntry&) const = default;
};

/// Subtree aggregate bound into every node hash.
struct MbAggregate {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // wrapping sum of the entries' value words

  MbAggregate& operator+=(const MbAggregate& o) {
    count += o.count;
    sum += o.sum;
    return *this;
  }
  bool operator==(const MbAggregate&) const = default;
};

/// The aggregated word of a stored value: its little-endian u64 prefix
/// (0 when shorter than 8 bytes).
std::uint64_t MbValueWord(const Bytes& value);

/// Shared proof-node shape for range proofs, aggregate proofs, and append
/// spines. Pruned subtrees appear as (min, max, agg, hash) stubs; expanded
/// ones recurse.
struct MbProofNode {
  struct LeafEntry {
    std::uint64_t key = 0;
    Hash256 value_hash;
    /// Aggregated word of the value, bound by the leaf hash; when the full
    /// value is present the verifier cross-checks MbValueWord(value).
    std::uint64_t value_word = 0;
    std::optional<Bytes> value;  // present for in-range results only
  };
  struct Child {
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    MbAggregate agg;                     // bound by the parent hash
    Hash256 hash;                        // required for pruned children
    std::unique_ptr<MbProofNode> node;   // null = pruned stub
  };

  bool is_leaf = false;
  std::vector<LeafEntry> entries;   // leaf payload
  std::vector<Child> children;      // internal payload

  void Encode(Encoder& enc) const;
  static std::unique_ptr<MbProofNode> Decode(Decoder& dec, int depth = 0);
};

/// Proof for a range query [lo, hi].
struct MbRangeProof {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::unique_ptr<MbProofNode> root;  // null for the empty tree

  Bytes Serialize() const;
  static Result<MbRangeProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

/// Rightmost-spine proof enabling a stateless append.
struct MbAppendProof {
  std::unique_ptr<MbProofNode> root;  // null for the empty tree

  Bytes Serialize() const;
  static Result<MbAppendProof> Deserialize(ByteView data);
};

class MbTree {
 public:
  /// Maximum entries per leaf / children per internal node. Small enough to
  /// exercise splits constantly in tests, large enough to be realistic.
  static constexpr std::size_t kFanout = 8;

  MbTree();
  ~MbTree();
  MbTree(MbTree&&) noexcept;
  MbTree& operator=(MbTree&&) noexcept;
  MbTree(const MbTree&) = delete;
  MbTree& operator=(const MbTree&) = delete;

  /// Inserts a version. Keys must be unique; duplicate keys throw
  /// std::invalid_argument (a block never writes the same account twice at
  /// one timestamp).
  void Insert(std::uint64_t key, Bytes value);

  /// Bulk insert: identical to calling Insert per entry in order, but all
  /// value digests are computed in one multi-buffer hash dispatch first.
  void InsertBatch(std::vector<MbEntry> entries);

  Hash256 Root() const;
  std::size_t Size() const { return size_; }
  std::optional<std::uint64_t> MaxKey() const;

  /// Every stored entry in key order (an in-order leaf walk, no proofs):
  /// the raw content a checkpoint serializes. Re-inserting the returned
  /// entries into a fresh tree (InsertBatch) reproduces Root() exactly.
  std::vector<MbEntry> Entries() const;

  /// Authenticated range query: all entries with key in [lo, hi].
  MbRangeProof RangeQueryWithProof(std::uint64_t lo, std::uint64_t hi) const;

  /// Verifies a range proof against a trusted root and extracts the results.
  /// Fails on tampered values, missing entries, or out-of-order structure.
  static Result<std::vector<MbEntry>> VerifyRange(const Hash256& root,
                                                  std::uint64_t lo,
                                                  std::uint64_t hi,
                                                  const MbRangeProof& proof);

  /// Authenticated aggregation: proof for (count, sum) over keys in
  /// [lo, hi]. Fully covered subtrees stay pruned — proof size is O(log n)
  /// regardless of how many entries the window covers.
  MbRangeProof AggregateQueryWithProof(std::uint64_t lo, std::uint64_t hi) const;

  /// Verifies an aggregate proof and returns the window's (count, sum).
  static Result<MbAggregate> VerifyAggregate(const Hash256& root,
                                             std::uint64_t lo, std::uint64_t hi,
                                             const MbRangeProof& proof);

  /// Aggregate of the whole tree.
  MbAggregate TotalAggregate() const;

  /// Builds the rightmost-spine proof for the *current* tree (before append).
  MbAppendProof ProveAppend() const;

  /// Path proof for a *general* stateless insert of `key` (which need not
  /// exceed existing keys): the canonical descend path Insert() would take,
  /// with every off-path child as a stub. Same wire shape as append spines.
  MbAppendProof ProveInsert(std::uint64_t key) const;

  /// Stateless append: recomputes the root after appending (key, value_hash,
  /// value_word), verifying the spine against `old_root` first. `key` must
  /// exceed every existing key; `value_word` is MbValueWord of the appended
  /// value (the enclave derives it from the write data). Deterministically
  /// mirrors Insert()'s split rule, so the returned hash equals Root() after
  /// the equivalent Insert.
  static Result<Hash256> ApplyAppend(const Hash256& old_root,
                                     const MbAppendProof& proof,
                                     std::uint64_t key,
                                     const Hash256& value_hash,
                                     std::uint64_t value_word);

  /// Stateless *general* insert: verifies that `proof` is the canonical
  /// descend path for `key` against `old_root` (the expanded child of every
  /// internal node must sit exactly where Insert() would descend, which the
  /// verifier recomputes from the bound stub separators), that the key is
  /// absent, and returns the post-insert root. Mirrors Insert() exactly.
  static Result<Hash256> ApplyInsert(const Hash256& old_root,
                                     const MbAppendProof& proof,
                                     std::uint64_t key,
                                     const Hash256& value_hash,
                                     std::uint64_t value_word);

  /// Root hash of the empty tree (a fixed constant).
  static Hash256 EmptyRoot();

  /// Exposed for the implementation's free helper functions only.
  struct Node;

 private:
  void InsertWithHash(std::uint64_t key, Bytes value, const Hash256& value_hash);

  // The arena outlives root_ (declared first => destroyed last); see
  // common/arena.h for the lifetime rules.
  std::unique_ptr<common::Arena<Node>> arena_;
  common::ArenaPtr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dcert::mht
