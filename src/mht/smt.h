// Sparse Merkle Tree over hashed keys — the commitment used for the chain's
// global state (H_state in the block header, the binary tree of the paper's
// Fig. 1/Fig. 4).
//
// The tree is conceptually a full binary tree of depth kDepth whose leaf slots
// are addressed by the first kDepth bits of the (hashed) key; empty subtrees
// hash to precomputed defaults. The in-memory representation is
// path-compressed (singleton subtrees are stored as a single leaf node), so
// storage is O(#keys) while hashes remain identical to the full-depth model.
//
// Two halves of the paper's protocol live here:
//  * the untrusted CI calls ProveKeys() to build the update proof π_i over the
//    read/write key set (Alg. 1 line 3), and
//  * the trusted enclave calls ComputeRootFromProof() twice — once with the
//    old leaf values to implement verify_mht (Alg. 2 line 17/22) and once with
//    the written values to implement update (Alg. 2 line 23) — without ever
//    holding the full state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert::common {
class ThreadPool;
}

namespace dcert::mht {

/// Identifies one node of the conceptual full-depth tree: the node at `level`
/// whose path from the root is the first `level` bits of `prefix` (remaining
/// bits zero). Level 0 is the root, level kDepth the leaves.
struct SmtNodeId {
  std::uint16_t level = 0;
  Hash256 prefix;

  auto operator<=>(const SmtNodeId&) const = default;
};

/// Sibling hashes needed to recompute the root for a covered key set.
/// Entries equal to the level's default hash are omitted.
struct SmtMultiProof {
  std::map<SmtNodeId, Hash256> siblings;

  Bytes Serialize() const;
  static Result<SmtMultiProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return siblings.size() * (2 + 32 + 32) + 4; }
};

class SparseMerkleTree {
 public:
  /// Path depth in bits. 160 key-prefix bits keep second-preimage resistance
  /// at the usual 160-bit level while costing 60% of the full-depth hashing.
  static constexpr int kDepth = 160;

  SparseMerkleTree();
  ~SparseMerkleTree();
  SparseMerkleTree(SparseMerkleTree&&) noexcept;
  SparseMerkleTree& operator=(SparseMerkleTree&&) noexcept;
  SparseMerkleTree(const SparseMerkleTree&) = delete;
  SparseMerkleTree& operator=(const SparseMerkleTree&) = delete;

  /// Sets the value hash stored under `key`. A zero value hash deletes the
  /// key (an empty slot and a zero-valued slot are the same thing).
  void Update(const Hash256& key, const Hash256& value_hash);

  /// Deferred-rehash strategy for bulk updates. kBatched collects dirty
  /// nodes per level and feeds sibling-pair jobs through the multi-buffer
  /// hasher (crypto::HashMany lanes); kPerNode is the legacy recursive
  /// per-node walk, kept as the equivalence baseline for tests and A/B
  /// benches. Both produce byte-identical trees.
  enum class RehashMode { kBatched, kPerNode };

  /// Bulk update: applies every (key, value-hash) entry (zero value hash =
  /// delete), deferring internal-node hashing to one bottom-up pass at the
  /// end; large batches fan independent dirty subtrees out across `pool`.
  /// The resulting tree (hashes, structure) is identical to calling Update
  /// per entry in map order.
  void UpdateBatch(const std::map<Hash256, Hash256>& entries);
  void UpdateBatchWith(const std::map<Hash256, Hash256>& entries,
                       common::ThreadPool& pool,
                       RehashMode mode = RehashMode::kBatched);

  /// Returns the stored value hash, or the zero hash when absent.
  Hash256 Get(const Hash256& key) const;

  Hash256 Root() const;
  std::size_t Size() const { return size_; }

  /// Builds a multiproof covering every key in `keys` (present or absent —
  /// absence is provable). Duplicates are fine. Large key sets are proved in
  /// parallel over the shared pool; the proof is byte-identical to the
  /// serial one (sibling sets are merged into one ordered map).
  SmtMultiProof ProveKeys(const std::vector<Hash256>& keys) const;
  SmtMultiProof ProveKeysSerial(const std::vector<Hash256>& keys) const;
  SmtMultiProof ProveKeysParallel(const std::vector<Hash256>& keys,
                                  common::ThreadPool& pool) const;

  /// Stateless root recomputation: given a multiproof and the claimed leaf
  /// values for the covered keys (zero hash = absent), recomputes the root.
  /// Used by the enclave both to *verify* claimed values against a trusted
  /// root and to *update* the root after overwriting some of the leaves.
  /// The proof must cover exactly the keys of `leaves` (missing siblings make
  /// the computed root wrong, which the caller's comparison then catches).
  static Hash256 ComputeRootFromProof(
      const SmtMultiProof& proof, const std::map<Hash256, Hash256>& leaves);

  /// Default (all-empty) subtree hash at `level` in [0, kDepth].
  static const Hash256& DefaultHash(int level);

  /// Hash of an occupied leaf slot; binds the full key, not just the path.
  static Hash256 LeafNodeHash(const Hash256& key, const Hash256& value_hash);

 private:
  struct Node;
  using NodePtr = common::ArenaPtr<Node>;

  /// Smallest per-thread share of a multiproof key set worth a task handoff.
  static constexpr std::size_t kMinKeysPerChunk = 16;

  /// A deferred sibling fold discovered during proof collection; the actual
  /// hash chain runs batched across all pending folds afterwards.
  struct PendingFold {
    SmtNodeId id;
    Hash256 key;
    Hash256 value_hash;
  };

  /// Appends the proof siblings for one key to `sink`; resident-leaf
  /// siblings that need a default-fold are deferred into `folds` (ids
  /// covered by other proof keys, per `paths`, are skipped).
  void CollectSiblings(const Hash256& key, const std::vector<Hash256>& paths,
                       std::map<SmtNodeId, Hash256>& sink,
                       std::vector<PendingFold>& folds) const;

  /// Batch-resolves deferred folds into `sink` (multi-buffer hashing across
  /// all pending chains), preserving the first-insertion-wins map semantics.
  static void ResolveFolds(std::vector<PendingFold>& folds,
                           std::map<SmtNodeId, Hash256>& sink);

  NodePtr MakeNode();
  NodePtr InsertRec(NodePtr node, int level, const Hash256& key,
                    const Hash256& value_hash, bool defer_hash);
  NodePtr RemoveRec(NodePtr node, int level, const Hash256& key, bool& removed,
                    bool defer_hash);
  /// Recomputes the hashes of dirty subtrees bottom-up, per-node (legacy).
  /// With a pool, dirty sibling subtrees in the top `par_levels` levels run
  /// concurrently.
  static void RehashRec(Node* node, int level, common::ThreadPool* pool,
                        int par_levels);
  /// Level-batched rehash: dirty leaves fold level-by-level across the whole
  /// batch, dirty branches hash per depth, all through the multi-buffer
  /// hasher; large levels shard over `pool`.
  static void RehashBatched(Node* root, common::ThreadPool* pool);

  // The arena outlives root_ (declared first => destroyed last), which is
  // what makes the ArenaPtr-based tree safe to tear down member-wise.
  std::unique_ptr<common::Arena<Node>> arena_;
  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace dcert::mht
