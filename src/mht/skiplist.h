// Authenticated deterministic skip list — the LineageChain-style index used
// as the baseline in the paper's Fig. 11. An append-only list of time-stamped
// versions; tower heights are a deterministic function of the append index,
// and every node's hash binds its full pointer tower (hash + timestamp per
// level), so queries walking old-ward from the head are verifiable.
//
// Timestamps must be appended in non-decreasing order (they are block
// heights), which is also what makes jump-completeness checkable: any node
// skipped by a pointer is newer than the pointer's target, so a target with
// ts > hi proves everything skipped is > hi too.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert::mht {

/// One queried version (same shape as MbEntry, duplicated to keep the two
/// index families independent).
struct SkipEntry {
  std::uint64_t timestamp = 0;
  Bytes value;

  bool operator==(const SkipEntry&) const = default;
};

/// Wire form of one node as revealed in a proof. The node hash is
/// H(index || ts || value_hash || ptr_hashes || ptr_timestamps), so every
/// field except `value` is bound by the hash.
struct SkipNodeRecord {
  std::uint64_t index = 0;
  std::uint64_t timestamp = 0;
  Hash256 value_hash;
  std::optional<Bytes> value;  // present for in-range results
  std::vector<Hash256> ptr_hashes;      // kMaxLevel entries; zero = null
  std::vector<std::uint64_t> ptr_ts;    // timestamp of each pointee

  Hash256 NodeHash() const;
  void Encode(Encoder& enc) const;
  static SkipNodeRecord Decode(Decoder& dec);
};

/// Proof for a time-window query: the visited nodes in traversal order
/// (newest first), starting at the head.
struct SkipRangeProof {
  std::vector<SkipNodeRecord> visited;

  Bytes Serialize() const;
  static Result<SkipRangeProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

class AuthSkipList {
 public:
  static constexpr int kMaxLevel = 24;

  /// Height of the tower for append index i: 1 + trailing zeros of (i+1),
  /// capped. Deterministic, so both prover and enclave can recompute it.
  static int HeightOf(std::uint64_t index);

  /// Appends a version; timestamps must be non-decreasing.
  void Append(std::uint64_t timestamp, Bytes value);

  /// Digest = hash of the head node (zero for the empty list).
  Hash256 Digest() const;
  std::size_t Size() const { return nodes_.size(); }

  /// All versions with timestamp in [lo, hi], newest-first traversal proof.
  SkipRangeProof QueryWithProof(std::uint64_t lo, std::uint64_t hi) const;

  /// Verifies the proof against a trusted digest; returns matching versions
  /// in ascending timestamp order.
  static Result<std::vector<SkipEntry>> VerifyQuery(const Hash256& digest,
                                                    std::uint64_t lo,
                                                    std::uint64_t hi,
                                                    const SkipRangeProof& proof);

  /// Record of the current head (needed by the stateless append). Must not
  /// be called on an empty list.
  SkipNodeRecord HeadRecord() const;

  /// Stateless append for the enclave: given the old digest and the head's
  /// record, computes the digest after appending (timestamp, value_hash).
  /// For the first element pass an empty `head` and a zero `old_digest`.
  static Result<Hash256> ApplyAppend(const Hash256& old_digest,
                                     const std::optional<SkipNodeRecord>& head,
                                     std::uint64_t timestamp,
                                     const Hash256& value_hash);

 private:
  struct Node {
    std::uint64_t timestamp = 0;
    Bytes value;
    Hash256 value_hash;
    Hash256 hash;
    std::array<Hash256, kMaxLevel> ptr_hashes{};
    std::array<std::uint64_t, kMaxLevel> ptr_ts{};
    std::array<std::int64_t, kMaxLevel> ptr_index{};  // -1 = null
  };

  SkipNodeRecord RecordOf(std::size_t index) const;

  std::vector<Node> nodes_;
};

}  // namespace dcert::mht
