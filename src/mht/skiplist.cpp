#include "mht/skiplist.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/sha256.h"
#include "mht/node_hash.h"

namespace dcert::mht {

int AuthSkipList::HeightOf(std::uint64_t index) {
  int h = 1 + std::countr_zero(index + 1);
  return h > kMaxLevel ? kMaxLevel : h;
}

Hash256 SkipNodeRecord::NodeHash() const {
  Encoder enc;
  enc.U64(index);
  enc.U64(timestamp);
  enc.HashField(value_hash);
  for (std::size_t l = 0; l < AuthSkipList::kMaxLevel; ++l) {
    enc.HashField(l < ptr_hashes.size() ? ptr_hashes[l] : Hash256());
    enc.U64(l < ptr_ts.size() ? ptr_ts[l] : 0);
  }
  return TaggedDigest(NodeTag::kSkipNode, enc.bytes());
}

void SkipNodeRecord::Encode(Encoder& enc) const {
  enc.U64(index);
  enc.U64(timestamp);
  enc.HashField(value_hash);
  enc.Bool(value.has_value());
  if (value) enc.Blob(*value);
  for (std::size_t l = 0; l < AuthSkipList::kMaxLevel; ++l) {
    enc.HashField(l < ptr_hashes.size() ? ptr_hashes[l] : Hash256());
    enc.U64(l < ptr_ts.size() ? ptr_ts[l] : 0);
  }
}

SkipNodeRecord SkipNodeRecord::Decode(Decoder& dec) {
  SkipNodeRecord rec;
  rec.index = dec.U64();
  rec.timestamp = dec.U64();
  rec.value_hash = dec.HashField();
  if (dec.Bool()) rec.value = dec.Blob();
  rec.ptr_hashes.resize(AuthSkipList::kMaxLevel);
  rec.ptr_ts.resize(AuthSkipList::kMaxLevel);
  for (std::size_t l = 0; l < AuthSkipList::kMaxLevel; ++l) {
    rec.ptr_hashes[l] = dec.HashField();
    rec.ptr_ts[l] = dec.U64();
  }
  return rec;
}

SkipNodeRecord AuthSkipList::RecordOf(std::size_t index) const {
  const Node& n = nodes_.at(index);
  SkipNodeRecord rec;
  rec.index = index;
  rec.timestamp = n.timestamp;
  rec.value_hash = n.value_hash;
  rec.ptr_hashes.assign(n.ptr_hashes.begin(), n.ptr_hashes.end());
  rec.ptr_ts.assign(n.ptr_ts.begin(), n.ptr_ts.end());
  return rec;
}

void AuthSkipList::Append(std::uint64_t timestamp, Bytes value) {
  if (!nodes_.empty() && timestamp < nodes_.back().timestamp) {
    throw std::invalid_argument("AuthSkipList::Append: timestamps must not decrease");
  }
  Node node;
  node.timestamp = timestamp;
  node.value_hash = crypto::Sha256::Digest(value);
  node.value = std::move(value);
  node.ptr_index.fill(-1);
  if (!nodes_.empty()) {
    const std::size_t head = nodes_.size() - 1;
    const Node& prev = nodes_[head];
    const int prev_height = HeightOf(head);
    for (int l = 0; l < kMaxLevel; ++l) {
      if (prev_height > l) {
        node.ptr_hashes[static_cast<std::size_t>(l)] = prev.hash;
        node.ptr_ts[static_cast<std::size_t>(l)] = prev.timestamp;
        node.ptr_index[static_cast<std::size_t>(l)] =
            static_cast<std::int64_t>(head);
      } else {
        node.ptr_hashes[static_cast<std::size_t>(l)] =
            prev.ptr_hashes[static_cast<std::size_t>(l)];
        node.ptr_ts[static_cast<std::size_t>(l)] =
            prev.ptr_ts[static_cast<std::size_t>(l)];
        node.ptr_index[static_cast<std::size_t>(l)] =
            prev.ptr_index[static_cast<std::size_t>(l)];
      }
    }
  }
  nodes_.push_back(std::move(node));
  // Hash via the record form so in-memory and stateless appends agree.
  nodes_.back().hash = RecordOf(nodes_.size() - 1).NodeHash();
}

Hash256 AuthSkipList::Digest() const {
  return nodes_.empty() ? Hash256() : nodes_.back().hash;
}

SkipNodeRecord AuthSkipList::HeadRecord() const {
  if (nodes_.empty()) {
    throw std::logic_error("AuthSkipList::HeadRecord: empty list");
  }
  return RecordOf(nodes_.size() - 1);
}

SkipRangeProof AuthSkipList::QueryWithProof(std::uint64_t lo,
                                            std::uint64_t hi) const {
  SkipRangeProof proof;
  if (nodes_.empty()) return proof;
  std::int64_t cur = static_cast<std::int64_t>(nodes_.size()) - 1;
  // Phase 1: seek the newest node with ts <= hi, jumping over newer nodes.
  while (cur >= 0 && nodes_[static_cast<std::size_t>(cur)].timestamp > hi) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    proof.visited.push_back(RecordOf(static_cast<std::size_t>(cur)));
    std::int64_t next = -1;
    for (int l = kMaxLevel - 1; l >= 1; --l) {
      std::size_t li = static_cast<std::size_t>(l);
      if (n.ptr_index[li] >= 0 && n.ptr_ts[li] > hi) {
        next = n.ptr_index[li];
        break;
      }
    }
    if (next < 0) next = n.ptr_index[0];
    cur = next;
  }
  // If the landing node is already older than the window, include it as a
  // sentinel: the verifier follows the jump there and its timestamp proves
  // the window is empty below.
  if (cur >= 0 && nodes_[static_cast<std::size_t>(cur)].timestamp < lo) {
    proof.visited.push_back(RecordOf(static_cast<std::size_t>(cur)));
    return proof;
  }
  // Phase 2: collect versions back to lo, one level-0 step at a time.
  while (cur >= 0 && nodes_[static_cast<std::size_t>(cur)].timestamp >= lo) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    SkipNodeRecord rec = RecordOf(static_cast<std::size_t>(cur));
    rec.value = n.value;
    proof.visited.push_back(std::move(rec));
    cur = n.ptr_index[0];
  }
  return proof;
}

Result<std::vector<SkipEntry>> AuthSkipList::VerifyQuery(
    const Hash256& digest, std::uint64_t lo, std::uint64_t hi,
    const SkipRangeProof& proof) {
  using R = Result<std::vector<SkipEntry>>;
  std::vector<SkipEntry> results;
  if (digest.IsZero()) {
    if (!proof.visited.empty()) return R::Error("proof for an empty list");
    return results;
  }
  if (proof.visited.empty()) return R::Error("missing traversal");

  Hash256 expected = digest;
  std::uint64_t expected_ts = 0;
  bool first = true;
  std::size_t i = 0;
  while (true) {
    if (i >= proof.visited.size()) return R::Error("traversal truncated");
    const SkipNodeRecord& rec = proof.visited[i];
    if (rec.ptr_hashes.size() != kMaxLevel || rec.ptr_ts.size() != kMaxLevel) {
      return R::Error("malformed node record");
    }
    if (rec.NodeHash() != expected) return R::Error("node hash mismatch");
    if (!first && rec.timestamp != expected_ts) {
      return R::Error("pointee timestamp mismatch");
    }
    first = false;
    ++i;

    if (rec.timestamp > hi) {
      // Still seeking: replay the canonical jump rule.
      int jump = 0;
      for (int l = kMaxLevel - 1; l >= 1; --l) {
        std::size_t li = static_cast<std::size_t>(l);
        if (!rec.ptr_hashes[li].IsZero() && rec.ptr_ts[li] > hi) {
          jump = l;
          break;
        }
      }
      std::size_t ji = static_cast<std::size_t>(jump);
      if (rec.ptr_hashes[ji].IsZero()) break;  // list exhausted, all newer than hi
      expected = rec.ptr_hashes[ji];
      expected_ts = rec.ptr_ts[ji];
      continue;
    }
    if (rec.timestamp < lo) {
      // Traversal may stop at the first node older than the window; the
      // prover should not have included it, but tolerate a single sentinel.
      break;
    }
    // In range: the value must be present and match its bound hash.
    if (!rec.value.has_value()) return R::Error("in-range node missing value");
    if (crypto::Sha256::Digest(*rec.value) != rec.value_hash) {
      return R::Error("value does not match bound hash");
    }
    results.push_back({rec.timestamp, *rec.value});
    if (rec.ptr_hashes[0].IsZero()) break;  // reached the genesis version
    expected = rec.ptr_hashes[0];
    expected_ts = rec.ptr_ts[0];
    if (expected_ts < lo) break;  // next node is outside the window
  }
  if (i != proof.visited.size()) return R::Error("extra records in proof");
  std::reverse(results.begin(), results.end());
  return results;
}

Result<Hash256> AuthSkipList::ApplyAppend(const Hash256& old_digest,
                                          const std::optional<SkipNodeRecord>& head,
                                          std::uint64_t timestamp,
                                          const Hash256& value_hash) {
  using R = Result<Hash256>;
  SkipNodeRecord rec;
  rec.value_hash = value_hash;
  rec.timestamp = timestamp;
  rec.ptr_hashes.resize(kMaxLevel);
  rec.ptr_ts.resize(kMaxLevel);
  if (!head.has_value()) {
    if (!old_digest.IsZero()) {
      return R::Error("append without head record on a non-empty list");
    }
    rec.index = 0;
    return rec.NodeHash();
  }
  if (head->ptr_hashes.size() != kMaxLevel || head->ptr_ts.size() != kMaxLevel) {
    return R::Error("malformed head record");
  }
  if (head->NodeHash() != old_digest) {
    return R::Error("head record does not match the old digest");
  }
  if (timestamp < head->timestamp) {
    return R::Error("appended timestamp must not decrease");
  }
  rec.index = head->index + 1;
  const int head_height = HeightOf(head->index);
  for (int l = 0; l < kMaxLevel; ++l) {
    std::size_t li = static_cast<std::size_t>(l);
    if (head_height > l) {
      rec.ptr_hashes[li] = old_digest;
      rec.ptr_ts[li] = head->timestamp;
    } else {
      rec.ptr_hashes[li] = head->ptr_hashes[li];
      rec.ptr_ts[li] = head->ptr_ts[li];
    }
  }
  return rec.NodeHash();
}

Bytes SkipRangeProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(visited.size()));
  for (const auto& rec : visited) rec.Encode(enc);
  return enc.Take();
}

Result<SkipRangeProof> SkipRangeProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    SkipRangeProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      proof.visited.push_back(SkipNodeRecord::Decode(dec));
    }
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<SkipRangeProof>::Error(std::string("SkipRangeProof: ") + e.what());
  }
}

}  // namespace dcert::mht
