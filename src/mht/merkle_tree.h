// Classic binary Merkle Hash Tree over a fixed leaf list (Fig. 1 of the
// paper). Used for the per-block transaction root and anywhere a static list
// needs a commitment. Odd nodes are promoted unchanged (no duplication, which
// avoids the well-known Bitcoin CVE-2012-2459 mutation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert::mht {

/// Audit path for one leaf: sibling hashes from the leaf level upward.
struct MerklePath {
  struct Step {
    Hash256 sibling;
    bool sibling_on_left = false;
  };
  std::uint64_t leaf_index = 0;
  std::vector<Step> steps;

  void Encode(Encoder& enc) const;
  static MerklePath Decode(Decoder& dec);
};

/// Immutable binary MHT built over precomputed leaf hashes.
class MerkleTree {
 public:
  /// Leaves are raw item digests; the tree applies its own leaf tag.
  explicit MerkleTree(std::vector<Hash256> leaf_hashes);

  /// Root of the empty tree is the tagged digest of nothing (a fixed constant).
  Hash256 Root() const { return root_; }
  std::size_t LeafCount() const { return leaf_count_; }

  /// Membership proof for the leaf at `index` (throws std::out_of_range).
  MerklePath Prove(std::size_t index) const;

  /// Static verification: does `leaf_hash` at the path's position reconstruct
  /// `root`?
  static Status VerifyPath(const Hash256& root, const Hash256& leaf_hash,
                           const MerklePath& path);

  /// Convenience: root over item digests without keeping the tree.
  static Hash256 ComputeRoot(const std::vector<Hash256>& leaf_hashes);

  /// Leaf-level hash for an item digest (tagged).
  static Hash256 LeafHash(const Hash256& item_digest);

 private:
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = tagged leaves
  Hash256 root_;
  std::size_t leaf_count_;
};

}  // namespace dcert::mht
