#include "mht/inverted_index.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "crypto/sha256.h"
#include "mht/node_hash.h"

namespace dcert::mht {

Hash256 InvertedIndex::KeywordKey(const std::string& keyword) {
  return crypto::Sha256::Digest(StrBytes(keyword));
}

Hash256 InvertedIndex::ChainExtend(const Hash256& digest, TxLocator loc) {
  Encoder enc;
  enc.HashField(digest);
  enc.U64(loc.block);
  enc.U32(loc.tx_index);
  return TaggedDigest(NodeTag::kChainStep, enc.bytes());
}

Hash256 InvertedIndex::ChainDigest(const std::vector<TxLocator>& postings) {
  Hash256 digest;  // zero = empty bucket
  for (const TxLocator& loc : postings) digest = ChainExtend(digest, loc);
  return digest;
}

void InvertedIndex::Add(const std::string& keyword, TxLocator loc) {
  auto& bucket = buckets_[keyword];
  if (!bucket.empty() && !(bucket.back() < loc)) {
    throw std::invalid_argument("InvertedIndex::Add: locators must ascend");
  }
  bucket.push_back(loc);
  Hash256& digest = bucket_digests_[keyword];
  digest = ChainExtend(digest, loc);
  smt_.Update(KeywordKey(keyword), digest);
}

KeywordQueryProof InvertedIndex::QueryConjunctive(
    const std::vector<std::string>& keywords) const {
  KeywordQueryProof proof;
  std::vector<Hash256> keys;
  keys.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    keys.push_back(KeywordKey(kw));
    auto it = buckets_.find(kw);
    proof.postings[kw] =
        it != buckets_.end() ? it->second : std::vector<TxLocator>{};
  }
  proof.smt_proof = smt_.ProveKeys(keys);
  return proof;
}

Result<std::vector<TxLocator>> InvertedIndex::VerifyConjunctive(
    const Hash256& root, const std::vector<std::string>& keywords,
    const KeywordQueryProof& proof) {
  using R = Result<std::vector<TxLocator>>;
  if (keywords.empty()) return R::Error("empty keyword list");
  // Every queried keyword must be covered by the proof, and nothing else.
  if (proof.postings.size() !=
      std::set<std::string>(keywords.begin(), keywords.end()).size()) {
    return R::Error("proof keyword set does not match the query");
  }
  std::map<Hash256, Hash256> leaves;
  for (const std::string& kw : keywords) {
    auto it = proof.postings.find(kw);
    if (it == proof.postings.end()) {
      return R::Error("missing posting list for keyword: " + kw);
    }
    // Ascending-order check guards against replayed/duplicated locators.
    for (std::size_t i = 1; i < it->second.size(); ++i) {
      if (!(it->second[i - 1] < it->second[i])) {
        return R::Error("posting list not ascending for keyword: " + kw);
      }
    }
    leaves[KeywordKey(kw)] = ChainDigest(it->second);
  }
  if (SparseMerkleTree::ComputeRootFromProof(proof.smt_proof, leaves) != root) {
    return R::Error("keyword buckets do not match the certified index root");
  }
  // Intersect the (verified complete) posting lists.
  std::vector<TxLocator> acc = proof.postings.at(keywords.front());
  for (std::size_t i = 1; i < keywords.size() && !acc.empty(); ++i) {
    const auto& other = proof.postings.at(keywords[i]);
    std::vector<TxLocator> merged;
    std::set_intersection(acc.begin(), acc.end(), other.begin(), other.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

InvertedIndex::UpdateProof InvertedIndex::ProveUpdate(const WriteData& writes) const {
  UpdateProof proof;
  std::vector<Hash256> keys;
  for (const auto& [kw, locs] : writes) {
    Hash256 key = KeywordKey(kw);
    keys.push_back(key);
    auto it = bucket_digests_.find(kw);
    proof.old_buckets[key] =
        it != bucket_digests_.end() ? it->second : Hash256();
  }
  proof.smt_proof = smt_.ProveKeys(keys);
  return proof;
}

Result<Hash256> InvertedIndex::ApplyUpdate(const Hash256& old_root,
                                           const UpdateProof& proof,
                                           const WriteData& writes) {
  using R = Result<Hash256>;
  if (proof.old_buckets.size() != writes.size()) {
    return R::Error("update proof does not cover the write set");
  }
  std::map<Hash256, Hash256> new_leaves;
  for (const auto& [kw, locs] : writes) {
    if (locs.empty()) return R::Error("empty write list for keyword: " + kw);
    Hash256 key = KeywordKey(kw);
    auto it = proof.old_buckets.find(key);
    if (it == proof.old_buckets.end()) {
      return R::Error("update proof missing keyword: " + kw);
    }
    Hash256 digest = it->second;
    for (const TxLocator& loc : locs) digest = ChainExtend(digest, loc);
    new_leaves[key] = digest;
  }
  // Verify the claimed pre-update buckets, then fold in the new digests.
  if (SparseMerkleTree::ComputeRootFromProof(proof.smt_proof, proof.old_buckets) !=
      old_root) {
    return R::Error("old bucket digests do not match the old index root");
  }
  return SparseMerkleTree::ComputeRootFromProof(proof.smt_proof, new_leaves);
}

void InvertedIndex::ApplyWrites(const WriteData& writes) {
  for (const auto& [kw, locs] : writes) {
    for (const TxLocator& loc : locs) Add(kw, loc);
  }
}

namespace {

void EncodeLocators(Encoder& enc, const std::vector<TxLocator>& locs) {
  enc.U32(static_cast<std::uint32_t>(locs.size()));
  for (const TxLocator& loc : locs) {
    enc.U64(loc.block);
    enc.U32(loc.tx_index);
  }
}

std::vector<TxLocator> DecodeLocators(Decoder& dec) {
  std::uint32_t n = dec.U32();
  std::vector<TxLocator> locs;
  locs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TxLocator loc;
    loc.block = dec.U64();
    loc.tx_index = dec.U32();
    locs.push_back(loc);
  }
  return locs;
}

}  // namespace

Bytes KeywordQueryProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(postings.size()));
  for (const auto& [kw, locs] : postings) {
    enc.Str(kw);
    EncodeLocators(enc, locs);
  }
  enc.Blob(smt_proof.Serialize());
  return enc.Take();
}

Result<KeywordQueryProof> KeywordQueryProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    KeywordQueryProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string kw = dec.Str();
      proof.postings[kw] = DecodeLocators(dec);
    }
    Bytes smt = dec.Blob();
    dec.ExpectEnd();
    auto parsed = SmtMultiProof::Deserialize(smt);
    if (!parsed) return Result<KeywordQueryProof>(parsed.status());
    proof.smt_proof = std::move(parsed.value());
    return proof;
  } catch (const DecodeError& e) {
    return Result<KeywordQueryProof>::Error(std::string("KeywordQueryProof: ") +
                                            e.what());
  }
}

Bytes InvertedIndex::UpdateProof::Serialize() const {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(old_buckets.size()));
  for (const auto& [key, digest] : old_buckets) {
    enc.HashField(key);
    enc.HashField(digest);
  }
  enc.Blob(smt_proof.Serialize());
  return enc.Take();
}

Result<InvertedIndex::UpdateProof> InvertedIndex::UpdateProof::Deserialize(
    ByteView data) {
  using R = Result<InvertedIndex::UpdateProof>;
  try {
    Decoder dec(data);
    UpdateProof proof;
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      Hash256 key = dec.HashField();
      Hash256 digest = dec.HashField();
      proof.old_buckets.emplace(key, digest);
    }
    Bytes smt = dec.Blob();
    dec.ExpectEnd();
    auto parsed = SmtMultiProof::Deserialize(smt);
    if (!parsed) return R(parsed.status());
    proof.smt_proof = std::move(parsed.value());
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("InvertedIndex::UpdateProof: ") + e.what());
  }
}

}  // namespace dcert::mht
