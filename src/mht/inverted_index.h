// Authenticated inverted index for keyword queries over transactions (the
// paper's second case-study index, Fig. 5 right). Substitution note (see
// DESIGN.md): instead of the accumulator scheme of [12], each keyword bucket
// commits to its posting list with a hash chain, and the keyword->bucket map
// is committed with the same Sparse Merkle Tree used for chain state. A
// conjunctive query returns the full posting lists, which the client verifies
// against the certified root before intersecting locally — simpler proofs,
// same trust structure (index digest certified by the enclave).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "mht/smt.h"

namespace dcert::mht {

/// Where a transaction lives: (block height, index within the block).
struct TxLocator {
  std::uint64_t block = 0;
  std::uint32_t tx_index = 0;

  auto operator<=>(const TxLocator&) const = default;
};

/// Proof for a conjunctive keyword query: posting lists for every queried
/// keyword plus an SMT multiproof binding each keyword's bucket digest (or
/// absence) to the certified index root.
struct KeywordQueryProof {
  /// keyword -> full posting list (empty when the keyword is unknown).
  std::map<std::string, std::vector<TxLocator>> postings;
  SmtMultiProof smt_proof;

  Bytes Serialize() const;
  static Result<KeywordQueryProof> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
};

class InvertedIndex {
 public:
  /// Appends a transaction locator to a keyword's posting list. Locators for
  /// one keyword must be appended in ascending order.
  void Add(const std::string& keyword, TxLocator loc);

  /// Root digest of the index (SMT over keyword buckets).
  Hash256 Root() const { return smt_.Root(); }

  std::size_t KeywordCount() const { return buckets_.size(); }

  /// SMT key for a keyword.
  static Hash256 KeywordKey(const std::string& keyword);

  /// Extends a bucket's hash chain with one locator.
  static Hash256 ChainExtend(const Hash256& digest, TxLocator loc);

  /// Folds a whole posting list into its chain digest (zero for empty).
  static Hash256 ChainDigest(const std::vector<TxLocator>& postings);

  /// Query: transactions containing ALL of `keywords`, plus the proof.
  KeywordQueryProof QueryConjunctive(const std::vector<std::string>& keywords) const;

  /// Client-side verification against a certified index root; returns the
  /// intersection in ascending order.
  static Result<std::vector<TxLocator>> VerifyConjunctive(
      const Hash256& root, const std::vector<std::string>& keywords,
      const KeywordQueryProof& proof);

  /// Per-block write data: the locators appended to each keyword.
  using WriteData = std::map<std::string, std::vector<TxLocator>>;

  /// Proof material for a certified update: the multiproof over the touched
  /// keywords together with their pre-update bucket digests.
  struct UpdateProof {
    SmtMultiProof smt_proof;
    std::map<Hash256, Hash256> old_buckets;  // keyword key -> old digest

    Bytes Serialize() const;
    static Result<UpdateProof> Deserialize(ByteView data);
  };

  /// Builds the update proof for `writes` against the *current* (pre-update)
  /// index state.
  UpdateProof ProveUpdate(const WriteData& writes) const;

  /// Stateless update for the enclave: verifies the old bucket digests
  /// against `old_root`, extends each touched chain with the write data, and
  /// returns the new root.
  static Result<Hash256> ApplyUpdate(const Hash256& old_root,
                                     const UpdateProof& proof,
                                     const WriteData& writes);

  /// Applies `writes` to the live index (SP/CI side).
  void ApplyWrites(const WriteData& writes);

 private:
  SparseMerkleTree smt_;
  std::unordered_map<std::string, std::vector<TxLocator>> buckets_;
  std::unordered_map<std::string, Hash256> bucket_digests_;
};

}  // namespace dcert::mht
