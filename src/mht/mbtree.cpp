#include "mht/mbtree.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"
#include "mht/node_hash.h"

namespace dcert::mht {

std::uint64_t MbValueWord(const Bytes& value) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < 8 && i < value.size(); ++i) {
    word |= static_cast<std::uint64_t>(value[i]) << (8 * i);
  }
  return word;
}

namespace {

constexpr int kMaxProofDepth = 64;

/// (hash, min, max, agg) summary of a subtree — the unit hashed into parents.
struct Triple {
  Hash256 hash;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  MbAggregate agg;
};

/// Leaf entry in hashable form.
struct LeafTuple {
  std::uint64_t key = 0;
  Hash256 value_hash;
  std::uint64_t value_word = 0;
};

Hash256 LeafHash(const std::vector<LeafTuple>& entries) {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(entries.size()));
  for (const LeafTuple& e : entries) {
    enc.U64(e.key);
    enc.HashField(e.value_hash);
    enc.U64(e.value_word);
  }
  return TaggedDigest(NodeTag::kMbLeaf, enc.bytes());
}

MbAggregate LeafAggregate(const std::vector<LeafTuple>& entries) {
  MbAggregate agg;
  for (const LeafTuple& e : entries) {
    agg.count += 1;
    agg.sum += e.value_word;
  }
  return agg;
}

Hash256 InternalHash(const std::vector<Triple>& children) {
  Encoder enc;
  enc.U32(static_cast<std::uint32_t>(children.size()));
  for (const Triple& c : children) {
    enc.U64(c.min);
    enc.U64(c.max);
    enc.U64(c.agg.count);
    enc.U64(c.agg.sum);
    enc.HashField(c.hash);
  }
  return TaggedDigest(NodeTag::kMbInternal, enc.bytes());
}

MbAggregate SumAggregates(const std::vector<Triple>& children) {
  MbAggregate agg;
  for (const Triple& c : children) agg += c.agg;
  return agg;
}

}  // namespace

struct MbTree::Node {
  bool is_leaf = true;
  // Leaf payload (parallel arrays, sorted by key).
  std::vector<std::uint64_t> keys;
  std::vector<Bytes> values;
  std::vector<Hash256> value_hashes;
  // Internal payload (children sorted by min key).
  std::vector<common::ArenaPtr<Node>> children;

  Hash256 hash;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  MbAggregate agg;

  std::vector<LeafTuple> LeafTuples() const {
    std::vector<LeafTuple> tuples;
    tuples.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      tuples.push_back({keys[i], value_hashes[i], MbValueWord(values[i])});
    }
    return tuples;
  }

  void Recompute() {
    if (is_leaf) {
      std::vector<LeafTuple> tuples = LeafTuples();
      hash = LeafHash(tuples);
      agg = LeafAggregate(tuples);
      if (!keys.empty()) {
        min = keys.front();
        max = keys.back();
      }
    } else {
      std::vector<Triple> triples;
      triples.reserve(children.size());
      for (const auto& c : children) {
        triples.push_back({c->hash, c->min, c->max, c->agg});
      }
      hash = InternalHash(triples);
      agg = SumAggregates(triples);
      min = children.front()->min;
      max = children.back()->max;
    }
  }
};

MbTree::MbTree() : arena_(std::make_unique<common::Arena<Node>>()) {}
MbTree::~MbTree() = default;
MbTree::MbTree(MbTree&&) noexcept = default;
MbTree& MbTree::operator=(MbTree&& o) noexcept {
  if (this != &o) {
    root_.reset();  // our nodes must die before our arena (member-wise
                    // assignment would free the arena first)
    arena_ = std::move(o.arena_);
    root_ = std::move(o.root_);
    size_ = o.size_;
    o.size_ = 0;
  }
  return *this;
}

Hash256 MbTree::EmptyRoot() { return LeafHash({}); }

Hash256 MbTree::Root() const { return root_ ? root_->hash : EmptyRoot(); }

MbAggregate MbTree::TotalAggregate() const {
  return root_ ? root_->agg : MbAggregate{};
}

std::optional<std::uint64_t> MbTree::MaxKey() const {
  if (!root_) return std::nullopt;
  return root_->max;
}

std::vector<MbEntry> MbTree::Entries() const {
  std::vector<MbEntry> out;
  out.reserve(size_);
  if (!root_) return out;
  // Iterative in-order walk; children and leaf keys are already sorted.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      for (std::size_t i = 0; i < node->keys.size(); ++i) {
        out.push_back({node->keys[i], node->values[i]});
      }
    } else {
      for (auto it = node->children.rbegin(); it != node->children.rend(); ++it) {
        stack.push_back(it->get());
      }
    }
  }
  return out;
}

namespace {

using MbNodePtr = common::ArenaPtr<MbTree::Node>;
using MbArena = common::Arena<MbTree::Node>;

/// Recursive insert; returns the split-off right sibling if the node overflowed.
MbNodePtr InsertRec(MbArena& arena, MbTree::Node* node, std::uint64_t key,
                    Bytes value, Hash256 value_hash);

}  // namespace

void MbTree::Insert(std::uint64_t key, Bytes value) {
  Hash256 vh = crypto::Sha256::Digest(value);
  InsertWithHash(key, std::move(value), vh);
}

void MbTree::InsertBatch(std::vector<MbEntry> entries) {
  // One multi-buffer dispatch for every value digest, then the structural
  // inserts reuse the precomputed hashes. Identical to sequential Inserts.
  std::vector<Hash256> hashes(entries.size());
  std::vector<crypto::HashJob> jobs(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    jobs[i] = {entries[i].value.data(), entries[i].value.size(), &hashes[i]};
  }
  crypto::HashMany(jobs.data(), jobs.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    InsertWithHash(entries[i].key, std::move(entries[i].value), hashes[i]);
  }
}

void MbTree::InsertWithHash(std::uint64_t key, Bytes value,
                            const Hash256& value_hash) {
  if (!root_) {
    root_ = common::MakeArenaPtr(*arena_);
    root_->is_leaf = true;
    root_->keys.push_back(key);
    root_->values.push_back(std::move(value));
    root_->value_hashes.push_back(value_hash);
    root_->Recompute();
    size_ = 1;
    return;
  }
  auto sibling = InsertRec(*arena_, root_.get(), key, std::move(value), value_hash);
  if (sibling) {
    auto new_root = common::MakeArenaPtr(*arena_);
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->Recompute();
    root_ = std::move(new_root);
  }
  ++size_;
}

namespace {

MbNodePtr SplitIfNeeded(MbArena& arena, MbTree::Node* node) {
  const std::size_t count = node->is_leaf ? node->keys.size() : node->children.size();
  if (count <= MbTree::kFanout) {
    node->Recompute();
    return nullptr;
  }
  // Deterministic split: left keeps ceil(n/2). ApplyAppend mirrors this rule.
  const std::size_t left_count = (count + 1) / 2;
  auto right = common::MakeArenaPtr(arena);
  right->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(left_count),
                       node->keys.end());
    right->values.assign(
        std::make_move_iterator(node->values.begin() +
                                static_cast<std::ptrdiff_t>(left_count)),
        std::make_move_iterator(node->values.end()));
    right->value_hashes.assign(
        node->value_hashes.begin() + static_cast<std::ptrdiff_t>(left_count),
        node->value_hashes.end());
    node->keys.resize(left_count);
    node->values.resize(left_count);
    node->value_hashes.resize(left_count);
  } else {
    right->children.assign(
        std::make_move_iterator(node->children.begin() +
                                static_cast<std::ptrdiff_t>(left_count)),
        std::make_move_iterator(node->children.end()));
    node->children.resize(left_count);
  }
  node->Recompute();
  right->Recompute();
  return right;
}

MbNodePtr InsertRec(MbArena& arena, MbTree::Node* node, std::uint64_t key,
                    Bytes value, Hash256 value_hash) {
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it != node->keys.end() && *it == key) {
      throw std::invalid_argument("MbTree::Insert: duplicate key");
    }
    auto idx = static_cast<std::size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(idx),
                        std::move(value));
    node->value_hashes.insert(
        node->value_hashes.begin() + static_cast<std::ptrdiff_t>(idx), value_hash);
    return SplitIfNeeded(arena, node);
  }
  // Descend into the last child whose min does not exceed the key.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    if (node->children[i]->min <= key) idx = i;
  }
  auto sibling =
      InsertRec(arena, node->children[idx].get(), key, std::move(value), value_hash);
  if (sibling) {
    node->children.insert(node->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                          std::move(sibling));
  }
  return SplitIfNeeded(arena, node);
}

MbProofNode::Child StubOf(const MbTree::Node& child) {
  MbProofNode::Child c;
  c.min = child.min;
  c.max = child.max;
  c.agg = child.agg;
  c.hash = child.hash;
  return c;
}

void FillLeafEntries(const MbTree::Node& node, MbProofNode& out,
                     std::uint64_t lo, std::uint64_t hi, bool with_values) {
  for (std::size_t i = 0; i < node.keys.size(); ++i) {
    MbProofNode::LeafEntry e;
    e.key = node.keys[i];
    e.value_hash = node.value_hashes[i];
    e.value_word = MbValueWord(node.values[i]);
    if (with_values && e.key >= lo && e.key <= hi) e.value = node.values[i];
    out.entries.push_back(std::move(e));
  }
}

std::unique_ptr<MbProofNode> BuildRangeProof(const MbTree::Node* node,
                                             std::uint64_t lo, std::uint64_t hi) {
  auto out = std::make_unique<MbProofNode>();
  out->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    FillLeafEntries(*node, *out, lo, hi, /*with_values=*/true);
    return out;
  }
  for (const auto& child : node->children) {
    MbProofNode::Child c = StubOf(*child);
    if (child->min <= hi && child->max >= lo) {
      c.node = BuildRangeProof(child.get(), lo, hi);
    }
    out->children.push_back(std::move(c));
  }
  return out;
}

/// Aggregate proofs keep fully covered subtrees pruned: their bound
/// (count, sum) stubs are the whole contribution.
std::unique_ptr<MbProofNode> BuildAggregateProof(const MbTree::Node* node,
                                                 std::uint64_t lo,
                                                 std::uint64_t hi) {
  auto out = std::make_unique<MbProofNode>();
  out->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    // Values only for the in-range entries (the verifier cross-checks their
    // words); out-of-range entries stay hash+word only.
    FillLeafEntries(*node, *out, lo, hi, /*with_values=*/true);
    return out;
  }
  for (const auto& child : node->children) {
    MbProofNode::Child c = StubOf(*child);
    const bool overlaps = child->min <= hi && child->max >= lo;
    const bool fully_covered = child->min >= lo && child->max <= hi;
    if (overlaps && !fully_covered) {
      c.node = BuildAggregateProof(child.get(), lo, hi);
    }
    out->children.push_back(std::move(c));
  }
  return out;
}

/// Canonical descend index: the last child whose min does not exceed `key`
/// (0 when every min exceeds it) — exactly InsertRec's rule.
std::size_t DescendIndex(const std::vector<MbProofNode::Child>& children,
                         std::uint64_t key) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i].min <= key) idx = i;
  }
  return idx;
}

std::unique_ptr<MbProofNode> BuildInsertPath(const MbTree::Node* node,
                                             std::uint64_t key) {
  auto out = std::make_unique<MbProofNode>();
  out->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    FillLeafEntries(*node, *out, 1, 0, /*with_values=*/false);
    return out;
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    if (node->children[i]->min <= key) idx = i;
    out->children.push_back(StubOf(*node->children[i]));
  }
  out->children[idx].node = BuildInsertPath(node->children[idx].get(), key);
  return out;
}

std::unique_ptr<MbProofNode> BuildSpine(const MbTree::Node* node) {
  auto out = std::make_unique<MbProofNode>();
  out->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    FillLeafEntries(*node, *out, 1, 0, /*with_values=*/false);  // empty range
    return out;
  }
  for (const auto& child : node->children) out->children.push_back(StubOf(*child));
  out->children.back().node = BuildSpine(node->children.back().get());
  return out;
}

}  // namespace

MbRangeProof MbTree::RangeQueryWithProof(std::uint64_t lo, std::uint64_t hi) const {
  MbRangeProof proof;
  proof.lo = lo;
  proof.hi = hi;
  if (root_) proof.root = BuildRangeProof(root_.get(), lo, hi);
  return proof;
}

MbRangeProof MbTree::AggregateQueryWithProof(std::uint64_t lo,
                                             std::uint64_t hi) const {
  MbRangeProof proof;
  proof.lo = lo;
  proof.hi = hi;
  if (root_) proof.root = BuildAggregateProof(root_.get(), lo, hi);
  return proof;
}

MbAppendProof MbTree::ProveAppend() const {
  MbAppendProof proof;
  if (root_) proof.root = BuildSpine(root_.get());
  return proof;
}

MbAppendProof MbTree::ProveInsert(std::uint64_t key) const {
  MbAppendProof proof;
  if (root_) proof.root = BuildInsertPath(root_.get(), key);
  return proof;
}

namespace {

enum class ProofMode {
  kRange,      // every overlapping subtree expanded; collect entries
  kAggregate,  // fully covered subtrees may stay pruned; collect aggregates
  kSpine,      // no range semantics (append verification)
};

/// Recomputes (hash, min, max, agg) of a proof node, enforcing structural
/// invariants and the mode's completeness rules. Collected range results go
/// to `results`; aggregate contributions to `agg_out` (either may be null).
Status CheckProofNode(const MbProofNode& n, std::uint64_t lo, std::uint64_t hi,
                      ProofMode mode, int depth, Triple& out,
                      std::vector<MbEntry>* results, MbAggregate* agg_out) {
  if (depth > kMaxProofDepth) return Status::Error("proof too deep");
  if (n.is_leaf) {
    if (n.entries.empty()) return Status::Error("empty leaf in proof");
    std::vector<LeafTuple> tuples;
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& e : n.entries) {
      if (!first && e.key <= prev) return Status::Error("leaf keys not ascending");
      first = false;
      prev = e.key;
      const bool in_range = mode != ProofMode::kSpine && e.key >= lo && e.key <= hi;
      if (e.value.has_value()) {
        if (crypto::Sha256::Digest(*e.value) != e.value_hash) {
          return Status::Error("leaf value does not match its hash");
        }
        if (MbValueWord(*e.value) != e.value_word) {
          return Status::Error("leaf value word does not match its value");
        }
      }
      if (in_range) {
        if (mode == ProofMode::kRange) {
          if (!e.value.has_value()) {
            return Status::Error("in-range entry missing value");
          }
          if (results != nullptr) results->push_back({e.key, *e.value});
        }
        if (agg_out != nullptr) {
          agg_out->count += 1;
          agg_out->sum += e.value_word;
        }
      }
      tuples.push_back({e.key, e.value_hash, e.value_word});
    }
    out = {LeafHash(tuples), n.entries.front().key, n.entries.back().key,
           LeafAggregate(tuples)};
    return Status::Ok();
  }

  if (n.children.empty()) return Status::Error("internal proof node without children");
  std::vector<Triple> triples;
  std::uint64_t prev_max = 0;
  bool first = true;
  for (const auto& c : n.children) {
    Triple t;
    if (c.node) {
      Status st = CheckProofNode(*c.node, lo, hi, mode, depth + 1, t, results,
                                 agg_out);
      if (!st) return st;
      // The computed summary is authoritative; declared stub fields for an
      // expanded child are ignored.
    } else {
      const bool overlaps =
          mode != ProofMode::kSpine && c.min <= hi && c.max >= lo;
      const bool fully_covered =
          mode != ProofMode::kSpine && c.min >= lo && c.max <= hi;
      if (mode == ProofMode::kRange && overlaps) {
        return Status::Error("pruned subtree overlaps the query range");
      }
      if (mode == ProofMode::kAggregate && overlaps && !fully_covered) {
        return Status::Error("pruned subtree straddles the aggregate window");
      }
      if (mode == ProofMode::kAggregate && fully_covered && agg_out != nullptr) {
        *agg_out += c.agg;
      }
      t = {c.hash, c.min, c.max, c.agg};
    }
    if (t.min > t.max) return Status::Error("child range inverted");
    if (!first && t.min <= prev_max) return Status::Error("children out of order");
    first = false;
    prev_max = t.max;
    triples.push_back(t);
  }
  out = {InternalHash(triples), triples.front().min, triples.back().max,
         SumAggregates(triples)};
  return Status::Ok();
}

}  // namespace

Result<std::vector<MbEntry>> MbTree::VerifyRange(const Hash256& root,
                                                 std::uint64_t lo, std::uint64_t hi,
                                                 const MbRangeProof& proof) {
  using R = Result<std::vector<MbEntry>>;
  if (proof.lo != lo || proof.hi != hi) {
    return R::Error("proof was generated for a different range");
  }
  if (!proof.root) {
    if (root != EmptyRoot()) return R::Error("empty proof for non-empty tree");
    return std::vector<MbEntry>{};
  }
  std::vector<MbEntry> results;
  Triple t;
  Status st = CheckProofNode(*proof.root, lo, hi, ProofMode::kRange, 0, t,
                             &results, nullptr);
  if (!st) return R(st);
  if (t.hash != root) return R::Error("proof does not reconstruct the root");
  return results;
}

Result<MbAggregate> MbTree::VerifyAggregate(const Hash256& root, std::uint64_t lo,
                                            std::uint64_t hi,
                                            const MbRangeProof& proof) {
  using R = Result<MbAggregate>;
  if (proof.lo != lo || proof.hi != hi) {
    return R::Error("proof was generated for a different window");
  }
  if (!proof.root) {
    if (root != EmptyRoot()) return R::Error("empty proof for non-empty tree");
    return MbAggregate{};
  }
  MbAggregate agg;
  Triple t;
  Status st = CheckProofNode(*proof.root, lo, hi, ProofMode::kAggregate, 0, t,
                             nullptr, &agg);
  if (!st) return R(st);
  if (t.hash != root) return R::Error("proof does not reconstruct the root");
  return agg;
}

namespace {

/// Mirror of Insert's append path over proof nodes: appends the new entry to
/// the rightmost leaf, splitting with the same ceil(n/2) rule. Returns the
/// new (hash, min, max, agg) and, when the node split, the right sibling's
/// summary.
struct ApplyResult {
  Triple main;
  std::optional<Triple> split;
};

/// Shared by appends and general inserts: the expanded child sits at
/// `expanded_idx` of each internal node; the leaf inserts at sorted position.
Result<ApplyResult> ApplyInsertRec(const MbProofNode& n, std::uint64_t key,
                                   const Hash256& value_hash,
                                   std::uint64_t value_word) {
  using R = Result<ApplyResult>;
  if (n.is_leaf) {
    std::vector<LeafTuple> entries;
    entries.reserve(n.entries.size() + 1);
    for (const auto& e : n.entries) {
      if (e.key == key) return R::Error("insert key already present");
      entries.push_back({e.key, e.value_hash, e.value_word});
    }
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const LeafTuple& t, std::uint64_t k) { return t.key < k; });
    entries.insert(pos, {key, value_hash, value_word});
    if (entries.size() <= MbTree::kFanout) {
      return ApplyResult{{LeafHash(entries), entries.front().key,
                          entries.back().key, LeafAggregate(entries)},
                         std::nullopt};
    }
    std::size_t left_count = (entries.size() + 1) / 2;
    std::vector<LeafTuple> left(entries.begin(),
                                entries.begin() +
                                    static_cast<std::ptrdiff_t>(left_count));
    std::vector<LeafTuple> right(
        entries.begin() + static_cast<std::ptrdiff_t>(left_count), entries.end());
    return ApplyResult{
        {LeafHash(left), left.front().key, left.back().key, LeafAggregate(left)},
        Triple{LeafHash(right), right.front().key, right.back().key,
               LeafAggregate(right)}};
  }

  // Locate the (single) expanded child; CheckInsertShape already enforced it
  // sits at the canonical descend index.
  std::size_t expanded_idx = n.children.size();
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (n.children[i].node) expanded_idx = i;
  }
  if (expanded_idx >= n.children.size()) {
    return R::Error("insert path missing expanded child");
  }

  std::vector<Triple> triples;
  triples.reserve(n.children.size() + 1);
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i == expanded_idx) {
      auto child_result =
          ApplyInsertRec(*n.children[i].node, key, value_hash, value_word);
      if (!child_result) return child_result;
      triples.push_back(child_result.value().main);
      if (child_result.value().split) {
        triples.push_back(*child_result.value().split);
      }
    } else {
      const auto& c = n.children[i];
      triples.push_back({c.hash, c.min, c.max, c.agg});
    }
  }

  if (triples.size() <= MbTree::kFanout) {
    return ApplyResult{{InternalHash(triples), triples.front().min,
                        triples.back().max, SumAggregates(triples)},
                       std::nullopt};
  }
  std::size_t left_count = (triples.size() + 1) / 2;
  std::vector<Triple> left(triples.begin(),
                           triples.begin() + static_cast<std::ptrdiff_t>(left_count));
  std::vector<Triple> right(triples.begin() + static_cast<std::ptrdiff_t>(left_count),
                            triples.end());
  return ApplyResult{{InternalHash(left), left.front().min, left.back().max,
                      SumAggregates(left)},
                     Triple{InternalHash(right), right.front().min,
                            right.back().max, SumAggregates(right)}};
}

ApplyResult ApplyAppendRec(const MbProofNode& n, std::uint64_t key,
                           const Hash256& value_hash, std::uint64_t value_word) {
  // Appends always target the rightmost path, which CheckSpineShape enforced
  // is the expanded one — reuse the general machinery.
  return ApplyInsertRec(n, key, value_hash, value_word).value();
}

/// Structural check for general insert paths: exactly one expanded child per
/// internal node, located at the canonical descend index for `key`.
Status CheckInsertShape(const MbProofNode& n, std::uint64_t key, int depth) {
  if (depth > kMaxProofDepth) return Status::Error("insert path too deep");
  if (n.is_leaf) return Status::Ok();
  if (n.children.empty()) return Status::Error("internal node without children");
  std::size_t expected = DescendIndex(n.children, key);
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    const bool expanded = n.children[i].node != nullptr;
    if (expanded != (i == expected)) {
      return Status::Error("insert path does not follow the canonical descent");
    }
  }
  return CheckInsertShape(*n.children[expected].node, key, depth + 1);
}

/// Structural check for append spines: exactly the last child of every
/// internal node is expanded.
Status CheckSpineShape(const MbProofNode& n, int depth) {
  if (depth > kMaxProofDepth) return Status::Error("spine too deep");
  if (n.is_leaf) return Status::Ok();
  if (n.children.empty()) return Status::Error("internal spine node without children");
  for (std::size_t i = 0; i + 1 < n.children.size(); ++i) {
    if (n.children[i].node) return Status::Error("non-rightmost child expanded");
  }
  if (!n.children.back().node) return Status::Error("rightmost child not expanded");
  return CheckSpineShape(*n.children.back().node, depth + 1);
}

}  // namespace

Result<Hash256> MbTree::ApplyAppend(const Hash256& old_root,
                                    const MbAppendProof& proof, std::uint64_t key,
                                    const Hash256& value_hash,
                                    std::uint64_t value_word) {
  using R = Result<Hash256>;
  if (!proof.root) {
    if (old_root != EmptyRoot()) {
      return R::Error("empty append proof for non-empty tree");
    }
    return LeafHash({{key, value_hash, value_word}});
  }
  Status shape = CheckSpineShape(*proof.root, 0);
  if (!shape) return R(shape);

  Triple current;
  Status st = CheckProofNode(*proof.root, 0, 0, ProofMode::kSpine, 0, current,
                             nullptr, nullptr);
  if (!st) return R(st.WithContext("append spine"));
  if (current.hash != old_root) {
    return R::Error("append spine does not reconstruct the old root");
  }
  if (key <= current.max) {
    return R::Error("append key must exceed the current maximum");
  }

  ApplyResult applied = ApplyAppendRec(*proof.root, key, value_hash, value_word);
  if (!applied.split) return applied.main.hash;
  // Root split: a new root over both halves.
  return InternalHash({applied.main, *applied.split});
}

Result<Hash256> MbTree::ApplyInsert(const Hash256& old_root,
                                    const MbAppendProof& proof, std::uint64_t key,
                                    const Hash256& value_hash,
                                    std::uint64_t value_word) {
  using R = Result<Hash256>;
  if (!proof.root) {
    if (old_root != EmptyRoot()) {
      return R::Error("empty insert proof for non-empty tree");
    }
    return LeafHash({{key, value_hash, value_word}});
  }
  if (Status st = CheckInsertShape(*proof.root, key, 0); !st) return R(st);

  Triple current;
  Status st = CheckProofNode(*proof.root, 0, 0, ProofMode::kSpine, 0, current,
                             nullptr, nullptr);
  if (!st) return R(st.WithContext("insert path"));
  if (current.hash != old_root) {
    return R::Error("insert path does not reconstruct the old root");
  }

  auto applied = ApplyInsertRec(*proof.root, key, value_hash, value_word);
  if (!applied) return R(applied.status());
  if (!applied.value().split) return applied.value().main.hash;
  return InternalHash({applied.value().main, *applied.value().split});
}

void MbProofNode::Encode(Encoder& enc) const {
  enc.Bool(is_leaf);
  if (is_leaf) {
    enc.U32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      enc.U64(e.key);
      enc.HashField(e.value_hash);
      enc.U64(e.value_word);
      enc.Bool(e.value.has_value());
      if (e.value) enc.Blob(*e.value);
    }
    return;
  }
  enc.U32(static_cast<std::uint32_t>(children.size()));
  for (const auto& c : children) {
    enc.U64(c.min);
    enc.U64(c.max);
    enc.U64(c.agg.count);
    enc.U64(c.agg.sum);
    enc.HashField(c.hash);
    enc.Bool(c.node != nullptr);
    if (c.node) c.node->Encode(enc);
  }
}

std::unique_ptr<MbProofNode> MbProofNode::Decode(Decoder& dec, int depth) {
  if (depth > kMaxProofDepth) throw DecodeError("MbProofNode: nesting too deep");
  auto node = std::make_unique<MbProofNode>();
  node->is_leaf = dec.Bool();
  std::uint32_t n = dec.U32();
  if (node->is_leaf) {
    for (std::uint32_t i = 0; i < n; ++i) {
      LeafEntry e;
      e.key = dec.U64();
      e.value_hash = dec.HashField();
      e.value_word = dec.U64();
      if (dec.Bool()) e.value = dec.Blob();
      node->entries.push_back(std::move(e));
    }
    return node;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    Child c;
    c.min = dec.U64();
    c.max = dec.U64();
    c.agg.count = dec.U64();
    c.agg.sum = dec.U64();
    c.hash = dec.HashField();
    if (dec.Bool()) c.node = Decode(dec, depth + 1);
    node->children.push_back(std::move(c));
  }
  return node;
}

Bytes MbRangeProof::Serialize() const {
  Encoder enc;
  enc.U64(lo);
  enc.U64(hi);
  enc.Bool(root != nullptr);
  if (root) root->Encode(enc);
  return enc.Take();
}

Result<MbRangeProof> MbRangeProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    MbRangeProof proof;
    proof.lo = dec.U64();
    proof.hi = dec.U64();
    if (dec.Bool()) proof.root = MbProofNode::Decode(dec);
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<MbRangeProof>::Error(std::string("MbRangeProof: ") + e.what());
  }
}

Bytes MbAppendProof::Serialize() const {
  Encoder enc;
  enc.Bool(root != nullptr);
  if (root) root->Encode(enc);
  return enc.Take();
}

Result<MbAppendProof> MbAppendProof::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    MbAppendProof proof;
    if (dec.Bool()) proof.root = MbProofNode::Decode(dec);
    dec.ExpectEnd();
    return proof;
  } catch (const DecodeError& e) {
    return Result<MbAppendProof>::Error(std::string("MbAppendProof: ") + e.what());
  }
}

}  // namespace dcert::mht
