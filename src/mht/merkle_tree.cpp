#include "mht/merkle_tree.h"

#include <stdexcept>

#include "mht/node_hash.h"

namespace dcert::mht {

void MerklePath::Encode(Encoder& enc) const {
  enc.U64(leaf_index);
  enc.U32(static_cast<std::uint32_t>(steps.size()));
  for (const Step& s : steps) {
    enc.HashField(s.sibling);
    enc.Bool(s.sibling_on_left);
  }
}

MerklePath MerklePath::Decode(Decoder& dec) {
  MerklePath path;
  path.leaf_index = dec.U64();
  std::uint32_t n = dec.U32();
  path.steps.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Step s;
    s.sibling = dec.HashField();
    s.sibling_on_left = dec.Bool();
    path.steps.push_back(s);
  }
  return path;
}

Hash256 MerkleTree::LeafHash(const Hash256& item_digest) {
  return TaggedDigest(NodeTag::kMerkleLeaf, item_digest.View());
}

MerkleTree::MerkleTree(std::vector<Hash256> leaf_hashes)
    : leaf_count_(leaf_hashes.size()) {
  if (leaf_hashes.empty()) {
    root_ = TaggedDigest(NodeTag::kMerkleInternal, {});
    return;
  }
  // Every level is hashed in one multi-buffer dispatch: all leaf tags first,
  // then all sibling pairs of each internal level.
  std::vector<Hash256> level(leaf_hashes.size());
  {
    std::vector<NodeLeafJob> jobs(leaf_hashes.size());
    for (std::size_t i = 0; i < leaf_hashes.size(); ++i) {
      jobs[i] = {&leaf_hashes[i], &level[i]};
    }
    TaggedDigestMany32(NodeTag::kMerkleLeaf, jobs.data(), jobs.size());
  }
  levels_.push_back(std::move(level));
  std::vector<NodePairJob> jobs;
  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& prev = levels_.back();
    std::vector<Hash256> next((prev.size() + 1) / 2);
    jobs.clear();
    jobs.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      jobs.push_back({&prev[i], &prev[i + 1], &next[i / 2]});
    }
    TaggedDigest2Many(NodeTag::kMerkleInternal, jobs.data(), jobs.size());
    if (prev.size() % 2 == 1) next.back() = prev.back();  // promote odd node
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back().front();
}

MerklePath MerkleTree::Prove(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::Prove: leaf index out of range");
  }
  MerklePath path;
  path.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Hash256>& nodes = levels_[lvl];
    std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < nodes.size()) {
      path.steps.push_back({nodes[sibling], pos % 2 == 1});
    }
    // Promoted odd nodes contribute no step at this level.
    pos /= 2;
  }
  return path;
}

Status MerkleTree::VerifyPath(const Hash256& root, const Hash256& leaf_hash,
                              const MerklePath& path) {
  Hash256 acc = LeafHash(leaf_hash);
  for (const MerklePath::Step& s : path.steps) {
    acc = s.sibling_on_left ? TaggedDigest2(NodeTag::kMerkleInternal, s.sibling, acc)
                            : TaggedDigest2(NodeTag::kMerkleInternal, acc, s.sibling);
  }
  if (acc != root) {
    return Status::Error("Merkle path does not reconstruct root");
  }
  return Status::Ok();
}

Hash256 MerkleTree::ComputeRoot(const std::vector<Hash256>& leaf_hashes) {
  return MerkleTree(leaf_hashes).Root();
}

}  // namespace dcert::mht
