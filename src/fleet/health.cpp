#include "fleet/health.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/serialize.h"

namespace dcert::fleet {

namespace {

constexpr std::size_t kMaxEvidenceRecords = 65536;
constexpr std::size_t kMaxEvidenceFileBytes = std::size_t{64} << 20;

}  // namespace

Bytes MisbehaviorEvidence::Serialize() const {
  Encoder enc;
  enc.U64(map_version);
  enc.U32(shard_id);
  enc.U32(replica);
  enc.U8(op);
  enc.U64(account);
  enc.U64(from_height);
  enc.U64(to_height);
  enc.HashField(reply_digest);
  enc.Blob(offending_cert);
  enc.Str(verdict);
  return enc.Take();
}

Result<MisbehaviorEvidence> MisbehaviorEvidence::Deserialize(ByteView bytes) {
  using R = Result<MisbehaviorEvidence>;
  try {
    Decoder dec(bytes);
    MisbehaviorEvidence e;
    e.map_version = dec.U64();
    e.shard_id = dec.U32();
    e.replica = dec.U32();
    e.op = dec.U8();
    e.account = dec.U64();
    e.from_height = dec.U64();
    e.to_height = dec.U64();
    e.reply_digest = dec.HashField();
    e.offending_cert = dec.Blob();
    e.verdict = dec.Str();
    dec.ExpectEnd();
    return e;
  } catch (const DecodeError& err) {
    return R::Error(std::string("misbehavior evidence: ") + err.what());
  }
}

Result<std::vector<MisbehaviorEvidence>> LoadEvidenceFile(
    const std::string& path) {
  using R = Result<std::vector<MisbehaviorEvidence>>;
  std::vector<MisbehaviorEvidence> records;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return records;  // no file yet: zero records
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
    if (data.size() > kMaxEvidenceFileBytes) {
      std::fclose(f);
      return R::Error("evidence file " + path + ": too large");
    }
  }
  std::fclose(f);
  try {
    Decoder dec(data);
    while (dec.Remaining() > 0) {
      Bytes frame = dec.Blob();
      auto rec = MisbehaviorEvidence::Deserialize(frame);
      if (!rec.ok()) return R(rec.status());
      records.push_back(std::move(rec.value()));
      if (records.size() > kMaxEvidenceRecords) {
        return R::Error("evidence file " + path + ": too many records");
      }
    }
  } catch (const DecodeError& err) {
    return R::Error("evidence file " + path + ": " + err.what());
  }
  return records;
}

Status WriteEvidenceFile(const std::string& path,
                         const std::vector<MisbehaviorEvidence>& records) {
  Encoder enc;
  for (const auto& rec : records) enc.Blob(rec.Serialize());
  const Bytes data = enc.Take();
  // tmp + fsync + rename (mirroring CheckpointStore::Write): the evidence
  // file is rewritten on every new record, and a crash mid-rewrite must not
  // truncate the quarantine history it exists to retain.
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Error("evidence file " + tmp_path + ": open: " +
                         std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::Error("evidence file " + tmp_path +
                                      ": write: " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) < 0) {
    const Status st = Status::Error("evidence file " + tmp_path +
                                    ": fsync: " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return st;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) < 0) {
    const Status st = Status::Error("evidence file " + path + ": rename: " +
                                    std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return st;
  }
  return Status::Ok();
}

FleetHealth::FleetHealth(HealthPolicy policy)
    : policy_(policy),
      jitter_rng_(policy.jitter_seed),
      breaker_opens_(std::make_shared<obs::Counter>()),
      probes_(std::make_shared<obs::Counter>()),
      quarantines_(std::make_shared<obs::Counter>()),
      blocked_(std::make_shared<obs::Counter>()),
      open_breakers_(std::make_shared<obs::Gauge>()),
      quarantined_gauge_(std::make_shared<obs::Gauge>()) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("fleet.health.breaker_opens", breaker_opens_);
  reg.Register("fleet.health.probes", probes_);
  reg.Register("fleet.health.quarantines", quarantines_);
  reg.Register("fleet.health.blocked", blocked_);
  reg.Register("fleet.health.open_breakers", open_breakers_);
  reg.Register("fleet.health.quarantined", quarantined_gauge_);
}

void FleetHealth::OpenLocked(BackendState& b) {
  const bool was_routable = b.state == BreakerState::kClosed;
  b.state = BreakerState::kOpen;
  b.probe_inflight = false;
  // Jittered exponential backoff: base * 2^doublings clamped, then sleep in
  // [backoff/2, backoff] so a fleet-wide incident does not probe in lockstep.
  auto backoff = policy_.open_base_backoff;
  for (int i = 0; i < b.backoff_doublings && backoff < policy_.open_max_backoff;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, policy_.open_max_backoff);
  const std::uint64_t ms = static_cast<std::uint64_t>(backoff.count());
  const std::uint64_t jittered = ms / 2 + jitter_rng_.NextBelow(ms / 2 + 1);
  b.open_until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(jittered);
  breaker_opens_->Add(1);
  if (was_routable) open_breakers_->Add(1);
}

bool FleetHealth::AllowRequest(std::uint32_t shard, std::uint32_t replica) {
  std::lock_guard<std::mutex> lk(mu_);
  if (quarantined_.count(replica) != 0) {
    blocked_->Add(1);
    return false;
  }
  auto it = backends_.find({shard, replica});
  if (it == backends_.end()) return true;  // unseen backend: closed
  BackendState& b = it->second;
  const auto now = std::chrono::steady_clock::now();
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= b.open_until) {
        b.state = BreakerState::kHalfOpen;
        b.probe_inflight = true;
        b.probe_deadline = now + policy_.probe_timeout;
        probes_->Add(1);
        return true;
      }
      blocked_->Add(1);
      return false;
    case BreakerState::kHalfOpen:
      if (!b.probe_inflight || now >= b.probe_deadline) {
        // The previous probe's outcome was never reported (the caller
        // abandoned it, or it has been in flight past the probe timeout);
        // admit another rather than wedging the backend half-open forever.
        b.probe_inflight = true;
        b.probe_deadline = now + policy_.probe_timeout;
        probes_->Add(1);
        return true;
      }
      blocked_->Add(1);
      return false;
  }
  return true;
}

bool FleetHealth::Routable(std::uint32_t shard, std::uint32_t replica) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (quarantined_.count(replica) != 0) return false;
  auto it = backends_.find({shard, replica});
  if (it == backends_.end()) return true;  // unseen backend: closed
  const BackendState& b = it->second;
  const auto now = std::chrono::steady_clock::now();
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return now >= b.open_until;
    case BreakerState::kHalfOpen:
      return !b.probe_inflight || now >= b.probe_deadline;
  }
  return true;
}

void FleetHealth::ReportSuccess(std::uint32_t shard, std::uint32_t replica,
                                std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lk(mu_);
  BackendState& b = backends_[{shard, replica}];
  if (b.state != BreakerState::kClosed) open_breakers_->Sub(1);
  b.state = BreakerState::kClosed;
  b.consecutive_failures = 0;
  b.backoff_doublings = 0;
  b.probe_inflight = false;
  if (policy_.latency_window > 0) {
    if (b.latencies.size() < policy_.latency_window) {
      b.latencies.push_back(latency_us);
    } else {
      b.latencies[b.latency_next] = latency_us;
    }
    b.latency_next = (b.latency_next + 1) % policy_.latency_window;
  }
}

void FleetHealth::ReportFailure(std::uint32_t shard, std::uint32_t replica) {
  std::lock_guard<std::mutex> lk(mu_);
  BackendState& b = backends_[{shard, replica}];
  ++b.consecutive_failures;
  switch (b.state) {
    case BreakerState::kHalfOpen:
      // The probe failed: back to open with doubled backoff.
      ++b.backoff_doublings;
      OpenLocked(b);
      break;
    case BreakerState::kClosed:
      if (b.consecutive_failures >= policy_.failure_threshold) OpenLocked(b);
      break;
    case BreakerState::kOpen:
      // A straggler failure from a request admitted before the open (or a
      // breaker-ignoring last-resort attempt); the deadline stands.
      break;
  }
}

void FleetHealth::ReportMisbehavior(const MisbehaviorEvidence& evidence) {
  std::lock_guard<std::mutex> lk(mu_);
  quarantines_->Add(1);
  const bool fresh = quarantined_.insert(evidence.replica).second;
  if (fresh) {
    quarantined_gauge_->Set(static_cast<std::int64_t>(quarantined_.size()));
  }
  if (evidence_.size() < kMaxEvidenceRecords) {
    evidence_.push_back(evidence);
    if (!evidence_path_.empty()) {
      // Best-effort append; the in-memory record is authoritative for this
      // process and the whole file is rewritten from it.
      (void)WriteEvidenceFile(evidence_path_, evidence_);
    }
  }
}

bool FleetHealth::Quarantined(std::uint32_t replica) const {
  std::lock_guard<std::mutex> lk(mu_);
  return quarantined_.count(replica) != 0;
}

void FleetHealth::Release(std::uint32_t replica) {
  std::lock_guard<std::mutex> lk(mu_);
  if (quarantined_.erase(replica) == 0) return;
  quarantined_gauge_->Set(static_cast<std::int64_t>(quarantined_.size()));
  // Restart the released replica's breakers closed: the operator vouched for
  // it, so it earns a clean slate rather than an inherited open deadline.
  for (auto& [key, b] : backends_) {
    if (key.second != replica) continue;
    if (b.state != BreakerState::kClosed) open_breakers_->Sub(1);
    b = BackendState{};
  }
}

BreakerState FleetHealth::State(std::uint32_t shard,
                                std::uint32_t replica) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = backends_.find({shard, replica});
  return it == backends_.end() ? BreakerState::kClosed : it->second.state;
}

bool FleetHealth::AllClosed() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, b] : backends_) {
    if (quarantined_.count(key.second) != 0) continue;
    if (b.state != BreakerState::kClosed) return false;
  }
  return true;
}

std::vector<MisbehaviorEvidence> FleetHealth::Evidence() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evidence_;
}

std::uint64_t FleetHealth::HedgeDelayUs(std::uint64_t min_us,
                                        std::uint64_t max_us) const {
  std::vector<std::uint64_t> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [key, b] : backends_) {
      all.insert(all.end(), b.latencies.begin(), b.latencies.end());
    }
  }
  if (all.empty()) return max_us;
  const std::size_t idx = all.size() * 95 / 100;
  std::nth_element(all.begin(), all.begin() + idx, all.end());
  return std::min(max_us, std::max(min_us, all[idx]));
}

Status FleetHealth::AttachEvidenceFile(const std::string& path) {
  auto existing = LoadEvidenceFile(path);
  if (!existing.ok()) return existing.status();
  std::lock_guard<std::mutex> lk(mu_);
  evidence_path_ = path;
  for (auto& rec : existing.value()) {
    const bool fresh = quarantined_.insert(rec.replica).second;
    if (fresh) {
      quarantined_gauge_->Set(static_cast<std::int64_t>(quarantined_.size()));
    }
    evidence_.push_back(std::move(rec));
  }
  return Status::Ok();
}

}  // namespace dcert::fleet
