#include "fleet/fleet_router.h"

#include <string>
#include <utility>

#include "svc/protocol.h"

namespace dcert::fleet {

namespace {

/// Duplicate announcements (fan-out retries, replicas catching up out of
/// band) are rejected by SpServer with this prefix; the router treats them
/// as already-applied success so fan-out stays idempotent.
bool IsStaleHeightReject(const std::string& message) {
  return message.find("announce: stale height") != std::string::npos;
}

}  // namespace

FleetRouter::FleetRouter(ShardMap map, BackendConnector backends,
                         FleetRouterConfig config)
    : map_(std::move(map)),
      backends_(std::move(backends)),
      config_(config),
      health_(config.health ? config.health
                            : std::make_shared<FleetHealth>(
                                  config.health_policy)),
      forwarded_(std::make_shared<obs::Counter>()),
      fanouts_(std::make_shared<obs::Counter>()),
      failovers_(std::make_shared<obs::Counter>()),
      shard_map_serves_(std::make_shared<obs::Counter>()),
      stale_rejects_(std::make_shared<obs::Counter>()),
      errors_(std::make_shared<obs::Counter>()) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("fleet.router.forwarded", forwarded_);
  reg.Register("fleet.router.fanouts", fanouts_);
  reg.Register("fleet.router.failovers", failovers_);
  reg.Register("fleet.router.shard_map_serves", shard_map_serves_);
  reg.Register("fleet.router.stale_rejects", stale_rejects_);
  reg.Register("fleet.router.errors", errors_);
}

FleetRouter::~FleetRouter() { Shutdown(); }

Status FleetRouter::Serve(svc::ServerTransport& transport) {
  if (transport_ != nullptr) {
    return Status::Error("fleet router: already serving");
  }
  Status st = transport.Start([this](Bytes request, svc::Respond respond) {
    HandleFrame(std::move(request), std::move(respond));
  });
  if (!st) return st;
  transport_ = &transport;
  return Status::Ok();
}

void FleetRouter::Shutdown() {
  if (transport_ != nullptr) {
    transport_->Stop();
    transport_ = nullptr;
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_.clear();
}

void FleetRouter::HandleFrame(Bytes request, svc::Respond respond) {
  respond(Process(request));
}

std::uint32_t FleetRouter::NextRoundRobin() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  return static_cast<std::uint32_t>(round_robin_++ % map_.TotalShards());
}

Result<Bytes> FleetRouter::CallReplica(std::uint32_t shard,
                                       std::uint32_t replica,
                                       const Bytes& frame) {
  std::unique_ptr<svc::ClientTransport> conn;
  const auto key = std::make_pair(shard, replica);
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    auto it = pool_.find(key);
    if (it != pool_.end() && !it->second.empty()) {
      conn = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  if (!conn) {
    auto dialed = backends_(shard, replica)();
    if (!dialed.ok()) return Result<Bytes>(dialed.status());
    conn = std::move(dialed.value());
  }
  const auto started = std::chrono::steady_clock::now();
  auto reply = conn->Call(frame, config_.backend_deadline);
  if (reply.ok()) {
    health_->ReportSuccess(
        shard, replica,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started)
                .count()));
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_[key].push_back(std::move(conn));
  } else {
    // The router sees only the transport plane, so every failure feeds the
    // benign breaker; Byzantine detection lives with verifying clients.
    health_->ReportFailure(shard, replica);
  }
  // On failure the connection may be desynced: drop it, the next call dials
  // fresh.
  return reply;
}

Result<Bytes> FleetRouter::CallBackend(std::uint32_t shard,
                                       const Bytes& frame) {
  const std::uint32_t replicas = map_.Replicas();
  std::uint32_t start;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    start = static_cast<std::uint32_t>(round_robin_++ % replicas);
  }
  // Breaker-routable replicas first (the non-mutating check: the actual
  // probe-consuming AllowRequest happens right before each attempt, so a
  // candidate that is never tried cannot strand a half-open probe slot);
  // when every breaker is open, try them all anyway — the breaker is
  // backoff advice, and a router that answers "unreachable" while a backend
  // just recovered helps nobody. Quarantine still holds even then.
  bool breakers_bypassed = false;
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i < replicas; ++i) {
    const std::uint32_t replica = (start + i) % replicas;
    if (health_->Routable(shard, replica)) candidates.push_back(replica);
  }
  if (candidates.empty()) {
    breakers_bypassed = true;
    for (std::uint32_t i = 0; i < replicas; ++i) {
      const std::uint32_t replica = (start + i) % replicas;
      if (!health_->Quarantined(replica)) candidates.push_back(replica);
    }
  }
  Status last = Status::Error("fleet router: no replicas");
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!breakers_bypassed && !health_->AllowRequest(shard, candidates[i])) {
      continue;  // probe slot taken / quarantined since the Routable scan
    }
    auto reply = CallReplica(shard, candidates[i], frame);
    if (reply.ok()) return reply;
    last = reply.status();
    if (!svc::IsTransientTransportError(last)) break;
    if (i + 1 < candidates.size()) failovers_->Add(1);
  }
  return Result<Bytes>(last);
}

Bytes FleetRouter::ProcessAnnounceFanout(const Bytes& request) {
  fanouts_->Add(1);
  std::uint64_t best_ack = 0;
  bool any_ok = false;
  bool any_duplicate = false;
  Bytes first_failure;
  for (std::uint32_t shard = 0; shard < map_.TotalShards(); ++shard) {
    for (std::uint32_t replica = 0; replica < map_.Replicas(); ++replica) {
      auto reply = CallReplica(shard, replica, request);
      if (!reply.ok()) {
        if (first_failure.empty()) {
          first_failure = svc::EncodeStatusReply(
              svc::Code::kError,
              "fanout: shard " + std::to_string(shard) + " replica " +
                  std::to_string(replica) + ": " + reply.status().message());
        }
        continue;
      }
      auto env = svc::DecodeReplyEnvelope(reply.value());
      if (!env.ok()) {
        if (first_failure.empty()) first_failure = std::move(reply.value());
        continue;
      }
      if (env.value().code == svc::Code::kOk) {
        if (auto ack = svc::DecodeAckBody(env.value().body); ack.ok()) {
          best_ack = std::max(best_ack, ack.value());
        }
        any_ok = true;
      } else if (IsStaleHeightReject(env.value().message)) {
        any_duplicate = true;
      } else if (first_failure.empty()) {
        first_failure = std::move(reply.value());
      }
    }
  }
  if (any_ok) return svc::EncodeAckReply(best_ack);
  // Every shard had already applied the block: idempotent success (ack 0 —
  // no fresh tip height was learned).
  if (any_duplicate) return svc::EncodeAckReply(0);
  errors_->Add(1);
  if (!first_failure.empty()) return first_failure;
  return svc::EncodeStatusReply(svc::Code::kError,
                                "fanout: no backend reachable");
}

Bytes FleetRouter::Process(const Bytes& request) {
  auto op = svc::PeekOp(request);
  if (!op.ok()) {
    errors_->Add(1);
    return svc::EncodeStatusReply(svc::Code::kError, op.status().message());
  }
  switch (op.value()) {
    case svc::Op::kShardMap:
      shard_map_serves_->Add(1);
      return svc::EncodeShardMapReply(map_.Serialize());
    case svc::Op::kShardScoped: {
      auto scoped = svc::DecodeShardScopedRequest(request);
      if (!scoped.ok()) {
        errors_->Add(1);
        return svc::EncodeStatusReply(svc::Code::kError,
                                      scoped.status().message());
      }
      if (scoped.value().map_version != map_.Version()) {
        stale_rejects_->Add(1);
        return svc::EncodeStatusReply(
            svc::Code::kStaleShard,
            "router: stale shard map: client v" +
                std::to_string(scoped.value().map_version) + ", fleet v" +
                std::to_string(map_.Version()));
      }
      if (scoped.value().shard_id >= map_.TotalShards()) {
        stale_rejects_->Add(1);
        return svc::EncodeStatusReply(
            svc::Code::kStaleShard,
            "router: shard " + std::to_string(scoped.value().shard_id) +
                " out of range");
      }
      break;  // forward below
    }
    case svc::Op::kAnnounce:
      return ProcessAnnounceFanout(request);
    default:
      break;
  }

  std::uint32_t shard = 0;
  switch (op.value()) {
    case svc::Op::kShardScoped:
      // Re-decode is cheap (header only) and keeps the switch above simple.
      shard = svc::DecodeShardScopedRequest(request).value().shard_id;
      break;
    case svc::Op::kTipFetch:
    case svc::Op::kStats:
    case svc::Op::kHealth:
      // Any shard can answer these; kHealth reports the chosen replica's
      // own liveness (a router-level fleet view comes from asking each
      // endpoint, which dcertctl fleet-health does).
      shard = NextRoundRobin();
      break;
    case svc::Op::kHistorical:
    case svc::Op::kAggregate: {
      auto q = svc::DecodeQueryRequest(request);
      if (!q.ok()) {
        errors_->Add(1);
        return svc::EncodeStatusReply(svc::Code::kError, q.status().message());
      }
      auto subs =
          map_.Split(q.value().account, q.value().from_height,
                     q.value().to_height);
      if (subs.empty()) {
        errors_->Add(1);
        return svc::EncodeStatusReply(svc::Code::kError,
                                      "router: empty query window");
      }
      if (subs.size() > 1) {
        // Merging per-band proofs would mean fabricating an answer the
        // router cannot verify; the client must scatter-gather.
        errors_->Add(1);
        return svc::EncodeStatusReply(
            svc::Code::kError,
            "router: window spans " + std::to_string(subs.size()) +
                " shards; use shard-scoped scatter-gather");
      }
      shard = subs[0].shard_id;
      break;
    }
    default:
      errors_->Add(1);
      return svc::EncodeStatusReply(svc::Code::kError,
                                    "router: unroutable op");
  }

  auto reply = CallBackend(shard, request);
  if (!reply.ok()) {
    errors_->Add(1);
    return svc::EncodeStatusReply(
        svc::Code::kError, "router: shard " + std::to_string(shard) +
                               " unreachable: " + reply.status().message());
  }
  forwarded_->Add(1);
  return std::move(reply.value());
}

FleetRouterStats FleetRouter::Stats() const {
  FleetRouterStats s;
  s.forwarded = forwarded_->Value();
  s.fanouts = fanouts_->Value();
  s.failovers = failovers_->Value();
  s.shard_map_serves = shard_map_serves_->Value();
  s.stale_rejects = stale_rejects_->Value();
  s.errors = errors_->Value();
  return s;
}

}  // namespace dcert::fleet
