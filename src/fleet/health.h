// Per-backend health state for a shard fleet: rolling error/latency windows
// feeding a three-state circuit breaker, plus evidence-based quarantine for
// replicas that serve replies failing cryptographic verification.
//
// The two failure classes DCert's trust model distinguishes get different
// treatment:
//  * benign (crash, timeout, kBusy, refused dial) — the breaker opens after
//    `failure_threshold` consecutive failures and stops routing to the
//    replica; after a seeded-jittered backoff ONE half-open probe is allowed
//    through, and a verified success re-closes the breaker (a failed probe
//    re-opens it with doubled backoff). Fully automatic.
//  * Byzantine (a reply whose certificate or proof does not verify) — the
//    failed verification IS cryptographic evidence of misbehavior, so the
//    replica is quarantined across ALL shards and a serialized
//    MisbehaviorEvidence record is retained (optionally appended to an
//    evidence file) until an operator releases it via `dcertctl
//    fleet-health`. No probe ever re-admits a quarantined replica.
//
// FleetHealth is shared between a FleetClient and/or FleetRouter and their
// callers; all methods are thread-safe behind one mutex (the fleet's hot
// path is network-bound, a breaker check is a map lookup).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace dcert::fleet {

enum class BreakerState : std::uint8_t {
  kClosed = 0,    // healthy; requests flow
  kOpen = 1,      // failing; requests blocked until the backoff deadline
  kHalfOpen = 2,  // deadline passed; exactly one probe request is in flight
};

struct HealthPolicy {
  /// Consecutive benign failures before the breaker opens.
  int failure_threshold = 3;
  /// First open interval; doubles per failed probe, clamped to the max.
  std::chrono::milliseconds open_base_backoff{100};
  std::chrono::milliseconds open_max_backoff{5000};
  /// Seed for backoff jitter (sleep in [backoff/2, backoff]).
  std::uint64_t jitter_seed = 0x4ea1;
  /// Rolling per-backend latency samples kept for the hedge-delay estimate.
  std::size_t latency_window = 64;
  /// How long an admitted half-open probe may go unreported before another
  /// probe is allowed. Backstop against a caller that consumed the probe
  /// admission but never attempted the request (or died mid-attempt): without
  /// it the backend would stay half-open-and-blocked forever.
  std::chrono::milliseconds probe_timeout{10000};
};

/// Everything needed to audit a quarantine decision offline: which query was
/// asked, a digest of the reply the replica served, the certificate it
/// claimed covered the reply, and the verifier's verdict. Serialized records
/// are what `dcertctl fleet-health --evidence` lists and releases.
struct MisbehaviorEvidence {
  std::uint64_t map_version = 0;
  std::uint32_t shard_id = 0;
  std::uint32_t replica = 0;
  std::uint8_t op = 0;  // svc::Op of the query that exposed the misbehavior
  std::uint64_t account = 0;
  std::uint64_t from_height = 0;
  std::uint64_t to_height = 0;
  Hash256 reply_digest{};     // SHA-256 of the offending reply payload
  Bytes offending_cert;       // serialized certificate the replica presented
  std::string verdict;        // the verification error message

  Bytes Serialize() const;
  static Result<MisbehaviorEvidence> Deserialize(ByteView bytes);
};

/// Reads/writes an evidence file: concatenated length-prefixed serialized
/// records. A missing file reads as zero records (not an error). Writes are
/// atomic (tmp + fsync + rename) so a crash mid-rewrite never loses the
/// previously persisted records.
Result<std::vector<MisbehaviorEvidence>> LoadEvidenceFile(
    const std::string& path);
Status WriteEvidenceFile(const std::string& path,
                         const std::vector<MisbehaviorEvidence>& records);

class FleetHealth {
 public:
  explicit FleetHealth(HealthPolicy policy = {});

  /// Gate IMMEDIATELY before actually attempting (shard, replica) — never
  /// speculatively, because the call that flips an expired open breaker to
  /// half-open consumes the single probe admission (re-armed only after
  /// `probe_timeout` if the outcome is never reported). False while
  /// quarantined or the breaker is open. Use Routable() to build candidate
  /// lists without consuming probes.
  bool AllowRequest(std::uint32_t shard, std::uint32_t replica);

  /// Non-mutating routing check: would AllowRequest plausibly admit this
  /// backend right now? Never consumes the half-open probe admission, so it
  /// is safe to call for replicas that may never be queried.
  bool Routable(std::uint32_t shard, std::uint32_t replica) const;

  /// A fully verified reply: closes the breaker, resets failure/backoff
  /// state, and records the observed latency for the hedge estimate.
  void ReportSuccess(std::uint32_t shard, std::uint32_t replica,
                     std::uint64_t latency_us);

  /// A benign failure (transport fault, kBusy, timeout). Opens the breaker
  /// at the threshold; a failed half-open probe re-opens with doubled
  /// backoff.
  void ReportFailure(std::uint32_t shard, std::uint32_t replica);

  /// A verification failure: quarantines `evidence.replica` for every shard
  /// and retains the record (appending to the evidence file when attached).
  void ReportMisbehavior(const MisbehaviorEvidence& evidence);

  bool Quarantined(std::uint32_t replica) const;
  /// Operator release: the replica may serve again (its breaker restarts
  /// closed). Retained evidence records are kept for the audit trail.
  void Release(std::uint32_t replica);

  BreakerState State(std::uint32_t shard, std::uint32_t replica) const;
  /// True when no breaker is open or half-open. Quarantined replicas are
  /// excluded: they receive no traffic, so their last breaker state is
  /// meaningless for convergence.
  bool AllClosed() const;

  std::vector<MisbehaviorEvidence> Evidence() const;

  /// Adaptive hedge delay: the p95 of the rolling verified-reply latencies
  /// across all backends, clamped to [min_us, max_us] (max_us when no
  /// samples exist yet — never hedge eagerly without data).
  std::uint64_t HedgeDelayUs(std::uint64_t min_us, std::uint64_t max_us) const;

  /// Mirrors quarantine records to `path`: loads existing records first (so
  /// quarantines survive a client restart), then appends new ones as they
  /// happen. Returns the load status; appends are best-effort.
  Status AttachEvidenceFile(const std::string& path);

 private:
  struct BackendState {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int backoff_doublings = 0;
    std::chrono::steady_clock::time_point open_until{};
    bool probe_inflight = false;
    std::chrono::steady_clock::time_point probe_deadline{};
    std::vector<std::uint64_t> latencies;  // ring buffer
    std::size_t latency_next = 0;
  };

  void OpenLocked(BackendState& b);  // sets state/deadline, bumps metrics

  HealthPolicy policy_;
  mutable std::mutex mu_;
  Rng jitter_rng_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, BackendState> backends_;
  std::set<std::uint32_t> quarantined_;
  std::vector<MisbehaviorEvidence> evidence_;
  std::string evidence_path_;  // empty = not attached

  std::shared_ptr<obs::Counter> breaker_opens_;
  std::shared_ptr<obs::Counter> probes_;
  std::shared_ptr<obs::Counter> quarantines_;
  std::shared_ptr<obs::Counter> blocked_;
  std::shared_ptr<obs::Gauge> open_breakers_;
  std::shared_ptr<obs::Gauge> quarantined_gauge_;
};

}  // namespace dcert::fleet
