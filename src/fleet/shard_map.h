// Versioned, deterministic partition of the historical index over
// key_shards × height_bands logical shards, each served by `replicas`
// interchangeable servers. The map is pure arithmetic — no lookup tables —
// so every party (router, client, shard server) derives identical routing
// from the same serialized bytes:
//
//  * Accounts partition by range: account word `a` belongs to key-shard
//    floor(a * K / 2^64), i.e. K equal slices of the 64-bit key space.
//  * Heights partition into bands of `band_blocks` blocks; the last band is
//    open-ended so the map never expires as the chain grows.
//  * shard_id = key_shard * height_bands + band.
//
// Shards partition LOAD, not storage: every shard applies all announcements
// (so its proofs verify against the certified full-index digest) but serves
// only queries inside its slice. A client window that crosses band
// boundaries is Split() into per-band subqueries, answered by different
// shards and merged after each piece verifies independently.
//
// The version stamps every shard-scoped request; resharding bumps it, and
// servers reject stale-version requests with kStaleShard so clients refresh
// before re-routing (no silently misrouted queries).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "svc/protocol.h"

namespace dcert::fleet {

struct ShardMapConfig {
  /// Must be non-zero: svc::ShardAssignment treats version 0 as "unsharded".
  std::uint64_t version = 1;
  std::uint32_t key_shards = 1;
  std::uint32_t height_bands = 1;
  /// Blocks per height band (required > 0 when height_bands > 1); the last
  /// band extends to infinity.
  std::uint64_t band_blocks = 0;
  std::uint32_t replicas = 1;
};

class ShardMap {
 public:
  /// One piece of a client query after splitting at band boundaries.
  struct SubQuery {
    std::uint32_t shard_id = 0;
    std::uint64_t from_height = 0;
    std::uint64_t to_height = 0;
  };

  /// Validates the config and takes endpoints[shard][replica] (host:port
  /// strings; may be empty for in-process topologies — it is then sized to
  /// the shard/replica grid with empty strings).
  static Result<ShardMap> Create(
      const ShardMapConfig& cfg,
      std::vector<std::vector<std::string>> endpoints = {});

  std::uint64_t Version() const { return cfg_.version; }
  std::uint32_t KeyShards() const { return cfg_.key_shards; }
  std::uint32_t HeightBands() const { return cfg_.height_bands; }
  std::uint32_t Replicas() const { return cfg_.replicas; }
  std::uint32_t TotalShards() const {
    return cfg_.key_shards * cfg_.height_bands;
  }

  std::uint32_t KeyShardOf(std::uint64_t account) const;
  std::uint32_t BandOf(std::uint64_t height) const;
  std::uint32_t ShardOf(std::uint64_t account, std::uint64_t height) const {
    return KeyShardOf(account) * cfg_.height_bands + BandOf(height);
  }

  /// Splits [from_height, to_height] at band boundaries; each piece names
  /// the shard owning it. Pieces are disjoint, ascending, and cover the
  /// window exactly. Empty when from > to.
  std::vector<SubQuery> Split(std::uint64_t account, std::uint64_t from_height,
                              std::uint64_t to_height) const;

  /// The assignment shard `shard_id` enforces (svc::SpServerConfig::shard).
  svc::ShardAssignment AssignmentFor(std::uint32_t shard_id) const;

  const std::vector<std::string>& Endpoints(std::uint32_t shard_id) const {
    return endpoints_[shard_id];
  }

  Bytes Serialize() const;
  static Result<ShardMap> Deserialize(ByteView bytes);

 private:
  ShardMap() = default;

  /// First account word of key-shard `ks`: ceil(ks * 2^64 / K).
  std::uint64_t KeyLo(std::uint32_t ks) const;
  std::uint64_t HeightLo(std::uint32_t band) const;
  std::uint64_t HeightHi(std::uint32_t band) const;

  ShardMapConfig cfg_;
  std::vector<std::vector<std::string>> endpoints_;  // [shard][replica]
};

}  // namespace dcert::fleet
