// Untrusted routing front tier for a shard fleet. The router never touches
// proofs or certificates — it forwards opaque frames — so a compromised
// router can deny service but can never make a client accept a wrong answer:
// every reply a client acts on still carries its own certificate + proof and
// is verified client-side (the DCert property that makes an untrusted front
// tier safe at all).
//
// Per-op behavior:
//  * kShardMap        — answered locally from the router's own map.
//  * kShardScoped     — version-checked, then forwarded verbatim to a replica
//                       of the addressed shard (round-robin start, sequential
//                       failover on transient faults). The shard re-checks
//                       (version, shard_id) itself; the router check only
//                       exists to fail stale clients fast.
//  * kAnnounce        — fanned out to every replica of every shard; "stale
//                       height" rejections count as already-applied (fan-out
//                       retries are idempotent).
//  * kTipFetch/kStats — forwarded to a round-robin backend (any shard holds
//                       the full chain).
//  * plain queries    — forwarded to the owning shard when the window sits in
//                       one band; multi-band windows are refused with an
//                       error telling the client to scatter-gather itself
//                       (the router must not merge proofs it cannot verify).
//
// Backend connections are pooled per (shard, replica); a failed call drops
// the pooled connection and the next one redials.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fleet/health.h"
#include "fleet/shard_map.h"
#include "obs/metrics.h"
#include "svc/transport.h"

namespace dcert::fleet {

struct FleetRouterConfig {
  /// Deadline for each backend round trip.
  std::chrono::milliseconds backend_deadline{5000};
  /// Shared per-backend health (circuit breakers); created internally when
  /// null. The router only observes transport-level outcomes — it cannot
  /// verify proofs, so it never quarantines; breakers here are purely the
  /// benign (crash/slow) plane, and CallBackend skips open ones.
  std::shared_ptr<FleetHealth> health;
  HealthPolicy health_policy;
};

struct FleetRouterStats {
  std::uint64_t forwarded = 0;        // frames routed to a single backend
  std::uint64_t fanouts = 0;          // announcements fanned to all shards
  std::uint64_t failovers = 0;        // replica retries after a backend fault
  std::uint64_t shard_map_serves = 0; // kShardMap answered locally
  std::uint64_t stale_rejects = 0;    // stale-version requests refused
  std::uint64_t errors = 0;           // frames answered with kError locally
};

class FleetRouter {
 public:
  /// Dials replica `replica` of shard `shard`; wraps TCP or loopback alike.
  using BackendConnector =
      std::function<svc::Connector(std::uint32_t shard, std::uint32_t replica)>;

  FleetRouter(ShardMap map, BackendConnector backends,
              FleetRouterConfig config = {});
  ~FleetRouter();
  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Registers with `transport` and starts routing. The transport must
  /// outlive the router (or Shutdown must run first).
  Status Serve(svc::ServerTransport& transport);
  void Shutdown();

  const ShardMap& Map() const { return map_; }
  FleetRouterStats Stats() const;
  /// The shared per-backend health state (breakers; see config note).
  const std::shared_ptr<FleetHealth>& Health() const { return health_; }

 private:
  /// Transport-thread entry; routing runs inline (the router is a thin
  /// forwarder, concurrency comes from the transport's threads).
  void HandleFrame(Bytes request, svc::Respond respond);
  Bytes Process(const Bytes& request);
  Bytes ProcessAnnounceFanout(const Bytes& request);
  /// One backend round trip with replica failover; returns the raw reply
  /// frame (which may itself be kBusy/kError — forwarded verbatim).
  Result<Bytes> CallBackend(std::uint32_t shard, const Bytes& frame);
  /// Exactly one (shard, replica) attempt, reusing a pooled connection.
  Result<Bytes> CallReplica(std::uint32_t shard, std::uint32_t replica,
                            const Bytes& frame);
  std::uint32_t NextRoundRobin();

  ShardMap map_;
  BackendConnector backends_;
  FleetRouterConfig config_;
  std::shared_ptr<FleetHealth> health_;
  svc::ServerTransport* transport_ = nullptr;

  std::mutex pool_mu_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::unique_ptr<svc::ClientTransport>>>
      pool_;
  std::uint64_t round_robin_ = 0;  // guarded by pool_mu_

  std::shared_ptr<obs::Counter> forwarded_;
  std::shared_ptr<obs::Counter> fanouts_;
  std::shared_ptr<obs::Counter> failovers_;
  std::shared_ptr<obs::Counter> shard_map_serves_;
  std::shared_ptr<obs::Counter> stale_rejects_;
  std::shared_ptr<obs::Counter> errors_;
};

}  // namespace dcert::fleet
