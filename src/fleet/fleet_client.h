// Client-side verified scatter-gather over a shard fleet. A query window is
// Split() at band boundaries; each subquery is answered by one shard and
// verified INDEPENDENTLY before merging — per subquery the client fetches
// the shard's certified tip, validates the block + index certificates with a
// fresh SuperlightClient (pinned enclave measurement), and checks the query
// proof against the certified index digest. Nothing on the path — router,
// shard, network — is trusted; a corrupt or fabricated reply fails
// verification and the client fails over to another replica instead of
// accepting it.
//
// Failure handling per subquery:
//  * transport faults / kBusy   — retried inside SpClient (PR 3 policy),
//                                 then failed over to the next replica;
//  * verification failures      — counted, failed over (a lying replica must
//                                 not poison the merged result);
//  * kStaleShard                — the whole query refreshes the shard map
//                                 (bounded times) and re-splits/re-routes.
//
// Paranoid mode (cross_check): each subquery is independently verified on a
// second replica and the two verified results compared; a mismatch (e.g. a
// replica serving a divergent-but-certified view) fails the query loudly
// rather than silently picking one.
//
// Backends are addressed as (shard, replica). Through a router both map to
// the router's endpoint (the router picks real backends; set replicas to 1,
// the router fails over internally); in direct mode the connector dials the
// actual replica and the client fails over itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "dcert/enclave_program.h"
#include "fleet/health.h"
#include "fleet/shard_map.h"
#include "mht/mbtree.h"
#include "obs/metrics.h"
#include "query/historical_index.h"
#include "svc/sp_client.h"

namespace dcert::fleet {

struct FleetClientConfig {
  /// Enclave identity replies must be certified by.
  Hash256 expected_measurement = core::ExpectedEnclaveMeasurement();
  /// Per-backend-call retry policy (transport faults, kBusy sheds).
  svc::RetryPolicy retry;
  /// kStaleShard-triggered map refreshes allowed per logical query.
  int max_map_refreshes = 2;
  /// Tip-advanced races (proof tip != fetched tip) retried per replica.
  int max_tip_races = 3;
  /// Paranoid cross-replica cross-check (see header comment).
  bool cross_check = false;
  /// Worker threads for HistoricalMany fan-out.
  std::size_t fanout_threads = 4;
  /// Shared per-backend health (circuit breakers + evidence quarantine);
  /// created internally when null. Share one instance with a FleetRouter or
  /// an operator thread to see/steer the same breaker state.
  std::shared_ptr<FleetHealth> health;
  HealthPolicy health_policy;
  /// Hedged subqueries: after an adaptive delay (p95 of verified-reply
  /// latencies clamped to [hedge_min_delay_us, hedge_max_delay_us]) the same
  /// subquery is launched on the next allowed replica and the first VERIFIED
  /// reply wins; the loser is discarded. Cuts tail latency when one replica
  /// is slow; costs duplicate work when the hedge fires needlessly.
  bool hedge = false;
  std::uint64_t hedge_min_delay_us = 500;
  std::uint64_t hedge_max_delay_us = 100000;
};

struct FleetClientStats {
  std::uint64_t queries = 0;             // logical client queries
  std::uint64_t subqueries = 0;          // per-shard pieces issued
  std::uint64_t verified = 0;            // subquery replies fully verified
  std::uint64_t verify_failures = 0;     // replies rejected by verification
  std::uint64_t failovers = 0;           // replica switches
  std::uint64_t map_refreshes = 0;       // kStaleShard-triggered refreshes
  std::uint64_t cross_checks = 0;        // paranoid double-verifications
  std::uint64_t cross_check_mismatches = 0;
  std::uint64_t giveups = 0;             // logical queries that failed
  std::uint64_t breaker_skips = 0;       // replicas skipped on an open breaker
  std::uint64_t hedges = 0;              // secondary attempts launched
  std::uint64_t hedge_wins = 0;          // secondary delivered first
  std::uint64_t hedge_wasted = 0;        // losers that completed anyway
};

class FleetClient {
 public:
  using BackendConnector =
      std::function<svc::Connector(std::uint32_t shard, std::uint32_t replica)>;

  FleetClient(ShardMap map, BackendConnector backends,
              FleetClientConfig config = {});
  ~FleetClient();
  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  struct QuerySpec {
    std::uint64_t account = 0;
    std::uint64_t from_height = 0;
    std::uint64_t to_height = 0;
  };

  /// Verified historical window query: merged per-shard pieces, ascending by
  /// block height (bands are disjoint and processed in order).
  Result<std::vector<query::HistoricalVersion>> Historical(
      std::uint64_t account, std::uint64_t from_height,
      std::uint64_t to_height);

  /// Verified aggregate (count, wrapping sum) over the window; per-band
  /// aggregates verify independently and sum.
  Result<mht::MbAggregate> Aggregate(std::uint64_t account,
                                     std::uint64_t from_height,
                                     std::uint64_t to_height);

  /// Parallel scatter-gather over many queries (fanout_threads workers);
  /// results align with `specs` by index.
  std::vector<Result<std::vector<query::HistoricalVersion>>> HistoricalMany(
      const std::vector<QuerySpec>& specs);

  /// Fetches a fresh map from the fleet (any backend; falls back across
  /// shards/replicas) and installs it if its version is newer.
  Status RefreshMap();

  /// Current map (copied under lock; the map is small).
  ShardMap Map() const;
  FleetClientStats Stats() const;
  /// The shared per-backend health state (breakers, quarantine, evidence).
  const std::shared_ptr<FleetHealth>& Health() const { return health_; }

 private:
  /// One verified subquery result (versions for kHistorical, aggregate for
  /// kAggregate).
  struct Slice {
    std::vector<query::HistoricalVersion> versions;
    mht::MbAggregate aggregate;
    std::uint64_t tip_height = 0;
  };

  /// Whole-query driver: split, per-subquery replica loop, merge; refreshes
  /// the map and restarts on kStaleShard.
  Result<Slice> Run(svc::Op op, std::uint64_t account,
                    std::uint64_t from_height, std::uint64_t to_height);
  /// Replica failover loop for one subquery. Sets *stale when the shard
  /// rejected our map version (caller refreshes and re-splits).
  Result<Slice> QueryShard(const ShardMap& map, svc::Op op,
                           const ShardMap::SubQuery& sub,
                           std::uint64_t account, bool* stale);
  /// One fully verified attempt against one replica. Reports the outcome
  /// (success latency / benign failure / misbehavior evidence) to health_.
  Result<Slice> QueryReplica(const ShardMap& map, svc::Op op,
                             const ShardMap::SubQuery& sub,
                             std::uint64_t account, std::uint32_t replica,
                             bool* stale);
  /// Hedged attempt: primary starts immediately; after the adaptive delay
  /// the same subquery launches on `secondary` — admitted through the
  /// breaker only at that moment, and only if AllowRequest agrees — and the
  /// first verified reply wins. The loser keeps running detached-in-spirit
  /// (reaped later) so the winner's latency is what the caller sees. Sets
  /// *used_secondary when the secondary was actually queried, so the caller
  /// does not re-attempt it during failover.
  Result<Slice> QueryReplicaHedged(const ShardMap& map, svc::Op op,
                                   const ShardMap::SubQuery& sub,
                                   std::uint64_t account, std::uint32_t primary,
                                   std::uint32_t secondary, bool* stale,
                                   bool* used_secondary);

  std::unique_ptr<svc::SpClient> Borrow(std::uint32_t shard,
                                        std::uint32_t replica);
  void Return(std::uint32_t shard, std::uint32_t replica,
              std::unique_ptr<svc::SpClient> client);

  /// One in-flight hedge attempt's slot: the worker writes its result and
  /// flips `done` as its last action before exiting.
  struct HedgeAttempt;
  /// Joins finished loser threads (opportunistic sweep + destructor drain).
  void ReapHedges(bool join_all);

  BackendConnector backends_;
  FleetClientConfig config_;

  mutable std::shared_mutex map_mu_;
  ShardMap map_;

  std::mutex pool_mu_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::unique_ptr<svc::SpClient>>>
      pool_;
  std::uint64_t rr_ = 0;  // replica round-robin start, guarded by pool_mu_

  std::shared_ptr<FleetHealth> health_;

  /// Loser threads from hedged attempts, joined once their slot reports
  /// done (swept on later hedges, drained by the destructor).
  std::mutex hedge_mu_;
  std::vector<std::pair<std::thread, std::shared_ptr<HedgeAttempt>>>
      hedge_reap_;

  std::shared_ptr<obs::Counter> queries_;
  std::shared_ptr<obs::Counter> subqueries_;
  std::shared_ptr<obs::Counter> verified_;
  std::shared_ptr<obs::Counter> verify_failures_;
  std::shared_ptr<obs::Counter> failovers_;
  std::shared_ptr<obs::Counter> map_refreshes_;
  std::shared_ptr<obs::Counter> cross_checks_;
  std::shared_ptr<obs::Counter> cross_check_mismatches_;
  std::shared_ptr<obs::Counter> giveups_;
  std::shared_ptr<obs::Counter> breaker_skips_;
  std::shared_ptr<obs::Counter> hedges_;
  std::shared_ptr<obs::Counter> hedge_wins_;
  std::shared_ptr<obs::Counter> hedge_wasted_;
};

}  // namespace dcert::fleet
