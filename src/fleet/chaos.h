// One seed, three fault planes. A ChaosPlan derives deterministic
// per-plane fault configurations — network (svc::FaultInjectingTransport),
// disk (common::IoFaultInjector), and process crash (common::CrashPoints) —
// from a single master seed, so a chaos soak is a pure function of
// (seed, workload) and any failure it finds replays exactly.
//
// The plan only *derives* configurations; arming the injectors stays with
// the test harness, which knows when each plane should be live. Derivations
// are stateless given (seed, inputs): the same plan object hands out the
// same network config for the same stream id, and crash-site choices advance
// an internal seeded stream so consecutive cycles differ but the sequence
// replays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/io_fault.h"
#include "common/rng.h"
#include "svc/fault_transport.h"

namespace dcert::fleet {

struct ChaosPlanConfig {
  std::uint64_t seed = 1;
  /// Per-call probability scale of the network plane (drives every
  /// FaultConfig rate derived from this plan).
  double net_fault_rate = 0.05;
  /// Per-hook probability scale of the disk plane.
  double disk_fault_rate = 0.05;
  /// Per-cycle probability that NextCrash arms a crash site.
  double crash_rate = 0.1;
};

class ChaosPlan {
 public:
  explicit ChaosPlan(ChaosPlanConfig config);

  /// Network faults for one transport stream: all six fault kinds at rates
  /// scaled from net_fault_rate, seeded deterministically per stream.
  svc::FaultConfig NetworkFaults(std::uint64_t stream_id) const;

  /// Disk faults for the IoFaultInjector: EIO on write/fsync plus short
  /// writes at rates scaled from disk_fault_rate.
  common::IoFaultConfig DiskFaults() const;

  /// The crash plane's per-cycle decision: whether to arm, which site, and
  /// the hit countdown. Draws from the plan's seeded stream (stateful so
  /// consecutive cycles pick different sites deterministically).
  struct CrashChoice {
    bool arm = false;
    std::string site;
    std::uint64_t countdown = 1;
  };
  CrashChoice NextCrash(const std::vector<std::string>& sites);

 private:
  ChaosPlanConfig config_;
  Rng crash_rng_;
};

}  // namespace dcert::fleet
