#include "fleet/fleet_client.h"

#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "dcert/superlight.h"

namespace dcert::fleet {

FleetClient::FleetClient(ShardMap map, BackendConnector backends,
                         FleetClientConfig config)
    : backends_(std::move(backends)),
      config_(config),
      map_(std::move(map)),
      queries_(std::make_shared<obs::Counter>()),
      subqueries_(std::make_shared<obs::Counter>()),
      verified_(std::make_shared<obs::Counter>()),
      verify_failures_(std::make_shared<obs::Counter>()),
      failovers_(std::make_shared<obs::Counter>()),
      map_refreshes_(std::make_shared<obs::Counter>()),
      cross_checks_(std::make_shared<obs::Counter>()),
      cross_check_mismatches_(std::make_shared<obs::Counter>()),
      giveups_(std::make_shared<obs::Counter>()) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("fleet.client.queries", queries_);
  reg.Register("fleet.client.subqueries", subqueries_);
  reg.Register("fleet.client.verified", verified_);
  reg.Register("fleet.client.verify_failures", verify_failures_);
  reg.Register("fleet.client.failovers", failovers_);
  reg.Register("fleet.client.map_refreshes", map_refreshes_);
  reg.Register("fleet.client.cross_checks", cross_checks_);
  reg.Register("fleet.client.cross_check_mismatches", cross_check_mismatches_);
  reg.Register("fleet.client.giveups", giveups_);
}

ShardMap FleetClient::Map() const {
  std::shared_lock<std::shared_mutex> lk(map_mu_);
  return map_;
}

std::unique_ptr<svc::SpClient> FleetClient::Borrow(std::uint32_t shard,
                                                   std::uint32_t replica) {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    auto it = pool_.find({shard, replica});
    if (it != pool_.end() && !it->second.empty()) {
      auto client = std::move(it->second.back());
      it->second.pop_back();
      return client;
    }
  }
  // Decorrelate backoff jitter across backends so a fleet-wide incident does
  // not retry in lockstep.
  svc::RetryPolicy policy = config_.retry;
  policy.jitter_seed ^= std::uint64_t{shard} * 1009 + replica * 101 + 1;
  return std::make_unique<svc::SpClient>(backends_(shard, replica), policy);
}

void FleetClient::Return(std::uint32_t shard, std::uint32_t replica,
                         std::unique_ptr<svc::SpClient> client) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_[{shard, replica}].push_back(std::move(client));
}

Result<FleetClient::Slice> FleetClient::QueryReplica(
    const ShardMap& map, svc::Op op, const ShardMap::SubQuery& sub,
    std::uint64_t account, std::uint32_t replica, bool* stale) {
  using R = Result<Slice>;
  auto client = Borrow(sub.shard_id, replica);
  // Whatever happens below, the client goes back to the pool: SpClient owns
  // reconnection, so even after a transport fault it is reusable.
  struct Returner {
    FleetClient* self;
    std::uint32_t shard, replica;
    std::unique_ptr<svc::SpClient>& client;
    ~Returner() { self->Return(shard, replica, std::move(client)); }
  } returner{this, sub.shard_id, replica, client};

  const int races = std::max(1, config_.max_tip_races);
  for (int attempt = 0; attempt < races; ++attempt) {
    auto reply = op == svc::Op::kHistorical
                     ? client->HistoricalSharded(map.Version(), sub.shard_id,
                                                 account, sub.from_height,
                                                 sub.to_height)
                     : client->AggregateSharded(map.Version(), sub.shard_id,
                                                account, sub.from_height,
                                                sub.to_height);
    if (!reply.ok()) {
      if (client->LastReplyStaleShard()) *stale = true;
      return R(reply.status());
    }
    auto tip = client->FetchTipSharded(map.Version(), sub.shard_id);
    if (!tip.ok()) {
      if (client->LastReplyStaleShard()) *stale = true;
      return R(tip.status());
    }
    if (tip.value().header.height != reply.value().tip_height) {
      if (tip.value().header.height < reply.value().tip_height) {
        // A tip can only advance; going backwards between two calls on the
        // same connection means the replica is lying or broken.
        verify_failures_->Add(1);
        return R::Error("fleet: replica tip went backwards");
      }
      continue;  // a block landed between query and tip fetch; retry at it
    }

    // Verify exactly as a standalone superlight client would: certificates
    // first (block cert signs the header, index cert binds the digest, both
    // from the pinned enclave), then the proof against the certified digest.
    core::SuperlightClient verifier(config_.expected_measurement);
    if (Status st = verifier.ValidateAndAccept(tip.value().header,
                                               tip.value().block_cert);
        !st) {
      verify_failures_->Add(1);
      return R(st.WithContext("fleet: block cert"));
    }
    if (Status st = verifier.AcceptIndexCert(
            tip.value().header, tip.value().index_cert,
            tip.value().index_digest, "historical");
        !st) {
      verify_failures_->Add(1);
      return R(st.WithContext("fleet: index cert"));
    }
    Slice out;
    out.tip_height = tip.value().header.height;
    if (op == svc::Op::kHistorical) {
      auto versions = query::HistoricalIndex::VerifyQuery(
          tip.value().index_digest, account, sub.from_height, sub.to_height,
          reply.value().proof);
      if (!versions.ok()) {
        verify_failures_->Add(1);
        return R(versions.status().WithContext("fleet: query proof"));
      }
      out.versions = std::move(versions.value());
    } else {
      auto agg = query::HistoricalIndex::VerifyAggregateQuery(
          tip.value().index_digest, account, sub.from_height, sub.to_height,
          reply.value().proof);
      if (!agg.ok()) {
        verify_failures_->Add(1);
        return R(agg.status().WithContext("fleet: aggregate proof"));
      }
      out.aggregate = agg.value();
    }
    verified_->Add(1);
    return out;
  }
  return R::Error("fleet: tip kept advancing during query");
}

Result<FleetClient::Slice> FleetClient::QueryShard(
    const ShardMap& map, svc::Op op, const ShardMap::SubQuery& sub,
    std::uint64_t account, bool* stale) {
  using R = Result<Slice>;
  const std::uint32_t replicas = map.Replicas();
  std::uint32_t start;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    start = static_cast<std::uint32_t>(rr_++ % replicas);
  }
  Status last = Status::Error("fleet: no replicas configured");
  for (std::uint32_t i = 0; i < replicas; ++i) {
    const std::uint32_t replica = (start + i) % replicas;
    auto slice = QueryReplica(map, op, sub, account, replica, stale);
    if (*stale) return slice;  // caller refreshes the map and re-splits
    if (!slice.ok()) {
      last = slice.status();
      if (i + 1 < replicas) failovers_->Add(1);
      continue;
    }
    if (config_.cross_check && replicas > 1) {
      // Paranoid mode: the same subquery must verify identically on a second
      // replica. Both results passed cryptographic verification already, so
      // a mismatch means the replicas serve divergent certified views (e.g.
      // one lags the announcement stream) — surface it, don't pick one.
      cross_checks_->Add(1);
      const std::uint32_t other = (replica + 1) % replicas;
      auto check = QueryReplica(map, op, sub, account, other, stale);
      if (*stale) return check;
      if (!check.ok()) {
        return R(check.status().WithContext("fleet: cross-check replica"));
      }
      const bool same =
          op == svc::Op::kHistorical
              ? check.value().versions == slice.value().versions
              : (check.value().aggregate.count ==
                     slice.value().aggregate.count &&
                 check.value().aggregate.sum == slice.value().aggregate.sum);
      if (!same) {
        cross_check_mismatches_->Add(1);
        return R::Error(
            "fleet: cross-check mismatch between replicas " +
            std::to_string(replica) + " and " + std::to_string(other) +
            " of shard " + std::to_string(sub.shard_id) + " (tips " +
            std::to_string(slice.value().tip_height) + " vs " +
            std::to_string(check.value().tip_height) + ")");
      }
    }
    return slice;
  }
  return R(last);
}

Result<FleetClient::Slice> FleetClient::Run(svc::Op op, std::uint64_t account,
                                            std::uint64_t from_height,
                                            std::uint64_t to_height) {
  using R = Result<Slice>;
  queries_->Add(1);
  if (from_height > to_height) {
    giveups_->Add(1);
    return R::Error("fleet: empty query window");
  }
  for (int refresh = 0;; ++refresh) {
    const ShardMap map = Map();
    const auto subs = map.Split(account, from_height, to_height);
    Slice merged;
    bool stale = false;
    Status failure = Status::Ok();
    for (const auto& sub : subs) {
      subqueries_->Add(1);
      auto piece = QueryShard(map, op, sub, account, &stale);
      if (stale) break;
      if (!piece.ok()) {
        failure = piece.status();
        break;
      }
      // Bands are disjoint and ascending, so concatenation preserves
      // block-height order without a sort.
      merged.versions.insert(merged.versions.end(),
                             piece.value().versions.begin(),
                             piece.value().versions.end());
      merged.aggregate += piece.value().aggregate;
      merged.tip_height = std::max(merged.tip_height,
                                   piece.value().tip_height);
    }
    if (stale) {
      if (refresh >= config_.max_map_refreshes) {
        giveups_->Add(1);
        return R::Error("fleet: shard map still stale after " +
                        std::to_string(refresh) + " refreshes");
      }
      if (Status st = RefreshMap(); !st) {
        giveups_->Add(1);
        return R(st.WithContext("fleet: map refresh"));
      }
      continue;
    }
    if (!failure) {
      giveups_->Add(1);
      return R(failure);
    }
    return merged;
  }
}

Result<std::vector<query::HistoricalVersion>> FleetClient::Historical(
    std::uint64_t account, std::uint64_t from_height,
    std::uint64_t to_height) {
  auto slice = Run(svc::Op::kHistorical, account, from_height, to_height);
  if (!slice.ok()) {
    return Result<std::vector<query::HistoricalVersion>>(slice.status());
  }
  return std::move(slice.value().versions);
}

Result<mht::MbAggregate> FleetClient::Aggregate(std::uint64_t account,
                                                std::uint64_t from_height,
                                                std::uint64_t to_height) {
  auto slice = Run(svc::Op::kAggregate, account, from_height, to_height);
  if (!slice.ok()) return Result<mht::MbAggregate>(slice.status());
  return slice.value().aggregate;
}

std::vector<Result<std::vector<query::HistoricalVersion>>>
FleetClient::HistoricalMany(const std::vector<QuerySpec>& specs) {
  using Item = Result<std::vector<query::HistoricalVersion>>;
  std::vector<Item> results(specs.size(), Item(Status::Error("not run")));
  if (specs.empty()) return results;
  const std::size_t workers =
      std::min(std::max<std::size_t>(1, config_.fanout_threads), specs.size());
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) break;
      results[i] = Historical(specs[i].account, specs[i].from_height,
                              specs[i].to_height);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(work);
  for (auto& t : threads) t.join();
  return results;
}

Status FleetClient::RefreshMap() {
  map_refreshes_->Add(1);
  const ShardMap cur = Map();
  Status last = Status::Error("fleet: no backend answered a map fetch");
  for (std::uint32_t shard = 0; shard < cur.TotalShards(); ++shard) {
    for (std::uint32_t replica = 0; replica < cur.Replicas(); ++replica) {
      auto client = Borrow(shard, replica);
      auto bytes = client->FetchShardMap();
      Return(shard, replica, std::move(client));
      if (!bytes.ok()) {
        last = bytes.status();
        continue;
      }
      auto fresh = ShardMap::Deserialize(bytes.value());
      if (!fresh.ok()) {
        last = fresh.status();
        continue;
      }
      std::unique_lock<std::shared_mutex> lk(map_mu_);
      if (fresh.value().Version() >= map_.Version()) {
        map_ = std::move(fresh.value());
      }
      return Status::Ok();
    }
  }
  return last;
}

FleetClientStats FleetClient::Stats() const {
  FleetClientStats s;
  s.queries = queries_->Value();
  s.subqueries = subqueries_->Value();
  s.verified = verified_->Value();
  s.verify_failures = verify_failures_->Value();
  s.failovers = failovers_->Value();
  s.map_refreshes = map_refreshes_->Value();
  s.cross_checks = cross_checks_->Value();
  s.cross_check_mismatches = cross_check_mismatches_->Value();
  s.giveups = giveups_->Value();
  return s;
}

}  // namespace dcert::fleet
