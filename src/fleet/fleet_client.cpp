#include "fleet/fleet_client.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "crypto/sha256.h"
#include "dcert/superlight.h"

namespace dcert::fleet {

/// Shared between a hedge worker thread and the caller: the worker fills its
/// result, flips `done` under the mutex, and notifies. `winner_taken` tells a
/// late-finishing loser its work was wasted (for the counter).
struct FleetClient::HedgeAttempt {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool stale = false;
  bool winner_taken = false;
  std::optional<Result<Slice>> result;
};

namespace {

/// One waker shared by both attempts of a hedged call, so the caller can
/// sleep on "either attempt newly finished" instead of polling. Workers bump
/// `completions` after publishing their result; the caller re-examines both
/// attempts whenever the count moves past what it last saw.
struct HedgeWake {
  std::mutex mu;
  std::condition_variable cv;
  int completions = 0;
};

}  // namespace

FleetClient::FleetClient(ShardMap map, BackendConnector backends,
                         FleetClientConfig config)
    : backends_(std::move(backends)),
      config_(config),
      map_(std::move(map)),
      health_(config.health ? config.health
                            : std::make_shared<FleetHealth>(
                                  config.health_policy)),
      queries_(std::make_shared<obs::Counter>()),
      subqueries_(std::make_shared<obs::Counter>()),
      verified_(std::make_shared<obs::Counter>()),
      verify_failures_(std::make_shared<obs::Counter>()),
      failovers_(std::make_shared<obs::Counter>()),
      map_refreshes_(std::make_shared<obs::Counter>()),
      cross_checks_(std::make_shared<obs::Counter>()),
      cross_check_mismatches_(std::make_shared<obs::Counter>()),
      giveups_(std::make_shared<obs::Counter>()),
      breaker_skips_(std::make_shared<obs::Counter>()),
      hedges_(std::make_shared<obs::Counter>()),
      hedge_wins_(std::make_shared<obs::Counter>()),
      hedge_wasted_(std::make_shared<obs::Counter>()) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("fleet.client.queries", queries_);
  reg.Register("fleet.client.subqueries", subqueries_);
  reg.Register("fleet.client.verified", verified_);
  reg.Register("fleet.client.verify_failures", verify_failures_);
  reg.Register("fleet.client.failovers", failovers_);
  reg.Register("fleet.client.map_refreshes", map_refreshes_);
  reg.Register("fleet.client.cross_checks", cross_checks_);
  reg.Register("fleet.client.cross_check_mismatches", cross_check_mismatches_);
  reg.Register("fleet.client.giveups", giveups_);
  reg.Register("fleet.client.breaker_skips", breaker_skips_);
  reg.Register("fleet.client.hedges", hedges_);
  reg.Register("fleet.client.hedge_wins", hedge_wins_);
  reg.Register("fleet.client.hedge_wasted", hedge_wasted_);
}

FleetClient::~FleetClient() { ReapHedges(/*join_all=*/true); }

void FleetClient::ReapHedges(bool join_all) {
  std::vector<std::pair<std::thread, std::shared_ptr<HedgeAttempt>>> joinable;
  {
    std::lock_guard<std::mutex> lk(hedge_mu_);
    for (auto it = hedge_reap_.begin(); it != hedge_reap_.end();) {
      bool done;
      {
        std::lock_guard<std::mutex> slk(it->second->mu);
        done = it->second->done;
      }
      if (done || join_all) {
        joinable.push_back(std::move(*it));
        it = hedge_reap_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [t, state] : joinable) {
    if (t.joinable()) t.join();
  }
}

ShardMap FleetClient::Map() const {
  std::shared_lock<std::shared_mutex> lk(map_mu_);
  return map_;
}

std::unique_ptr<svc::SpClient> FleetClient::Borrow(std::uint32_t shard,
                                                   std::uint32_t replica) {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    auto it = pool_.find({shard, replica});
    if (it != pool_.end() && !it->second.empty()) {
      auto client = std::move(it->second.back());
      it->second.pop_back();
      return client;
    }
  }
  // Decorrelate backoff jitter across backends so a fleet-wide incident does
  // not retry in lockstep.
  svc::RetryPolicy policy = config_.retry;
  policy.jitter_seed ^= std::uint64_t{shard} * 1009 + replica * 101 + 1;
  return std::make_unique<svc::SpClient>(backends_(shard, replica), policy);
}

void FleetClient::Return(std::uint32_t shard, std::uint32_t replica,
                         std::unique_ptr<svc::SpClient> client) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_[{shard, replica}].push_back(std::move(client));
}

Result<FleetClient::Slice> FleetClient::QueryReplica(
    const ShardMap& map, svc::Op op, const ShardMap::SubQuery& sub,
    std::uint64_t account, std::uint32_t replica, bool* stale) {
  using R = Result<Slice>;
  const auto started = std::chrono::steady_clock::now();
  auto client = Borrow(sub.shard_id, replica);
  // Whatever happens below, the client goes back to the pool: SpClient owns
  // reconnection, so even after a transport fault it is reusable.
  struct Returner {
    FleetClient* self;
    std::uint32_t shard, replica;
    std::unique_ptr<svc::SpClient>& client;
    ~Returner() { self->Return(shard, replica, std::move(client)); }
  } returner{this, sub.shard_id, replica, client};

  // A reply that fails cryptographic verification is EVIDENCE of misbehavior
  // (not bad luck): record the query, a digest of what was served, and the
  // certificate the replica presented, then quarantine it fleet-wide.
  auto misbehave = [&](const Status& verdict, ByteView reply_payload,
                       const core::BlockCertificate* cert) -> R {
    verify_failures_->Add(1);
    MisbehaviorEvidence ev;
    ev.map_version = map.Version();
    ev.shard_id = sub.shard_id;
    ev.replica = replica;
    ev.op = static_cast<std::uint8_t>(op);
    ev.account = account;
    ev.from_height = sub.from_height;
    ev.to_height = sub.to_height;
    ev.reply_digest = crypto::Sha256::Digest(reply_payload);
    if (cert != nullptr) ev.offending_cert = cert->Serialize();
    ev.verdict = verdict.message();
    health_->ReportMisbehavior(ev);
    return R(verdict);
  };
  // Benign transport-level failure (or kBusy exhaustion): feed the breaker.
  // kStaleShard is the MAP being stale, not the replica failing — no report.
  auto benign = [&](const Status& st) -> R {
    if (client->LastReplyStaleShard()) {
      *stale = true;
    } else {
      health_->ReportFailure(sub.shard_id, replica);
    }
    return R(st);
  };

  const int races = std::max(1, config_.max_tip_races);
  for (int attempt = 0; attempt < races; ++attempt) {
    auto reply = op == svc::Op::kHistorical
                     ? client->HistoricalSharded(map.Version(), sub.shard_id,
                                                 account, sub.from_height,
                                                 sub.to_height)
                     : client->AggregateSharded(map.Version(), sub.shard_id,
                                                account, sub.from_height,
                                                sub.to_height);
    if (!reply.ok()) return benign(reply.status());
    const Bytes proof_bytes = reply.value().proof.Serialize();
    auto tip = client->FetchTipSharded(map.Version(), sub.shard_id);
    if (!tip.ok()) return benign(tip.status());
    if (tip.value().header.height != reply.value().tip_height) {
      if (tip.value().header.height < reply.value().tip_height) {
        // A tip can only advance; going backwards between two calls on the
        // same connection means the replica is lying or broken.
        return misbehave(Status::Error("fleet: replica tip went backwards"),
                         proof_bytes, &tip.value().block_cert);
      }
      continue;  // a block landed between query and tip fetch; retry at it
    }

    // Verify exactly as a standalone superlight client would: certificates
    // first (block cert signs the header, index cert binds the digest, both
    // from the pinned enclave), then the proof against the certified digest.
    core::SuperlightClient verifier(config_.expected_measurement);
    if (Status st = verifier.ValidateAndAccept(tip.value().header,
                                               tip.value().block_cert);
        !st) {
      return misbehave(st.WithContext("fleet: block cert"), proof_bytes,
                       &tip.value().block_cert);
    }
    if (Status st = verifier.AcceptIndexCert(
            tip.value().header, tip.value().index_cert,
            tip.value().index_digest, "historical");
        !st) {
      return misbehave(st.WithContext("fleet: index cert"), proof_bytes,
                       &tip.value().index_cert);
    }
    Slice out;
    out.tip_height = tip.value().header.height;
    if (op == svc::Op::kHistorical) {
      auto versions = query::HistoricalIndex::VerifyQuery(
          tip.value().index_digest, account, sub.from_height, sub.to_height,
          reply.value().proof);
      if (!versions.ok()) {
        return misbehave(versions.status().WithContext("fleet: query proof"),
                         proof_bytes, &tip.value().block_cert);
      }
      out.versions = std::move(versions.value());
    } else {
      auto agg = query::HistoricalIndex::VerifyAggregateQuery(
          tip.value().index_digest, account, sub.from_height, sub.to_height,
          reply.value().proof);
      if (!agg.ok()) {
        return misbehave(agg.status().WithContext("fleet: aggregate proof"),
                         proof_bytes, &tip.value().block_cert);
      }
      out.aggregate = agg.value();
    }
    verified_->Add(1);
    health_->ReportSuccess(
        sub.shard_id, replica,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started)
                .count()));
    return out;
  }
  // The tip kept advancing — contention, not a fault of this replica; leave
  // its breaker untouched and let the caller fail over.
  return R::Error("fleet: tip kept advancing during query");
}

Result<FleetClient::Slice> FleetClient::QueryReplicaHedged(
    const ShardMap& map, svc::Op op, const ShardMap::SubQuery& sub,
    std::uint64_t account, std::uint32_t primary, std::uint32_t secondary,
    bool* stale, bool* used_secondary) {
  using R = Result<Slice>;
  *used_secondary = false;
  ReapHedges(/*join_all=*/false);

  // Everything a worker touches is either captured by value or owned by
  // `this` (pool, counters, health) — and the destructor joins stragglers
  // before any of that dies.
  auto wake = std::make_shared<HedgeWake>();
  auto spawn = [this, map, op, sub, account, wake](std::uint32_t replica)
      -> std::pair<std::thread, std::shared_ptr<HedgeAttempt>> {
    auto state = std::make_shared<HedgeAttempt>();
    std::thread t([this, map, op, sub, account, replica, state, wake] {
      bool attempt_stale = false;
      auto result = QueryReplica(map, op, sub, account, replica,
                                 &attempt_stale);
      {
        std::lock_guard<std::mutex> lk(state->mu);
        state->stale = attempt_stale;
        state->result = std::move(result);
        state->done = true;
        if (state->winner_taken) hedge_wasted_->Add(1);
        state->cv.notify_all();
      }
      std::lock_guard<std::mutex> wlk(wake->mu);
      ++wake->completions;
      wake->cv.notify_all();
    });
    return {std::move(t), std::move(state)};
  };

  auto [t1, s1] = spawn(primary);
  const auto delay = std::chrono::microseconds(health_->HedgeDelayUs(
      config_.hedge_min_delay_us, config_.hedge_max_delay_us));
  bool primary_done;
  {
    std::unique_lock<std::mutex> lk(s1->mu);
    primary_done = s1->cv.wait_for(lk, delay, [&] { return s1->done; });
  }
  // Admit the secondary only now, immediately before actually querying it —
  // admitting it up front would consume a half-open probe slot for a request
  // that may never happen (a fast primary), wedging that backend's breaker.
  if (primary_done || !health_->AllowRequest(sub.shard_id, secondary)) {
    if (!primary_done) {
      // Secondary inadmissible (e.g. its probe slot was just taken): no
      // hedge, just ride the primary out.
      std::unique_lock<std::mutex> lk(s1->mu);
      s1->cv.wait(lk, [&] { return s1->done; });
    }
    t1.join();
    if (s1->stale) *stale = true;
    return std::move(*s1->result);
  }

  // Primary is past the adaptive delay: hedge on the secondary and take the
  // first finisher (both results are verified before they count, so "first"
  // never trades latency for trust).
  hedges_->Add(1);
  *used_secondary = true;
  auto [t2, s2] = spawn(secondary);
  // First VERIFIED reply wins; a finished failure never preempts the other
  // attempt while it is still running (a failed primary must not discard a
  // secondary about to deliver the answer). Both failed -> primary's error.
  int winner = -1;
  while (winner < 0) {
    int seen;
    {
      std::lock_guard<std::mutex> wlk(wake->mu);
      seen = wake->completions;
    }
    bool done0, done1, ok0 = false, ok1 = false;
    {
      std::lock_guard<std::mutex> lk(s1->mu);
      done0 = s1->done;
      if (done0) ok0 = s1->result->ok();
    }
    {
      std::lock_guard<std::mutex> lk(s2->mu);
      done1 = s2->done;
      if (done1) ok1 = s2->result->ok();
    }
    if (done0 && ok0) {
      winner = 0;
    } else if (done1 && ok1) {
      winner = 1;
    } else if (done0 && done1) {
      winner = 0;
    } else {
      // Sleep until either attempt newly completes. A completion that lands
      // between the snapshot above and this wait bumps `completions` past
      // `seen`, so the predicate is already true and we never miss it.
      std::unique_lock<std::mutex> wlk(wake->mu);
      wake->cv.wait(wlk, [&] { return wake->completions != seen; });
    }
  }
  if (winner == 1) hedge_wins_->Add(1);
  // Mark the loser's state so its late completion counts as wasted work,
  // then hand the thread(s) to the reaper: the loser must not delay the
  // winner's reply.
  std::thread threads[2] = {std::move(t1), std::move(t2)};
  std::shared_ptr<HedgeAttempt> shared[2] = {s1, s2};
  R out = R(Status::Error("fleet: hedge lost state"));
  for (int i = 0; i < 2; ++i) {
    std::unique_lock<std::mutex> lk(shared[i]->mu);
    if (i == winner) {
      if (shared[i]->stale) *stale = true;
      out = std::move(*shared[i]->result);
      lk.unlock();
      threads[i].join();
    } else if (shared[i]->done) {
      lk.unlock();
      threads[i].join();
    } else {
      shared[i]->winner_taken = true;
      lk.unlock();
      std::lock_guard<std::mutex> rlk(hedge_mu_);
      hedge_reap_.emplace_back(std::move(threads[i]), shared[i]);
    }
  }
  return out;
}

Result<FleetClient::Slice> FleetClient::QueryShard(
    const ShardMap& map, svc::Op op, const ShardMap::SubQuery& sub,
    std::uint64_t account, bool* stale) {
  using R = Result<Slice>;
  const std::uint32_t replicas = map.Replicas();
  std::uint32_t start;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    start = static_cast<std::uint32_t>(rr_++ % replicas);
  }
  // Route only to replicas whose breaker looks admissible (non-mutating
  // Routable check — the actual probe-consuming AllowRequest happens
  // immediately before each attempt, so candidates that are never queried
  // cannot strand a half-open probe slot). If every breaker is open, fall
  // back to trying them anyway — an open breaker is advisory backoff, and
  // total unavailability is worse than a doomed attempt. Quarantine is NEVER
  // overridden: a replica with misbehavior evidence gets no traffic until
  // operator release, even if it is the last one standing.
  bool breakers_bypassed = false;
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i < replicas; ++i) {
    const std::uint32_t replica = (start + i) % replicas;
    if (health_->Routable(sub.shard_id, replica)) {
      candidates.push_back(replica);
    } else {
      breaker_skips_->Add(1);
    }
  }
  if (candidates.empty()) {
    breakers_bypassed = true;
    for (std::uint32_t i = 0; i < replicas; ++i) {
      const std::uint32_t replica = (start + i) % replicas;
      if (!health_->Quarantined(replica)) candidates.push_back(replica);
    }
    if (candidates.empty()) {
      return R::Error("fleet: every replica of shard " +
                      std::to_string(sub.shard_id) +
                      " is quarantined for misbehavior; operator release "
                      "required");
    }
  }
  // Admission gate used at attempt time (and for cross-check partners): in
  // bypass mode breakers are ignored but quarantine still holds.
  auto admit = [&](std::uint32_t replica) {
    return breakers_bypassed ? !health_->Quarantined(replica)
                             : health_->AllowRequest(sub.shard_id, replica);
  };
  Status last = Status::Error("fleet: no replicas configured");
  bool hedge_tried_secondary = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::uint32_t replica = candidates[i];
    if (i == 1 && hedge_tried_secondary) continue;  // hedge already tried it
    if (!admit(replica)) {
      // State moved between the Routable scan and now (another thread took
      // the probe slot, or new evidence quarantined the replica): skip.
      breaker_skips_->Add(1);
      continue;
    }
    // Hedge only the first attempt (failovers are already the slow path) and
    // only when a distinct second replica exists; the secondary's own
    // admission happens inside QueryReplicaHedged at hedge-fire time.
    const bool hedge = config_.hedge && !breakers_bypassed && i == 0 &&
                       candidates.size() > 1;
    auto slice =
        hedge ? QueryReplicaHedged(map, op, sub, account, replica,
                                   candidates[1], stale, &hedge_tried_secondary)
              : QueryReplica(map, op, sub, account, replica, stale);
    if (*stale) return slice;  // caller refreshes the map and re-splits
    if (!slice.ok()) {
      last = slice.status();
      if (i + 1 < candidates.size()) failovers_->Add(1);
      continue;
    }
    if (config_.cross_check && replicas > 1) {
      // Paranoid mode: the same subquery must verify identically on a second
      // replica. Both results passed cryptographic verification already, so
      // a mismatch means the replicas serve divergent certified views (e.g.
      // one lags the announcement stream) — surface it, don't pick one.
      cross_checks_->Add(1);
      // The partner comes from the admitted candidate list (never a
      // quarantined or breaker-blocked replica); no admissible partner fails
      // the cross-check rather than silently skipping it.
      std::optional<std::uint32_t> other;
      for (const std::uint32_t cand : candidates) {
        if (cand != replica && admit(cand)) {
          other = cand;
          break;
        }
      }
      if (!other.has_value()) {
        return R::Error(
            "fleet: cross-check impossible: no admissible second replica for "
            "shard " +
            std::to_string(sub.shard_id));
      }
      auto check = QueryReplica(map, op, sub, account, *other, stale);
      if (*stale) return check;
      if (!check.ok()) {
        return R(check.status().WithContext("fleet: cross-check replica"));
      }
      const bool same =
          op == svc::Op::kHistorical
              ? check.value().versions == slice.value().versions
              : (check.value().aggregate.count ==
                     slice.value().aggregate.count &&
                 check.value().aggregate.sum == slice.value().aggregate.sum);
      if (!same) {
        cross_check_mismatches_->Add(1);
        return R::Error(
            "fleet: cross-check mismatch between replicas " +
            std::to_string(replica) + " and " + std::to_string(*other) +
            " of shard " + std::to_string(sub.shard_id) + " (tips " +
            std::to_string(slice.value().tip_height) + " vs " +
            std::to_string(check.value().tip_height) + ")");
      }
    }
    return slice;
  }
  return R(last);
}

Result<FleetClient::Slice> FleetClient::Run(svc::Op op, std::uint64_t account,
                                            std::uint64_t from_height,
                                            std::uint64_t to_height) {
  using R = Result<Slice>;
  queries_->Add(1);
  if (from_height > to_height) {
    giveups_->Add(1);
    return R::Error("fleet: empty query window");
  }
  for (int refresh = 0;; ++refresh) {
    const ShardMap map = Map();
    const auto subs = map.Split(account, from_height, to_height);
    Slice merged;
    bool stale = false;
    Status failure = Status::Ok();
    for (const auto& sub : subs) {
      subqueries_->Add(1);
      auto piece = QueryShard(map, op, sub, account, &stale);
      if (stale) break;
      if (!piece.ok()) {
        failure = piece.status();
        break;
      }
      // Bands are disjoint and ascending, so concatenation preserves
      // block-height order without a sort.
      merged.versions.insert(merged.versions.end(),
                             piece.value().versions.begin(),
                             piece.value().versions.end());
      merged.aggregate += piece.value().aggregate;
      merged.tip_height = std::max(merged.tip_height,
                                   piece.value().tip_height);
    }
    if (stale) {
      if (refresh >= config_.max_map_refreshes) {
        giveups_->Add(1);
        return R::Error("fleet: shard map still stale after " +
                        std::to_string(refresh) + " refreshes");
      }
      if (Status st = RefreshMap(); !st) {
        giveups_->Add(1);
        return R(st.WithContext("fleet: map refresh"));
      }
      continue;
    }
    if (!failure) {
      giveups_->Add(1);
      return R(failure);
    }
    return merged;
  }
}

Result<std::vector<query::HistoricalVersion>> FleetClient::Historical(
    std::uint64_t account, std::uint64_t from_height,
    std::uint64_t to_height) {
  auto slice = Run(svc::Op::kHistorical, account, from_height, to_height);
  if (!slice.ok()) {
    return Result<std::vector<query::HistoricalVersion>>(slice.status());
  }
  return std::move(slice.value().versions);
}

Result<mht::MbAggregate> FleetClient::Aggregate(std::uint64_t account,
                                                std::uint64_t from_height,
                                                std::uint64_t to_height) {
  auto slice = Run(svc::Op::kAggregate, account, from_height, to_height);
  if (!slice.ok()) return Result<mht::MbAggregate>(slice.status());
  return slice.value().aggregate;
}

std::vector<Result<std::vector<query::HistoricalVersion>>>
FleetClient::HistoricalMany(const std::vector<QuerySpec>& specs) {
  using Item = Result<std::vector<query::HistoricalVersion>>;
  std::vector<Item> results(specs.size(), Item(Status::Error("not run")));
  if (specs.empty()) return results;
  const std::size_t workers =
      std::min(std::max<std::size_t>(1, config_.fanout_threads), specs.size());
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) break;
      results[i] = Historical(specs[i].account, specs[i].from_height,
                              specs[i].to_height);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(work);
  for (auto& t : threads) t.join();
  return results;
}

Status FleetClient::RefreshMap() {
  map_refreshes_->Add(1);
  const ShardMap cur = Map();
  Status last = Status::Error("fleet: no backend answered a map fetch");
  for (std::uint32_t shard = 0; shard < cur.TotalShards(); ++shard) {
    for (std::uint32_t replica = 0; replica < cur.Replicas(); ++replica) {
      auto client = Borrow(shard, replica);
      auto bytes = client->FetchShardMap();
      Return(shard, replica, std::move(client));
      if (!bytes.ok()) {
        last = bytes.status();
        continue;
      }
      auto fresh = ShardMap::Deserialize(bytes.value());
      if (!fresh.ok()) {
        last = fresh.status();
        continue;
      }
      std::unique_lock<std::shared_mutex> lk(map_mu_);
      if (fresh.value().Version() >= map_.Version()) {
        map_ = std::move(fresh.value());
      }
      return Status::Ok();
    }
  }
  return last;
}

FleetClientStats FleetClient::Stats() const {
  FleetClientStats s;
  s.queries = queries_->Value();
  s.subqueries = subqueries_->Value();
  s.verified = verified_->Value();
  s.verify_failures = verify_failures_->Value();
  s.failovers = failovers_->Value();
  s.map_refreshes = map_refreshes_->Value();
  s.cross_checks = cross_checks_->Value();
  s.cross_check_mismatches = cross_check_mismatches_->Value();
  s.giveups = giveups_->Value();
  s.breaker_skips = breaker_skips_->Value();
  s.hedges = hedges_->Value();
  s.hedge_wins = hedge_wins_->Value();
  s.hedge_wasted = hedge_wasted_->Value();
  return s;
}

}  // namespace dcert::fleet
