#include "fleet/shard_map.h"

#include <algorithm>

#include "common/serialize.h"

namespace dcert::fleet {

Result<ShardMap> ShardMap::Create(
    const ShardMapConfig& cfg, std::vector<std::vector<std::string>> endpoints) {
  using R = Result<ShardMap>;
  if (cfg.version == 0) {
    return R::Error("shard map: version 0 is reserved for unsharded servers");
  }
  if (cfg.key_shards == 0 || cfg.height_bands == 0) {
    return R::Error("shard map: key_shards and height_bands must be >= 1");
  }
  if (cfg.height_bands > 1 && cfg.band_blocks == 0) {
    return R::Error("shard map: band_blocks required with multiple bands");
  }
  if (cfg.replicas == 0) {
    return R::Error("shard map: at least one replica per shard");
  }
  // Keep the grid small enough that shard_id arithmetic cannot overflow and
  // fan-out stays sane.
  if (cfg.key_shards > 4096 || cfg.height_bands > 4096 ||
      cfg.replicas > 64) {
    return R::Error("shard map: implausible shard/replica counts");
  }
  const std::size_t total =
      static_cast<std::size_t>(cfg.key_shards) * cfg.height_bands;
  if (endpoints.empty()) {
    endpoints.assign(total, std::vector<std::string>(cfg.replicas));
  }
  if (endpoints.size() != total) {
    return R::Error("shard map: endpoint rows != total shards");
  }
  for (const auto& row : endpoints) {
    if (row.size() != cfg.replicas) {
      return R::Error("shard map: endpoint row size != replicas");
    }
  }
  ShardMap map;
  map.cfg_ = cfg;
  map.endpoints_ = std::move(endpoints);
  return map;
}

std::uint32_t ShardMap::KeyShardOf(std::uint64_t account) const {
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(account) * cfg_.key_shards;
  return static_cast<std::uint32_t>(prod >> 64);
}

std::uint64_t ShardMap::KeyLo(std::uint32_t ks) const {
  if (ks == 0) return 0;
  const unsigned __int128 num = static_cast<unsigned __int128>(ks) << 64;
  return static_cast<std::uint64_t>((num + cfg_.key_shards - 1) /
                                    cfg_.key_shards);
}

std::uint32_t ShardMap::BandOf(std::uint64_t height) const {
  if (cfg_.height_bands == 1) return 0;
  const std::uint64_t band = height / cfg_.band_blocks;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(band, cfg_.height_bands - 1));
}

std::uint64_t ShardMap::HeightLo(std::uint32_t band) const {
  return cfg_.height_bands == 1 ? 0 : band * cfg_.band_blocks;
}

std::uint64_t ShardMap::HeightHi(std::uint32_t band) const {
  if (band + 1 >= cfg_.height_bands) return ~std::uint64_t{0};
  return (band + 1) * cfg_.band_blocks - 1;
}

std::vector<ShardMap::SubQuery> ShardMap::Split(
    std::uint64_t account, std::uint64_t from_height,
    std::uint64_t to_height) const {
  std::vector<SubQuery> out;
  if (from_height > to_height) return out;
  const std::uint32_t ks = KeyShardOf(account);
  std::uint64_t cursor = from_height;
  std::uint32_t band = BandOf(from_height);
  while (true) {
    const std::uint64_t end = std::min(to_height, HeightHi(band));
    out.push_back({ks * cfg_.height_bands + band, cursor, end});
    if (end >= to_height) break;
    cursor = end + 1;
    ++band;
  }
  return out;
}

svc::ShardAssignment ShardMap::AssignmentFor(std::uint32_t shard_id) const {
  const std::uint32_t ks = shard_id / cfg_.height_bands;
  const std::uint32_t band = shard_id % cfg_.height_bands;
  svc::ShardAssignment a;
  a.map_version = cfg_.version;
  a.shard_id = shard_id;
  a.total_shards = TotalShards();
  a.key_lo = KeyLo(ks);
  a.key_hi = ks + 1 == cfg_.key_shards ? ~std::uint64_t{0} : KeyLo(ks + 1) - 1;
  a.height_lo = HeightLo(band);
  a.height_hi = HeightHi(band);
  return a;
}

Bytes ShardMap::Serialize() const {
  Encoder enc;
  enc.U64(cfg_.version);
  enc.U32(cfg_.key_shards);
  enc.U32(cfg_.height_bands);
  enc.U64(cfg_.band_blocks);
  enc.U32(cfg_.replicas);
  for (const auto& row : endpoints_) {
    for (const auto& ep : row) enc.Str(ep);
  }
  return enc.Take();
}

Result<ShardMap> ShardMap::Deserialize(ByteView bytes) {
  using R = Result<ShardMap>;
  try {
    Decoder dec(bytes);
    ShardMapConfig cfg;
    cfg.version = dec.U64();
    cfg.key_shards = dec.U32();
    cfg.height_bands = dec.U32();
    cfg.band_blocks = dec.U64();
    cfg.replicas = dec.U32();
    // Validate the grid before sizing allocations from untrusted counts.
    auto probe = Create(cfg);
    if (!probe.ok()) return probe;
    const std::size_t total =
        static_cast<std::size_t>(cfg.key_shards) * cfg.height_bands;
    std::vector<std::vector<std::string>> endpoints(total);
    for (auto& row : endpoints) {
      row.reserve(cfg.replicas);
      for (std::uint32_t r = 0; r < cfg.replicas; ++r) row.push_back(dec.Str());
    }
    dec.ExpectEnd();
    return Create(cfg, std::move(endpoints));
  } catch (const DecodeError& e) {
    return R::Error(std::string("shard map: ") + e.what());
  }
}

}  // namespace dcert::fleet
