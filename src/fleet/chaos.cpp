#include "fleet/chaos.h"

namespace dcert::fleet {

namespace {

/// Distinct sub-seeds per plane so tweaking one plane's rate never shifts
/// another plane's deterministic schedule (splitmix-style mix).
std::uint64_t PlaneSeed(std::uint64_t seed, std::uint64_t plane) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (plane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kNetPlane = 1;
constexpr std::uint64_t kDiskPlane = 2;
constexpr std::uint64_t kCrashPlane = 3;

}  // namespace

ChaosPlan::ChaosPlan(ChaosPlanConfig config)
    : config_(config), crash_rng_(PlaneSeed(config.seed, kCrashPlane)) {}

svc::FaultConfig ChaosPlan::NetworkFaults(std::uint64_t stream_id) const {
  const double r = config_.net_fault_rate;
  svc::FaultConfig net;
  // Drops dominate (they exercise the timeout/redial path); payload damage
  // and reordering are rarer so most cycles still complete work.
  net.drop_rate = r;
  net.delay_rate = r;
  net.truncate_rate = r / 2;
  net.duplicate_rate = r / 2;
  net.corrupt_rate = r / 2;
  net.reorder_rate = r / 2;
  net.refuse_connect_rate = r / 2;
  net.delay_ms_max = 5;
  net.seed = PlaneSeed(config_.seed, kNetPlane) ^ stream_id;
  return net;
}

common::IoFaultConfig ChaosPlan::DiskFaults() const {
  const double r = config_.disk_fault_rate;
  common::IoFaultConfig disk;
  disk.fail_write_rate = r;
  disk.short_write_rate = r / 2;
  disk.fail_fsync_rate = r / 2;
  disk.seed = PlaneSeed(config_.seed, kDiskPlane);
  return disk;
}

ChaosPlan::CrashChoice ChaosPlan::NextCrash(
    const std::vector<std::string>& sites) {
  CrashChoice choice;
  if (sites.empty() || !crash_rng_.Chance(config_.crash_rate)) return choice;
  choice.arm = true;
  choice.site = sites[crash_rng_.NextBelow(sites.size())];
  choice.countdown = crash_rng_.NextRange(1, 3);
  return choice;
}

}  // namespace dcert::fleet
