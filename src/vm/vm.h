// Stack-machine bytecode VM — the transaction execution engine (the paper
// uses the Rust EVM; see DESIGN.md for the substitution). Contracts are
// bytecode programs operating on 64-bit words with a per-contract key-value
// storage. Execution is deterministic and captures the read and write sets
// the certificate engine needs (Alg. 1 line 2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dcert::vm {

/// Instruction set. One byte per opcode; PUSH carries an 8-byte immediate.
enum class Op : std::uint8_t {
  kStop = 0x00,    // halt successfully
  kPush = 0x01,    // push u64 immediate
  kPop = 0x02,     // discard top
  kDup = 0x03,     // imm n: duplicate the n-th element from the top (0 = top)
  kSwap = 0x04,    // imm n: swap top with the n-th element below it
  kAdd = 0x10,     // a b -> a+b (wrapping)
  kSub = 0x11,     // a b -> a-b (wrapping)
  kMul = 0x12,     // a b -> a*b (wrapping)
  kDiv = 0x13,     // a b -> a/b (0 on division by zero)
  kMod = 0x14,     // a b -> a%b (0 on modulo by zero)
  kLt = 0x15,      // a b -> a<b
  kGt = 0x16,      // a b -> a>b
  kEq = 0x17,      // a b -> a==b
  kAnd = 0x18,     // bitwise
  kOr = 0x19,
  kXor = 0x1a,
  kNot = 0x1b,     // bitwise complement
  kJump = 0x20,    // imm target: unconditional jump
  kJumpI = 0x21,   // imm target: jump when popped condition != 0
  kSload = 0x30,   // key -> value (0 when unset)
  kSstore = 0x31,  // key value ->
  kCaller = 0x40,  // -> low 64 bits of the sender address
  kArg = 0x41,     // imm i: -> i-th calldata word (0 when absent)
  kArgc = 0x42,    // -> number of calldata words
  kHash = 0x43,    // a b -> low 64 bits of H(a || b) (cheap in-VM hashing)
  kRevert = 0xfe,  // abort, discarding writes
};

/// A compiled program.
struct Program {
  Bytes code;

  bool operator==(const Program&) const = default;
};

/// Assembles mnemonic text into bytecode. One instruction per line; labels
/// are `name:` definitions and `@name` references; `;` starts a comment.
/// Throws std::invalid_argument with a line-numbered message on bad input.
Program Assemble(const std::string& source);

/// Storage interface the VM executes against. Keys are 64-bit words scoped
/// by contract (the binding to global state keys happens in the chain layer).
class StorageView {
 public:
  virtual ~StorageView() = default;
  /// Reads a storage slot; 0 when unset. Implementations record read sets.
  virtual std::uint64_t Load(std::uint64_t key) = 0;
  /// Writes a storage slot. Implementations buffer writes.
  virtual void Store(std::uint64_t key, std::uint64_t value) = 0;
};

/// Execution outcome.
struct ExecResult {
  bool success = false;       // false = revert or error
  std::string error;          // empty on success or plain revert
  std::uint64_t steps = 0;    // instructions executed
  std::vector<std::uint64_t> stack;  // final stack (top = back), for tests
};

struct ExecContext {
  std::uint64_t caller = 0;                // sender identity word
  std::vector<std::uint64_t> calldata;     // input words
  std::uint64_t step_limit = 1'000'000;    // gas analogue
};

/// Executes `program` against `storage`. Never throws on malformed bytecode —
/// execution errors surface as !success (the chain treats them as reverts).
ExecResult Execute(const Program& program, const ExecContext& ctx,
                   StorageView& storage);

}  // namespace dcert::vm
