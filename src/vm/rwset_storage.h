// StorageView implementations used by the certificate engine:
//  * RwSetRecorder wraps a backing key-value map, records first-reads into
//    the read set and buffers writes (the CI's comp_data_set, Alg. 1 line 2);
//  * ReadSetStorage serves reads ONLY from a verified read set — how the
//    enclave replays transactions without touching untrusted state
//    (Alg. 2 lines 18-21). A read outside the set aborts the replay.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>

#include "vm/vm.h"

namespace dcert::vm {

/// The chain layer resolves contract-scoped slot keys into these flat 64-bit
/// keys before execution; within one contract execution keys are local.
using SlotMap = std::map<std::uint64_t, std::uint64_t>;

/// Records the read/write sets of an execution over a backing slot map.
/// Reads observe earlier writes of the same execution (read-your-writes).
class RwSetRecorder final : public StorageView {
 public:
  explicit RwSetRecorder(const SlotMap& backing) : backing_(&backing) {}

  std::uint64_t Load(std::uint64_t key) override {
    if (auto it = writes_.find(key); it != writes_.end()) return it->second;
    auto backing_it = backing_->find(key);
    std::uint64_t value = backing_it == backing_->end() ? 0 : backing_it->second;
    reads_.emplace(key, value);  // first read wins; later reads agree anyway
    return value;
  }

  void Store(std::uint64_t key, std::uint64_t value) override {
    writes_[key] = value;
  }

  /// Key -> observed pre-state value (0 = unset).
  const SlotMap& reads() const { return reads_; }
  /// Key -> final written value.
  const SlotMap& writes() const { return writes_; }

  void DiscardWrites() { writes_.clear(); }

 private:
  const SlotMap* backing_;
  SlotMap reads_;
  SlotMap writes_;
};

/// Thrown when trusted replay reads a slot that is not in the verified read
/// set — the update proof was incomplete, so certification must abort.
class ReadOutsideReadSet : public std::runtime_error {
 public:
  explicit ReadOutsideReadSet(std::uint64_t key)
      : std::runtime_error("read of slot " + std::to_string(key) +
                           " outside the verified read set") {}
};

/// Enclave-side storage: reads come from the verified read set (plus this
/// replay's own writes); writes are buffered for the state-root update.
class ReadSetStorage final : public StorageView {
 public:
  explicit ReadSetStorage(const SlotMap& read_set) : read_set_(&read_set) {}

  std::uint64_t Load(std::uint64_t key) override {
    if (auto it = writes_.find(key); it != writes_.end()) return it->second;
    auto read_it = read_set_->find(key);
    if (read_it == read_set_->end()) throw ReadOutsideReadSet(key);
    return read_it->second;
  }

  void Store(std::uint64_t key, std::uint64_t value) override {
    writes_[key] = value;
  }

  const SlotMap& writes() const { return writes_; }
  void DiscardWrites() { writes_.clear(); }

 private:
  const SlotMap* read_set_;
  SlotMap writes_;
};

}  // namespace dcert::vm
