#include "vm/vm.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::vm {

namespace {

/// Opcodes that carry an 8-byte immediate.
bool HasImmediate(Op op) {
  switch (op) {
    case Op::kPush:
    case Op::kDup:
    case Op::kSwap:
    case Op::kJump:
    case Op::kJumpI:
    case Op::kArg:
      return true;
    default:
      return false;
  }
}

const std::unordered_map<std::string, Op>& Mnemonics() {
  static const std::unordered_map<std::string, Op> table = {
      {"stop", Op::kStop},     {"push", Op::kPush},   {"pop", Op::kPop},
      {"dup", Op::kDup},       {"swap", Op::kSwap},   {"add", Op::kAdd},
      {"sub", Op::kSub},       {"mul", Op::kMul},     {"div", Op::kDiv},
      {"mod", Op::kMod},       {"lt", Op::kLt},       {"gt", Op::kGt},
      {"eq", Op::kEq},         {"and", Op::kAnd},     {"or", Op::kOr},
      {"xor", Op::kXor},       {"not", Op::kNot},     {"jump", Op::kJump},
      {"jumpi", Op::kJumpI},   {"sload", Op::kSload}, {"sstore", Op::kSstore},
      {"caller", Op::kCaller}, {"arg", Op::kArg},     {"argc", Op::kArgc},
      {"hash", Op::kHash},     {"revert", Op::kRevert},
  };
  return table;
}

void EmitU64(Bytes& code, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) code.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t ReadU64(const Bytes& code, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(code[pos + static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace

Program Assemble(const std::string& source) {
  struct PendingLabel {
    std::string name;
    std::size_t patch_pos;
    int line;
  };
  Bytes code;
  std::unordered_map<std::string, std::uint64_t> labels;
  std::vector<PendingLabel> pending;

  std::istringstream stream(source);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments and whitespace.
    if (auto pos = line.find(';'); pos != std::string::npos) line.resize(pos);
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word)) continue;

    if (word.back() == ':') {
      word.pop_back();
      if (word.empty() || labels.count(word) != 0) {
        throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                    ": bad or duplicate label");
      }
      labels[word] = code.size();
      if (!(tokens >> word)) continue;  // label-only line
    }

    auto it = Mnemonics().find(word);
    if (it == Mnemonics().end()) {
      throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                  ": unknown mnemonic '" + word + "'");
    }
    Op op = it->second;
    code.push_back(static_cast<std::uint8_t>(op));
    if (HasImmediate(op)) {
      std::string operand;
      if (!(tokens >> operand)) {
        throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                    ": missing operand");
      }
      if (operand[0] == '@') {
        pending.push_back({operand.substr(1), code.size(), line_no});
        EmitU64(code, 0);
      } else {
        try {
          EmitU64(code, std::stoull(operand, nullptr, 0));
        } catch (const std::exception&) {
          throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                      ": bad numeric operand '" + operand + "'");
        }
      }
    }
    std::string extra;
    if (tokens >> extra) {
      throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                  ": trailing tokens");
    }
  }

  for (const PendingLabel& p : pending) {
    auto it = labels.find(p.name);
    if (it == labels.end()) {
      throw std::invalid_argument("asm line " + std::to_string(p.line) +
                                  ": undefined label '@" + p.name + "'");
    }
    std::uint64_t target = it->second;
    for (int i = 0; i < 8; ++i) {
      code[p.patch_pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(target >> (8 * i));
    }
  }
  return Program{std::move(code)};
}

ExecResult Execute(const Program& program, const ExecContext& ctx,
                   StorageView& storage) {
  ExecResult result;
  std::vector<std::uint64_t>& stack = result.stack;
  const Bytes& code = program.code;
  std::size_t pc = 0;

  auto fail = [&result](const std::string& why) {
    result.success = false;
    result.error = why;
    return result;
  };

  while (true) {
    if (result.steps++ >= ctx.step_limit) return fail("step limit exceeded");
    if (pc >= code.size()) return fail("program counter out of bounds");
    Op op = static_cast<Op>(code[pc]);
    std::uint64_t imm = 0;
    std::size_t next = pc + 1;
    if (HasImmediate(op)) {
      if (code.size() - next < 8) return fail("truncated immediate");
      imm = ReadU64(code, next);
      next += 8;
    }

    auto need = [&stack](std::size_t n) { return stack.size() >= n; };
    auto pop = [&stack] {
      std::uint64_t v = stack.back();
      stack.pop_back();
      return v;
    };

    switch (op) {
      case Op::kStop:
        result.success = true;
        return result;
      case Op::kRevert:
        result.success = false;
        return result;
      case Op::kPush:
        stack.push_back(imm);
        break;
      case Op::kPop:
        if (!need(1)) return fail("stack underflow");
        stack.pop_back();
        break;
      case Op::kDup:
        if (!need(static_cast<std::size_t>(imm) + 1)) return fail("dup underflow");
        stack.push_back(stack[stack.size() - 1 - static_cast<std::size_t>(imm)]);
        break;
      case Op::kSwap: {
        if (imm == 0 || !need(static_cast<std::size_t>(imm) + 1)) {
          return fail("swap underflow");
        }
        std::swap(stack.back(), stack[stack.size() - 1 - static_cast<std::size_t>(imm)]);
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kLt:
      case Op::kGt:
      case Op::kEq:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kHash: {
        if (!need(2)) return fail("stack underflow");
        std::uint64_t b = pop();
        std::uint64_t a = pop();
        std::uint64_t r = 0;
        switch (op) {
          case Op::kAdd: r = a + b; break;
          case Op::kSub: r = a - b; break;
          case Op::kMul: r = a * b; break;
          case Op::kDiv: r = b == 0 ? 0 : a / b; break;
          case Op::kMod: r = b == 0 ? 0 : a % b; break;
          case Op::kLt: r = a < b ? 1 : 0; break;
          case Op::kGt: r = a > b ? 1 : 0; break;
          case Op::kEq: r = a == b ? 1 : 0; break;
          case Op::kAnd: r = a & b; break;
          case Op::kOr: r = a | b; break;
          case Op::kXor: r = a ^ b; break;
          case Op::kHash: {
            Encoder enc;
            enc.U64(a);
            enc.U64(b);
            Hash256 h = crypto::Sha256::Digest(enc.bytes());
            for (int i = 0; i < 8; ++i) r = (r << 8) | h[static_cast<std::size_t>(i)];
            break;
          }
          default: break;
        }
        stack.push_back(r);
        break;
      }
      case Op::kNot:
        if (!need(1)) return fail("stack underflow");
        stack.back() = ~stack.back();
        break;
      case Op::kJump:
        if (imm >= code.size()) return fail("jump target out of bounds");
        pc = static_cast<std::size_t>(imm);
        continue;
      case Op::kJumpI: {
        if (!need(1)) return fail("stack underflow");
        std::uint64_t cond = pop();
        if (cond != 0) {
          if (imm >= code.size()) return fail("jump target out of bounds");
          pc = static_cast<std::size_t>(imm);
          continue;
        }
        break;
      }
      case Op::kSload: {
        if (!need(1)) return fail("stack underflow");
        std::uint64_t key = pop();
        stack.push_back(storage.Load(key));
        break;
      }
      case Op::kSstore: {
        if (!need(2)) return fail("stack underflow");
        std::uint64_t value = pop();
        std::uint64_t key = pop();
        storage.Store(key, value);
        break;
      }
      case Op::kCaller:
        stack.push_back(ctx.caller);
        break;
      case Op::kArg:
        stack.push_back(imm < ctx.calldata.size()
                            ? ctx.calldata[static_cast<std::size_t>(imm)]
                            : 0);
        break;
      case Op::kArgc:
        stack.push_back(ctx.calldata.size());
        break;
      default:
        return fail("invalid opcode");
    }
    pc = next;
  }
}

}  // namespace dcert::vm
