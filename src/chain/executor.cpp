#include "chain/executor.h"

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "mht/merkle_tree.h"
#include "vm/rwset_storage.h"

namespace dcert::chain {

void ContractRegistry::Install(std::uint64_t contract_id, vm::Program program) {
  programs_[contract_id] = std::move(program);
}

const vm::Program* ContractRegistry::Find(std::uint64_t contract_id) const {
  auto it = programs_.find(contract_id);
  return it == programs_.end() ? nullptr : &it->second;
}

Hash256 ContractRegistry::Digest() const {
  std::vector<Hash256> leaves;
  leaves.reserve(programs_.size());
  for (const auto& [id, program] : programs_) {
    Encoder enc;
    enc.U64(id);
    enc.HashField(crypto::Sha256::Digest(program.code));
    leaves.push_back(crypto::Sha256::Digest(enc.bytes()));
  }
  return mht::MerkleTree::ComputeRoot(leaves);
}

namespace {

/// Block-level overlay with read capture: reads fall through buffered writes
/// to the base, writes layer on top (read-your-writes across transactions).
class BlockOverlay {
 public:
  explicit BlockOverlay(const StateReader& base) : base_(&base) {}

  std::uint64_t Load(const StateKey& key) {
    if (auto it = overlay_.find(key); it != overlay_.end()) return it->second;
    std::uint64_t v = base_->Load(key);
    reads_.emplace(key, v);  // first observation of the pre-state
    return v;
  }

  void Store(const StateKey& key, std::uint64_t value) { overlay_[key] = value; }

  StateMap& reads() { return reads_; }
  StateMap& writes() { return overlay_; }

 private:
  const StateReader* base_;
  StateMap reads_;
  StateMap overlay_;
};

/// VM storage adapter: binds a contract id, buffers this transaction's
/// writes so a revert can discard them.
class TxStorage final : public vm::StorageView {
 public:
  TxStorage(BlockOverlay& overlay, std::uint64_t contract_id)
      : overlay_(&overlay), contract_id_(contract_id) {}

  std::uint64_t Load(std::uint64_t slot) override {
    StateKey key = SlotKey(contract_id_, slot);
    if (auto it = tx_writes_.find(key); it != tx_writes_.end()) return it->second;
    return overlay_->Load(key);
  }

  void Store(std::uint64_t slot, std::uint64_t value) override {
    tx_writes_[SlotKey(contract_id_, slot)] = value;
  }

  void Commit() {
    for (const auto& [key, value] : tx_writes_) overlay_->Store(key, value);
  }

 private:
  BlockOverlay* overlay_;
  std::uint64_t contract_id_;
  StateMap tx_writes_;
};

}  // namespace

Result<BlockExecutionResult> ExecuteBlockTxs(const std::vector<Transaction>& txs,
                                             const ContractRegistry& registry,
                                             const StateReader& base,
                                             std::uint64_t step_limit) {
  using R = Result<BlockExecutionResult>;
  BlockExecutionResult result;
  BlockOverlay overlay(base);

  try {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const Transaction& tx = txs[i];
      if (Status sig = tx.VerifySignature(); !sig) {
        return R::Error("tx " + std::to_string(i) + ": " + sig.message());
      }
      StateKey nonce_key = NonceKey(tx.sender);
      std::uint64_t expected_nonce = overlay.Load(nonce_key);
      if (tx.nonce != expected_nonce) {
        return R::Error("tx " + std::to_string(i) + ": nonce mismatch (got " +
                        std::to_string(tx.nonce) + ", expected " +
                        std::to_string(expected_nonce) + ")");
      }
      overlay.Store(nonce_key, expected_nonce + 1);

      TxReceipt receipt;
      const vm::Program* program = registry.Find(tx.contract_id);
      if (program == nullptr) {
        receipt.success = false;
        receipt.error = "unknown contract";
        result.receipts.push_back(std::move(receipt));
        continue;
      }
      vm::ExecContext ctx;
      ctx.caller = tx.CallerWord();
      ctx.calldata = tx.calldata;
      ctx.step_limit = step_limit;
      TxStorage storage(overlay, tx.contract_id);
      vm::ExecResult exec = vm::Execute(*program, ctx, storage);
      receipt.success = exec.success;
      receipt.error = exec.error;
      receipt.steps = exec.steps;
      if (exec.success) storage.Commit();  // reverts simply drop tx_writes_
      result.receipts.push_back(std::move(receipt));
    }
  } catch (const vm::ReadOutsideReadSet& e) {
    return R::Error(e.what());
  }

  result.reads = std::move(overlay.reads());
  result.writes = std::move(overlay.writes());
  return result;
}

}  // namespace dcert::chain
