// Simulated Proof-of-Work consensus. The proof pi_cons is a nonce making the
// header hash start with `difficulty_bits` zero bits; low difficulties keep
// experiments laptop-scale while exercising the same verify path as Bitcoin-
// style chains (Alg. 2 line 15 / Alg. 3's chain-rule check).
#pragma once

#include "chain/block.h"
#include "common/status.h"

namespace dcert::chain {

/// Mines the nonce in place. Difficulty must be small enough to terminate
/// quickly (<= 24 bits enforced to protect tests from configuration typos).
void MineNonce(BlockHeader& header);

/// verify_cons: the consensus-proof check.
Status VerifyConsensus(const BlockHeader& header);

/// The chain-selection rule (longest chain): does `candidate` extend or beat
/// the currently selected height? Used by superlight clients (Alg. 3 line 8).
bool SatisfiesChainSelection(std::uint64_t current_best_height,
                             const BlockHeader& candidate);

}  // namespace dcert::chain
