// Block structure (paper Fig. 1): headers carry the previous-block hash, the
// consensus proof, and the state and transaction Merkle roots; bodies carry
// the signed transactions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "crypto/signature.h"

namespace dcert::chain {

struct BlockHeader {
  Hash256 prev_hash;                 // H_prev_blk
  std::uint64_t height = 0;
  std::uint64_t timestamp = 0;
  std::uint64_t consensus_nonce = 0; // the PoW part of pi_cons
  std::uint32_t difficulty_bits = 0; // required leading zero bits of the hash
  Hash256 state_root;                // H_state
  Hash256 tx_root;                   // H_tx

  Bytes Serialize() const;
  static Result<BlockHeader> Deserialize(ByteView data);
  /// Header digest — the chain link and the value DCert certificates sign.
  Hash256 Hash() const;

  bool operator==(const BlockHeader&) const = default;
};

/// A signed transaction: `sender` invokes `contract_id` with `calldata`.
struct Transaction {
  crypto::PublicKey sender;
  std::uint64_t nonce = 0;
  std::uint64_t contract_id = 0;
  std::vector<std::uint64_t> calldata;
  crypto::Signature signature;

  /// Builds and signs a transaction.
  static Transaction Create(const crypto::SecretKey& sender_key,
                            std::uint64_t nonce, std::uint64_t contract_id,
                            std::vector<std::uint64_t> calldata);

  Bytes SigningPayload() const;
  Bytes Serialize() const;
  static Result<Transaction> Deserialize(ByteView data);
  Hash256 Hash() const;

  /// The validity check miners, full nodes, and the enclave all run.
  Status VerifySignature() const;

  /// The caller word the VM sees (low 64 bits of the sender key hash).
  std::uint64_t CallerWord() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  /// Merkle root over the transaction hashes (H_tx).
  static Hash256 ComputeTxRoot(const std::vector<Transaction>& txs);

  Bytes Serialize() const;
  static Result<Block> Deserialize(ByteView data);

  /// Total serialized size — what a full node stores per block.
  std::size_t ByteSize() const { return Serialize().size(); }
};

/// Fixed serialized size of a header (all fields are fixed width).
std::size_t HeaderByteSize();

}  // namespace dcert::chain
