// Deterministic block execution — the shared engine behind the miner, the
// full node's validation, the CI's read/write-set pre-processing (Alg. 1
// line 2), and the enclave's trusted replay (Alg. 2 lines 18-21). One code
// path guarantees the untrusted and trusted executions agree bit for bit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/state.h"
#include "common/status.h"
#include "vm/vm.h"

namespace dcert::chain {

/// The installed contracts. Fixed at genesis (the paper pre-deploys its 500
/// Blockbench contracts); the registry digest is pinned inside the enclave's
/// configuration so trusted replay runs exactly the published code.
class ContractRegistry {
 public:
  void Install(std::uint64_t contract_id, vm::Program program);
  const vm::Program* Find(std::uint64_t contract_id) const;
  std::size_t Size() const { return programs_.size(); }

  /// Commitment over (id, code-hash) pairs in id order.
  Hash256 Digest() const;

 private:
  std::map<std::uint64_t, vm::Program> programs_;
};

struct TxReceipt {
  bool success = false;
  std::string error;       // empty on success
  std::uint64_t steps = 0; // VM instructions executed
};

struct BlockExecutionResult {
  /// Pre-state values observed by the block ({r}_i; key -> value, 0 = unset).
  StateMap reads;
  /// Final values written by the block ({w}_i).
  StateMap writes;
  std::vector<TxReceipt> receipts;
};

/// Executes `txs` in order on top of `base`. Transaction rules:
///  * an invalid signature invalidates the whole block (Alg. 2 line 19);
///  * a nonce mismatch invalidates the whole block (miners order correctly);
///  * an unknown contract or VM failure reverts that transaction's storage
///    writes but still consumes the sender's nonce (Ethereum-style).
/// Reads outside a ReadSetReader's coverage propagate as an error status.
Result<BlockExecutionResult> ExecuteBlockTxs(const std::vector<Transaction>& txs,
                                             const ContractRegistry& registry,
                                             const StateReader& base,
                                             std::uint64_t step_limit = 1'000'000);

}  // namespace dcert::chain
