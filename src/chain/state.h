// Global chain state: a flat 64-bit-value key-value space committed by a
// Sparse Merkle Tree (H_state). Keys are digests scoping contract storage
// slots and account nonces; values are words (0 = unset = absent from the
// tree), matching the VM's storage model.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/signature.h"
#include "mht/smt.h"

namespace dcert::chain {

using StateKey = Hash256;
/// Read/write sets: key -> word value (0 = unset).
using StateMap = std::map<StateKey, std::uint64_t>;

/// Global key of a contract storage slot.
StateKey SlotKey(std::uint64_t contract_id, std::uint64_t slot);
/// Global key of a sender account's transaction nonce.
StateKey NonceKey(const crypto::PublicKey& sender);

/// SMT leaf value hash for a state word; zero words map to the zero hash
/// (absent leaf), so "unset" and "zero" are the same state.
Hash256 StateValueHash(std::uint64_t value);

/// Appends the keys of `map` to `out` (in map order).
void AppendKeys(const StateMap& map, std::vector<StateKey>& out);

/// Read-only view of some state (full StateDB, or a verified read set).
class StateReader {
 public:
  virtual ~StateReader() = default;
  /// Value of `key` (0 when unset). Enclave-side implementations throw
  /// vm::ReadOutsideReadSet when the key is not covered.
  virtual std::uint64_t Load(const StateKey& key) const = 0;
};

/// Full-node state: the value map plus its SMT commitment.
class StateDB final : public StateReader {
 public:
  std::uint64_t Load(const StateKey& key) const override;
  void Store(const StateKey& key, std::uint64_t value);
  void ApplyWrites(const StateMap& writes);

  /// Every set (non-zero) key -> value, in key order: the canonical snapshot
  /// a checkpoint serializes. Rebuilding a StateDB via ApplyWrites(Snapshot())
  /// reproduces Root() exactly.
  StateMap Snapshot() const { return StateMap(values_.begin(), values_.end()); }

  Hash256 Root() const { return smt_.Root(); }
  std::size_t Size() const { return values_.size(); }
  mht::SmtMultiProof ProveKeys(const std::vector<StateKey>& keys) const {
    return smt_.ProveKeys(keys);
  }

 private:
  std::unordered_map<StateKey, std::uint64_t, Hash256Hasher> values_;
  mht::SparseMerkleTree smt_;
};

/// Stateless prediction of the SMT root after applying `writes` to `db`
/// (proof + recompute, without touching `db`). Exactly what the enclave does
/// with an update proof, so a full node can cross-check a block's claimed
/// state root before mutating its StateDB.
Hash256 PredictRootAfterWrites(const StateDB& db, const StateMap& writes);

/// StateReader over a verified read set (the enclave's view during replay).
class ReadSetReader final : public StateReader {
 public:
  explicit ReadSetReader(const StateMap& read_set) : read_set_(&read_set) {}
  std::uint64_t Load(const StateKey& key) const override;

 private:
  const StateMap* read_set_;
};

}  // namespace dcert::chain
