#include "chain/block_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "chain/node.h"
#include "common/serialize.h"

namespace dcert::chain {

namespace {

constexpr std::uint32_t kRecordMagic = 0x44435254;  // "DCRT"
constexpr std::size_t kRecordHeaderSize = 12;       // magic + length + crc

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t ReadU32At(std::ifstream& in, std::uint64_t offset) {
  in.seekg(static_cast<std::streamoff>(offset));
  std::uint8_t buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) return 0;
  return static_cast<std::uint32_t>(buf[0]) | (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

void AppendU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

std::uint32_t Crc32(ByteView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = CrcTable()[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

BlockStore::BlockStore(std::string path, std::vector<std::uint64_t> offsets,
                       bool recovered)
    : path_(std::move(path)), offsets_(std::move(offsets)), recovered_(recovered) {}

BlockStore::~BlockStore() = default;
BlockStore::BlockStore(BlockStore&&) noexcept = default;
BlockStore& BlockStore::operator=(BlockStore&&) noexcept = default;

Result<BlockStore> BlockStore::Open(const std::string& path) {
  using R = Result<BlockStore>;
  // Ensure the file exists.
  {
    std::ofstream touch(path, std::ios::binary | std::ios::app);
    if (!touch) return R::Error("BlockStore: cannot open " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return R::Error("BlockStore: cannot read " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());

  std::vector<std::uint64_t> offsets;
  std::uint64_t pos = 0;
  bool recovered = false;
  while (pos + kRecordHeaderSize <= file_size) {
    std::uint32_t magic = ReadU32At(in, pos);
    std::uint32_t length = ReadU32At(in, pos + 4);
    std::uint32_t crc = ReadU32At(in, pos + 8);
    if (magic != kRecordMagic || pos + kRecordHeaderSize + length > file_size) {
      recovered = true;
      break;
    }
    Bytes payload(length);
    in.seekg(static_cast<std::streamoff>(pos + kRecordHeaderSize));
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(length));
    if (!in || Crc32(payload) != crc) {
      recovered = true;
      break;
    }
    offsets.push_back(pos);
    pos += kRecordHeaderSize + length;
  }
  if (pos < file_size && !recovered) recovered = true;  // trailing partial header
  if (recovered) {
    // Truncate the torn tail so future appends start on a clean boundary.
    // Rewrite the good prefix (simple and portable; stores in this repo are
    // experiment-sized).
    in.close();
    std::ifstream rd(path, std::ios::binary);
    Bytes good(pos);
    rd.read(reinterpret_cast<char*>(good.data()), static_cast<std::streamsize>(pos));
    rd.close();
    std::ofstream wr(path, std::ios::binary | std::ios::trunc);
    wr.write(reinterpret_cast<const char*>(good.data()),
             static_cast<std::streamsize>(good.size()));
    if (!wr) return R::Error("BlockStore: failed to truncate torn tail");
  }
  return BlockStore(path, std::move(offsets), recovered);
}

Status BlockStore::Append(const Block& block) {
  if (block.header.height != offsets_.size()) {
    return Status::Error("BlockStore: expected height " +
                         std::to_string(offsets_.size()) + ", got " +
                         std::to_string(block.header.height));
  }
  Bytes payload = block.Serialize();
  Bytes record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendU32(record, kRecordMagic);
  AppendU32(record, static_cast<std::uint32_t>(payload.size()));
  AppendU32(record, Crc32(payload));
  dcert::Append(record, ByteView(payload.data(), payload.size()));

  // POSIX append path so every step — open, write, optional fsync, close —
  // reports its errno instead of collapsing into one failbit. The record is
  // only indexed once all of it durably reached the file API.
  const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Error(std::string("BlockStore: open for append: ") +
                         std::strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Error(std::string("BlockStore: seek to end: ") +
                         std::strerror(err));
  }
  const std::uint64_t offset = static_cast<std::uint64_t>(end);
  const std::uint8_t* p = record.data();
  std::size_t remaining = record.size();
  while (remaining > 0) {
    const ssize_t w = ::write(fd, p, remaining);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Error(std::string("BlockStore: write: ") +
                           std::strerror(err));
    }
    p += w;
    remaining -= static_cast<std::size_t>(w);
  }
  if (fsync_on_append_ && ::fsync(fd) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Error(std::string("BlockStore: fsync: ") +
                         std::strerror(err));
  }
  if (::close(fd) < 0) {
    return Status::Error(std::string("BlockStore: close after append: ") +
                         std::strerror(errno));
  }
  offsets_.push_back(offset);
  return Status::Ok();
}

Result<Block> BlockStore::Get(std::uint64_t height) const {
  using R = Result<Block>;
  if (height >= offsets_.size()) {
    return R::Error("BlockStore: height " + std::to_string(height) +
                    " beyond stored tip");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) return R::Error("BlockStore: cannot read " + path_);
  const std::uint64_t pos = offsets_[static_cast<std::size_t>(height)];
  std::uint32_t length = ReadU32At(in, pos + 4);
  std::uint32_t crc = ReadU32At(in, pos + 8);
  Bytes payload(length);
  in.seekg(static_cast<std::streamoff>(pos + kRecordHeaderSize));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(length));
  if (!in) return R::Error("BlockStore: short read");
  if (Crc32(payload) != crc) return R::Error("BlockStore: CRC mismatch on read");
  return Block::Deserialize(payload);
}

Result<FullNode> ReplayFromStore(const BlockStore& store, ChainConfig config,
                                 std::shared_ptr<const ContractRegistry> registry) {
  using R = Result<FullNode>;
  FullNode node(config, std::move(registry));
  if (store.Count() == 0) return R::Error("ReplayFromStore: empty store");
  auto genesis = store.Get(0);
  if (!genesis) return R(genesis.status());
  if (genesis.value().header.Hash() != node.GetBlock(0).header.Hash()) {
    return R::Error("ReplayFromStore: stored genesis does not match the config");
  }
  for (std::uint64_t h = 1; h < store.Count(); ++h) {
    auto block = store.Get(h);
    if (!block) return R(block.status());
    if (Status st = node.SubmitBlock(block.value()); !st) {
      return R(st.WithContext("replay height " + std::to_string(h)));
    }
  }
  return node;
}

}  // namespace dcert::chain
