#include "chain/block_store.h"

#include <utility>

#include "chain/node.h"

namespace dcert::chain {

Result<BlockStore> BlockStore::Open(const std::string& path) {
  return Open(path, 0);
}

Result<BlockStore> BlockStore::Open(const std::string& path,
                                    std::uint64_t segment_max_records) {
  using R = Result<BlockStore>;
  common::RecordLog::Options options;
  options.name = "blocklog";
  options.segment_max_records = segment_max_records;
  auto log = common::RecordLog::Open(path, std::move(options));
  if (!log) return R(log.status());
  return BlockStore(std::move(log.value()));
}

Status BlockStore::Append(const Block& block) {
  if (block.header.height != log_.Count()) {
    return Status::Error("BlockStore: expected height " +
                         std::to_string(log_.Count()) + ", got " +
                         std::to_string(block.header.height));
  }
  return log_.Append(block.Serialize());
}

Result<Block> BlockStore::Get(std::uint64_t height) const {
  using R = Result<Block>;
  if (height >= log_.Count()) {
    return R::Error("BlockStore: height " + std::to_string(height) +
                    " beyond stored tip");
  }
  auto payload = log_.Get(height);
  if (!payload) return R(payload.status());
  return Block::Deserialize(payload.value());
}

Result<FullNode> ReplayFromStore(const BlockStore& store, ChainConfig config,
                                 std::shared_ptr<const ContractRegistry> registry) {
  using R = Result<FullNode>;
  FullNode node(config, std::move(registry));
  if (store.Count() == 0) return R::Error("ReplayFromStore: empty store");
  if (store.BaseHeight() > 0) {
    return R::Error("ReplayFromStore: history below height " +
                    std::to_string(store.BaseHeight()) +
                    " was compacted; recover from a checkpoint instead");
  }
  auto genesis = store.Get(0);
  if (!genesis) return R(genesis.status());
  if (genesis.value().header.Hash() != node.GetBlock(0).header.Hash()) {
    return R::Error("ReplayFromStore: stored genesis does not match the config");
  }
  for (std::uint64_t h = 1; h < store.Count(); ++h) {
    auto block = store.Get(h);
    if (!block) return R(block.status());
    if (Status st = node.SubmitBlock(block.value()); !st) {
      return R(st.WithContext("replay height " + std::to_string(h)));
    }
  }
  return node;
}

}  // namespace dcert::chain
