// Append-only file-backed block store: how a full node or CI persists the
// chain across restarts. One file, length-prefixed CRC-checked records, an
// in-memory offset index built by a scan on open. A torn tail (crash during
// the last append) is detected and truncated away on reopen.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/node.h"
#include "common/bytes.h"
#include "common/status.h"

namespace dcert::chain {

/// CRC-32 (IEEE 802.3, reflected) over a byte buffer.
std::uint32_t Crc32(ByteView data);

class BlockStore {
 public:
  ~BlockStore();
  BlockStore(BlockStore&&) noexcept;
  BlockStore& operator=(BlockStore&&) noexcept;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Opens (creating if absent) the store at `path`. Scans existing records,
  /// verifying magic + CRC; a corrupt or torn tail is truncated (records
  /// before it stay readable) and reported in the result's recovered flag.
  static Result<BlockStore> Open(const std::string& path);

  /// When on, every Append fsyncs the file before reporting success, so a
  /// power loss cannot lose an acknowledged block (a torn in-flight record
  /// is still possible and handled by recovery on reopen). Off by default:
  /// experiment stores favor throughput.
  void SetFsyncOnAppend(bool on) { fsync_on_append_ = on; }
  bool FsyncOnAppend() const { return fsync_on_append_; }

  /// Appends a block. The block's height must equal Count() (blocks are
  /// stored densely from genesis). Every I/O step — open, write, flush, and
  /// the optional fsync — is error-checked; on failure nothing is indexed.
  Status Append(const Block& block);

  /// Reads the block at `height` back from the file.
  Result<Block> Get(std::uint64_t height) const;

  /// Number of stored blocks.
  std::uint64_t Count() const { return offsets_.size(); }

  /// True when Open() had to truncate a torn/corrupt tail.
  bool RecoveredFromTornTail() const { return recovered_; }

  const std::string& Path() const { return path_; }

 private:
  BlockStore(std::string path, std::vector<std::uint64_t> offsets, bool recovered);

  std::string path_;
  std::vector<std::uint64_t> offsets_;  // file offset of each record header
  bool recovered_ = false;
  bool fsync_on_append_ = false;
};

/// Rebuilds a full node by replaying every stored block (genesis must match
/// the config). Returns the node at the stored tip.
Result<FullNode> ReplayFromStore(const BlockStore& store, ChainConfig config,
                                 std::shared_ptr<const ContractRegistry> registry);

}  // namespace dcert::chain
