// Append-only file-backed block store: how a full node or CI persists the
// chain across restarts. A thin height-checked wrapper over common::RecordLog
// (one file, length-prefixed CRC-checked records, in-memory offset index,
// torn-tail truncation + fsync on reopen).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/node.h"
#include "common/bytes.h"
#include "common/record_log.h"
#include "common/status.h"

namespace dcert::chain {

/// CRC-32 (IEEE 802.3, reflected) over a byte buffer. Kept as an alias for
/// the record-log implementation the format moved into.
inline std::uint32_t Crc32(ByteView data) { return common::Crc32(data); }

class BlockStore {
 public:
  BlockStore(BlockStore&&) noexcept = default;
  BlockStore& operator=(BlockStore&&) noexcept = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Opens (creating if absent) the store at `path`. Scans existing records,
  /// verifying magic + CRC; a corrupt or torn tail is truncated and fsynced
  /// (records before it stay readable) and reported in the result's
  /// recovered flag.
  static Result<BlockStore> Open(const std::string& path);

  /// Same, with segment rotation: the log rolls to a new sealed segment
  /// every `segment_max_records` blocks, enabling CompactBelow.
  static Result<BlockStore> Open(const std::string& path,
                                 std::uint64_t segment_max_records);

  /// When on, every Append fsyncs the file before reporting success, so a
  /// power loss cannot lose an acknowledged block (a torn in-flight record
  /// is still possible and handled by recovery on reopen). Off by default:
  /// experiment stores favor throughput.
  void SetFsyncOnAppend(bool on) { log_.SetFsyncOnAppend(on); }
  bool FsyncOnAppend() const { return log_.FsyncOnAppend(); }

  /// Appends a block. The block's height must equal Count() (blocks are
  /// stored densely from genesis). Every I/O step — open, write, flush, and
  /// the optional fsync — is error-checked; on failure nothing is indexed.
  Status Append(const Block& block);

  /// Reads the block at `height` back from the file.
  Result<Block> Get(std::uint64_t height) const;

  /// Number of stored blocks (compacted ones still count; they existed).
  std::uint64_t Count() const { return log_.Count(); }

  /// First retained height (> 0 once pre-checkpoint history was compacted).
  std::uint64_t BaseHeight() const { return log_.BaseIndex(); }

  /// Removes whole sealed segments entirely below `height` (crash-safe
  /// tombstone protocol; see common::RecordLog::CompactBelow).
  Status CompactBelow(std::uint64_t height) { return log_.CompactBelow(height); }

  /// True when a sealed segment's sidecar offset index had to be rebuilt.
  bool SidecarRebuilt() const { return log_.SidecarRebuilt(); }

  /// Drops blocks [count, Count()) — reconciliation/fsck repair only.
  Status TruncateTo(std::uint64_t count) { return log_.TruncateTo(count); }

  /// True when Open() had to truncate a torn/corrupt tail.
  bool RecoveredFromTornTail() const { return log_.RecoveredFromTornTail(); }

  const std::string& Path() const { return log_.Path(); }

 private:
  explicit BlockStore(common::RecordLog log) : log_(std::move(log)) {}

  common::RecordLog log_;
};

/// Rebuilds a full node by replaying every stored block (genesis must match
/// the config). Returns the node at the stored tip.
Result<FullNode> ReplayFromStore(const BlockStore& store, ChainConfig config,
                                 std::shared_ptr<const ContractRegistry> registry);

}  // namespace dcert::chain
