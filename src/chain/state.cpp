#include "chain/state.h"

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "vm/rwset_storage.h"

namespace dcert::chain {

StateKey SlotKey(std::uint64_t contract_id, std::uint64_t slot) {
  Encoder enc;
  enc.Str("slot");
  enc.U64(contract_id);
  enc.U64(slot);
  return crypto::Sha256::Digest(enc.bytes());
}

StateKey NonceKey(const crypto::PublicKey& sender) {
  Encoder enc;
  enc.Str("nonce");
  enc.Raw(sender.Serialize());
  return crypto::Sha256::Digest(enc.bytes());
}

Hash256 StateValueHash(std::uint64_t value) {
  if (value == 0) return Hash256();
  Encoder enc;
  enc.U64(value);
  return crypto::Sha256::Digest(enc.bytes());
}

std::uint64_t StateDB::Load(const StateKey& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? 0 : it->second;
}

void StateDB::Store(const StateKey& key, std::uint64_t value) {
  if (value == 0) {
    values_.erase(key);
  } else {
    values_[key] = value;
  }
  smt_.Update(key, StateValueHash(value));
}

void AppendKeys(const StateMap& map, std::vector<StateKey>& out) {
  for (const auto& [key, value] : map) out.push_back(key);
}

void StateDB::ApplyWrites(const StateMap& writes) {
  std::map<Hash256, Hash256> leaves;
  for (const auto& [key, value] : writes) {
    if (value == 0) {
      values_.erase(key);
    } else {
      values_[key] = value;
    }
    leaves[key] = StateValueHash(value);
  }
  // One bulk SMT pass (parallel rehash for large write sets) instead of
  // per-key root recomputation.
  smt_.UpdateBatch(leaves);
}

Hash256 PredictRootAfterWrites(const StateDB& db, const StateMap& writes) {
  if (writes.empty()) return db.Root();
  std::vector<StateKey> touched;
  touched.reserve(writes.size());
  std::map<Hash256, Hash256> new_leaves;
  for (const auto& [key, value] : writes) {
    touched.push_back(key);
    new_leaves[key] = StateValueHash(value);
  }
  return mht::SparseMerkleTree::ComputeRootFromProof(db.ProveKeys(touched),
                                                     new_leaves);
}

std::uint64_t ReadSetReader::Load(const StateKey& key) const {
  auto it = read_set_->find(key);
  if (it == read_set_->end()) {
    // Reuse the VM's sentinel exception type for "proof incomplete".
    throw vm::ReadOutsideReadSet(Hash256Hasher{}(key));
  }
  return it->second;
}

}  // namespace dcert::chain
