#include "chain/node.h"

#include <stdexcept>

#include "mht/smt.h"

namespace dcert::chain {

Block MakeGenesisBlock(const ChainConfig& config) {
  Block genesis;
  genesis.header.prev_hash = Hash256();
  genesis.header.height = 0;
  genesis.header.timestamp = config.genesis_timestamp;
  genesis.header.difficulty_bits = config.difficulty_bits;
  genesis.header.state_root = mht::SparseMerkleTree().Root();
  genesis.header.tx_root = Block::ComputeTxRoot({});
  MineNonce(genesis.header);
  return genesis;
}

FullNode::FullNode(ChainConfig config,
                   std::shared_ptr<const ContractRegistry> registry)
    : config_(config), registry_(std::move(registry)) {
  if (!registry_) {
    throw std::invalid_argument("FullNode: registry must not be null");
  }
  blocks_.push_back(MakeGenesisBlock(config_));
}

Status FullNode::SubmitBlock(const Block& block) {
  const BlockHeader& hdr = block.header;
  const BlockHeader& tip = Tip().header;
  if (hdr.prev_hash != tip.Hash()) {
    return Status::Error("block does not extend the current tip");
  }
  if (hdr.height != tip.height + 1) {
    return Status::Error("block height is not tip height + 1");
  }
  if (hdr.difficulty_bits != config_.difficulty_bits) {
    return Status::Error("unexpected difficulty");
  }
  if (Status st = VerifyConsensus(hdr); !st) return st;
  if (hdr.tx_root != Block::ComputeTxRoot(block.txs)) {
    return Status::Error("transaction root mismatch");
  }

  auto executed = ExecuteBlockTxs(block.txs, *registry_, state_);
  if (!executed) return executed.status().WithContext("block execution");

  // Predict the post-state root statelessly before touching the StateDB.
  const StateMap& writes = executed.value().writes;
  if (PredictRootAfterWrites(state_, writes) != hdr.state_root) {
    return Status::Error("state root mismatch after re-execution");
  }

  state_.ApplyWrites(writes);
  blocks_.push_back(block);
  return Status::Ok();
}

Status FullNode::InstallSnapshot(const Block& tip, const StateMap& state) {
  if (blocks_.size() != 1 || base_height_ != 0 || Height() != 0) {
    return Status::Error("snapshot install requires a node still at genesis");
  }
  const BlockHeader& hdr = tip.header;
  if (hdr.height == 0) {
    return Status::Error("snapshot tip must be above genesis");
  }
  if (hdr.difficulty_bits != config_.difficulty_bits) {
    return Status::Error("snapshot tip has unexpected difficulty");
  }
  if (Status st = VerifyConsensus(hdr); !st) {
    return st.WithContext("snapshot tip consensus");
  }
  if (hdr.tx_root != Block::ComputeTxRoot(tip.txs)) {
    return Status::Error("snapshot tip transaction root mismatch");
  }
  // Rebuild the committed state and require the SMT root the snapshot's
  // entries produce to be the root the (certified) tip header claims: a
  // snapshot with any entry added, dropped, or altered cannot match.
  StateDB rebuilt;
  rebuilt.ApplyWrites(state);
  if (rebuilt.Root() != hdr.state_root) {
    return Status::Error("snapshot state does not hash to the tip's state root");
  }
  state_ = std::move(rebuilt);
  blocks_.clear();
  blocks_.push_back(tip);
  base_height_ = hdr.height;
  return Status::Ok();
}

std::size_t FullNode::StorageBytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.ByteSize();
  return total;
}

Result<Block> Miner::MineBlock(std::vector<Transaction> txs,
                               std::uint64_t timestamp) const {
  using R = Result<Block>;
  auto executed = ExecuteBlockTxs(txs, node_->Registry(), node_->State());
  if (!executed) return R(executed.status().WithContext("mining execution"));

  Hash256 new_root = PredictRootAfterWrites(node_->State(), executed.value().writes);

  Block block;
  block.header.prev_hash = node_->Tip().header.Hash();
  block.header.height = node_->Height() + 1;
  block.header.timestamp = timestamp;
  block.header.difficulty_bits = node_->Config().difficulty_bits;
  block.header.state_root = new_root;
  block.header.tx_root = Block::ComputeTxRoot(txs);
  block.txs = std::move(txs);
  MineNonce(block.header);
  return block;
}

LightClient::LightClient(const BlockHeader& genesis_header) {
  headers_.push_back(genesis_header);
}

Status LightClient::CheckLink(const BlockHeader& prev, const BlockHeader& next) {
  if (next.prev_hash != prev.Hash()) {
    return Status::Error("header does not link to the previous header");
  }
  if (next.height != prev.height + 1) {
    return Status::Error("non-consecutive header height");
  }
  return VerifyConsensus(next);
}

Status LightClient::SyncHeader(const BlockHeader& header) {
  if (Status st = CheckLink(headers_.back(), header); !st) return st;
  headers_.push_back(header);
  return Status::Ok();
}

Status LightClient::ValidateAll() const {
  if (Status st = VerifyConsensus(headers_.front()); !st) {
    return st.WithContext("genesis");
  }
  for (std::size_t i = 1; i < headers_.size(); ++i) {
    if (Status st = CheckLink(headers_[i - 1], headers_[i]); !st) {
      return st.WithContext("header " + std::to_string(i));
    }
  }
  return Status::Ok();
}

}  // namespace dcert::chain
