#include "chain/consensus.h"

#include <stdexcept>

namespace dcert::chain {

namespace {

bool HasLeadingZeroBits(const Hash256& h, std::uint32_t bits) {
  for (std::uint32_t i = 0; i < bits; ++i) {
    if (h.Bit(i)) return false;
  }
  return true;
}

}  // namespace

void MineNonce(BlockHeader& header) {
  if (header.difficulty_bits > 24) {
    throw std::invalid_argument("MineNonce: difficulty too high for simulation");
  }
  header.consensus_nonce = 0;
  while (!HasLeadingZeroBits(header.Hash(), header.difficulty_bits)) {
    ++header.consensus_nonce;
  }
}

Status VerifyConsensus(const BlockHeader& header) {
  if (!HasLeadingZeroBits(header.Hash(), header.difficulty_bits)) {
    return Status::Error("consensus proof does not meet the difficulty target");
  }
  return Status::Ok();
}

bool SatisfiesChainSelection(std::uint64_t current_best_height,
                             const BlockHeader& candidate) {
  return candidate.height > current_best_height;
}

}  // namespace dcert::chain
