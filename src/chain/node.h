// Node roles: full node (validate + store everything), miner (propose
// blocks), and the *traditional* light client that DCert's superlight client
// is benchmarked against (Fig. 7) — it stores and validates every header.
#pragma once

#include <memory>
#include <vector>

#include "chain/block.h"
#include "chain/consensus.h"
#include "chain/executor.h"
#include "chain/state.h"
#include "common/status.h"

namespace dcert::chain {

struct ChainConfig {
  std::uint32_t difficulty_bits = 8;
  std::uint64_t genesis_timestamp = 1'700'000'000;
};

/// Deterministic genesis block (height 0, empty state, no transactions).
Block MakeGenesisBlock(const ChainConfig& config);

class FullNode {
 public:
  FullNode(ChainConfig config, std::shared_ptr<const ContractRegistry> registry);

  const ChainConfig& Config() const { return config_; }
  const ContractRegistry& Registry() const { return *registry_; }

  const Block& Tip() const { return blocks_.back(); }
  std::uint64_t Height() const { return Tip().header.height; }
  const Block& GetBlock(std::uint64_t height) const { return blocks_.at(height); }
  const StateDB& State() const { return state_; }

  /// Full validation: header linkage, consensus proof, tx root, re-execution,
  /// and state-root check — then append.
  Status SubmitBlock(const Block& block);

  /// Bytes a full node stores for the whole chain (headers + bodies).
  std::size_t StorageBytes() const;

 private:
  ChainConfig config_;
  std::shared_ptr<const ContractRegistry> registry_;
  std::vector<Block> blocks_;
  StateDB state_;
};

/// Builds valid blocks on top of a full node's current tip without mutating
/// its state (the produced block is then submitted to the network).
class Miner {
 public:
  explicit Miner(const FullNode& node) : node_(&node) {}

  /// Executes `txs` against the node's tip state, derives the new state root
  /// statelessly, assembles the header, and mines the consensus nonce.
  /// Fails when the transactions are invalid on this state.
  Result<Block> MineBlock(std::vector<Transaction> txs,
                          std::uint64_t timestamp) const;

 private:
  const FullNode* node_;
};

/// Traditional light client: keeps every header, validates linkage +
/// consensus. The Fig. 7 baseline.
class LightClient {
 public:
  explicit LightClient(const BlockHeader& genesis_header);

  /// Validates and appends the next header.
  Status SyncHeader(const BlockHeader& header);

  std::uint64_t Height() const { return headers_.back().height; }
  std::size_t HeaderCount() const { return headers_.size(); }

  /// Storage footprint: all headers (what Fig. 7a plots).
  std::size_t StorageBytes() const { return headers_.size() * HeaderByteSize(); }

  /// Re-validates the whole stored chain — the bootstrap work a freshly
  /// joined light client performs (what Fig. 7b times).
  Status ValidateAll() const;

 private:
  static Status CheckLink(const BlockHeader& prev, const BlockHeader& next);

  std::vector<BlockHeader> headers_;
};

}  // namespace dcert::chain
