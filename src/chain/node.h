// Node roles: full node (validate + store everything), miner (propose
// blocks), and the *traditional* light client that DCert's superlight client
// is benchmarked against (Fig. 7) — it stores and validates every header.
#pragma once

#include <memory>
#include <vector>

#include "chain/block.h"
#include "chain/consensus.h"
#include "chain/executor.h"
#include "chain/state.h"
#include "common/status.h"

namespace dcert::chain {

struct ChainConfig {
  std::uint32_t difficulty_bits = 8;
  std::uint64_t genesis_timestamp = 1'700'000'000;
};

/// Deterministic genesis block (height 0, empty state, no transactions).
Block MakeGenesisBlock(const ChainConfig& config);

class FullNode {
 public:
  FullNode(ChainConfig config, std::shared_ptr<const ContractRegistry> registry);

  const ChainConfig& Config() const { return config_; }
  const ContractRegistry& Registry() const { return *registry_; }

  const Block& Tip() const { return blocks_.back(); }
  std::uint64_t Height() const { return Tip().header.height; }
  /// Throws std::out_of_range for heights above the tip or below BaseHeight()
  /// (history a snapshot-started node never held).
  const Block& GetBlock(std::uint64_t height) const {
    return blocks_.at(height - base_height_);
  }
  const StateDB& State() const { return state_; }

  /// First height this node holds a block for: 0 for a genesis-grown node,
  /// the snapshot height after InstallSnapshot.
  std::uint64_t BaseHeight() const { return base_height_; }
  bool HasBlock(std::uint64_t height) const {
    return height >= base_height_ && height - base_height_ < blocks_.size();
  }

  /// Full validation: header linkage, consensus proof, tx root, re-execution,
  /// and state-root check — then append.
  Status SubmitBlock(const Block& block);

  /// Re-bases a node still at genesis onto a state snapshot: after this the
  /// node's tip is `tip` (height >= 1), its state is `state`, and blocks
  /// below the tip are unavailable. Verifies everything the snapshot claims
  /// that can be checked locally — consensus proof, tx root, and that the
  /// rebuilt SMT root equals tip.header.state_root — so a tampered snapshot
  /// never installs. Trust in the *chain position* (that this tip really is
  /// the certified chain's block at that height) comes from the certificate
  /// the caller verified against the tip header.
  Status InstallSnapshot(const Block& tip, const StateMap& state);

  /// Bytes a full node stores for the whole chain (headers + bodies).
  std::size_t StorageBytes() const;

 private:
  ChainConfig config_;
  std::shared_ptr<const ContractRegistry> registry_;
  std::vector<Block> blocks_;  // blocks_[i] holds height base_height_ + i
  std::uint64_t base_height_ = 0;
  StateDB state_;
};

/// Builds valid blocks on top of a full node's current tip without mutating
/// its state (the produced block is then submitted to the network).
class Miner {
 public:
  explicit Miner(const FullNode& node) : node_(&node) {}

  /// Executes `txs` against the node's tip state, derives the new state root
  /// statelessly, assembles the header, and mines the consensus nonce.
  /// Fails when the transactions are invalid on this state.
  Result<Block> MineBlock(std::vector<Transaction> txs,
                          std::uint64_t timestamp) const;

 private:
  const FullNode* node_;
};

/// Traditional light client: keeps every header, validates linkage +
/// consensus. The Fig. 7 baseline.
class LightClient {
 public:
  explicit LightClient(const BlockHeader& genesis_header);

  /// Validates and appends the next header.
  Status SyncHeader(const BlockHeader& header);

  std::uint64_t Height() const { return headers_.back().height; }
  std::size_t HeaderCount() const { return headers_.size(); }

  /// Storage footprint: all headers (what Fig. 7a plots).
  std::size_t StorageBytes() const { return headers_.size() * HeaderByteSize(); }

  /// Re-validates the whole stored chain — the bootstrap work a freshly
  /// joined light client performs (what Fig. 7b times).
  Status ValidateAll() const;

 private:
  static Status CheckLink(const BlockHeader& prev, const BlockHeader& next);

  std::vector<BlockHeader> headers_;
};

}  // namespace dcert::chain
