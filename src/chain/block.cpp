#include "chain/block.h"

#include "crypto/sha256.h"
#include "mht/merkle_tree.h"

namespace dcert::chain {

Bytes BlockHeader::Serialize() const {
  Encoder enc;
  enc.HashField(prev_hash);
  enc.U64(height);
  enc.U64(timestamp);
  enc.U64(consensus_nonce);
  enc.U32(difficulty_bits);
  enc.HashField(state_root);
  enc.HashField(tx_root);
  return enc.Take();
}

Result<BlockHeader> BlockHeader::Deserialize(ByteView data) {
  try {
    Decoder dec(data);
    BlockHeader hdr;
    hdr.prev_hash = dec.HashField();
    hdr.height = dec.U64();
    hdr.timestamp = dec.U64();
    hdr.consensus_nonce = dec.U64();
    hdr.difficulty_bits = dec.U32();
    hdr.state_root = dec.HashField();
    hdr.tx_root = dec.HashField();
    dec.ExpectEnd();
    return hdr;
  } catch (const DecodeError& e) {
    return Result<BlockHeader>::Error(std::string("BlockHeader: ") + e.what());
  }
}

Hash256 BlockHeader::Hash() const { return crypto::Sha256::Digest(Serialize()); }

std::size_t HeaderByteSize() { return BlockHeader{}.Serialize().size(); }

Bytes Transaction::SigningPayload() const {
  Encoder enc;
  enc.Raw(sender.Serialize());
  enc.U64(nonce);
  enc.U64(contract_id);
  enc.U32(static_cast<std::uint32_t>(calldata.size()));
  for (std::uint64_t w : calldata) enc.U64(w);
  return enc.Take();
}

Transaction Transaction::Create(const crypto::SecretKey& sender_key,
                                std::uint64_t nonce, std::uint64_t contract_id,
                                std::vector<std::uint64_t> calldata) {
  Transaction tx;
  tx.sender = sender_key.Public();
  tx.nonce = nonce;
  tx.contract_id = contract_id;
  tx.calldata = std::move(calldata);
  tx.signature = sender_key.Sign(crypto::Sha256::Digest(tx.SigningPayload()));
  return tx;
}

Bytes Transaction::Serialize() const {
  Encoder enc;
  enc.Raw(SigningPayload());
  enc.Raw(signature.Serialize());
  return enc.Take();
}

Result<Transaction> Transaction::Deserialize(ByteView data) {
  using R = Result<Transaction>;
  try {
    Decoder dec(data);
    Transaction tx;
    Bytes pk_bytes = dec.Raw(64);
    auto pk = crypto::PublicKey::Deserialize(pk_bytes);
    if (!pk) return R::Error("Transaction: invalid sender key");
    tx.sender = *pk;
    tx.nonce = dec.U64();
    tx.contract_id = dec.U64();
    std::uint32_t n = dec.U32();
    tx.calldata.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) tx.calldata.push_back(dec.U64());
    Bytes sig_bytes = dec.Raw(64);
    dec.ExpectEnd();
    auto sig = crypto::Signature::Deserialize(sig_bytes);
    if (!sig) return R::Error("Transaction: invalid signature encoding");
    tx.signature = *sig;
    return tx;
  } catch (const DecodeError& e) {
    return R::Error(std::string("Transaction: ") + e.what());
  }
}

Hash256 Transaction::Hash() const { return crypto::Sha256::Digest(Serialize()); }

Status Transaction::VerifySignature() const {
  if (!crypto::Verify(sender, crypto::Sha256::Digest(SigningPayload()), signature)) {
    return Status::Error("transaction signature invalid");
  }
  return Status::Ok();
}

std::uint64_t Transaction::CallerWord() const {
  Hash256 h = crypto::Sha256::Digest(sender.Serialize());
  std::uint64_t w = 0;
  for (int i = 0; i < 8; ++i) w = (w << 8) | h[static_cast<std::size_t>(i)];
  return w;
}

Hash256 Block::ComputeTxRoot(const std::vector<Transaction>& txs) {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.Hash());
  return mht::MerkleTree::ComputeRoot(leaves);
}

Bytes Block::Serialize() const {
  Encoder enc;
  enc.Raw(header.Serialize());
  enc.U32(static_cast<std::uint32_t>(txs.size()));
  for (const Transaction& tx : txs) enc.Blob(tx.Serialize());
  return enc.Take();
}

Result<Block> Block::Deserialize(ByteView data) {
  using R = Result<Block>;
  try {
    Decoder dec(data);
    Block block;
    Bytes hdr_bytes = dec.Raw(HeaderByteSize());
    auto hdr = BlockHeader::Deserialize(hdr_bytes);
    if (!hdr) return R(hdr.status());
    block.header = hdr.value();
    std::uint32_t n = dec.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      Bytes tx_bytes = dec.Blob();
      auto tx = Transaction::Deserialize(tx_bytes);
      if (!tx) return R(tx.status());
      block.txs.push_back(std::move(tx.value()));
    }
    dec.ExpectEnd();
    return block;
  } catch (const DecodeError& e) {
    return R::Error(std::string("Block: ") + e.what());
  }
}

}  // namespace dcert::chain
