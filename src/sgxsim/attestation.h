// Remote attestation simulation: quotes and the simulated Intel Attestation
// Service (IAS). A quote binds the enclave's measurement to report data (in
// DCert: the hash of the enclave-generated public key); the IAS verifies the
// quote's hardware signature and returns a report signed with the IAS key,
// which everyone can check against the well-known IAS public key.
//
// Substitution note: the real IAS trust root is Intel's certificate chain;
// here the IAS key pair is derived from a fixed seed, which plays the role
// of "baked into every client binary".
#pragma once

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "crypto/signature.h"

namespace dcert::sgxsim {

/// What the "hardware" emits from inside the enclave.
struct Quote {
  Hash256 measurement;
  Hash256 report_data;

  Bytes Serialize() const;
  Hash256 Digest() const;
  bool operator==(const Quote&) const = default;
};

/// IAS-signed attestation report (the `rep` of the paper's certificates).
struct AttestationReport {
  Quote quote;
  crypto::Signature ias_signature;

  Bytes Serialize() const;
  static Result<AttestationReport> Deserialize(ByteView data);
  bool operator==(const AttestationReport&) const = default;
};

/// Simulated Intel Attestation Service.
class AttestationService {
 public:
  /// The well-known IAS verification key.
  static const crypto::PublicKey& IasPublicKey();

  /// Verifies a quote (in this simulation, quotes carry no separate hardware
  /// signature — the service is the trust root) and signs a report.
  static AttestationReport Attest(const Quote& quote);

  /// Checks that `report` is genuinely IAS-signed. This is the "rep is
  /// signed by the IAS" assertion in Algorithms 2-5.
  static Status VerifyReport(const AttestationReport& report);
};

}  // namespace dcert::sgxsim
