#include "sgxsim/attestation.h"

#include "crypto/sha256.h"

namespace dcert::sgxsim {

namespace {

const crypto::SecretKey& IasKey() {
  // Fixed, public seed: the simulation equivalent of Intel's root of trust.
  static const crypto::SecretKey key =
      crypto::SecretKey::FromSeed(StrBytes("dcert-simulated-intel-attestation-service"));
  return key;
}

}  // namespace

Bytes Quote::Serialize() const {
  Encoder enc;
  enc.HashField(measurement);
  enc.HashField(report_data);
  return enc.Take();
}

Hash256 Quote::Digest() const { return crypto::Sha256::Digest(Serialize()); }

Bytes AttestationReport::Serialize() const {
  Encoder enc;
  enc.Raw(quote.Serialize());
  enc.Raw(ias_signature.Serialize());
  return enc.Take();
}

Result<AttestationReport> AttestationReport::Deserialize(ByteView data) {
  using R = Result<AttestationReport>;
  try {
    Decoder dec(data);
    AttestationReport report;
    report.quote.measurement = dec.HashField();
    report.quote.report_data = dec.HashField();
    Bytes sig_bytes = dec.Raw(64);
    dec.ExpectEnd();
    auto sig = crypto::Signature::Deserialize(sig_bytes);
    if (!sig) return R::Error("AttestationReport: malformed signature");
    report.ias_signature = *sig;
    return report;
  } catch (const DecodeError& e) {
    return R::Error(std::string("AttestationReport: ") + e.what());
  }
}

const crypto::PublicKey& AttestationService::IasPublicKey() {
  return IasKey().Public();
}

AttestationReport AttestationService::Attest(const Quote& quote) {
  AttestationReport report;
  report.quote = quote;
  report.ias_signature = IasKey().Sign(quote.Digest());
  return report;
}

Status AttestationService::VerifyReport(const AttestationReport& report) {
  if (!crypto::Verify(IasPublicKey(), report.quote.Digest(), report.ias_signature)) {
    return Status::Error("attestation report is not signed by the IAS");
  }
  return Status::Ok();
}

}  // namespace dcert::sgxsim
