// The enclave container: hosts a trusted program, dispatches Ecalls with
// transition/paging cost accounting, exposes the measured identity, and
// offers sealed storage bound to the measurement.
//
// The isolation boundary is simulated at the API level: trusted code receives
// only what crosses the Ecall (its arguments), mirroring how an SGX build
// would marshal buffers into the enclave. Keeping the trusted program
// self-contained (src/dcert/enclave_program.*) preserves portability to a
// real SGX SDK build.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "common/timing.h"
#include "sgxsim/attestation.h"
#include "sgxsim/cost_model.h"

namespace dcert::sgxsim {

/// Computes the measurement (MRENCLAVE analogue) of a named trusted program.
/// Identical program name + version => identical measurement, which is what
/// lets a verifier pin the expected enclave code.
Hash256 ComputeMeasurement(const std::string& program_name,
                           const std::string& version);

class Enclave {
 public:
  Enclave(std::string program_name, std::string version,
          CostModelParams params = {});

  const Hash256& Measurement() const { return measurement_; }
  CostAccounting& Costs() { return costs_; }
  const CostAccounting& Costs() const { return costs_; }

  /// Runs trusted code with Ecall accounting. `input_bytes` is the size of
  /// the marshalled inputs (drives the EPC paging model). Returns whatever
  /// the trusted callable returns.
  template <typename F>
  auto Ecall(std::uint64_t input_bytes, F&& trusted_fn)
      -> decltype(std::forward<F>(trusted_fn)()) {
    Stopwatch watch;
    if constexpr (std::is_void_v<decltype(std::forward<F>(trusted_fn)())>) {
      std::forward<F>(trusted_fn)();
      costs_.RecordEcall(watch.ElapsedNs(), input_bytes);
    } else {
      auto result = std::forward<F>(trusted_fn)();
      costs_.RecordEcall(watch.ElapsedNs(), input_bytes);
      return result;
    }
  }

  /// Produces a hardware quote for this enclave binding `report_data`.
  Quote MakeQuote(const Hash256& report_data) const {
    return Quote{measurement_, report_data};
  }

  /// Sealed storage: encrypt-then-MAC is simulated with an XOR keystream and
  /// HMAC, both keyed by a measurement-derived sealing key. Unseal fails for
  /// data sealed by a different measurement (different program identity).
  Bytes Seal(ByteView plaintext) const;
  Result<Bytes> Unseal(ByteView sealed) const;

 private:
  Hash256 SealingKey() const;

  std::string program_name_;
  std::string version_;
  Hash256 measurement_;
  CostAccounting costs_;
};

}  // namespace dcert::sgxsim
