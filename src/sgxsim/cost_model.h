// SGX performance cost model. The paper runs on real SGX hardware; this repo
// simulates the enclave (see DESIGN.md), so the enclave-induced overheads are
// modelled explicitly instead of measured implicitly:
//
//  * Ecall/Ocall transition cost — published measurements (HotCalls, Weisse
//    et al. ISCA'17; SGX-perf, Weichbrodt et al. Middleware'18) put a
//    synchronous enclave transition at ~8,000-17,000 cycles, i.e. roughly
//    8-14 us at the paper's 3.5 GHz CI machine.
//  * In-enclave slowdown — memory-heavy enclave code pays for MEE encryption
//    and EPC pressure; the paper observes "at most 1.8x" (Sec. 7.4.2), which
//    this model adopts as the default multiplier.
//  * EPC paging — once an Ecall's working set exceeds the usable 93 MB EPC
//    (Sec. 2.2), every further 4 KB page pays an eviction/encryption cost.
//
// The accounting yields a *modelled* enclave time per call:
//   modeled = wall_time * slowdown + transitions + paging
// Benchmarks report raw and modelled figures side by side.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace dcert::sgxsim {

/// Process-wide observability mirrors of enclave activity, aggregated across
/// every Enclave instance. The per-instance CostAccounting below remains the
/// exact, resettable view benchmarks reason about; these registry metrics are
/// monotonic and feed the live stats endpoint.
struct GlobalSgxMetrics {
  std::shared_ptr<obs::Counter> ecalls;
  std::shared_ptr<obs::Counter> ocalls;
  std::shared_ptr<obs::Counter> ecall_input_bytes;
  std::shared_ptr<obs::Counter> epc_pages_evicted;
  std::shared_ptr<obs::Gauge> epc_bytes_resident;  // last Ecall's working set
  std::shared_ptr<obs::Histogram> ecall_wall_ns;

  static GlobalSgxMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static GlobalSgxMetrics* m = new GlobalSgxMetrics{
        reg.GetCounter("sgx.ecalls"),
        reg.GetCounter("sgx.ocalls"),
        reg.GetCounter("sgx.ecall_input_bytes"),
        reg.GetCounter("sgx.epc.pages_evicted"),
        reg.GetGauge("sgx.epc.bytes_resident"),
        reg.GetHistogram("sgx.ecall_wall_ns")};
    return *m;
  }
};

struct CostModelParams {
  std::uint64_t ecall_transition_ns = 12'000;
  std::uint64_t ocall_transition_ns = 10'000;
  /// Multiplier applied to wall-clock time spent executing trusted code.
  double in_enclave_slowdown = 1.8;
  /// Usable EPC (93 MB of the 128 MB reserved region, Sec. 2.2).
  std::uint64_t epc_limit_bytes = 93ull << 20;
  /// Cost per 4 KB page moved across the EPC boundary when over the limit.
  std::uint64_t paging_ns_per_page = 40'000;

  /// A model with no overheads — used to measure "native" (non-SGX) runs of
  /// the same code for the enclave-overhead comparison in Fig. 8.
  static CostModelParams Native() {
    CostModelParams p;
    p.ecall_transition_ns = 0;
    p.ocall_transition_ns = 0;
    p.in_enclave_slowdown = 1.0;
    p.paging_ns_per_page = 0;
    return p;
  }
};

/// Accumulated enclave activity. Reset between benchmark phases.
class CostAccounting {
 public:
  explicit CostAccounting(const CostModelParams& params) : params_(params) {}

  void RecordEcall(std::uint64_t wall_ns, std::uint64_t input_bytes) {
    ++ecalls_;
    wall_ns_ += wall_ns;
    total_input_bytes_ += input_bytes;
    std::uint64_t evicted_pages = 0;
    if (input_bytes > params_.epc_limit_bytes) {
      std::uint64_t excess = input_bytes - params_.epc_limit_bytes;
      evicted_pages = (excess + 4095) / 4096;
      paged_pages_ += evicted_pages;
    }
    auto& gm = GlobalSgxMetrics::Get();
    gm.ecalls->Add(1);
    gm.ecall_input_bytes->Add(input_bytes);
    gm.ecall_wall_ns->Record(wall_ns);
    gm.epc_bytes_resident->Set(static_cast<std::int64_t>(
        std::min(input_bytes, params_.epc_limit_bytes)));
    if (evicted_pages != 0) gm.epc_pages_evicted->Add(evicted_pages);
  }
  void RecordOcall() {
    ++ocalls_;
    GlobalSgxMetrics::Get().ocalls->Add(1);
  }

  std::uint64_t ecalls() const { return ecalls_; }
  std::uint64_t ocalls() const { return ocalls_; }
  std::uint64_t wall_ns() const { return wall_ns_; }
  std::uint64_t total_input_bytes() const { return total_input_bytes_; }
  std::uint64_t paged_pages() const { return paged_pages_; }

  /// Wall time scaled by the in-enclave slowdown, plus transition and paging
  /// costs — the figure a real SGX deployment would observe.
  std::uint64_t ModeledEnclaveTimeNs() const {
    double compute = static_cast<double>(wall_ns_) * params_.in_enclave_slowdown;
    return static_cast<std::uint64_t>(compute) +
           ecalls_ * params_.ecall_transition_ns +
           ocalls_ * params_.ocall_transition_ns +
           paged_pages_ * params_.paging_ns_per_page;
  }

  /// Pure overhead relative to running the same code untrusted.
  std::uint64_t ModeledOverheadNs() const { return ModeledEnclaveTimeNs() - wall_ns_; }

  void Reset() {
    ecalls_ = 0;
    ocalls_ = 0;
    wall_ns_ = 0;
    total_input_bytes_ = 0;
    paged_pages_ = 0;
  }

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
  std::uint64_t ecalls_ = 0;
  std::uint64_t ocalls_ = 0;
  std::uint64_t wall_ns_ = 0;
  std::uint64_t total_input_bytes_ = 0;
  std::uint64_t paged_pages_ = 0;
};

}  // namespace dcert::sgxsim
