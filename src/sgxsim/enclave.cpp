#include "sgxsim/enclave.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::sgxsim {

Hash256 ComputeMeasurement(const std::string& program_name,
                           const std::string& version) {
  Encoder enc;
  enc.Str("dcert-enclave-measurement");
  enc.Str(program_name);
  enc.Str(version);
  return crypto::Sha256::Digest(enc.bytes());
}

Enclave::Enclave(std::string program_name, std::string version,
                 CostModelParams params)
    : program_name_(std::move(program_name)),
      version_(std::move(version)),
      measurement_(ComputeMeasurement(program_name_, version_)),
      costs_(params) {}

Hash256 Enclave::SealingKey() const {
  Encoder enc;
  enc.Str("dcert-sealing-key");
  enc.HashField(measurement_);
  return crypto::Sha256::Digest(enc.bytes());
}

namespace {

/// Expands a key + nonce into a SHA-256-based keystream of length n.
Bytes Keystream(const Hash256& key, const Hash256& nonce, std::size_t n) {
  Bytes out;
  out.reserve(n + 32);
  std::uint64_t counter = 0;
  while (out.size() < n) {
    Encoder enc;
    enc.HashField(key);
    enc.HashField(nonce);
    enc.U64(counter++);
    Hash256 block = crypto::Sha256::Digest(enc.bytes());
    out.insert(out.end(), block.begin(), block.end());
  }
  out.resize(n);
  return out;
}

}  // namespace

Bytes Enclave::Seal(ByteView plaintext) const {
  Hash256 key = SealingKey();
  // Deterministic nonce from the plaintext keeps the simulation reproducible;
  // a real enclave would use RDRAND.
  Hash256 nonce = crypto::Sha256::Digest2(StrBytes("seal-nonce"), plaintext);
  Bytes stream = Keystream(key, nonce, plaintext.size());
  Bytes ciphertext(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    ciphertext[i] = plaintext[i] ^ stream[i];
  }
  Encoder enc;
  enc.HashField(nonce);
  enc.Blob(ciphertext);
  Hash256 mac = crypto::HmacSha256(key.View(), enc.bytes());
  enc.HashField(mac);
  return enc.Take();
}

Result<Bytes> Enclave::Unseal(ByteView sealed) const {
  using R = Result<Bytes>;
  try {
    Decoder dec(sealed);
    Hash256 nonce = dec.HashField();
    Bytes ciphertext = dec.Blob();
    Hash256 mac = dec.HashField();
    dec.ExpectEnd();

    Hash256 key = SealingKey();
    Encoder authed;
    authed.HashField(nonce);
    authed.Blob(ciphertext);
    if (crypto::HmacSha256(key.View(), authed.bytes()) != mac) {
      return R::Error("sealed blob MAC mismatch (wrong enclave identity?)");
    }
    Bytes stream = Keystream(key, nonce, ciphertext.size());
    for (std::size_t i = 0; i < ciphertext.size(); ++i) ciphertext[i] ^= stream[i];
    return ciphertext;
  } catch (const DecodeError& e) {
    return R::Error(std::string("Unseal: ") + e.what());
  }
}

}  // namespace dcert::sgxsim
