#include "net/simnet.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace dcert::net {

namespace {

/// Process-wide mirrors of simulated-network traffic across every SimNetwork
/// (NetStats stays the exact per-simulation view).
struct SimMetrics {
  std::shared_ptr<obs::Counter> messages_delivered;
  std::shared_ptr<obs::Counter> bytes_delivered;
  std::shared_ptr<obs::Counter> messages_dropped;

  static SimMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static SimMetrics* m = new SimMetrics{
        reg.GetCounter("net.sim.messages_delivered"),
        reg.GetCounter("net.sim.bytes_delivered"),
        reg.GetCounter("net.sim.messages_dropped")};
    return *m;
  }
};

}  // namespace

SimNetwork::SimNetwork(std::uint64_t seed, SimTime min_latency_us,
                       SimTime max_latency_us)
    : rng_(seed), min_latency_(min_latency_us), max_latency_(max_latency_us) {
  if (min_latency_ > max_latency_) {
    throw std::invalid_argument("SimNetwork: min latency above max");
  }
}

void SimNetwork::AddActor(Actor* actor) {
  if (actor == nullptr) throw std::invalid_argument("SimNetwork: null actor");
  if (by_name_.count(actor->Name()) != 0) {
    throw std::invalid_argument("SimNetwork: duplicate actor name " +
                                actor->Name());
  }
  actors_.push_back(actor);
  by_name_[actor->Name()] = actor;
}

Actor* SimNetwork::FindActor(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void SimNetwork::Send(const std::string& from, const std::string& to,
                      const std::string& topic, Bytes payload) {
  if (FindActor(to) == nullptr) {
    ++stats_.messages_dropped;  // recipient may be external to the simulation
    SimMetrics::Get().messages_dropped->Add(1);
    return;
  }
  Event ev;
  ev.at = now_ + rng_.NextRange(min_latency_, max_latency_);
  ev.seq = next_seq_++;
  ev.is_timer = false;
  ev.msg = Message{from, to, topic, std::move(payload)};
  queue_.push(std::move(ev));
}

void SimNetwork::Broadcast(const std::string& from, const std::string& topic,
                           const Bytes& payload) {
  for (Actor* actor : actors_) {
    if (actor->Name() == from) continue;
    Send(from, actor->Name(), topic, payload);
  }
}

void SimNetwork::ScheduleTimer(const std::string& actor, SimTime delay_us,
                               std::uint64_t timer_id) {
  if (FindActor(actor) == nullptr) {
    throw std::invalid_argument("SimNetwork::ScheduleTimer: unknown actor " +
                                actor);
  }
  Event ev;
  ev.at = now_ + delay_us;
  ev.seq = next_seq_++;
  ev.is_timer = true;
  ev.timer_id = timer_id;
  ev.msg.to = actor;
  queue_.push(std::move(ev));
}

SimTime SimNetwork::Run(SimTime until) {
  for (Actor* actor : actors_) actor->OnStart(*this);
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    Actor* target = FindActor(ev.msg.to);
    if (target == nullptr) {
      // Same policy as Send: unknown targets drop (defensive — reachable
      // only if an actor vanished between enqueue and delivery).
      if (!ev.is_timer) {
        ++stats_.messages_dropped;
        SimMetrics::Get().messages_dropped->Add(1);
      }
      continue;
    }
    if (ev.is_timer) {
      target->OnTimer(*this, ev.timer_id);
    } else {
      ++stats_.messages_delivered;
      stats_.bytes_delivered += ev.msg.payload.size();
      ++stats_.messages_by_topic[ev.msg.topic];
      auto& sm = SimMetrics::Get();
      sm.messages_delivered->Add(1);
      sm.bytes_delivered->Add(ev.msg.payload.size());
      target->OnMessage(*this, ev.msg);
    }
  }
  if (queue_.empty() && now_ < until) now_ = until;
  return now_;
}

}  // namespace dcert::net
