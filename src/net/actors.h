// DCert network roles as simulation actors (the paper's Fig. 2 workflow):
//  MinerActor      — proposes blocks on a timer, broadcasts them (step 1);
//  FullNodeActor   — validates and stores every block;
//  CiActor         — SGX-enabled full node: certifies each block and
//                    broadcasts the certificate (steps 2-3);
//  SuperlightActor — validates the chain from (header, certificate) pairs
//                    alone (step 4).
// Every payload crosses the simulated wire in serialized form, and blocks
// may arrive out of order (actors reorder by height).
#pragma once

#include <map>
#include <memory>

#include "chain/node.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "net/simnet.h"
#include "query/historical_index.h"
#include "workloads/workloads.h"

namespace dcert::net {

inline constexpr const char* kTopicBlock = "block";
inline constexpr const char* kTopicCert = "cert";
inline constexpr const char* kTopicQuery = "query";
inline constexpr const char* kTopicQueryReply = "query-reply";

/// Wire helpers for the cert topic: header || certificate.
Bytes EncodeCertAnnouncement(const chain::BlockHeader& hdr,
                             const core::BlockCertificate& cert);
Result<std::pair<chain::BlockHeader, core::BlockCertificate>>
DecodeCertAnnouncement(ByteView payload);

class MinerActor final : public Actor {
 public:
  MinerActor(std::string name, chain::ChainConfig config,
             std::shared_ptr<const chain::ContractRegistry> registry,
             workloads::WorkloadGenerator::Params gen_params,
             std::size_t accounts, std::size_t txs_per_block,
             SimTime block_interval_us);

  std::string Name() const override { return name_; }
  void OnStart(SimNetwork& net) override;
  void OnMessage(SimNetwork& net, const Message& msg) override;
  void OnTimer(SimNetwork& net, std::uint64_t timer_id) override;

  std::uint64_t BlocksProposed() const { return node_.Height(); }

 private:
  std::string name_;
  chain::FullNode node_;
  chain::Miner miner_;
  workloads::AccountPool pool_;
  workloads::WorkloadGenerator gen_;
  std::size_t txs_per_block_;
  SimTime interval_us_;
};

/// Reorders incoming blocks by height and applies them to a full node.
class FullNodeActor final : public Actor {
 public:
  FullNodeActor(std::string name, chain::ChainConfig config,
                std::shared_ptr<const chain::ContractRegistry> registry);

  std::string Name() const override { return name_; }
  void OnMessage(SimNetwork& net, const Message& msg) override;

  const chain::FullNode& Node() const { return node_; }
  std::uint64_t RejectedBlocks() const { return rejected_; }

 private:
  void Drain();

  std::string name_;
  chain::FullNode node_;
  std::map<std::uint64_t, chain::Block> pending_;
  std::uint64_t rejected_ = 0;
};

class CiActor final : public Actor {
 public:
  CiActor(std::string name, chain::ChainConfig config,
          std::shared_ptr<const chain::ContractRegistry> registry);

  std::string Name() const override { return name_; }
  void OnMessage(SimNetwork& net, const Message& msg) override;

  const core::CertificateIssuer& Issuer() const { return ci_; }
  std::uint64_t CertsIssued() const { return certs_issued_; }

 private:
  void Drain(SimNetwork& net);

  std::string name_;
  core::CertificateIssuer ci_;
  std::map<std::uint64_t, chain::Block> pending_;
  std::uint64_t certs_issued_ = 0;
};

/// Query Service Provider: maintains the historical index from observed
/// blocks (reordered by height) and answers window queries over the wire.
/// Note: in this single-CI simulation the SP's index digests are certified
/// through the CI the client follows; the SP itself stays untrusted.
class SpActor final : public Actor {
 public:
  explicit SpActor(std::string name);

  std::string Name() const override { return name_; }
  void OnMessage(SimNetwork& net, const Message& msg) override;

  std::uint64_t QueriesServed() const { return queries_served_; }
  /// The live index (shared with a CI via AttachIndex in test setups).
  const std::shared_ptr<query::HistoricalIndex>& Index() const { return index_; }

 private:
  void Drain();

  std::string name_;
  std::shared_ptr<query::HistoricalIndex> index_;
  std::map<std::uint64_t, chain::Block> pending_;
  std::uint64_t next_height_ = 1;
  std::uint64_t queries_served_ = 0;
};

/// Wire forms for the query protocol.
Bytes EncodeHistoricalQuery(std::uint64_t request_id, std::uint64_t account,
                            std::uint64_t from_height, std::uint64_t to_height);
struct HistoricalQueryRequest {
  std::uint64_t request_id = 0;
  std::uint64_t account = 0;
  std::uint64_t from_height = 0;
  std::uint64_t to_height = 0;
};
Result<HistoricalQueryRequest> DecodeHistoricalQuery(ByteView payload);
Bytes EncodeHistoricalReply(std::uint64_t request_id,
                            const query::HistoricalQueryProof& proof);
Result<std::pair<std::uint64_t, query::HistoricalQueryProof>>
DecodeHistoricalReply(ByteView payload);

class SuperlightActor final : public Actor {
 public:
  explicit SuperlightActor(std::string name);

  std::string Name() const override { return name_; }
  void OnMessage(SimNetwork& net, const Message& msg) override;

  const core::SuperlightClient& Client() const { return client_; }
  std::uint64_t Accepted() const { return accepted_; }
  std::uint64_t RejectedStale() const { return rejected_stale_; }
  std::uint64_t RejectedInvalid() const { return rejected_invalid_; }

 private:
  std::string name_;
  core::SuperlightClient client_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t rejected_invalid_ = 0;
};

}  // namespace dcert::net
