#include "net/actors.h"

#include "common/serialize.h"

namespace dcert::net {

namespace {

constexpr std::uint64_t kMineTimer = 1;

}  // namespace

Bytes EncodeCertAnnouncement(const chain::BlockHeader& hdr,
                             const core::BlockCertificate& cert) {
  Encoder enc;
  enc.Blob(hdr.Serialize());
  enc.Blob(cert.Serialize());
  return enc.Take();
}

Result<std::pair<chain::BlockHeader, core::BlockCertificate>>
DecodeCertAnnouncement(ByteView payload) {
  using R = Result<std::pair<chain::BlockHeader, core::BlockCertificate>>;
  try {
    Decoder dec(payload);
    Bytes hdr_bytes = dec.Blob();
    Bytes cert_bytes = dec.Blob();
    dec.ExpectEnd();
    auto hdr = chain::BlockHeader::Deserialize(hdr_bytes);
    if (!hdr) return R(hdr.status());
    auto cert = core::BlockCertificate::Deserialize(cert_bytes);
    if (!cert) return R(cert.status());
    return std::make_pair(hdr.value(), cert.value());
  } catch (const DecodeError& e) {
    return R::Error(std::string("cert announcement: ") + e.what());
  }
}

MinerActor::MinerActor(std::string name, chain::ChainConfig config,
                       std::shared_ptr<const chain::ContractRegistry> registry,
                       workloads::WorkloadGenerator::Params gen_params,
                       std::size_t accounts, std::size_t txs_per_block,
                       SimTime block_interval_us)
    : name_(std::move(name)),
      node_(config, std::move(registry)),
      miner_(node_),
      pool_(accounts, 1234),
      gen_(gen_params, pool_),
      txs_per_block_(txs_per_block),
      interval_us_(block_interval_us) {}

void MinerActor::OnStart(SimNetwork& net) {
  net.ScheduleTimer(name_, interval_us_, kMineTimer);
}

void MinerActor::OnMessage(SimNetwork& net, const Message& msg) {
  (void)net;
  (void)msg;  // the miner ignores gossip in this single-miner simulation
}

void MinerActor::OnTimer(SimNetwork& net, std::uint64_t timer_id) {
  if (timer_id != kMineTimer) return;
  auto block = miner_.MineBlock(gen_.NextBlockTxs(txs_per_block_),
                                1700000000 + node_.Height() * 15);
  if (block.ok() && node_.SubmitBlock(block.value()).ok()) {
    net.Broadcast(name_, kTopicBlock, block.value().Serialize());
  }
  net.ScheduleTimer(name_, interval_us_, kMineTimer);
}

FullNodeActor::FullNodeActor(std::string name, chain::ChainConfig config,
                             std::shared_ptr<const chain::ContractRegistry> registry)
    : name_(std::move(name)), node_(config, std::move(registry)) {}

void FullNodeActor::OnMessage(SimNetwork& net, const Message& msg) {
  (void)net;
  if (msg.topic != kTopicBlock) return;
  auto block = chain::Block::Deserialize(msg.payload);
  if (!block) {
    ++rejected_;
    return;
  }
  pending_.emplace(block.value().header.height, std::move(block.value()));
  Drain();
}

void FullNodeActor::Drain() {
  while (true) {
    auto it = pending_.find(node_.Height() + 1);
    if (it == pending_.end()) break;
    if (!node_.SubmitBlock(it->second).ok()) ++rejected_;
    pending_.erase(it);
  }
}

CiActor::CiActor(std::string name, chain::ChainConfig config,
                 std::shared_ptr<const chain::ContractRegistry> registry)
    : name_(std::move(name)), ci_(config, std::move(registry)) {}

void CiActor::OnMessage(SimNetwork& net, const Message& msg) {
  if (msg.topic != kTopicBlock) return;
  auto block = chain::Block::Deserialize(msg.payload);
  if (!block) return;
  pending_.emplace(block.value().header.height, std::move(block.value()));
  Drain(net);
}

void CiActor::Drain(SimNetwork& net) {
  while (true) {
    auto it = pending_.find(ci_.Node().Height() + 1);
    if (it == pending_.end()) break;
    auto cert = ci_.ProcessBlock(it->second);
    if (cert.ok()) {
      ++certs_issued_;
      net.Broadcast(name_, kTopicCert,
                    EncodeCertAnnouncement(it->second.header, cert.value()));
    }
    pending_.erase(it);
  }
}

SpActor::SpActor(std::string name)
    : name_(std::move(name)),
      index_(std::make_shared<query::HistoricalIndex>("sp-historical")) {}

void SpActor::OnMessage(SimNetwork& net, const Message& msg) {
  if (msg.topic == kTopicBlock) {
    auto block = chain::Block::Deserialize(msg.payload);
    if (!block) return;
    pending_.emplace(block.value().header.height, std::move(block.value()));
    Drain();
    return;
  }
  if (msg.topic == kTopicQuery) {
    auto request = DecodeHistoricalQuery(msg.payload);
    if (!request) return;
    query::HistoricalQueryProof proof =
        index_->Query(request.value().account, request.value().from_height,
                      request.value().to_height);
    ++queries_served_;
    net.Send(name_, msg.from, kTopicQueryReply,
             EncodeHistoricalReply(request.value().request_id, proof));
  }
}

void SpActor::Drain() {
  while (true) {
    auto it = pending_.find(next_height_);
    if (it == pending_.end()) break;
    index_->ApplyBlockCapturingAux(it->second);
    pending_.erase(it);
    ++next_height_;
  }
}

Bytes EncodeHistoricalQuery(std::uint64_t request_id, std::uint64_t account,
                            std::uint64_t from_height, std::uint64_t to_height) {
  Encoder enc;
  enc.U64(request_id);
  enc.U64(account);
  enc.U64(from_height);
  enc.U64(to_height);
  return enc.Take();
}

Result<HistoricalQueryRequest> DecodeHistoricalQuery(ByteView payload) {
  using R = Result<HistoricalQueryRequest>;
  try {
    Decoder dec(payload);
    HistoricalQueryRequest req;
    req.request_id = dec.U64();
    req.account = dec.U64();
    req.from_height = dec.U64();
    req.to_height = dec.U64();
    dec.ExpectEnd();
    return req;
  } catch (const DecodeError& e) {
    return R::Error(std::string("query request: ") + e.what());
  }
}

Bytes EncodeHistoricalReply(std::uint64_t request_id,
                            const query::HistoricalQueryProof& proof) {
  Encoder enc;
  enc.U64(request_id);
  enc.Blob(proof.Serialize());
  return enc.Take();
}

Result<std::pair<std::uint64_t, query::HistoricalQueryProof>>
DecodeHistoricalReply(ByteView payload) {
  using R = Result<std::pair<std::uint64_t, query::HistoricalQueryProof>>;
  try {
    Decoder dec(payload);
    std::uint64_t request_id = dec.U64();
    Bytes proof_bytes = dec.Blob();
    dec.ExpectEnd();
    auto proof = query::HistoricalQueryProof::Deserialize(proof_bytes);
    if (!proof) return R(proof.status());
    return std::make_pair(request_id, std::move(proof.value()));
  } catch (const DecodeError& e) {
    return R::Error(std::string("query reply: ") + e.what());
  }
}

SuperlightActor::SuperlightActor(std::string name)
    : name_(std::move(name)), client_(core::ExpectedEnclaveMeasurement()) {}

void SuperlightActor::OnMessage(SimNetwork& net, const Message& msg) {
  (void)net;
  if (msg.topic != kTopicCert) return;
  auto announcement = DecodeCertAnnouncement(msg.payload);
  if (!announcement) {
    ++rejected_invalid_;
    return;
  }
  const auto& [hdr, cert] = announcement.value();
  Status st = client_.ValidateAndAccept(hdr, cert);
  if (st) {
    ++accepted_;
  } else if (client_.HasState() && hdr.height <= client_.Height()) {
    ++rejected_stale_;  // chain selection: certificates may arrive reordered
  } else {
    ++rejected_invalid_;
  }
}

}  // namespace dcert::net
