// Discrete-event network simulator: actors exchange serialized messages over
// links with randomized latency, driven by a virtual clock. Used to run the
// paper's certification workflow (Sec. 3.3) end to end — miner proposes,
// full nodes validate, the CI certifies and broadcasts, superlight clients
// validate — with every payload crossing the "wire" in serialized form.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace dcert::net {

using SimTime = std::uint64_t;  // microseconds of virtual time

struct Message {
  std::string from;
  std::string to;
  std::string topic;
  Bytes payload;
};

class SimNetwork;

/// A network participant. Actors never share memory — all coordination goes
/// through serialized messages and timers.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual std::string Name() const = 0;
  /// Called once when the simulation starts.
  virtual void OnStart(SimNetwork& net) { (void)net; }
  /// Called for each delivered message.
  virtual void OnMessage(SimNetwork& net, const Message& msg) = 0;
  /// Called when a timer set via ScheduleTimer fires.
  virtual void OnTimer(SimNetwork& net, std::uint64_t timer_id) {
    (void)net;
    (void)timer_id;
  }
};

struct NetStats {
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  /// Sends addressed to a recipient this network does not know (e.g. an
  /// external/departed actor). Dropped silently, never delivered.
  std::uint64_t messages_dropped = 0;
  std::map<std::string, std::uint64_t> messages_by_topic;
};

class SimNetwork {
 public:
  /// Latency per link is uniform in [min_latency_us, max_latency_us].
  SimNetwork(std::uint64_t seed, SimTime min_latency_us = 5'000,
             SimTime max_latency_us = 50'000);

  /// Registers an actor; the network does not take ownership.
  void AddActor(Actor* actor);

  /// Point-to-point send (delivered after a random link latency). A send to
  /// an unknown recipient is not an error — the target may be external to
  /// this simulation — it just counts into NetStats::messages_dropped.
  void Send(const std::string& from, const std::string& to,
            const std::string& topic, Bytes payload);

  /// Sends to every actor except the sender.
  void Broadcast(const std::string& from, const std::string& topic,
                 const Bytes& payload);

  /// Schedules `OnTimer(timer_id)` on `actor` after `delay_us`.
  void ScheduleTimer(const std::string& actor, SimTime delay_us,
                     std::uint64_t timer_id);

  /// Runs the event loop until the queue drains or virtual time passes
  /// `until`. Returns the final virtual time.
  SimTime Run(SimTime until);

  SimTime Now() const { return now_; }
  const NetStats& Stats() const { return stats_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreaker for equal timestamps
    bool is_timer;
    std::uint64_t timer_id;
    Message msg;  // for timers only `msg.to` is meaningful

    bool operator>(const Event& other) const {
      return std::tie(at, seq) > std::tie(other.at, other.seq);
    }
  };

  Actor* FindActor(const std::string& name) const;

  Rng rng_;
  SimTime min_latency_;
  SimTime max_latency_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Actor*> actors_;
  std::map<std::string, Actor*> by_name_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  NetStats stats_;
};

}  // namespace dcert::net
