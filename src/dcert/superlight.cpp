#include "dcert/superlight.h"

#include <stdexcept>

#include "chain/consensus.h"

namespace dcert::core {

SuperlightClient::SuperlightClient(Hash256 expected_measurement)
    : expected_measurement_(expected_measurement) {}

Status SuperlightClient::VerifyEnvelopeCached(const BlockCertificate& cert) {
  // One report verification per enclave identity (Sec. 4.3): afterwards only
  // the signature check runs per certificate.
  Hash256 cache_key = cert.report.quote.Digest();
  auto it = attested_keys_.find(cache_key);
  if (it != attested_keys_.end() && it->second) {
    if (cert.report.quote.report_data != KeyBindingReportData(cert.pk_enc)) {
      return Status::Error("enclave key does not match the attestation report");
    }
    if (!crypto::Verify(cert.pk_enc, cert.digest, cert.sig)) {
      return Status::Error("certificate signature invalid");
    }
    return Status::Ok();
  }
  ++report_verifications_;
  Status st = VerifyCertificateEnvelope(cert, expected_measurement_);
  if (st) attested_keys_[cache_key] = true;
  return st;
}

Status SuperlightClient::ValidateAndAccept(const chain::BlockHeader& hdr,
                                           const BlockCertificate& cert) {
  // Lines 2-6: certificate envelope (IAS report, measurement, key binding,
  // signature).
  if (Status st = VerifyEnvelopeCached(cert); !st) return st;
  // Line 7: the certificate must be about exactly this header.
  if (cert.digest != hdr.Hash()) {
    return Status::Error("certificate digest does not match the header");
  }
  // Line 8: chain selection (longest chain — strictly increasing height).
  std::uint64_t best = latest_ ? latest_->height : 0;
  if (latest_ && !chain::SatisfiesChainSelection(best, hdr)) {
    return Status::Error("header does not satisfy the chain selection rule");
  }
  latest_ = hdr;
  latest_cert_ = cert;
  return Status::Ok();
}

Status SuperlightClient::AcceptIndexCert(const chain::BlockHeader& hdr,
                                         const IndexCertificate& cert,
                                         const Hash256& idx_digest,
                                         const std::string& index_id) {
  if (Status st = VerifyEnvelopeCached(cert); !st) return st;
  if (cert.digest != IndexCertDigest(hdr.Hash(), idx_digest)) {
    return Status::Error("index certificate does not bind this header + digest");
  }
  // The header itself must be one the client trusts (the latest accepted, or
  // newer — in which case it must carry its own valid block/index chain; we
  // require consistency with the stored latest for the common case).
  auto it = index_state_.find(index_id);
  if (it != index_state_.end() &&
      hdr.height <= it->second.header.height &&
      hdr.Hash() != it->second.header.Hash()) {
    return Status::Error("index certificate is older than the accepted one");
  }
  index_state_[index_id] = IndexState{hdr, cert, idx_digest};
  return Status::Ok();
}

std::uint64_t SuperlightClient::Height() const {
  return latest_ ? latest_->height : 0;
}

const chain::BlockHeader& SuperlightClient::LatestHeader() const {
  if (!latest_) throw std::logic_error("SuperlightClient: no accepted header");
  return *latest_;
}

const BlockCertificate& SuperlightClient::LatestCert() const {
  if (!latest_cert_) throw std::logic_error("SuperlightClient: no certificate");
  return *latest_cert_;
}

std::optional<Hash256> SuperlightClient::CertifiedIndexDigest(
    const std::string& index_id) const {
  auto it = index_state_.find(index_id);
  if (it == index_state_.end()) return std::nullopt;
  return it->second.digest;
}

std::size_t SuperlightClient::StorageBytes() const {
  std::size_t total = 0;
  if (latest_) total += latest_->Serialize().size();
  if (latest_cert_) total += latest_cert_->ByteSize();
  for (const auto& [id, state] : index_state_) {
    total += id.size() + state.header.Serialize().size() +
             state.cert.ByteSize() + Hash256::kSize;
  }
  return total;
}

}  // namespace dcert::core
