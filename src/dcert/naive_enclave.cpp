#include "dcert/naive_enclave.h"

#include <stdexcept>

#include "chain/consensus.h"
#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::core {

Hash256 NaiveEnclaveMeasurement() {
  return sgxsim::ComputeMeasurement(kNaiveEnclaveProgramName,
                                    kEnclaveProgramVersion);
}

NaiveCertEnclaveProgram::NaiveCertEnclaveProgram(
    EnclaveConfig config, std::shared_ptr<const chain::ContractRegistry> registry,
    ByteView key_seed)
    : config_(config),
      registry_(std::move(registry)),
      signing_key_(crypto::SecretKey::FromSeed(key_seed)),
      own_measurement_(NaiveEnclaveMeasurement()) {
  if (!registry_ || registry_->Digest() != config_.registry_digest) {
    throw std::invalid_argument("NaiveCertEnclaveProgram: registry mismatch");
  }
}

sgxsim::Quote NaiveCertEnclaveProgram::MakeKeyQuote(
    const sgxsim::Enclave& enclave) const {
  return enclave.MakeQuote(KeyBindingReportData(signing_key_.Public()));
}

Result<crypto::Signature> NaiveCertEnclaveProgram::SigGen(
    const chain::BlockHeader& prev_hdr,
    const std::optional<BlockCertificate>& prev_cert, const chain::Block& blk) {
  using R = Result<crypto::Signature>;
  // Previous-block validation mirrors the stateless program.
  if (prev_hdr.height == 0) {
    if (prev_hdr.Hash() != config_.genesis_hash) {
      return R::Error("previous block does not match the pinned genesis");
    }
  } else {
    if (!prev_cert) return R::Error("missing previous certificate");
    if (Status st = VerifyCertificateEnvelope(*prev_cert, own_measurement_); !st) {
      return R(st);
    }
    if (prev_cert->digest != prev_hdr.Hash()) {
      return R::Error("previous certificate digest mismatch");
    }
  }

  const chain::BlockHeader& hdr = blk.header;
  if (hdr.prev_hash != prev_hdr.Hash() || hdr.height != prev_hdr.height + 1) {
    return R::Error("block does not extend the previous header");
  }
  if (hdr.difficulty_bits != config_.difficulty_bits) {
    return R::Error("unexpected difficulty");
  }
  if (Status st = chain::VerifyConsensus(hdr); !st) return R(st);
  if (hdr.tx_root != chain::Block::ComputeTxRoot(blk.txs)) {
    return R::Error("transaction root mismatch");
  }

  // Execute directly against the RESIDENT state — no proofs anywhere, but
  // the whole state must live inside the enclave.
  auto executed = chain::ExecuteBlockTxs(blk.txs, *registry_, state_);
  if (!executed) return R(executed.status());
  // Apply-then-compare, rolling back on mismatch so a forged block cannot
  // corrupt the resident state.
  chain::StateMap rollback;
  for (const auto& [key, value] : executed.value().writes) {
    rollback.emplace(key, state_.Load(key));
  }
  state_.ApplyWrites(executed.value().writes);
  if (state_.Root() != hdr.state_root) {
    state_.ApplyWrites(rollback);
    return R::Error("state root mismatch after in-enclave execution");
  }
  return signing_key_.Sign(hdr.Hash());
}

NaiveCertificateIssuer::NaiveCertificateIssuer(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    sgxsim::CostModelParams cost_model)
    : config_(config),
      enclave_(kNaiveEnclaveProgramName, kEnclaveProgramVersion, cost_model),
      program_(
          [&] {
            EnclaveConfig ec;
            ec.genesis_hash = chain::MakeGenesisBlock(config).header.Hash();
            ec.registry_digest = registry->Digest();
            ec.difficulty_bits = config.difficulty_bits;
            return ec;
          }(),
          registry, StrBytes("dcert-naive-ci-key")),
      report_(sgxsim::AttestationService::Attest(program_.MakeKeyQuote(enclave_))),
      node_(config, std::move(registry)) {}

Result<BlockCertificate> NaiveCertificateIssuer::ProcessBlock(
    const chain::Block& blk) {
  using R = Result<BlockCertificate>;
  timing_ = CertTiming{};
  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  // Every Ecall's working set includes the resident state (the EPC pressure
  // that motivates the paper's stateless design).
  const std::uint64_t input_bytes = blk.ByteSize() + program_.ResidentStateBytes();
  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(input_bytes, [&] {
    return program_.SigGen(prev_hdr, prev_cert, blk);
  });
  // The naive program also checkpoints its resident state via an Ocall.
  enclave_.Costs().RecordOcall();
  timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return R(sig.status().WithContext("naive ecall"));

  BlockCertificate cert;
  cert.pk_enc = program_.PublicKey();
  cert.report = report_;
  cert.digest = blk.header.Hash();
  cert.sig = sig.value();

  if (Status st = node_.SubmitBlock(blk); !st) return R(st.WithContext("commit"));
  latest_cert_ = cert;
  return cert;
}

}  // namespace dcert::core
