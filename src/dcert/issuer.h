// The SGX-enabled Certificate Issuer (CI): a full node that pre-processes
// blocks outside the enclave (Alg. 1 lines 2-3), drives the trusted program
// through Ecalls, assembles certificates, and — for verifiable queries —
// certifies attached authenticated indexes with the augmented (Alg. 4) or
// hierarchical (Alg. 5) scheme.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/node.h"
#include "common/status.h"
#include "dcert/certificate.h"
#include "dcert/enclave_program.h"
#include "dcert/index_verifier.h"
#include "sgxsim/enclave.h"

namespace dcert::core {

/// Host-side handle for an authenticated index the CI certifies. The live
/// index (usually co-maintained with an SP) captures pre-state auxiliary
/// proofs while applying each block: successive appends within one block
/// depend on each other, so proof capture and application are one pass.
/// If the enclave later rejects the update the CI instance is considered
/// failed (a production CI would snapshot and roll back).
class CertifiedIndexHost {
 public:
  virtual ~CertifiedIndexHost() = default;
  virtual std::string Id() const = 0;
  virtual const IndexUpdateVerifier& Verifier() const = 0;
  /// Digest of the live index (post-apply once ApplyBlockCapturingAux ran).
  virtual Hash256 CurrentDigest() const = 0;
  /// Applies `blk` to the live index and returns the auxiliary proof
  /// material (captured against the pre-state) for the enclave.
  virtual Bytes ApplyBlockCapturingAux(const chain::Block& blk) = 0;
};

/// Per-block certificate construction cost breakdown (Figs. 8-10). The
/// per-stage counters are *busy* times: in serial operation they also sum to
/// the elapsed time, while in pipelined operation the prepare-side counters
/// (rwset/proof/index_aux/commit) accumulate on the prepare thread and
/// overlap the enclave-side ones, so the elapsed time is tracked separately
/// in `span_wall_ns` (stage-overlap accounting).
struct CertTiming {
  std::uint64_t rwset_ns = 0;            // outside: execution + r/w set gen
  std::uint64_t proof_ns = 0;            // outside: Merkle proof generation
  std::uint64_t index_aux_ns = 0;        // outside: index aux proof generation
  std::uint64_t commit_ns = 0;           // outside: full-node re-validate + apply
  std::uint64_t enclave_wall_ns = 0;     // inside: raw wall time
  std::uint64_t enclave_modeled_ns = 0;  // inside: with modelled SGX overheads
  std::uint64_t ecalls = 0;
  std::uint64_t blocks = 0;              // blocks covered by this window
  std::uint64_t span_wall_ns = 0;        // elapsed wall time of the whole span
                                         // (0 when a single-block entry point
                                         // ran; stages then sum to elapsed)

  double OutsideMs() const {
    return static_cast<double>(rwset_ns + proof_ns + index_aux_ns) / 1e6;
  }
  double TotalMs(bool modeled) const {
    return OutsideMs() +
           static_cast<double>(modeled ? enclave_modeled_ns : enclave_wall_ns) / 1e6;
  }
  /// Busy fraction of the two pipeline stages over the span's wall time:
  /// (prepare busy + enclave busy) / (2 * wall). 0.5 means one stage was
  /// always idle (no overlap); 1.0 means both stages ran the whole time.
  double PipelineOccupancy() const {
    if (span_wall_ns == 0) return 0.0;
    const std::uint64_t busy =
        rwset_ns + proof_ns + index_aux_ns + commit_ns + enclave_wall_ns;
    return static_cast<double>(busy) / (2.0 * static_cast<double>(span_wall_ns));
  }
};

class CertificateIssuer {
 public:
  CertificateIssuer(chain::ChainConfig config,
                    std::shared_ptr<const chain::ContractRegistry> registry,
                    sgxsim::CostModelParams cost_model = {},
                    std::string key_seed = "dcert-ci-key");

  /// Restart path (Sec. 3.3 sealing): rebuilds an issuer from the signing key
  /// a previous instance sealed (SealSigningKey). The restored issuer has the
  /// same pk_enc — clients keep their cached attestation — and its node is at
  /// genesis, ready for replay. Fails (Status) when the blob was sealed by a
  /// different enclave identity or tampered with.
  static Result<CertificateIssuer> Restore(
      chain::ChainConfig config,
      std::shared_ptr<const chain::ContractRegistry> registry,
      ByteView sealed_key, sgxsim::CostModelParams cost_model = {});

  /// Seals the enclave signing key for Restore() after a restart.
  Bytes SealSigningKey() const { return program_.SealSigningKey(enclave_); }

  /// Checkpoint resume: re-bases a freshly constructed/Restore()'d issuer
  /// (node still at genesis) onto a certified snapshot, so replay starts at
  /// the snapshot height instead of genesis. Verifies the certificate
  /// envelope against the pinned measurement and its digest binding to the
  /// tip header, then installs the state (which must hash to the header's
  /// state root — FullNode::InstallSnapshot). The certificate becomes the
  /// recursive predecessor for future issuance, which is sound because the
  /// enclave's SigGen needs only (prev_hdr, prev_cert), never pre-snapshot
  /// history. Late index attachment via AttachIndexWithBackfill is
  /// unavailable after a snapshot install (the blocks to backfill from are
  /// gone).
  Status InstallSnapshot(const chain::Block& tip, const chain::StateMap& state,
                         const BlockCertificate& tip_cert);

  chain::FullNode& Node() { return node_; }
  const chain::FullNode& Node() const { return node_; }
  const sgxsim::Enclave& EnclaveHandle() const { return enclave_; }
  sgxsim::Enclave& EnclaveHandle() { return enclave_; }
  const sgxsim::AttestationReport& Report() const { return report_; }
  const crypto::PublicKey& EnclaveKey() const { return program_.PublicKey(); }

  /// Certificate for the current tip (nullopt while the tip is genesis).
  const std::optional<BlockCertificate>& LatestCert() const { return latest_cert_; }

  /// gen_cert (Alg. 1): constructs the block certificate for `blk` (which
  /// must extend this CI's tip) and then appends the block to the local full
  /// node. Fills LastTiming().
  Result<BlockCertificate> ProcessBlock(const chain::Block& blk);

  /// Batched certification: one Ecall certifies the whole span (which must
  /// extend the tip contiguously); only the last block receives a
  /// certificate. Amortizes enclave transitions and signing across the span
  /// at the cost of per-block certification latency (see bench_batching).
  Result<BlockCertificate> ProcessBlockBatch(
      const std::vector<chain::Block>& blocks);

  /// Two-stage pipelined certification of a contiguous span: a prepare
  /// thread runs the outside-enclave work (tip check, VM re-execution,
  /// update-proof build, full-node commit) for block N+1 while the calling
  /// thread drives block N's Ecall — legal because the enclave needs only
  /// the *previous* certificate, never the node's post-commit state. Every
  /// block receives a certificate; certs, roots, and LatestCert() are
  /// byte-identical to running ProcessBlock once per block. Fills
  /// LastTiming() with stage-overlap accounting (span_wall_ns, occupancy).
  /// On an Ecall failure the node may already have committed ahead of the
  /// last certificate (a production CI would snapshot and roll back).
  ///
  /// `on_cert`, when set, runs on the calling thread right after block i's
  /// certificate is assembled and *before* it becomes LatestCert() — the
  /// durability hook: a durable issuer appends block and certificate to its
  /// logs (and announces) here, so a crash inside the sink leaves the
  /// in-memory chain ahead of the logs, which recovery reconciles. A sink
  /// error aborts the span like an Ecall failure would.
  Result<std::vector<BlockCertificate>> ProcessBlocksPipelined(
      const std::vector<chain::Block>& blocks,
      const std::function<Status(std::size_t, const BlockCertificate&)>&
          on_cert = nullptr);

  /// Adopts a block certified by *another* CI (decentralization: any CI
  /// running the same measured enclave can extend the chain). Fully
  /// validates the block locally, checks that `cert` is a valid certificate
  /// for it from the pinned enclave program, appends, and uses `cert` as the
  /// recursive predecessor for this CI's own future certificates.
  Status AcceptBlockWithCert(const chain::Block& blk,
                             const BlockCertificate& cert);

  /// Registers an authenticated index for certification. All indexes are
  /// updated/certified by the ProcessBlock*Indexes entry points. Must be
  /// called while the chain is at genesis; for later attachment use
  /// AttachIndexWithBackfill.
  void AttachIndex(std::shared_ptr<CertifiedIndexHost> index);

  /// On-demand index activation (the paper's versatility claim): attaches a
  /// *fresh* index at any chain height by replaying every stored block
  /// through the enclave, producing the full recursive chain of index
  /// certificates up to the current tip. Requires the tip to already carry a
  /// block certificate (or be genesis). Returns the index certificate at the
  /// tip. Cost: one index Ecall per historical block (measured by
  /// bench_backfill).
  Result<IndexCertificate> AttachIndexWithBackfill(
      std::shared_ptr<CertifiedIndexHost> index);

  std::size_t IndexCount() const { return indexes_.size(); }

  /// Augmented scheme (Alg. 4): one Ecall *per index*, each re-verifying the
  /// block. No standalone block certificate is produced.
  Result<std::vector<IndexCertificate>> ProcessBlockAugmented(
      const chain::Block& blk);

  /// Hierarchical scheme (Alg. 5): one gen_cert Ecall for the block, then
  /// one lightweight Ecall per index. Returns the index certificates; the
  /// block certificate is available via LatestCert().
  Result<std::vector<IndexCertificate>> ProcessBlockHierarchical(
      const chain::Block& blk);

  /// Latest certificate for an attached index (by id).
  const std::optional<IndexCertificate>& LatestIndexCert(
      const std::string& id) const;

  const CertTiming& LastTiming() const { return timing_; }

 private:
  CertificateIssuer(chain::ChainConfig config,
                    std::shared_ptr<const chain::ContractRegistry> registry,
                    sgxsim::Enclave enclave, CertEnclaveProgram program);

  struct IndexSlot {
    std::shared_ptr<CertifiedIndexHost> host;
    Hash256 digest;  // certified digest as of the CI's tip
    std::optional<IndexCertificate> cert;
  };

  struct Prepared {
    StateUpdateProof proof;
    std::uint64_t input_bytes = 0;
  };

  /// Outside-enclave pre-processing (Alg. 1 lines 2-3), timed.
  Result<Prepared> Prepare(const chain::Block& blk);
  BlockCertificate AssembleCert(const Hash256& digest,
                                const crypto::Signature& sig) const;
  Status CheckExtendsTip(const chain::Block& blk) const;
  /// Appends the block to the local full node.
  Status Commit(const chain::Block& blk);

  chain::ChainConfig config_;
  sgxsim::Enclave enclave_;
  CertEnclaveProgram program_;
  sgxsim::AttestationReport report_;
  /// Runs one index Ecall (Alg. 5 inner loop) for `slot` over `blk`, which
  /// must carry `block_cert`. Updates the slot and the timing counters.
  Status CertifyIndexStep(IndexSlot& slot, const chain::Block& blk,
                          const chain::BlockHeader& prev_hdr,
                          const BlockCertificate& block_cert);
  /// Same, with the aux proof already captured (the hierarchical entry point
  /// captures all indexes' aux material concurrently before the Ecalls).
  Status CertifyIndexStepWithAux(IndexSlot& slot, const chain::Block& blk,
                                 const chain::BlockHeader& prev_hdr,
                                 const BlockCertificate& block_cert, Bytes aux);

  chain::FullNode node_;
  std::optional<BlockCertificate> latest_cert_;
  /// Block certificates by height-1 (kept so late-attached indexes can be
  /// backfilled); empty while running in augmented-only mode.
  std::vector<BlockCertificate> block_certs_;
  std::vector<IndexSlot> indexes_;
  CertTiming timing_;
};

}  // namespace dcert::core
