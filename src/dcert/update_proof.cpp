#include "dcert/update_proof.h"

#include "common/serialize.h"

namespace dcert::core {

namespace {

void EncodeStateMap(Encoder& enc, const chain::StateMap& map) {
  enc.U32(static_cast<std::uint32_t>(map.size()));
  for (const auto& [key, value] : map) {
    enc.HashField(key);
    enc.U64(value);
  }
}

chain::StateMap DecodeStateMap(Decoder& dec) {
  chain::StateMap map;
  std::uint32_t n = dec.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Hash256 key = dec.HashField();
    std::uint64_t value = dec.U64();
    map.emplace(key, value);
  }
  return map;
}

}  // namespace

Bytes StateUpdateProof::Serialize() const {
  Encoder enc;
  EncodeStateMap(enc, read_set);
  EncodeStateMap(enc, prior_write_values);
  enc.Blob(smt_proof.Serialize());
  return enc.Take();
}

Result<StateUpdateProof> StateUpdateProof::Deserialize(ByteView data) {
  using R = Result<StateUpdateProof>;
  try {
    Decoder dec(data);
    StateUpdateProof proof;
    proof.read_set = DecodeStateMap(dec);
    proof.prior_write_values = DecodeStateMap(dec);
    Bytes smt = dec.Blob();
    dec.ExpectEnd();
    auto parsed = mht::SmtMultiProof::Deserialize(smt);
    if (!parsed) return R(parsed.status());
    proof.smt_proof = std::move(parsed.value());
    return proof;
  } catch (const DecodeError& e) {
    return R::Error(std::string("StateUpdateProof: ") + e.what());
  }
}

std::size_t StateUpdateProof::ByteSize() const {
  return (read_set.size() + prior_write_values.size()) * (32 + 8) +
         smt_proof.ByteSize();
}

std::map<Hash256, Hash256> StateUpdateProof::OldLeaves() const {
  std::map<Hash256, Hash256> leaves;
  for (const auto& [key, value] : read_set) {
    leaves[key] = chain::StateValueHash(value);
  }
  for (const auto& [key, value] : prior_write_values) {
    leaves[key] = chain::StateValueHash(value);
  }
  return leaves;
}

StateUpdateProof BuildStateUpdateProof(const chain::StateMap& reads,
                                       const chain::StateMap& writes,
                                       const chain::StateDB& db) {
  StateUpdateProof proof;
  proof.read_set = reads;
  std::vector<chain::StateKey> touched;
  touched.reserve(reads.size() + writes.size());
  chain::AppendKeys(reads, touched);
  chain::AppendKeys(writes, touched);
  for (const auto& [key, value] : writes) {
    if (reads.count(key) == 0) {
      proof.prior_write_values.emplace(key, db.Load(key));
    }
  }
  proof.smt_proof = db.ProveKeys(touched);
  return proof;
}

}  // namespace dcert::core
