#include "dcert/cert_store.h"

#include <utility>

namespace dcert::core {

Result<CertificateStore> CertificateStore::Open(const std::string& path) {
  return Open(path, 0);
}

Result<CertificateStore> CertificateStore::Open(
    const std::string& path, std::uint64_t segment_max_records) {
  using R = Result<CertificateStore>;
  common::RecordLog::Options options;
  options.name = "certlog";
  options.segment_max_records = segment_max_records;
  auto log = common::RecordLog::Open(path, std::move(options));
  if (!log) return R(log.status());
  return CertificateStore(std::move(log.value()));
}

Status CertificateStore::Append(const BlockCertificate& cert) {
  return log_.Append(cert.Serialize());
}

Result<BlockCertificate> CertificateStore::Get(std::uint64_t index) const {
  using R = Result<BlockCertificate>;
  auto payload = log_.Get(index);
  if (!payload) return R(payload.status());
  return BlockCertificate::Deserialize(payload.value());
}

}  // namespace dcert::core
