#include "dcert/cert_store.h"

#include <utility>

namespace dcert::core {

Result<CertificateStore> CertificateStore::Open(const std::string& path) {
  using R = Result<CertificateStore>;
  common::RecordLog::Options options;
  options.name = "certlog";
  auto log = common::RecordLog::Open(path, std::move(options));
  if (!log) return R(log.status());
  return CertificateStore(std::move(log.value()));
}

Status CertificateStore::Append(const BlockCertificate& cert) {
  return log_.Append(cert.Serialize());
}

Result<BlockCertificate> CertificateStore::Get(std::uint64_t index) const {
  using R = Result<BlockCertificate>;
  auto payload = log_.Get(index);
  if (!payload) return R(payload.status());
  return BlockCertificate::Deserialize(payload.value());
}

}  // namespace dcert::core
