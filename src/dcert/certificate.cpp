#include "dcert/certificate.h"

#include "crypto/sha256.h"

namespace dcert::core {

Bytes BlockCertificate::Serialize() const {
  Encoder enc;
  enc.Raw(pk_enc.Serialize());
  enc.Blob(report.Serialize());
  enc.HashField(digest);
  enc.Raw(sig.Serialize());
  return enc.Take();
}

Result<BlockCertificate> BlockCertificate::Deserialize(ByteView data) {
  using R = Result<BlockCertificate>;
  try {
    Decoder dec(data);
    BlockCertificate cert;
    Bytes pk_bytes = dec.Raw(64);
    auto pk = crypto::PublicKey::Deserialize(pk_bytes);
    if (!pk) return R::Error("BlockCertificate: invalid enclave key");
    cert.pk_enc = *pk;
    Bytes report_bytes = dec.Blob();
    auto report = sgxsim::AttestationReport::Deserialize(report_bytes);
    if (!report) return R(report.status());
    cert.report = report.value();
    cert.digest = dec.HashField();
    Bytes sig_bytes = dec.Raw(64);
    dec.ExpectEnd();
    auto sig = crypto::Signature::Deserialize(sig_bytes);
    if (!sig) return R::Error("BlockCertificate: invalid signature encoding");
    cert.sig = *sig;
    return cert;
  } catch (const DecodeError& e) {
    return R::Error(std::string("BlockCertificate: ") + e.what());
  }
}

Hash256 IndexCertDigest(const Hash256& header_hash, const Hash256& index_digest) {
  return crypto::Sha256::Digest2(header_hash.View(), index_digest.View());
}

Hash256 KeyBindingReportData(const crypto::PublicKey& pk_enc) {
  return crypto::Sha256::Digest(pk_enc.Serialize());
}

Status VerifyCertificateEnvelope(const BlockCertificate& cert,
                                 const Hash256& expected_measurement) {
  if (Status st = sgxsim::AttestationService::VerifyReport(cert.report); !st) {
    return st;
  }
  if (cert.report.quote.measurement != expected_measurement) {
    return Status::Error("certificate enclave measurement mismatch");
  }
  if (cert.report.quote.report_data != KeyBindingReportData(cert.pk_enc)) {
    return Status::Error("enclave key does not match the attestation report");
  }
  if (!crypto::Verify(cert.pk_enc, cert.digest, cert.sig)) {
    return Status::Error("certificate signature invalid");
  }
  return Status::Ok();
}

}  // namespace dcert::core
