#include "dcert/certificate.h"

#include "crypto/sha256.h"

namespace dcert::core {

Bytes BlockCertificate::Serialize() const {
  Encoder enc;
  enc.Raw(pk_enc.Serialize());
  enc.Blob(report.Serialize());
  enc.HashField(digest);
  enc.Raw(sig.Serialize());
  return enc.Take();
}

Result<BlockCertificate> BlockCertificate::Deserialize(ByteView data) {
  using R = Result<BlockCertificate>;
  try {
    Decoder dec(data);
    BlockCertificate cert;
    Bytes pk_bytes = dec.Raw(64);
    auto pk = crypto::PublicKey::Deserialize(pk_bytes);
    if (!pk) return R::Error("BlockCertificate: invalid enclave key");
    cert.pk_enc = *pk;
    Bytes report_bytes = dec.Blob();
    auto report = sgxsim::AttestationReport::Deserialize(report_bytes);
    if (!report) return R(report.status());
    cert.report = report.value();
    cert.digest = dec.HashField();
    Bytes sig_bytes = dec.Raw(64);
    dec.ExpectEnd();
    auto sig = crypto::Signature::Deserialize(sig_bytes);
    if (!sig) return R::Error("BlockCertificate: invalid signature encoding");
    cert.sig = *sig;
    return cert;
  } catch (const DecodeError& e) {
    return R::Error(std::string("BlockCertificate: ") + e.what());
  }
}

Hash256 IndexCertDigest(const Hash256& header_hash, const Hash256& index_digest) {
  return crypto::Sha256::Digest2(header_hash.View(), index_digest.View());
}

Hash256 KeyBindingReportData(const crypto::PublicKey& pk_enc) {
  return crypto::Sha256::Digest(pk_enc.Serialize());
}

Status VerifyCertificateEnvelope(const BlockCertificate& cert,
                                 const Hash256& expected_measurement) {
  if (Status st = sgxsim::AttestationService::VerifyReport(cert.report); !st) {
    return st;
  }
  if (cert.report.quote.measurement != expected_measurement) {
    return Status::Error("certificate enclave measurement mismatch");
  }
  if (cert.report.quote.report_data != KeyBindingReportData(cert.pk_enc)) {
    return Status::Error("enclave key does not match the attestation report");
  }
  if (!crypto::Verify(cert.pk_enc, cert.digest, cert.sig)) {
    return Status::Error("certificate signature invalid");
  }
  return Status::Ok();
}

std::vector<Status> VerifyCertificateEnvelopesBatch(
    const BlockCertificate* const* certs, std::size_t n,
    const Hash256& expected_measurement) {
  const crypto::PublicKey& ias_pk = sgxsim::AttestationService::IasPublicKey();
  std::vector<Hash256> quote_digests(n);
  std::vector<crypto::VerifyJob> jobs(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const BlockCertificate& cert = *certs[i];
    quote_digests[i] = cert.report.quote.Digest();
    jobs[2 * i] = {&ias_pk, &quote_digests[i], &cert.report.ias_signature};
    jobs[2 * i + 1] = {&cert.pk_enc, &cert.digest, &cert.sig};
  }
  std::vector<bool> sig_ok = crypto::VerifyBatch(jobs.data(), jobs.size());

  // Same check cascade (and messages) as VerifyCertificateEnvelope, with the
  // signature verdicts read from the batch.
  std::vector<Status> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BlockCertificate& cert = *certs[i];
    if (!sig_ok[2 * i]) {
      out.push_back(Status::Error("attestation report is not signed by the IAS"));
    } else if (cert.report.quote.measurement != expected_measurement) {
      out.push_back(Status::Error("certificate enclave measurement mismatch"));
    } else if (cert.report.quote.report_data != KeyBindingReportData(cert.pk_enc)) {
      out.push_back(
          Status::Error("enclave key does not match the attestation report"));
    } else if (!sig_ok[2 * i + 1]) {
      out.push_back(Status::Error("certificate signature invalid"));
    } else {
      out.push_back(Status::Ok());
    }
  }
  return out;
}

}  // namespace dcert::core
