// The trusted enclave program — Algorithms 2, 4, and the trusted inner loop
// of Algorithm 5. In a real deployment this translation unit (plus its pure
// dependencies) is what would be compiled against the SGX SDK; it touches no
// ambient state beyond its construction-time configuration and the sealed
// signing key.
#pragma once

#include <memory>
#include <optional>

#include "chain/block.h"
#include "chain/executor.h"
#include "common/status.h"
#include "crypto/signature.h"
#include "dcert/certificate.h"
#include "dcert/index_verifier.h"
#include "dcert/update_proof.h"
#include "sgxsim/enclave.h"

namespace dcert::core {

/// Configuration sealed into the enclave at initialization: the hard-coded
/// genesis digest (Alg. 2 line 4), the pinned contract code commitment, and
/// the consensus difficulty the chain runs at.
struct EnclaveConfig {
  Hash256 genesis_hash;
  Hash256 registry_digest;
  std::uint32_t difficulty_bits = 8;
};

/// Identity constants of the certificate-construction enclave. Verifiers pin
/// this measurement (Alg. 3 line 4).
inline constexpr const char* kEnclaveProgramName = "dcert-certificate-enclave";
inline constexpr const char* kEnclaveProgramVersion = "1.0.0";
Hash256 ExpectedEnclaveMeasurement();

class CertEnclaveProgram {
 public:
  /// Initialization (Sec. 3.3): derives the key pair (sk_enc stays inside),
  /// and checks the host-provided registry against the pinned digest.
  /// Throws std::invalid_argument on registry mismatch.
  CertEnclaveProgram(EnclaveConfig config,
                     std::shared_ptr<const chain::ContractRegistry> registry,
                     ByteView key_seed);

  const crypto::PublicKey& PublicKey() const { return signing_key_.Public(); }

  /// Quote binding pk_enc for remote attestation. The host forwards it to
  /// the (simulated) IAS and passes the resulting report around in certs.
  sgxsim::Quote MakeKeyQuote(const sgxsim::Enclave& enclave) const;

  /// Seals the signing key to the enclave identity so a restarted CI can
  /// resume with the same pk_enc (clients keep their cached attestation).
  Bytes SealSigningKey(const sgxsim::Enclave& enclave) const;

  /// Restores a program from a sealed signing key. Fails (Status) when the
  /// blob was sealed by a different enclave identity or tampered with.
  static Result<CertEnclaveProgram> RestoreFromSealed(
      EnclaveConfig config, std::shared_ptr<const chain::ContractRegistry> registry,
      const sgxsim::Enclave& enclave, ByteView sealed_key);

  /// ecall_sig_gen (Alg. 2): verifies the previous certificate, replays the
  /// new block against the proof-backed read set, checks the state
  /// transition, and signs H(hdr_i). `prev_cert` is nullopt only when the
  /// previous block is genesis.
  Result<crypto::Signature> SigGen(const chain::BlockHeader& prev_hdr,
                                   const std::optional<BlockCertificate>& prev_cert,
                                   const chain::Block& new_blk,
                                   const StateUpdateProof& update_proof) const;

  /// Batched variant of ecall_sig_gen: verifies a contiguous span of blocks
  /// in ONE Ecall (the previous certificate is checked once; each block is
  /// then chain-verified against its predecessor) and signs the LAST header.
  /// Amortizes enclave transitions and signature work across the span; the
  /// trade-off is certification latency for the intermediate blocks, which
  /// receive no certificates of their own.
  Result<crypto::Signature> SigGenSpan(
      const chain::BlockHeader& prev_hdr,
      const std::optional<BlockCertificate>& prev_cert,
      const std::vector<chain::Block>& blocks,
      const std::vector<StateUpdateProof>& update_proofs) const;

  /// Augmented certificate generation (Alg. 4): block verification + index
  /// update in one call; signs H(H(hdr_i) || H_i^idx).
  Result<crypto::Signature> AugmentedSigGen(
      const chain::BlockHeader& prev_hdr,
      const std::optional<IndexCertificate>& prev_idx_cert,
      const Hash256& prev_idx_digest, const chain::Block& new_blk,
      const StateUpdateProof& update_proof, const IndexUpdateVerifier& verifier,
      ByteView index_aux_proof, Hash256& new_idx_digest_out) const;

  /// Hierarchical index certificate (Alg. 5 inner loop): relies on the
  /// already-constructed block certificate instead of replaying the block;
  /// only the transaction list is re-checked against the certified tx root
  /// (needed to extract index write data).
  Result<crypto::Signature> IndexSigGen(
      const chain::BlockHeader& prev_hdr,
      const std::optional<IndexCertificate>& prev_idx_cert,
      const Hash256& prev_idx_digest, const chain::Block& new_blk,
      const BlockCertificate& block_cert, const IndexUpdateVerifier& verifier,
      ByteView index_aux_proof, Hash256& new_idx_digest_out) const;

  const EnclaveConfig& Config() const { return config_; }

 private:
  /// cert_verify_t: envelope checks + digest comparison.
  Status CertVerify(const Hash256& expected_digest,
                    const BlockCertificate& cert) const;
  /// blk_verify_t (Alg. 2 lines 10-24).
  Status BlkVerify(const chain::BlockHeader& prev_hdr, const chain::Block& new_blk,
                   const StateUpdateProof& update_proof) const;
  /// Previous-block validation shared by all three entry points: genesis
  /// check or recursive certificate check.
  Status VerifyPrev(const chain::BlockHeader& prev_hdr,
                    const std::optional<BlockCertificate>& prev_cert,
                    const std::optional<Hash256>& prev_idx_digest,
                    const std::optional<Hash256>& genesis_idx_digest) const;

  EnclaveConfig config_;
  std::shared_ptr<const chain::ContractRegistry> registry_;
  crypto::SecretKey signing_key_;
  Hash256 own_measurement_;
};

}  // namespace dcert::core
