// The superlight client (Alg. 3): keeps only the latest block header and its
// certificate; validating a new pair costs constant time regardless of chain
// length, and the attestation report is checked once per enclave identity.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "chain/block.h"
#include "common/status.h"
#include "dcert/certificate.h"

namespace dcert::core {

class SuperlightClient {
 public:
  /// `expected_measurement` pins the certificate-construction enclave the
  /// client trusts (usually ExpectedEnclaveMeasurement()).
  explicit SuperlightClient(Hash256 expected_measurement);

  /// validate_chain (Alg. 3): verifies the certificate envelope (IAS report
  /// cached per pk_enc), the digest binding dig = H(hdr), and the chain
  /// selection rule (height must beat the current best). On success the pair
  /// replaces the stored state.
  Status ValidateAndAccept(const chain::BlockHeader& hdr,
                           const BlockCertificate& cert);

  /// Accepts an index certificate for `index_id`, checking it binds
  /// `idx_digest` to a header the client has already accepted (same height
  /// and hash as the stored latest, or validated alongside).
  Status AcceptIndexCert(const chain::BlockHeader& hdr,
                         const IndexCertificate& cert, const Hash256& idx_digest,
                         const std::string& index_id);

  bool HasState() const { return latest_.has_value(); }
  std::uint64_t Height() const;
  const chain::BlockHeader& LatestHeader() const;
  const BlockCertificate& LatestCert() const;

  /// Latest certified digest for an index, if any.
  std::optional<Hash256> CertifiedIndexDigest(const std::string& index_id) const;

  /// Everything the client persists: latest header + certificate (+ index
  /// certificates). The Fig. 7a constant.
  std::size_t StorageBytes() const;

  /// Number of full attestation-report verifications performed (the cache
  /// means this stays at one per enclave key, Sec. 4.3).
  std::uint64_t ReportVerifications() const { return report_verifications_; }

 private:
  Status VerifyEnvelopeCached(const BlockCertificate& cert);

  Hash256 expected_measurement_;
  std::optional<chain::BlockHeader> latest_;
  std::optional<BlockCertificate> latest_cert_;

  struct IndexState {
    chain::BlockHeader header;
    IndexCertificate cert;
    Hash256 digest;
  };
  std::map<std::string, IndexState> index_state_;

  /// Enclave keys whose report already verified (quote digest -> ok).
  std::map<Hash256, bool> attested_keys_;
  std::uint64_t report_verifications_ = 0;
};

}  // namespace dcert::core
