// Durable certificate log: the CI's append-only record of every block
// certificate it has issued, stored in the same length-prefixed CRC-checked
// RecordLog format as the block store. Record i holds the certificate for
// block height i+1 (genesis carries no certificate), so after reconciliation
// Count() == block store Count() - 1.
#pragma once

#include <cstdint>
#include <string>

#include "common/record_log.h"
#include "common/status.h"
#include "dcert/certificate.h"

namespace dcert::core {

class CertificateStore {
 public:
  CertificateStore(CertificateStore&&) noexcept = default;
  CertificateStore& operator=(CertificateStore&&) noexcept = default;
  CertificateStore(const CertificateStore&) = delete;
  CertificateStore& operator=(const CertificateStore&) = delete;

  /// Opens (creating if absent) the store at `path`. A torn or corrupt tail
  /// — a crash mid-append — is truncated, fsynced, and reported via
  /// RecoveredFromTornTail().
  static Result<CertificateStore> Open(const std::string& path);

  /// Same, with segment rotation every `segment_max_records` certificates,
  /// enabling CompactBelow.
  static Result<CertificateStore> Open(const std::string& path,
                                       std::uint64_t segment_max_records);

  /// Appends the certificate for block height Count()+1.
  Status Append(const BlockCertificate& cert);

  /// Certificate for block height `index + 1`.
  Result<BlockCertificate> Get(std::uint64_t index) const;

  std::uint64_t Count() const { return log_.Count(); }

  /// First retained record index (certificate for height BaseIndex() + 1).
  std::uint64_t BaseIndex() const { return log_.BaseIndex(); }

  /// Removes whole sealed segments entirely below record `index`.
  Status CompactBelow(std::uint64_t index) { return log_.CompactBelow(index); }

  bool SidecarRebuilt() const { return log_.SidecarRebuilt(); }

  /// Drops certificates [count, Count()) — reconciliation only (the cert log
  /// ran ahead of the block log across a crash).
  Status TruncateTo(std::uint64_t count) { return log_.TruncateTo(count); }

  void SetFsyncOnAppend(bool on) { log_.SetFsyncOnAppend(on); }
  bool FsyncOnAppend() const { return log_.FsyncOnAppend(); }
  bool RecoveredFromTornTail() const { return log_.RecoveredFromTornTail(); }
  const std::string& Path() const { return log_.Path(); }

 private:
  explicit CertificateStore(common::RecordLog log) : log_(std::move(log)) {}

  common::RecordLog log_;
};

}  // namespace dcert::core
