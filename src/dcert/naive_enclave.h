// The strawman design the paper rejects in Sec. 4.1: keep the ENTIRE chain
// state resident inside the enclave and update it there, instead of the
// stateless Merkle-proof-based replay. Correct, but the resident state
// competes with the 93 MB EPC — once the state outgrows it, every Ecall pays
// paging (encrypt/evict) costs proportional to the overflow. This module
// exists for the ablation benchmark (bench_ablation) that reproduces the
// paper's design argument quantitatively.
#pragma once

#include <memory>
#include <optional>

#include "chain/block.h"
#include "chain/executor.h"
#include "chain/node.h"
#include "chain/state.h"
#include "common/status.h"
#include "dcert/certificate.h"
#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "sgxsim/enclave.h"

namespace dcert::core {

/// Identity of the naive enclave program (distinct measurement).
inline constexpr const char* kNaiveEnclaveProgramName = "dcert-naive-enclave";
Hash256 NaiveEnclaveMeasurement();

class NaiveCertEnclaveProgram {
 public:
  NaiveCertEnclaveProgram(EnclaveConfig config,
                          std::shared_ptr<const chain::ContractRegistry> registry,
                          ByteView key_seed);

  const crypto::PublicKey& PublicKey() const { return signing_key_.Public(); }
  sgxsim::Quote MakeKeyQuote(const sgxsim::Enclave& enclave) const;

  /// Validates and certifies `blk` entirely in-enclave: header metadata,
  /// consensus, tx root, execution against the resident state, state-root
  /// check — then applies the writes to the resident state and signs.
  Result<crypto::Signature> SigGen(const chain::BlockHeader& prev_hdr,
                                   const std::optional<BlockCertificate>& prev_cert,
                                   const chain::Block& blk);

  /// Estimated bytes of enclave memory the resident state occupies — what
  /// each Ecall's working set is charged against the EPC. ~256 B per key:
  /// 40 B key+value, ~112 B compact SMT node, map/allocator overhead.
  std::size_t ResidentStateBytes() const { return state_.Size() * 256; }

  const chain::StateDB& State() const { return state_; }

 private:
  EnclaveConfig config_;
  std::shared_ptr<const chain::ContractRegistry> registry_;
  crypto::SecretKey signing_key_;
  Hash256 own_measurement_;
  chain::StateDB state_;  // the resident state — the whole point
};

/// Convenience harness pairing the naive program with an enclave container,
/// charging each Ecall for the resident working set.
class NaiveCertificateIssuer {
 public:
  NaiveCertificateIssuer(chain::ChainConfig config,
                         std::shared_ptr<const chain::ContractRegistry> registry,
                         sgxsim::CostModelParams cost_model = {});

  Result<BlockCertificate> ProcessBlock(const chain::Block& blk);
  NaiveCertEnclaveProgram& Program() { return program_; }
  sgxsim::Enclave& EnclaveHandle() { return enclave_; }
  const CertTiming& LastTiming() const { return timing_; }
  chain::FullNode& Node() { return node_; }

 private:
  chain::ChainConfig config_;
  sgxsim::Enclave enclave_;
  NaiveCertEnclaveProgram program_;
  sgxsim::AttestationReport report_;
  chain::FullNode node_;
  std::optional<BlockCertificate> latest_cert_;
  CertTiming timing_;
};

}  // namespace dcert::core
