#include "dcert/enclave_program.h"

#include <stdexcept>

#include "chain/consensus.h"
#include "crypto/sha256.h"
#include "mht/smt.h"

namespace dcert::core {

Hash256 ExpectedEnclaveMeasurement() {
  return sgxsim::ComputeMeasurement(kEnclaveProgramName, kEnclaveProgramVersion);
}

CertEnclaveProgram::CertEnclaveProgram(
    EnclaveConfig config, std::shared_ptr<const chain::ContractRegistry> registry,
    ByteView key_seed)
    : config_(config),
      registry_(std::move(registry)),
      signing_key_(crypto::SecretKey::FromSeed(key_seed)),
      own_measurement_(ExpectedEnclaveMeasurement()) {
  if (!registry_) {
    throw std::invalid_argument("CertEnclaveProgram: null registry");
  }
  if (registry_->Digest() != config_.registry_digest) {
    throw std::invalid_argument(
        "CertEnclaveProgram: host-provided contract code does not match the "
        "pinned registry digest");
  }
}

sgxsim::Quote CertEnclaveProgram::MakeKeyQuote(const sgxsim::Enclave& enclave) const {
  return enclave.MakeQuote(KeyBindingReportData(signing_key_.Public()));
}

Bytes CertEnclaveProgram::SealSigningKey(const sgxsim::Enclave& enclave) const {
  return enclave.Seal(signing_key_.ScalarBytes());
}

Result<CertEnclaveProgram> CertEnclaveProgram::RestoreFromSealed(
    EnclaveConfig config, std::shared_ptr<const chain::ContractRegistry> registry,
    const sgxsim::Enclave& enclave, ByteView sealed_key) {
  using R = Result<CertEnclaveProgram>;
  auto scalar = enclave.Unseal(sealed_key);
  if (!scalar) return R(scalar.status().WithContext("sealed signing key"));
  try {
    // Construct with a throwaway seed, then swap in the restored key.
    CertEnclaveProgram program(config, std::move(registry),
                               StrBytes("dcert-restore-placeholder"));
    program.signing_key_ = crypto::SecretKey::FromScalarBytes(scalar.value());
    return program;
  } catch (const std::invalid_argument& e) {
    return R::Error(std::string("restore: ") + e.what());
  }
}

Status CertEnclaveProgram::CertVerify(const Hash256& expected_digest,
                                      const BlockCertificate& cert) const {
  if (Status st = VerifyCertificateEnvelope(cert, own_measurement_); !st) {
    return st.WithContext("cert_verify_t");
  }
  if (cert.digest != expected_digest) {
    return Status::Error("cert_verify_t: certificate digest mismatch");
  }
  return Status::Ok();
}

Status CertEnclaveProgram::VerifyPrev(
    const chain::BlockHeader& prev_hdr,
    const std::optional<BlockCertificate>& prev_cert,
    const std::optional<Hash256>& prev_idx_digest,
    const std::optional<Hash256>& genesis_idx_digest) const {
  if (prev_hdr.height == 0) {
    // Genesis is deterministic: no certificate needed (Alg. 2 lines 3-4).
    if (prev_hdr.Hash() != config_.genesis_hash) {
      return Status::Error("previous block does not match the pinned genesis");
    }
    if (prev_idx_digest.has_value() &&
        *prev_idx_digest != genesis_idx_digest.value_or(Hash256())) {
      return Status::Error("previous index digest does not match its genesis");
    }
    return Status::Ok();
  }
  if (!prev_cert.has_value()) {
    return Status::Error("missing certificate for non-genesis previous block");
  }
  Hash256 expected = prev_idx_digest.has_value()
                         ? IndexCertDigest(prev_hdr.Hash(), *prev_idx_digest)
                         : prev_hdr.Hash();
  return CertVerify(expected, *prev_cert);
}

Status CertEnclaveProgram::BlkVerify(const chain::BlockHeader& prev_hdr,
                                     const chain::Block& new_blk,
                                     const StateUpdateProof& update_proof) const {
  const chain::BlockHeader& hdr = new_blk.header;
  // Line 14: chain linkage.
  if (hdr.prev_hash != prev_hdr.Hash()) {
    return Status::Error("blk_verify_t: previous-hash mismatch");
  }
  if (hdr.height != prev_hdr.height + 1) {
    return Status::Error("blk_verify_t: height is not previous + 1");
  }
  // Line 15: consensus proof.
  if (hdr.difficulty_bits != config_.difficulty_bits) {
    return Status::Error("blk_verify_t: unexpected difficulty");
  }
  if (Status st = chain::VerifyConsensus(hdr); !st) {
    return st.WithContext("blk_verify_t");
  }
  // Line 16: transaction commitment.
  if (hdr.tx_root != chain::Block::ComputeTxRoot(new_blk.txs)) {
    return Status::Error("blk_verify_t: transaction root mismatch");
  }
  // Line 17: read-set (and write-neighborhood) integrity against the
  // previous state root.
  std::map<Hash256, Hash256> old_leaves = update_proof.OldLeaves();
  if (mht::SparseMerkleTree::ComputeRootFromProof(update_proof.smt_proof,
                                                  old_leaves) !=
      prev_hdr.state_root) {
    return Status::Error("blk_verify_t: update proof does not match H_state");
  }
  // Lines 18-21: trusted replay over the verified read set. Signature and
  // nonce validity are enforced inside the executor.
  chain::ReadSetReader reader(update_proof.read_set);
  auto replay = chain::ExecuteBlockTxs(new_blk.txs, *registry_, reader);
  if (!replay) return replay.status().WithContext("blk_verify_t: replay");

  // Lines 22-23: every write must be covered by the proof, and the updated
  // root must equal the new block's H_state.
  std::map<Hash256, Hash256> new_leaves = old_leaves;
  for (const auto& [key, value] : replay.value().writes) {
    auto it = new_leaves.find(key);
    if (it == new_leaves.end()) {
      return Status::Error("blk_verify_t: write proof does not cover a write");
    }
    it->second = chain::StateValueHash(value);
  }
  if (mht::SparseMerkleTree::ComputeRootFromProof(update_proof.smt_proof,
                                                  new_leaves) != hdr.state_root) {
    return Status::Error("blk_verify_t: updated state root mismatch");
  }
  return Status::Ok();
}

Result<crypto::Signature> CertEnclaveProgram::SigGen(
    const chain::BlockHeader& prev_hdr,
    const std::optional<BlockCertificate>& prev_cert, const chain::Block& new_blk,
    const StateUpdateProof& update_proof) const {
  using R = Result<crypto::Signature>;
  if (Status st = VerifyPrev(prev_hdr, prev_cert, std::nullopt, std::nullopt); !st) {
    return R(st);
  }
  if (Status st = BlkVerify(prev_hdr, new_blk, update_proof); !st) return R(st);
  return signing_key_.Sign(new_blk.header.Hash());
}

Result<crypto::Signature> CertEnclaveProgram::SigGenSpan(
    const chain::BlockHeader& prev_hdr,
    const std::optional<BlockCertificate>& prev_cert,
    const std::vector<chain::Block>& blocks,
    const std::vector<StateUpdateProof>& update_proofs) const {
  using R = Result<crypto::Signature>;
  if (blocks.empty()) return R::Error("SigGenSpan: empty span");
  if (blocks.size() != update_proofs.size()) {
    return R::Error("SigGenSpan: one update proof per block required");
  }
  if (Status st = VerifyPrev(prev_hdr, prev_cert, std::nullopt, std::nullopt); !st) {
    return R(st);
  }
  const chain::BlockHeader* prev = &prev_hdr;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (Status st = BlkVerify(*prev, blocks[i], update_proofs[i]); !st) {
      return R(st.WithContext("span block " + std::to_string(i)));
    }
    prev = &blocks[i].header;
  }
  return signing_key_.Sign(prev->Hash());
}

Result<crypto::Signature> CertEnclaveProgram::AugmentedSigGen(
    const chain::BlockHeader& prev_hdr,
    const std::optional<IndexCertificate>& prev_idx_cert,
    const Hash256& prev_idx_digest, const chain::Block& new_blk,
    const StateUpdateProof& update_proof, const IndexUpdateVerifier& verifier,
    ByteView index_aux_proof, Hash256& new_idx_digest_out) const {
  using R = Result<crypto::Signature>;
  // Alg. 4 lines 3-6: recursive check of the previous augmented certificate
  // (which binds both the previous header and the previous index digest).
  if (Status st = VerifyPrev(prev_hdr, prev_idx_cert, prev_idx_digest,
                             verifier.GenesisDigest());
      !st) {
    return R(st);
  }
  // Line 7: full block verification (this is what the hierarchical scheme
  // avoids repeating per index).
  if (Status st = BlkVerify(prev_hdr, new_blk, update_proof); !st) return R(st);
  // Lines 8-10: verify and apply the index update.
  auto new_digest = verifier.ApplyUpdate(prev_idx_digest, index_aux_proof, new_blk);
  if (!new_digest) return R(new_digest.status().WithContext("index update"));
  new_idx_digest_out = new_digest.value();
  // Line 12: sign H(hdr_i || H_i^idx).
  return signing_key_.Sign(
      IndexCertDigest(new_blk.header.Hash(), new_idx_digest_out));
}

Result<crypto::Signature> CertEnclaveProgram::IndexSigGen(
    const chain::BlockHeader& prev_hdr,
    const std::optional<IndexCertificate>& prev_idx_cert,
    const Hash256& prev_idx_digest, const chain::Block& new_blk,
    const BlockCertificate& block_cert, const IndexUpdateVerifier& verifier,
    ByteView index_aux_proof, Hash256& new_idx_digest_out) const {
  using R = Result<crypto::Signature>;
  // Alg. 5 lines 5-9: previous index certificate (or genesis digests).
  if (Status st = VerifyPrev(prev_hdr, prev_idx_cert, prev_idx_digest,
                             verifier.GenesisDigest());
      !st) {
    return R(st);
  }
  // Line 10: the block certificate replaces re-execution.
  if (Status st = CertVerify(new_blk.header.Hash(), block_cert); !st) return R(st);
  // Linkage between the two certified headers.
  if (new_blk.header.prev_hash != prev_hdr.Hash() ||
      new_blk.header.height != prev_hdr.height + 1) {
    return R::Error("IndexSigGen: block does not extend the previous header");
  }
  // The write data comes from the transactions, so re-check them against the
  // certified tx root before extraction.
  if (new_blk.header.tx_root != chain::Block::ComputeTxRoot(new_blk.txs)) {
    return R::Error("IndexSigGen: transaction root mismatch");
  }
  // Lines 11-13: verify and apply the index update.
  auto new_digest = verifier.ApplyUpdate(prev_idx_digest, index_aux_proof, new_blk);
  if (!new_digest) return R(new_digest.status().WithContext("index update"));
  new_idx_digest_out = new_digest.value();
  // Line 15.
  return signing_key_.Sign(
      IndexCertDigest(new_blk.header.Hash(), new_idx_digest_out));
}

}  // namespace dcert::core
