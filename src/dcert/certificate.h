// DCert certificates (Sec. 3.3): cert = <pk_enc, rep, dig, sig>.
//  * Block certificate: dig = H(hdr_i), proving the whole chain up to and
//    including block i (recursively).
//  * Index certificate (augmented or hierarchical schemes): dig =
//    H(H(hdr_i) || H_i^idx), binding an authenticated index digest to the
//    block it reflects.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "crypto/signature.h"
#include "sgxsim/attestation.h"

namespace dcert::core {

struct BlockCertificate {
  crypto::PublicKey pk_enc;
  sgxsim::AttestationReport report;
  Hash256 digest;           // dig_i
  crypto::Signature sig;    // Sign(sk_enc, dig_i)

  Bytes Serialize() const;
  static Result<BlockCertificate> Deserialize(ByteView data);
  std::size_t ByteSize() const { return Serialize().size(); }
  bool operator==(const BlockCertificate&) const = default;
};

/// Index certificates share the wire shape; only the digest derivation
/// differs.
using IndexCertificate = BlockCertificate;

/// dig for an index certificate: H(header-hash || index-digest).
Hash256 IndexCertDigest(const Hash256& header_hash, const Hash256& index_digest);

/// The report_data a DCert enclave quotes: H(pk_enc serialization). Binds the
/// enclave-generated key into the attestation report.
Hash256 KeyBindingReportData(const crypto::PublicKey& pk_enc);

/// cert_verify_t (Alg. 2 lines 25-32) minus the final digest comparison —
/// shared by the enclave program and the superlight client:
///  (i)   rep is signed by the IAS;
///  (ii)  rep's measurement equals `expected_measurement`;
///  (iii) pk_enc matches rep's bound key;
///  (iv)  sig verifies dig under pk_enc.
/// The caller then compares cert.digest against its expected value.
Status VerifyCertificateEnvelope(const BlockCertificate& cert,
                                 const Hash256& expected_measurement);

/// Batched VerifyCertificateEnvelope: structural checks run per certificate,
/// while every signature in the batch (the IAS report signature and the
/// enclave digest signature of each cert) goes through one
/// crypto::VerifyBatch — the n IAS checks share a single point term. The
/// returned statuses (order, messages) are exactly what the single-cert call
/// would produce for each certificate.
std::vector<Status> VerifyCertificateEnvelopesBatch(
    const BlockCertificate* const* certs, std::size_t n,
    const Hash256& expected_measurement);

}  // namespace dcert::core
