#include "dcert/issuer.h"

#include <stdexcept>

#include "common/timing.h"

namespace dcert::core {

namespace {

EnclaveConfig MakeEnclaveConfig(const chain::ChainConfig& config,
                                const chain::ContractRegistry& registry) {
  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(config).header.Hash();
  ec.registry_digest = registry.Digest();
  ec.difficulty_bits = config.difficulty_bits;
  return ec;
}

}  // namespace

CertificateIssuer::CertificateIssuer(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    sgxsim::CostModelParams cost_model, std::string key_seed)
    : config_(config),
      enclave_(kEnclaveProgramName, kEnclaveProgramVersion, cost_model),
      program_(MakeEnclaveConfig(config, *registry), registry, StrBytes(key_seed)),
      report_(sgxsim::AttestationService::Attest(program_.MakeKeyQuote(enclave_))),
      node_(config, std::move(registry)) {}

void CertificateIssuer::AttachIndex(std::shared_ptr<CertifiedIndexHost> index) {
  if (!index) throw std::invalid_argument("AttachIndex: null index");
  IndexSlot slot;
  slot.digest = index->Verifier().GenesisDigest();
  slot.host = std::move(index);
  indexes_.push_back(std::move(slot));
}

const std::optional<IndexCertificate>& CertificateIssuer::LatestIndexCert(
    const std::string& id) const {
  for (const IndexSlot& slot : indexes_) {
    if (slot.host->Id() == id) return slot.cert;
  }
  throw std::out_of_range("LatestIndexCert: unknown index id: " + id);
}

Status CertificateIssuer::CheckExtendsTip(const chain::Block& blk) const {
  const chain::BlockHeader& tip = node_.Tip().header;
  if (blk.header.prev_hash != tip.Hash() || blk.header.height != tip.height + 1) {
    return Status::Error("block does not extend the CI's tip");
  }
  return Status::Ok();
}

Result<CertificateIssuer::Prepared> CertificateIssuer::Prepare(
    const chain::Block& blk) {
  using R = Result<Prepared>;
  // comp_data_set (Alg. 1 line 2): execute on the current (pre-block) state.
  Stopwatch rwset_watch;
  auto executed = chain::ExecuteBlockTxs(blk.txs, node_.Registry(), node_.State());
  timing_.rwset_ns += rwset_watch.ElapsedNs();
  if (!executed) return R(executed.status().WithContext("pre-processing"));

  // get_update_proof (Alg. 1 line 3).
  Stopwatch proof_watch;
  Prepared prepared;
  prepared.proof = BuildStateUpdateProof(executed.value().reads,
                                         executed.value().writes, node_.State());
  timing_.proof_ns += proof_watch.ElapsedNs();
  prepared.input_bytes = blk.ByteSize() + prepared.proof.ByteSize();
  return prepared;
}

BlockCertificate CertificateIssuer::AssembleCert(
    const Hash256& digest, const crypto::Signature& sig) const {
  BlockCertificate cert;
  cert.pk_enc = program_.PublicKey();
  cert.report = report_;
  cert.digest = digest;
  cert.sig = sig;
  return cert;
}

Status CertificateIssuer::Commit(const chain::Block& blk) {
  if (Status st = node_.SubmitBlock(blk); !st) return st.WithContext("commit");
  return Status::Ok();
}

Result<BlockCertificate> CertificateIssuer::ProcessBlock(const chain::Block& blk) {
  using R = Result<BlockCertificate>;
  timing_ = CertTiming{};
  if (Status st = CheckExtendsTip(blk); !st) return R(st);

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());

  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(prepared.value().input_bytes, [&] {
    return program_.SigGen(prev_hdr, prev_cert, blk, prepared.value().proof);
  });
  timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return R(sig.status().WithContext("ecall_sig_gen"));

  BlockCertificate cert = AssembleCert(blk.header.Hash(), sig.value());
  if (Status st = Commit(blk); !st) return R(st);
  latest_cert_ = cert;
  block_certs_.push_back(cert);
  return cert;
}

Result<BlockCertificate> CertificateIssuer::ProcessBlockBatch(
    const std::vector<chain::Block>& blocks) {
  using R = Result<BlockCertificate>;
  timing_ = CertTiming{};
  if (blocks.empty()) return R::Error("empty batch");

  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  // Pre-process each block against its own pre-state (the node advances
  // between preparations, exactly as the enclave will chain them).
  std::vector<StateUpdateProof> proofs;
  std::uint64_t input_bytes = 0;
  proofs.reserve(blocks.size());
  for (const chain::Block& blk : blocks) {
    if (Status st = CheckExtendsTip(blk); !st) return R(st);
    auto prepared = Prepare(blk);
    if (!prepared) return R(prepared.status());
    input_bytes += prepared.value().input_bytes;
    proofs.push_back(std::move(prepared.value().proof));
    if (Status st = Commit(blk); !st) return R(st);
  }

  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(input_bytes, [&] {
    return program_.SigGenSpan(prev_hdr, prev_cert, blocks, proofs);
  });
  timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return R(sig.status().WithContext("ecall_sig_gen_span"));

  BlockCertificate cert = AssembleCert(blocks.back().header.Hash(), sig.value());
  latest_cert_ = cert;
  // Intermediate blocks carry no certificate; record the span certificate at
  // every covered height so backfill can still anchor to it? No — backfill
  // requires per-block certs, so batched operation disables it (documented).
  block_certs_.clear();
  return cert;
}

Status CertificateIssuer::AcceptBlockWithCert(const chain::Block& blk,
                                              const BlockCertificate& cert) {
  if (Status st = CheckExtendsTip(blk); !st) return st;
  if (Status st = VerifyCertificateEnvelope(cert, ExpectedEnclaveMeasurement());
      !st) {
    return st.WithContext("foreign certificate");
  }
  if (cert.digest != blk.header.Hash()) {
    return Status::Error("foreign certificate does not cover this block");
  }
  // Full local validation before adopting (the CI is still a full node).
  if (Status st = Commit(blk); !st) return st;
  latest_cert_ = cert;
  block_certs_.push_back(cert);
  return Status::Ok();
}

Result<std::vector<IndexCertificate>> CertificateIssuer::ProcessBlockAugmented(
    const chain::Block& blk) {
  using R = Result<std::vector<IndexCertificate>>;
  timing_ = CertTiming{};
  if (Status st = CheckExtendsTip(blk); !st) return R(st);
  if (indexes_.empty()) return R::Error("no indexes attached");

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());
  const chain::BlockHeader prev_hdr = node_.Tip().header;

  std::vector<IndexCertificate> certs;
  std::vector<Hash256> new_digests;
  for (IndexSlot& slot : indexes_) {
    Stopwatch aux_watch;
    Bytes aux = slot.host->ApplyBlockCapturingAux(blk);
    timing_.index_aux_ns += aux_watch.ElapsedNs();

    Hash256 new_digest;
    const sgxsim::CostAccounting before = enclave_.Costs();
    auto sig = enclave_.Ecall(prepared.value().input_bytes + aux.size(), [&] {
      return program_.AugmentedSigGen(prev_hdr, slot.cert, slot.digest, blk,
                                      prepared.value().proof,
                                      slot.host->Verifier(), aux, new_digest);
    });
    timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
    timing_.enclave_modeled_ns +=
        enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
    timing_.ecalls += 1;
    if (!sig) {
      return R(sig.status().WithContext("augmented ecall for " + slot.host->Id()));
    }
    certs.push_back(
        AssembleCert(IndexCertDigest(blk.header.Hash(), new_digest), sig.value()));
    new_digests.push_back(new_digest);
  }

  if (Status st = Commit(blk); !st) return R(st);
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].digest = new_digests[i];
    indexes_[i].cert = certs[i];
    // Sanity: the live index must land exactly on the certified digest.
    if (indexes_[i].host->CurrentDigest() != new_digests[i]) {
      return R::Error("live index diverged from certified digest: " +
                      indexes_[i].host->Id());
    }
  }
  return certs;
}

Result<std::vector<IndexCertificate>> CertificateIssuer::ProcessBlockHierarchical(
    const chain::Block& blk) {
  using R = Result<std::vector<IndexCertificate>>;
  timing_ = CertTiming{};
  if (Status st = CheckExtendsTip(blk); !st) return R(st);
  if (indexes_.empty()) return R::Error("no indexes attached");

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());
  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  // Alg. 5 line 1: the block certificate, one Ecall.
  const sgxsim::CostAccounting before_blk = enclave_.Costs();
  auto blk_sig = enclave_.Ecall(prepared.value().input_bytes, [&] {
    return program_.SigGen(prev_hdr, prev_cert, blk, prepared.value().proof);
  });
  timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before_blk.wall_ns();
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before_blk.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!blk_sig) return R(blk_sig.status().WithContext("ecall_sig_gen"));
  BlockCertificate block_cert = AssembleCert(blk.header.Hash(), blk_sig.value());

  // Alg. 5 lines 2-18: one lightweight Ecall per index.
  std::vector<IndexCertificate> certs;
  for (IndexSlot& slot : indexes_) {
    if (Status st = CertifyIndexStep(slot, blk, prev_hdr, block_cert); !st) {
      return R(st);
    }
    certs.push_back(*slot.cert);
  }

  if (Status st = Commit(blk); !st) return R(st);
  latest_cert_ = block_cert;
  block_certs_.push_back(block_cert);
  for (const IndexSlot& slot : indexes_) {
    if (slot.host->CurrentDigest() != slot.digest) {
      return R::Error("live index diverged from certified digest: " +
                      slot.host->Id());
    }
  }
  return certs;
}

Status CertificateIssuer::CertifyIndexStep(IndexSlot& slot, const chain::Block& blk,
                                           const chain::BlockHeader& prev_hdr,
                                           const BlockCertificate& block_cert) {
  Stopwatch aux_watch;
  Bytes aux = slot.host->ApplyBlockCapturingAux(blk);
  timing_.index_aux_ns += aux_watch.ElapsedNs();

  Hash256 new_digest;
  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(blk.ByteSize() + aux.size(), [&] {
    return program_.IndexSigGen(prev_hdr, slot.cert, slot.digest, blk, block_cert,
                                slot.host->Verifier(), aux, new_digest);
  });
  timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return sig.status().WithContext("index ecall for " + slot.host->Id());
  slot.cert = AssembleCert(IndexCertDigest(blk.header.Hash(), new_digest),
                           sig.value());
  slot.digest = new_digest;
  return Status::Ok();
}

Result<IndexCertificate> CertificateIssuer::AttachIndexWithBackfill(
    std::shared_ptr<CertifiedIndexHost> index) {
  using R = Result<IndexCertificate>;
  if (!index) throw std::invalid_argument("AttachIndexWithBackfill: null index");
  timing_ = CertTiming{};
  const std::uint64_t height = node_.Height();
  if (height == 0) {
    return R::Error("chain is at genesis; use AttachIndex instead");
  }
  if (block_certs_.size() != height) {
    return R::Error(
        "backfill needs a block certificate per block (not available in "
        "augmented-only operation)");
  }

  IndexSlot slot;
  slot.digest = index->Verifier().GenesisDigest();
  slot.host = std::move(index);
  for (std::uint64_t h = 1; h <= height; ++h) {
    const chain::Block& blk = node_.GetBlock(h);
    const chain::BlockHeader& prev_hdr = node_.GetBlock(h - 1).header;
    if (Status st = CertifyIndexStep(slot, blk, prev_hdr,
                                     block_certs_[static_cast<std::size_t>(h) - 1]);
        !st) {
      return R(st.WithContext("backfill height " + std::to_string(h)));
    }
  }
  if (slot.host->CurrentDigest() != slot.digest) {
    return R::Error("backfilled index diverged from certified digest");
  }
  IndexCertificate tip_cert = *slot.cert;
  indexes_.push_back(std::move(slot));
  return tip_cert;
}

}  // namespace dcert::core
