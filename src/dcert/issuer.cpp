#include "dcert/issuer.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/crash_point.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "obs/metrics.h"

namespace dcert::core {

namespace {

/// Process-wide per-stage latency histograms for the certificate-issuance
/// pipeline, aggregated across every issuer instance (the per-call CertTiming
/// stays the exact view benches report).
struct CiMetrics {
  std::shared_ptr<obs::Histogram> rwset_ns;
  std::shared_ptr<obs::Histogram> proof_ns;
  std::shared_ptr<obs::Histogram> commit_ns;
  std::shared_ptr<obs::Histogram> enclave_ns;
  std::shared_ptr<obs::Histogram> index_aux_ns;
  std::shared_ptr<obs::Counter> blocks_certified;

  static CiMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static CiMetrics* m = new CiMetrics{
        reg.GetHistogram("ci.stage.rwset_ns"),
        reg.GetHistogram("ci.stage.proof_ns"),
        reg.GetHistogram("ci.stage.commit_ns"),
        reg.GetHistogram("ci.stage.enclave_ns"),
        reg.GetHistogram("ci.stage.index_aux_ns"),
        reg.GetCounter("ci.blocks_certified")};
    return *m;
  }
};

EnclaveConfig MakeEnclaveConfig(const chain::ChainConfig& config,
                                const chain::ContractRegistry& registry) {
  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(config).header.Hash();
  ec.registry_digest = registry.Digest();
  ec.difficulty_bits = config.difficulty_bits;
  return ec;
}

}  // namespace

CertificateIssuer::CertificateIssuer(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    sgxsim::CostModelParams cost_model, std::string key_seed)
    : config_(config),
      enclave_(kEnclaveProgramName, kEnclaveProgramVersion, cost_model),
      program_(MakeEnclaveConfig(config, *registry), registry, StrBytes(key_seed)),
      report_(sgxsim::AttestationService::Attest(program_.MakeKeyQuote(enclave_))),
      node_(config, std::move(registry)) {}

CertificateIssuer::CertificateIssuer(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    sgxsim::Enclave enclave, CertEnclaveProgram program)
    : config_(config),
      enclave_(std::move(enclave)),
      program_(std::move(program)),
      report_(sgxsim::AttestationService::Attest(program_.MakeKeyQuote(enclave_))),
      node_(config, std::move(registry)) {}

Result<CertificateIssuer> CertificateIssuer::Restore(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    ByteView sealed_key, sgxsim::CostModelParams cost_model) {
  using R = Result<CertificateIssuer>;
  sgxsim::Enclave enclave(kEnclaveProgramName, kEnclaveProgramVersion,
                          cost_model);
  auto program = CertEnclaveProgram::RestoreFromSealed(
      MakeEnclaveConfig(config, *registry), registry, enclave, sealed_key);
  if (!program) return R(program.status().WithContext("restore issuer"));
  return CertificateIssuer(config, std::move(registry), std::move(enclave),
                           std::move(program.value()));
}

void CertificateIssuer::AttachIndex(std::shared_ptr<CertifiedIndexHost> index) {
  if (!index) throw std::invalid_argument("AttachIndex: null index");
  IndexSlot slot;
  slot.digest = index->Verifier().GenesisDigest();
  slot.host = std::move(index);
  indexes_.push_back(std::move(slot));
}

const std::optional<IndexCertificate>& CertificateIssuer::LatestIndexCert(
    const std::string& id) const {
  for (const IndexSlot& slot : indexes_) {
    if (slot.host->Id() == id) return slot.cert;
  }
  throw std::out_of_range("LatestIndexCert: unknown index id: " + id);
}

Status CertificateIssuer::CheckExtendsTip(const chain::Block& blk) const {
  const chain::BlockHeader& tip = node_.Tip().header;
  if (blk.header.prev_hash != tip.Hash() || blk.header.height != tip.height + 1) {
    return Status::Error("block does not extend the CI's tip");
  }
  return Status::Ok();
}

Result<CertificateIssuer::Prepared> CertificateIssuer::Prepare(
    const chain::Block& blk) {
  using R = Result<Prepared>;
  // comp_data_set (Alg. 1 line 2): execute on the current (pre-block) state.
  Stopwatch rwset_watch;
  auto executed = chain::ExecuteBlockTxs(blk.txs, node_.Registry(), node_.State());
  const std::uint64_t rwset_ns = rwset_watch.ElapsedNs();
  timing_.rwset_ns += rwset_ns;
  CiMetrics::Get().rwset_ns->Record(rwset_ns);
  if (!executed) return R(executed.status().WithContext("pre-processing"));

  // get_update_proof (Alg. 1 line 3).
  Stopwatch proof_watch;
  Prepared prepared;
  prepared.proof = BuildStateUpdateProof(executed.value().reads,
                                         executed.value().writes, node_.State());
  const std::uint64_t proof_ns = proof_watch.ElapsedNs();
  timing_.proof_ns += proof_ns;
  CiMetrics::Get().proof_ns->Record(proof_ns);
  prepared.input_bytes = blk.ByteSize() + prepared.proof.ByteSize();
  return prepared;
}

BlockCertificate CertificateIssuer::AssembleCert(
    const Hash256& digest, const crypto::Signature& sig) const {
  BlockCertificate cert;
  cert.pk_enc = program_.PublicKey();
  cert.report = report_;
  cert.digest = digest;
  cert.sig = sig;
  return cert;
}

Status CertificateIssuer::Commit(const chain::Block& blk) {
  Stopwatch commit_watch;
  Status st = node_.SubmitBlock(blk);
  const std::uint64_t commit_ns = commit_watch.ElapsedNs();
  timing_.commit_ns += commit_ns;
  CiMetrics::Get().commit_ns->Record(commit_ns);
  if (!st) return st.WithContext("commit");
  return Status::Ok();
}

Result<BlockCertificate> CertificateIssuer::ProcessBlock(const chain::Block& blk) {
  using R = Result<BlockCertificate>;
  timing_ = CertTiming{};
  timing_.blocks = 1;
  if (Status st = CheckExtendsTip(blk); !st) return R(st);

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());

  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  common::CrashPoints::Global().Hit("issuer.process.ecall");
  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(prepared.value().input_bytes, [&] {
    return program_.SigGen(prev_hdr, prev_cert, blk, prepared.value().proof);
  });
  {
    const std::uint64_t enclave_ns = enclave_.Costs().wall_ns() - before.wall_ns();
    timing_.enclave_wall_ns += enclave_ns;
    CiMetrics::Get().enclave_ns->Record(enclave_ns);
  }
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return R(sig.status().WithContext("ecall_sig_gen"));

  BlockCertificate cert = AssembleCert(blk.header.Hash(), sig.value());
  if (Status st = Commit(blk); !st) return R(st);
  latest_cert_ = cert;
  block_certs_.push_back(cert);
  CiMetrics::Get().blocks_certified->Add(1);
  return cert;
}

Result<BlockCertificate> CertificateIssuer::ProcessBlockBatch(
    const std::vector<chain::Block>& blocks) {
  using R = Result<BlockCertificate>;
  timing_ = CertTiming{};
  timing_.blocks = blocks.size();
  if (blocks.empty()) return R::Error("empty batch");

  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  // Pre-process each block against its own pre-state (the node advances
  // between preparations, exactly as the enclave will chain them).
  std::vector<StateUpdateProof> proofs;
  std::uint64_t input_bytes = 0;
  proofs.reserve(blocks.size());
  for (const chain::Block& blk : blocks) {
    if (Status st = CheckExtendsTip(blk); !st) return R(st);
    auto prepared = Prepare(blk);
    if (!prepared) return R(prepared.status());
    input_bytes += prepared.value().input_bytes;
    proofs.push_back(std::move(prepared.value().proof));
    if (Status st = Commit(blk); !st) return R(st);
  }

  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(input_bytes, [&] {
    return program_.SigGenSpan(prev_hdr, prev_cert, blocks, proofs);
  });
  {
    const std::uint64_t enclave_ns = enclave_.Costs().wall_ns() - before.wall_ns();
    timing_.enclave_wall_ns += enclave_ns;
    CiMetrics::Get().enclave_ns->Record(enclave_ns);
  }
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return R(sig.status().WithContext("ecall_sig_gen_span"));

  BlockCertificate cert = AssembleCert(blocks.back().header.Hash(), sig.value());
  latest_cert_ = cert;
  CiMetrics::Get().blocks_certified->Add(blocks.size());
  // Intermediate blocks carry no certificate; record the span certificate at
  // every covered height so backfill can still anchor to it? No — backfill
  // requires per-block certs, so batched operation disables it (documented).
  block_certs_.clear();
  return cert;
}

Result<std::vector<BlockCertificate>> CertificateIssuer::ProcessBlocksPipelined(
    const std::vector<chain::Block>& blocks,
    const std::function<Status(std::size_t, const BlockCertificate&)>& on_cert) {
  using R = Result<std::vector<BlockCertificate>>;
  timing_ = CertTiming{};
  timing_.blocks = blocks.size();
  if (blocks.empty()) return R::Error("empty span");

  // Two-stage pipeline over a bounded handoff queue. The prepare thread owns
  // node_ (tip checks, re-execution, proof build, commit) and the prepare-
  // side timing counters; the calling thread owns the enclave, the
  // certificate chain, and the enclave-side counters. The enclave's SigGen
  // consumes only captured values (prev header, prev certificate, block,
  // proof), so committing block N before its Ecall is legal and is what lets
  // block N+1's preparation overlap it.
  struct Slot {
    chain::BlockHeader prev_hdr;
    Prepared prepared;
    Status status = Status::Ok();
  };
  constexpr std::size_t kMaxInFlight = 4;  // bounds proof memory
  struct Handoff {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Slot> ready;
    bool cancel = false;
    bool done = false;
  } handoff;

  Stopwatch span_watch;
  std::thread prep([&] {
    for (const chain::Block& blk : blocks) {
      Slot slot;
      slot.prev_hdr = node_.Tip().header;
      if (Status st = CheckExtendsTip(blk); !st) {
        slot.status = st;
      } else if (auto prepared = Prepare(blk); !prepared) {
        slot.status = prepared.status();
      } else {
        slot.prepared = std::move(prepared.value());
        slot.status = Commit(blk);
      }
      const bool failed = !slot.status;
      {
        std::unique_lock<std::mutex> lock(handoff.mu);
        handoff.cv.wait(lock, [&] {
          return handoff.cancel || handoff.ready.size() < kMaxInFlight;
        });
        if (handoff.cancel) return;
        handoff.ready.push_back(std::move(slot));
      }
      handoff.cv.notify_all();
      if (failed) break;
    }
    {
      std::lock_guard<std::mutex> lock(handoff.mu);
      handoff.done = true;
    }
    handoff.cv.notify_all();
  });

  std::vector<BlockCertificate> certs;
  certs.reserve(blocks.size());
  Status failure = Status::Ok();
  try {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      Slot slot;
      {
        std::unique_lock<std::mutex> lock(handoff.mu);
        handoff.cv.wait(lock,
                        [&] { return !handoff.ready.empty() || handoff.done; });
        if (handoff.ready.empty()) break;  // prepare thread exited early
        slot = std::move(handoff.ready.front());
        handoff.ready.pop_front();
      }
      handoff.cv.notify_all();  // queue space freed
      if (!slot.status) {
        failure = slot.status.WithContext("pipelined prepare, block " +
                                          std::to_string(i));
        break;
      }

      const std::optional<BlockCertificate> prev_cert = latest_cert_;
      common::CrashPoints::Global().Hit("issuer.pipeline.ecall");
      const sgxsim::CostAccounting before = enclave_.Costs();
      auto sig = enclave_.Ecall(slot.prepared.input_bytes, [&] {
        return program_.SigGen(slot.prev_hdr, prev_cert, blocks[i],
                               slot.prepared.proof);
      });
      timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
      timing_.enclave_modeled_ns +=
          enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
      timing_.ecalls += 1;
      if (!sig) {
        failure = sig.status().WithContext("pipelined ecall_sig_gen, block " +
                                           std::to_string(i));
        break;
      }
      BlockCertificate cert = AssembleCert(blocks[i].header.Hash(), sig.value());
      if (on_cert) {
        if (Status st = on_cert(i, cert); !st) {
          failure = st.WithContext("pipelined cert sink, block " +
                                   std::to_string(i));
          break;
        }
      }
      latest_cert_ = cert;
      block_certs_.push_back(cert);
      certs.push_back(std::move(cert));
      CiMetrics::Get().blocks_certified->Add(1);
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(handoff.mu);
      handoff.cancel = true;
    }
    handoff.cv.notify_all();
    prep.join();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(handoff.mu);
    handoff.cancel = true;
  }
  handoff.cv.notify_all();
  prep.join();
  timing_.span_wall_ns = span_watch.ElapsedNs();

  if (!failure) return R(failure);
  return certs;
}

Status CertificateIssuer::InstallSnapshot(const chain::Block& tip,
                                          const chain::StateMap& state,
                                          const BlockCertificate& tip_cert) {
  if (node_.Height() != 0 || latest_cert_.has_value()) {
    return Status::Error("snapshot install requires an issuer still at genesis");
  }
  if (Status st =
          VerifyCertificateEnvelope(tip_cert, ExpectedEnclaveMeasurement());
      !st) {
    return st.WithContext("snapshot certificate");
  }
  if (tip_cert.digest != tip.header.Hash()) {
    return Status::Error("snapshot certificate does not cover the snapshot tip");
  }
  if (Status st = node_.InstallSnapshot(tip, state); !st) {
    return st.WithContext("snapshot install");
  }
  latest_cert_ = tip_cert;
  return Status::Ok();
}

Status CertificateIssuer::AcceptBlockWithCert(const chain::Block& blk,
                                              const BlockCertificate& cert) {
  if (Status st = CheckExtendsTip(blk); !st) return st;
  if (Status st = VerifyCertificateEnvelope(cert, ExpectedEnclaveMeasurement());
      !st) {
    return st.WithContext("foreign certificate");
  }
  if (cert.digest != blk.header.Hash()) {
    return Status::Error("foreign certificate does not cover this block");
  }
  // Full local validation before adopting (the CI is still a full node).
  if (Status st = Commit(blk); !st) return st;
  latest_cert_ = cert;
  block_certs_.push_back(cert);
  return Status::Ok();
}

Result<std::vector<IndexCertificate>> CertificateIssuer::ProcessBlockAugmented(
    const chain::Block& blk) {
  using R = Result<std::vector<IndexCertificate>>;
  timing_ = CertTiming{};
  timing_.blocks = 1;
  if (Status st = CheckExtendsTip(blk); !st) return R(st);
  if (indexes_.empty()) return R::Error("no indexes attached");

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());
  const chain::BlockHeader prev_hdr = node_.Tip().header;

  std::vector<IndexCertificate> certs;
  std::vector<Hash256> new_digests;
  for (IndexSlot& slot : indexes_) {
    Stopwatch aux_watch;
    Bytes aux = slot.host->ApplyBlockCapturingAux(blk);
    {
    const std::uint64_t aux_ns = aux_watch.ElapsedNs();
    timing_.index_aux_ns += aux_ns;
    CiMetrics::Get().index_aux_ns->Record(aux_ns);
  }

    Hash256 new_digest;
    const sgxsim::CostAccounting before = enclave_.Costs();
    auto sig = enclave_.Ecall(prepared.value().input_bytes + aux.size(), [&] {
      return program_.AugmentedSigGen(prev_hdr, slot.cert, slot.digest, blk,
                                      prepared.value().proof,
                                      slot.host->Verifier(), aux, new_digest);
    });
    timing_.enclave_wall_ns += enclave_.Costs().wall_ns() - before.wall_ns();
    timing_.enclave_modeled_ns +=
        enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
    timing_.ecalls += 1;
    if (!sig) {
      return R(sig.status().WithContext("augmented ecall for " + slot.host->Id()));
    }
    certs.push_back(
        AssembleCert(IndexCertDigest(blk.header.Hash(), new_digest), sig.value()));
    new_digests.push_back(new_digest);
  }

  if (Status st = Commit(blk); !st) return R(st);
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].digest = new_digests[i];
    indexes_[i].cert = certs[i];
    // Sanity: the live index must land exactly on the certified digest.
    if (indexes_[i].host->CurrentDigest() != new_digests[i]) {
      return R::Error("live index diverged from certified digest: " +
                      indexes_[i].host->Id());
    }
  }
  CiMetrics::Get().blocks_certified->Add(1);
  return certs;
}

Result<std::vector<IndexCertificate>> CertificateIssuer::ProcessBlockHierarchical(
    const chain::Block& blk) {
  using R = Result<std::vector<IndexCertificate>>;
  timing_ = CertTiming{};
  timing_.blocks = 1;
  if (Status st = CheckExtendsTip(blk); !st) return R(st);
  if (indexes_.empty()) return R::Error("no indexes attached");

  auto prepared = Prepare(blk);
  if (!prepared) return R(prepared.status());
  const chain::BlockHeader prev_hdr = node_.Tip().header;
  const std::optional<BlockCertificate> prev_cert = latest_cert_;

  // Alg. 5 line 1: the block certificate, one Ecall.
  const sgxsim::CostAccounting before_blk = enclave_.Costs();
  auto blk_sig = enclave_.Ecall(prepared.value().input_bytes, [&] {
    return program_.SigGen(prev_hdr, prev_cert, blk, prepared.value().proof);
  });
  {
    const std::uint64_t enclave_ns =
        enclave_.Costs().wall_ns() - before_blk.wall_ns();
    timing_.enclave_wall_ns += enclave_ns;
    CiMetrics::Get().enclave_ns->Record(enclave_ns);
  }
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before_blk.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!blk_sig) return R(blk_sig.status().WithContext("ecall_sig_gen"));
  BlockCertificate block_cert = AssembleCert(blk.header.Hash(), blk_sig.value());

  // Alg. 5 lines 2-18: aux-proof capture first, concurrently across the
  // independent index hosts (index_aux_ns records the region's wall time —
  // the actual outside-enclave cost), then one lightweight Ecall per index
  // in attachment order (the enclave stays strictly serial).
  std::vector<Bytes> auxes(indexes_.size());
  Stopwatch aux_watch;
  common::ThreadPool::Shared().ParallelFor(indexes_.size(), [&](std::size_t i) {
    auxes[i] = indexes_[i].host->ApplyBlockCapturingAux(blk);
  });
  {
    const std::uint64_t aux_ns = aux_watch.ElapsedNs();
    timing_.index_aux_ns += aux_ns;
    CiMetrics::Get().index_aux_ns->Record(aux_ns);
  }

  std::vector<IndexCertificate> certs;
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (Status st = CertifyIndexStepWithAux(indexes_[i], blk, prev_hdr,
                                            block_cert, std::move(auxes[i]));
        !st) {
      return R(st);
    }
    certs.push_back(*indexes_[i].cert);
  }

  if (Status st = Commit(blk); !st) return R(st);
  latest_cert_ = block_cert;
  block_certs_.push_back(block_cert);
  for (const IndexSlot& slot : indexes_) {
    if (slot.host->CurrentDigest() != slot.digest) {
      return R::Error("live index diverged from certified digest: " +
                      slot.host->Id());
    }
  }
  CiMetrics::Get().blocks_certified->Add(1);
  return certs;
}

Status CertificateIssuer::CertifyIndexStep(IndexSlot& slot, const chain::Block& blk,
                                           const chain::BlockHeader& prev_hdr,
                                           const BlockCertificate& block_cert) {
  Stopwatch aux_watch;
  Bytes aux = slot.host->ApplyBlockCapturingAux(blk);
  {
    const std::uint64_t aux_ns = aux_watch.ElapsedNs();
    timing_.index_aux_ns += aux_ns;
    CiMetrics::Get().index_aux_ns->Record(aux_ns);
  }
  return CertifyIndexStepWithAux(slot, blk, prev_hdr, block_cert, std::move(aux));
}

Status CertificateIssuer::CertifyIndexStepWithAux(
    IndexSlot& slot, const chain::Block& blk, const chain::BlockHeader& prev_hdr,
    const BlockCertificate& block_cert, Bytes aux) {
  Hash256 new_digest;
  const sgxsim::CostAccounting before = enclave_.Costs();
  auto sig = enclave_.Ecall(blk.ByteSize() + aux.size(), [&] {
    return program_.IndexSigGen(prev_hdr, slot.cert, slot.digest, blk, block_cert,
                                slot.host->Verifier(), aux, new_digest);
  });
  {
    const std::uint64_t enclave_ns = enclave_.Costs().wall_ns() - before.wall_ns();
    timing_.enclave_wall_ns += enclave_ns;
    CiMetrics::Get().enclave_ns->Record(enclave_ns);
  }
  timing_.enclave_modeled_ns +=
      enclave_.Costs().ModeledEnclaveTimeNs() - before.ModeledEnclaveTimeNs();
  timing_.ecalls += 1;
  if (!sig) return sig.status().WithContext("index ecall for " + slot.host->Id());
  slot.cert = AssembleCert(IndexCertDigest(blk.header.Hash(), new_digest),
                           sig.value());
  slot.digest = new_digest;
  return Status::Ok();
}

Result<IndexCertificate> CertificateIssuer::AttachIndexWithBackfill(
    std::shared_ptr<CertifiedIndexHost> index) {
  using R = Result<IndexCertificate>;
  if (!index) throw std::invalid_argument("AttachIndexWithBackfill: null index");
  timing_ = CertTiming{};
  const std::uint64_t height = node_.Height();
  if (height == 0) {
    return R::Error("chain is at genesis; use AttachIndex instead");
  }
  if (block_certs_.size() != height) {
    return R::Error(
        "backfill needs a block certificate per block (not available in "
        "augmented-only operation)");
  }

  IndexSlot slot;
  slot.digest = index->Verifier().GenesisDigest();
  slot.host = std::move(index);
  for (std::uint64_t h = 1; h <= height; ++h) {
    const chain::Block& blk = node_.GetBlock(h);
    const chain::BlockHeader& prev_hdr = node_.GetBlock(h - 1).header;
    if (Status st = CertifyIndexStep(slot, blk, prev_hdr,
                                     block_certs_[static_cast<std::size_t>(h) - 1]);
        !st) {
      return R(st.WithContext("backfill height " + std::to_string(h)));
    }
  }
  if (slot.host->CurrentDigest() != slot.digest) {
    return R::Error("backfilled index diverged from certified digest");
  }
  IndexCertificate tip_cert = *slot.cert;
  indexes_.push_back(std::move(slot));
  return tip_cert;
}

}  // namespace dcert::core
