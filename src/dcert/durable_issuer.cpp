#include "dcert/durable_issuer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/crash_point.h"
#include "obs/metrics.h"

namespace dcert::core {

namespace {

/// Process-wide recovery/durability metrics, aggregated across instances
/// (the per-open RecoveryReport stays the exact view tests assert on).
struct DurableMetrics {
  std::shared_ptr<obs::Counter> opens;
  std::shared_ptr<obs::Counter> resumes;
  std::shared_ptr<obs::Counter> torn_tails;
  std::shared_ptr<obs::Counter> certs_truncated;
  std::shared_ptr<obs::Counter> blocks_recertified;
  std::shared_ptr<obs::Counter> blocks_replayed;
  std::shared_ptr<obs::Gauge> tip_height;

  static DurableMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static DurableMetrics* m = new DurableMetrics{
        reg.GetCounter("ci.recovery.opens"),
        reg.GetCounter("ci.recovery.resumes"),
        reg.GetCounter("ci.recovery.torn_tails"),
        reg.GetCounter("ci.recovery.certs_truncated"),
        reg.GetCounter("ci.recovery.blocks_recertified"),
        reg.GetCounter("ci.recovery.blocks_replayed"),
        reg.GetGauge("ci.durable.tip_height")};
    return *m;
  }
};

std::optional<Bytes> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat sb;
  if (::fstat(fd, &sb) < 0) {
    ::close(fd);
    return std::nullopt;
  }
  Bytes data(static_cast<std::size_t>(sb.st_size));
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t r = ::read(fd, data.data() + done, data.size() - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  ::close(fd);
  if (done != data.size()) return std::nullopt;
  return data;
}

/// write + fsync + parent-dir fsync: the sealed key must be durable before
/// the first block is logged, or a crash could leave a chain with no key to
/// resume under.
Status WriteFileDurable(const std::string& path, ByteView data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    return Status::Error("sealed key: open " + path + ": " +
                         std::strerror(errno));
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w = ::write(fd, data.data() + done, data.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::Error(std::string("sealed key: write: ") + std::strerror(errno));
      ::close(fd);
      return st;
    }
    done += static_cast<std::size_t>(w);
  }
  if (::fsync(fd) < 0) {
    const Status st =
        Status::Error(std::string("sealed key: fsync: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Error("sealed key: open parent dir: " +
                         std::string(std::strerror(errno)));
  }
  if (::fsync(dfd) < 0) {
    const Status st = Status::Error("sealed key: fsync parent dir: " +
                                    std::string(std::strerror(errno)));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::Ok();
}

}  // namespace

DurableCertificateIssuer::DurableCertificateIssuer(CertificateIssuer issuer,
                                                   chain::BlockStore blocks,
                                                   CertificateStore certs,
                                                   AnnounceFn announce,
                                                   RecoveryReport recovery)
    : issuer_(std::move(issuer)),
      blocks_(std::move(blocks)),
      certs_(std::move(certs)),
      announce_(std::move(announce)),
      recovery_(recovery) {}

Result<DurableCertificateIssuer> DurableCertificateIssuer::Open(
    chain::ChainConfig config,
    std::shared_ptr<const chain::ContractRegistry> registry,
    DurableIssuerOptions options) {
  using R = Result<DurableCertificateIssuer>;
  auto& crash = common::CrashPoints::Global();

  auto blocks =
      chain::BlockStore::Open(options.block_log_path, options.segment_records);
  if (!blocks) return R(blocks.status());
  blocks.value().SetFsyncOnAppend(options.fsync_on_append);
  auto certs =
      CertificateStore::Open(options.cert_log_path, options.segment_records);
  if (!certs) return R(certs.status());
  certs.value().SetFsyncOnAppend(options.fsync_on_append);

  RecoveryReport report;
  report.block_log_torn = blocks.value().RecoveredFromTornTail();
  report.cert_log_torn = certs.value().RecoveredFromTornTail();

  const std::optional<Bytes> sealed = ReadFileBytes(options.sealed_key_path);
  std::optional<CertificateIssuer> issuer;

  const std::uint64_t block_count = blocks.value().Count();
  if (block_count == 0) {
    // Fresh start (or a crash before the genesis append made it). Certs
    // without any block are unanchorable — drop them; they re-issue
    // byte-identically once the chain regrows (deterministic signing).
    if (certs.value().Count() > 0) {
      report.certs_truncated = certs.value().Count();
      if (Status st = certs.value().TruncateTo(0); !st) return R(st);
    }
    if (sealed) {
      // The key outlived the crash: resume under it so pk_enc stays stable.
      auto restored = CertificateIssuer::Restore(config, registry, *sealed,
                                                 options.cost_model);
      if (!restored) {
        return R(restored.status().WithContext("durable issuer open"));
      }
      issuer.emplace(std::move(restored.value()));
    } else {
      issuer.emplace(config, registry, options.cost_model, options.key_seed);
      // The sealed key must be durable before the first block is logged: a
      // chain without its key cannot resume.
      crash.Hit("issuer.seal.save");
      if (Status st = WriteFileDurable(options.sealed_key_path,
                                       issuer->SealSigningKey());
          !st) {
        return R(st);
      }
    }
    if (Status st = blocks.value().Append(issuer->Node().GetBlock(0)); !st) {
      return R(st.WithContext("log genesis"));
    }
  } else {
    report.resumed = true;
    if (!sealed) {
      return R::Error("durable issuer: block log has " +
                      std::to_string(block_count) +
                      " blocks but the sealed key is missing: " +
                      options.sealed_key_path);
    }
    auto restored = CertificateIssuer::Restore(config, registry, *sealed,
                                               options.cost_model);
    if (!restored) {
      return R(restored.status().WithContext("durable issuer resume"));
    }
    issuer.emplace(std::move(restored.value()));

    if (blocks.value().BaseHeight() == 0) {
      auto genesis = blocks.value().Get(0);
      if (!genesis) return R(genesis.status());
      if (genesis.value().header.Hash() !=
          issuer->Node().GetBlock(0).header.Hash()) {
        return R::Error(
            "durable issuer: stored genesis does not match the config");
      }
    }

    // Reconcile: the commit order keeps the logs at most one record apart,
    // so after torn-tail truncation the cert log may be ahead (torn block
    // tail) or behind (crash between the appends).
    if (certs.value().Count() > block_count - 1) {
      report.certs_truncated = certs.value().Count() - (block_count - 1);
      if (Status st = certs.value().TruncateTo(block_count - 1); !st) {
        return R(st.WithContext("reconcile cert log"));
      }
    }

    // Checkpoint bootstrap: let the hook re-base the issuer onto a certified
    // snapshot, then cross-check it against the retained log suffix so a
    // checkpoint that diverged from the durable chain cannot be resumed.
    std::uint64_t boot_height = 0;
    if (options.bootstrap) {
      auto boot = options.bootstrap(*issuer, blocks.value());
      if (!boot) return R(boot.status().WithContext("checkpoint bootstrap"));
      boot_height = boot.value();
      report.bootstrap_height = boot_height;
    }
    if (boot_height == 0) {
      if (blocks.value().BaseHeight() > 0) {
        return R::Error(
            "durable issuer: block history below height " +
            std::to_string(blocks.value().BaseHeight()) +
            " was compacted and no valid checkpoint covers it; recovery "
            "requires a checkpoint");
      }
    } else {
      if (boot_height >= block_count) {
        return R::Error("durable issuer: checkpoint height " +
                        std::to_string(boot_height) +
                        " is beyond the durable chain (" +
                        std::to_string(block_count) + " blocks)");
      }
      if (blocks.value().BaseHeight() > boot_height) {
        return R::Error("durable issuer: log history was compacted above the "
                        "checkpoint height " + std::to_string(boot_height));
      }
      auto anchor = blocks.value().Get(boot_height);
      if (!anchor) return R(anchor.status().WithContext("checkpoint anchor"));
      if (anchor.value().header.Hash() != issuer->Node().Tip().header.Hash()) {
        return R::Error("durable issuer: checkpoint tip does not match the "
                        "stored block at height " + std::to_string(boot_height));
      }
      auto anchor_cert = certs.value().Get(boot_height - 1);
      if (!anchor_cert) {
        return R(anchor_cert.status().WithContext("checkpoint anchor cert"));
      }
      if (!issuer->LatestCert() ||
          !(anchor_cert.value() == *issuer->LatestCert())) {
        return R::Error("durable issuer: checkpoint certificate does not "
                        "match the stored certificate at height " +
                        std::to_string(boot_height));
      }
    }

    const std::uint64_t cert_count = certs.value().Count();
    for (std::uint64_t h = boot_height + 1; h < block_count; ++h) {
      auto blk = blocks.value().Get(h);
      if (!blk) return R(blk.status());
      if (h - 1 < cert_count) {
        auto cert = certs.value().Get(h - 1);
        if (!cert) return R(cert.status());
        // Full local re-validation, exactly as adopting another CI's block.
        if (Status st = issuer->AcceptBlockWithCert(blk.value(), cert.value());
            !st) {
          return R(st.WithContext("replay height " + std::to_string(h)));
        }
        ++report.blocks_replayed;
      } else {
        // Gap block: durable but never certified (so provably never
        // announced). Re-certify under the restored key and announce now.
        auto cert = issuer->ProcessBlock(blk.value());
        if (!cert) {
          return R(cert.status().WithContext("re-certify height " +
                                             std::to_string(h)));
        }
        if (Status st = certs.value().Append(cert.value()); !st) {
          return R(st.WithContext("re-certify height " + std::to_string(h)));
        }
        ++report.blocks_recertified;
        if (options.announce) {
          if (Status st = options.announce(blk.value(), cert.value()); !st) {
            return R(st.WithContext("announce re-certified height " +
                                    std::to_string(h)));
          }
        }
      }
    }
  }

  auto& m = DurableMetrics::Get();
  m.opens->Add(1);
  if (report.resumed) m.resumes->Add(1);
  if (report.block_log_torn) m.torn_tails->Add(1);
  if (report.cert_log_torn) m.torn_tails->Add(1);
  m.certs_truncated->Add(report.certs_truncated);
  m.blocks_recertified->Add(report.blocks_recertified);
  m.blocks_replayed->Add(report.blocks_replayed);
  m.tip_height->Set(static_cast<std::int64_t>(issuer->Node().Height()));

  return DurableCertificateIssuer(std::move(*issuer),
                                  std::move(blocks.value()),
                                  std::move(certs.value()),
                                  std::move(options.announce), report);
}

Status DurableCertificateIssuer::CompactBelow(std::uint64_t height) {
  if (height == 0) return Status::Ok();
  if (Status st = blocks_.CompactBelow(height); !st) {
    return st.WithContext("compact block log");
  }
  // Cert record for height h lives at index h-1: keep the checkpoint
  // anchor's certificate alongside its block.
  if (Status st = certs_.CompactBelow(height - 1); !st) {
    return st.WithContext("compact cert log");
  }
  return Status::Ok();
}

Status DurableCertificateIssuer::LogAndAnnounce(const chain::Block& blk,
                                                const BlockCertificate& cert) {
  auto& crash = common::CrashPoints::Global();
  if (Status st = certs_.Append(cert); !st) {
    return st.WithContext("durable cert append");
  }
  crash.Hit("issuer.durable.before_announce");
  if (announce_) {
    if (Status st = announce_(blk, cert); !st) {
      return st.WithContext("announce height " +
                            std::to_string(blk.header.height));
    }
  }
  crash.Hit("issuer.durable.after_announce");
  DurableMetrics::Get().tip_height->Set(
      static_cast<std::int64_t>(blk.header.height));
  return Status::Ok();
}

Status DurableCertificateIssuer::CertifyBlock(const chain::Block& blk) {
  auto& crash = common::CrashPoints::Global();
  crash.Hit("issuer.durable.begin");
  if (Status st = blocks_.Append(blk); !st) {
    return st.WithContext("durable block append");
  }
  crash.Hit("issuer.durable.after_block_append");
  auto cert = issuer_.ProcessBlock(blk);
  if (!cert) return cert.status();
  return LogAndAnnounce(blk, cert.value());
}

Status DurableCertificateIssuer::CertifyBlocksPipelined(
    const std::vector<chain::Block>& blocks) {
  auto& crash = common::CrashPoints::Global();
  crash.Hit("issuer.durable.begin");
  auto result = issuer_.ProcessBlocksPipelined(
      blocks, [&](std::size_t i, const BlockCertificate& cert) -> Status {
        // Same per-block commit order as CertifyBlock, applied on the
        // calling thread as each certificate comes off the pipeline.
        if (Status st = blocks_.Append(blocks[i]); !st) {
          return st.WithContext("durable block append");
        }
        common::CrashPoints::Global().Hit("issuer.durable.after_block_append");
        return LogAndAnnounce(blocks[i], cert);
      });
  if (!result) return result.status();
  return Status::Ok();
}

}  // namespace dcert::core
