// The update proof pi_i the CI prepares outside the enclave (Alg. 1 line 3):
// the read set {r}_i with its values, pre-state values for written-only keys
// (the "neighboring nodes related to {w}_i"), and one SMT multiproof covering
// all touched keys. The enclave uses it to (a) verify the read set against
// the previous state root and (b) recompute the new state root after its own
// trusted replay (Alg. 2 lines 17, 22-23).
#pragma once

#include "chain/state.h"
#include "common/bytes.h"
#include "common/status.h"
#include "mht/smt.h"

namespace dcert::core {

struct StateUpdateProof {
  /// {r}_i: key -> pre-state value observed by the block's execution.
  chain::StateMap read_set;
  /// Pre-state values of keys the block writes but never reads.
  chain::StateMap prior_write_values;
  /// Multiproof over keys(read_set) ∪ keys(prior_write_values) ∪ write keys.
  mht::SmtMultiProof smt_proof;

  Bytes Serialize() const;
  static Result<StateUpdateProof> Deserialize(ByteView data);
  std::size_t ByteSize() const;

  /// All covered pre-state leaves (read set ∪ prior write values), hashed as
  /// SMT leaf values — the input to the old-root verification.
  std::map<Hash256, Hash256> OldLeaves() const;
};

/// Builds the update proof from an execution's read/write sets against the
/// pre-state `db` (which must still be at the previous block's state).
StateUpdateProof BuildStateUpdateProof(const chain::StateMap& reads,
                                       const chain::StateMap& writes,
                                       const chain::StateDB& db);

}  // namespace dcert::core
