// Crash-recoverable Certificate Issuer: a CertificateIssuer wrapped with
// durable state — a block log, a certificate log (both RecordLogs), and the
// sealed signing key — plus the recovery path that rebuilds a running issuer
// from whatever a crash left behind.
//
// Commit order (the durability invariant everything else follows from):
//
//   block record durable  ->  certificate record durable  ->  announced
//
// A certificate is never announced to clients before it is in the cert log,
// and never logged before its block is in the block log. A crash between any
// two steps leaves the logs at most one record apart, which Open()
// reconciles:
//
//   * cert log ahead of block log (torn block tail): the dangling
//     certificates are truncated away. They re-issue byte-identically when
//     the block is re-certified — signing is deterministic — so even a
//     client that saw the announcement observes no equivocation.
//   * block log ahead of cert log (crash between the appends): the gap
//     blocks are re-certified through the restored enclave key and appended;
//     they were provably never announced (announce follows the cert append),
//     so announcing the re-issued certs is the first time clients see them.
//
// Recovery then replays the reconciled logs through AcceptBlockWithCert —
// full local re-validation, exactly as if another CI had issued the stored
// certificates — and resumes issuance with the same pk_enc (the sealed key),
// so clients keep their cached attestation across the restart.
//
// Attached indexes are NOT restored (replay bypasses index certification);
// rebuild service-side indexes from the stores instead (SpServer::Rehydrate).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chain/block_store.h"
#include "common/status.h"
#include "dcert/cert_store.h"
#include "dcert/issuer.h"

namespace dcert::core {

/// Called once per certified block, strictly after its certificate is
/// durable in the cert log: the announce step of the commit order. An error
/// aborts the issuing call.
using AnnounceFn =
    std::function<Status(const chain::Block&, const BlockCertificate&)>;

/// Checkpoint bootstrap hook, invoked on resume after the signing key is
/// restored and the logs are reconciled, before replay. Given the restored
/// issuer (node still at genesis) and the block log, it may install a
/// certified snapshot (CertificateIssuer::InstallSnapshot) and return its
/// height; returning 0 means "no snapshot, replay from genesis". Open()
/// cross-checks the snapshot against the retained log suffix (stored block
/// and certificate at the snapshot height must match) and replays only the
/// tail above it. The hook must never return a height >= the block count —
/// a checkpoint beyond the durable chain cannot be reconciled.
using BootstrapFn = std::function<Result<std::uint64_t>(
    CertificateIssuer& issuer, const chain::BlockStore& blocks)>;

struct DurableIssuerOptions {
  std::string block_log_path;
  std::string cert_log_path;
  std::string sealed_key_path;
  /// fsync both logs on every append (a power loss then cannot lose an
  /// acknowledged record, only tear the in-flight one). Off by default for
  /// throughput experiments; the crash soak exercises both settings.
  bool fsync_on_append = false;
  sgxsim::CostModelParams cost_model = {};
  /// Key-derivation seed for a FRESH issuer; ignored when resuming (the
  /// sealed key wins — that is the point of sealing).
  std::string key_seed = "dcert-ci-key";
  /// Announce sink, also invoked for gap blocks re-certified during
  /// recovery (provably never announced before the crash).
  AnnounceFn announce;
  /// Segment rotation for both logs: roll to a new sealed segment every
  /// `segment_records` records (0 = legacy single-file logs). Required for
  /// CompactBelow — only whole sealed segments are ever dropped.
  std::uint64_t segment_records = 0;
  /// Checkpoint bootstrap hook (see BootstrapFn). When unset and the block
  /// log was compacted, Open() fails: pre-checkpoint history is gone and
  /// only a checkpoint can stand in for it.
  BootstrapFn bootstrap;
};

/// What Open() found and did. All counters are zero on a fresh start.
struct RecoveryReport {
  bool resumed = false;         // opened over pre-existing durable state
  bool block_log_torn = false;  // block log had a torn/corrupt tail
  bool cert_log_torn = false;   // cert log had a torn/corrupt tail
  std::uint64_t certs_truncated = 0;    // cert-log-ahead reconciliation
  std::uint64_t blocks_recertified = 0; // block-log-ahead gap re-certification
  std::uint64_t blocks_replayed = 0;    // stored blocks re-validated via replay
  std::uint64_t bootstrap_height = 0;   // checkpoint height replay resumed from
                                        // (0 = replayed from genesis)
};

class DurableCertificateIssuer {
 public:
  DurableCertificateIssuer(DurableCertificateIssuer&&) noexcept = default;
  DurableCertificateIssuer(const DurableCertificateIssuer&) = delete;
  DurableCertificateIssuer& operator=(const DurableCertificateIssuer&) = delete;

  /// Opens (or creates) the durable state and returns a ready-to-issue
  /// issuer. Fresh start: derives the signing key from options.key_seed,
  /// seals it to sealed_key_path (durably, before any block is logged), and
  /// logs the genesis block. Resume: unseals the key, reconciles the logs
  /// (see file comment), replays, and re-certifies any gap.
  static Result<DurableCertificateIssuer> Open(
      chain::ChainConfig config,
      std::shared_ptr<const chain::ContractRegistry> registry,
      DurableIssuerOptions options);

  /// Certifies `blk` under the commit order: block append -> certificate
  /// construction -> cert append -> announce. On error the in-memory node
  /// and the logs may disagree by one block; reopening reconciles.
  Status CertifyBlock(const chain::Block& blk);

  /// Pipelined span certification (ProcessBlocksPipelined) with the same
  /// per-block commit order, applied from the pipeline's cert sink.
  Status CertifyBlocksPipelined(const std::vector<chain::Block>& blocks);

  /// Drops log history strictly below checkpoint height `height`: block
  /// records below `height` and certificate records below `height - 1`, so
  /// the checkpointed block and its certificate stay retained as the
  /// recovery anchors. Whole-segment granularity (requires segment_records);
  /// a no-op floor compacts nothing. Only call with a height covered by a
  /// durable checkpoint — recovery below the new base needs one.
  Status CompactBelow(std::uint64_t height);

  CertificateIssuer& Issuer() { return issuer_; }
  const CertificateIssuer& Issuer() const { return issuer_; }
  const chain::BlockStore& Blocks() const { return blocks_; }
  const CertificateStore& Certs() const { return certs_; }
  const RecoveryReport& Recovery() const { return recovery_; }

 private:
  DurableCertificateIssuer(CertificateIssuer issuer, chain::BlockStore blocks,
                           CertificateStore certs, AnnounceFn announce,
                           RecoveryReport recovery);

  /// cert append -> announce, shared by the serial and pipelined paths.
  Status LogAndAnnounce(const chain::Block& blk, const BlockCertificate& cert);

  CertificateIssuer issuer_;
  chain::BlockStore blocks_;
  CertificateStore certs_;
  AnnounceFn announce_;
  RecoveryReport recovery_;
};

}  // namespace dcert::core
