// Trusted index-update verification interface. An authenticated index type
// plugs into the enclave by providing deterministic code that, given the
// previous index digest, an untrusted auxiliary proof, and the (already
// verified) block, recomputes the new index digest (Alg. 4 lines 8-10 /
// Alg. 5 lines 11-13). Implementations must be pure: no ambient state, only
// the arguments — they run inside the enclave.
#pragma once

#include <string>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"

namespace dcert::core {

class IndexUpdateVerifier {
 public:
  virtual ~IndexUpdateVerifier() = default;

  /// Stable identifier baked into certificates' index binding.
  virtual std::string TypeName() const = 0;

  /// Digest of the empty index (H_genesis^idx).
  virtual Hash256 GenesisDigest() const = 0;

  /// Extracts this index's write data from `blk` (get_index_write_data),
  /// verifies `aux_proof` against `old_digest`, applies the writes, and
  /// returns the new digest. Fails on any inconsistency.
  virtual Result<Hash256> ApplyUpdate(const Hash256& old_digest,
                                      ByteView aux_proof,
                                      const chain::Block& blk) const = 0;
};

}  // namespace dcert::core
