// Blockbench workloads (Dinh et al., SIGMOD'17) — the paper's benchmark
// suite (Sec. 7.2): micro-benchmarks DoNothing (DN), CPUHeavy (CPU),
// IOHeavy (IO) and macro-benchmarks KVStore (KV), SmallBank (SB), all
// compiled to this repo's VM bytecode.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/executor.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "vm/vm.h"

namespace dcert::workloads {

enum class Workload { kDoNothing, kCpuHeavy, kIoHeavy, kKvStore, kSmallBank };

inline constexpr Workload kAllWorkloads[] = {
    Workload::kDoNothing, Workload::kCpuHeavy, Workload::kIoHeavy,
    Workload::kKvStore, Workload::kSmallBank};

/// Short display name used in the paper's figures (DN/CPU/IO/KV/SB).
std::string Name(Workload kind);

/// The compiled contract for a workload.
const vm::Program& ProgramFor(Workload kind);

/// Contract-id scheme: workload w, instance k lives at w*1000 + k.
std::uint64_t ContractId(Workload kind, std::uint64_t instance);

/// Builds a registry with `instances_per_workload` copies of each workload
/// contract (the paper deploys 500 contracts total = 100 per workload).
std::shared_ptr<chain::ContractRegistry> MakeBlockbenchRegistry(
    std::uint64_t instances_per_workload);

/// A pool of funded sender accounts with tracked nonces. Key generation is
/// deterministic in the seed so experiments are reproducible.
class AccountPool {
 public:
  AccountPool(std::size_t count, std::uint64_t seed);

  std::size_t size() const { return keys_.size(); }
  const crypto::PublicKey& PublicKeyAt(std::size_t i) const {
    return keys_[i].Public();
  }

  /// Signs a transaction from account `i` and advances its nonce.
  chain::Transaction MakeTx(std::size_t sender, std::uint64_t contract_id,
                            std::vector<std::uint64_t> calldata);

 private:
  std::vector<crypto::SecretKey> keys_;
  std::vector<std::uint64_t> nonces_;
};

/// Generates a deterministic stream of workload transactions with random
/// senders, contract instances, and operation mixes.
class WorkloadGenerator {
 public:
  struct Params {
    Workload kind = Workload::kKvStore;
    std::uint64_t seed = 1;
    std::uint64_t instances_per_workload = 4;
    /// KVStore key universe (the paper creates 500 tuples).
    std::uint64_t kv_keys = 500;
    /// CPUHeavy loop iterations per transaction.
    std::uint64_t cpu_iterations = 256;
    /// IOHeavy keys written/scanned per transaction.
    std::uint64_t io_keys_per_tx = 32;
    std::uint64_t io_key_space = 10'000;
    /// SmallBank account universe.
    std::uint64_t sb_accounts = 500;
  };

  WorkloadGenerator(Params params, AccountPool& pool);

  chain::Transaction NextTx();
  std::vector<chain::Transaction> NextBlockTxs(std::size_t count);

 private:
  Params params_;
  AccountPool* pool_;
  Rng rng_;
};

}  // namespace dcert::workloads
